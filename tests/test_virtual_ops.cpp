/// \file test_virtual_ops.cpp
/// \brief The runtime (vtable) interface must agree exactly with the
/// compile-time traits it adapts.

#include <gtest/gtest.h>

#include "core/virtual_ops.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

TEST(VirtualOps, RegistryNamesAndSizes) {
  EXPECT_STREQ(virtual_ops(RepKind::kStandard, 3).name(), "standard");
  EXPECT_STREQ(virtual_ops(RepKind::kMorton, 3).name(), "morton");
  EXPECT_STREQ(virtual_ops(RepKind::kAvx, 3).name(), "avx");
  EXPECT_STREQ(virtual_ops(RepKind::kWideMorton, 3).name(), "wide-morton");
  EXPECT_EQ(virtual_ops(RepKind::kStandard, 3).storage_bytes(), 24u);
  EXPECT_EQ(virtual_ops(RepKind::kMorton, 3).storage_bytes(), 8u);
  EXPECT_EQ(virtual_ops(RepKind::kAvx, 3).storage_bytes(), 16u);
  EXPECT_EQ(virtual_ops(RepKind::kWideMorton, 3).storage_bytes(), 16u);
  EXPECT_EQ(virtual_ops(RepKind::kMorton, 2).dim(), 2);
  EXPECT_EQ(virtual_ops(RepKind::kMorton, 3).max_level(), 18);
}

TEST(VirtualOps, KindParsingRoundTrip) {
  for (const auto kind : {RepKind::kStandard, RepKind::kMorton, RepKind::kAvx,
                          RepKind::kWideMorton}) {
    EXPECT_EQ(rep_kind_from_string(rep_kind_name(kind)), kind);
  }
  EXPECT_THROW(rep_kind_from_string("nonsense"), std::invalid_argument);
  EXPECT_THROW(virtual_ops(RepKind::kStandard, 4), std::invalid_argument);
}

template <class R>
void check_adapter_against_static(RepKind kind) {
  const VirtualQuadrantOps& ops = virtual_ops(kind, R::dim);
  using Adapter = VirtualOpsAdapter<R>;
  Xoshiro256 rng(777);
  for (int i = 0; i < 3000; ++i) {
    const int cap = test::max_index_level<R>();
    const int lvl = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(cap)));
    const morton_t il = rng.next_below(morton_t{1} << (R::dim * lvl));
    const auto q = R::morton_quadrant(il, lvl);
    const VQuad v = Adapter::box(q);

    EXPECT_EQ(ops.level(v), R::level(q));
    EXPECT_EQ(ops.level_index(v), R::level_index(q));
    EXPECT_EQ(ops.child_id(v), R::child_id(q));
    EXPECT_TRUE(R::equal(Adapter::unbox(ops.parent(v)), R::parent(q)));
    if (lvl < R::max_level) {
      for (int c = 0; c < (1 << R::dim); ++c) {
        EXPECT_TRUE(
            R::equal(Adapter::unbox(ops.child(v, c)), R::child(q, c)));
      }
    }
    for (int s = 0; s < (1 << R::dim); ++s) {
      EXPECT_TRUE(
          R::equal(Adapter::unbox(ops.sibling(v, s)), R::sibling(q, s)));
    }
    int tb[3], ts[3];
    ops.tree_boundaries(v, tb);
    R::tree_boundaries(q, ts);
    for (int d = 0; d < R::dim; ++d) {
      EXPECT_EQ(tb[d], ts[d]);
    }
    const VQuad m = ops.morton_quadrant(il, lvl);
    EXPECT_TRUE(ops.equal(m, v));
    EXPECT_TRUE(ops.is_valid(v));
    const auto q2 = test::random_quadrant<R>(rng, cap);
    const VQuad v2 = Adapter::box(q2);
    EXPECT_EQ(ops.less(v, v2), R::less(q, q2));
    EXPECT_EQ(ops.is_ancestor(v, v2), R::is_ancestor(q, q2));
  }
}

TEST(VirtualOps, StandardAdapterAgrees) {
  check_adapter_against_static<StandardRep<3>>(RepKind::kStandard);
  check_adapter_against_static<StandardRep<2>>(RepKind::kStandard);
}

TEST(VirtualOps, MortonAdapterAgrees) {
  check_adapter_against_static<MortonRep<3>>(RepKind::kMorton);
  check_adapter_against_static<MortonRep<2>>(RepKind::kMorton);
}

TEST(VirtualOps, AvxAdapterAgrees) {
  check_adapter_against_static<AvxRep<3>>(RepKind::kAvx);
  check_adapter_against_static<AvxRep<2>>(RepKind::kAvx);
}

TEST(VirtualOps, WideAdapterAgrees) {
  check_adapter_against_static<WideMortonRep<3>>(RepKind::kWideMorton);
  check_adapter_against_static<WideMortonRep<2>>(RepKind::kWideMorton);
}

TEST(VirtualOps, CrossRepresentationWorkflowAgrees) {
  // A small high-level workflow (random tree walk) written purely against
  // the virtual interface traces the identical (level, level_index)
  // sequence for every representation — the virtualized-quadrant promise.
  std::vector<std::pair<int, morton_t>> reference;
  for (const auto kind : {RepKind::kStandard, RepKind::kMorton, RepKind::kAvx,
                          RepKind::kWideMorton}) {
    const VirtualQuadrantOps& ops = virtual_ops(kind, 3);
    std::vector<std::pair<int, morton_t>> trace;
    VQuad q = ops.root();
    Xoshiro256 walk(999);
    for (int step = 0; step < 200; ++step) {
      if (ops.level(q) < 10 && walk.next_bool(0.7)) {
        q = ops.child(q, static_cast<int>(walk.next_below(8)));
      } else if (ops.level(q) > 0) {
        q = walk.next_bool(0.5)
                ? ops.parent(q)
                : ops.sibling(q, static_cast<int>(walk.next_below(8)));
      }
      trace.emplace_back(ops.level(q), ops.level_index(q));
    }
    if (reference.empty()) {
      reference = trace;
    } else {
      EXPECT_EQ(trace, reference) << "kind " << rep_kind_name(kind);
    }
  }
}

}  // namespace
}  // namespace qforest

/// \file test_batch_dispatch.cpp
/// \brief BatchOps<R> equivalence: for every representation, every batched
/// entry point must agree element-for-element with the scalar R:: ops —
/// across random level-uniform batches, odd lengths (tail handling) and
/// the n = 0 / n = 1 degenerate cases, on both the SIMD and the
/// scalar-dispatch path (QFOREST_NO_BATCH semantics via batch::set_enabled).

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_ops.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

// Odd sizes exercise the SIMD tail; 0 and 1 are the degenerate cases.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 7, 64, 65, 257};

template <class R>
std::vector<typename R::quad_t> level_uniform_batch(Xoshiro256& rng,
                                                    std::size_t n,
                                                    int level) {
  std::vector<typename R::quad_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(test::random_quadrant_at<R>(rng, level));
  }
  return out;
}

/// Check every BatchOps<R> op against its scalar counterpart on one batch.
template <class R>
void check_ops(Xoshiro256& rng, std::size_t n, int level) {
  using B = BatchOps<R>;
  using quad_t = typename R::quad_t;
  const auto in = level_uniform_batch<R>(rng, n, level);
  std::vector<quad_t> out(n);

  for (int c = 0; c < DimConstants<R::dim>::num_children; ++c) {
    if (level < R::max_level) {
      B::child_uniform(in.data(), out.data(), n, c, level);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(R::equal(out[i], R::child(in[i], c)))
            << R::name << " child c=" << c << " i=" << i << " n=" << n;
      }
    }
    if (level > 0) {
      B::sibling_uniform(in.data(), out.data(), n, c, level);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(R::equal(out[i], R::sibling(in[i], c)))
            << R::name << " sibling s=" << c << " i=" << i << " n=" << n;
      }
    }
  }

  if (level > 0) {
    B::parent_uniform(in.data(), out.data(), n, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(R::equal(out[i], R::parent(in[i])))
          << R::name << " parent i=" << i << " n=" << n;
    }

    std::vector<int> ids(n);
    B::child_id_n(in.data(), ids.data(), n, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ids[i], R::child_id(in[i]))
          << R::name << " child_id i=" << i << " n=" << n;
    }
  }

  for (int f = 0; f < DimConstants<R::dim>::num_faces; ++f) {
    B::face_neighbor_uniform(in.data(), out.data(), n, f, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(R::equal(out[i], R::face_neighbor(in[i], f)))
          << R::name << " fneigh f=" << f << " i=" << i << " n=" << n;
    }
  }

  B::successor_n(in.data(), out.data(), n, level);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(R::equal(out[i], R::successor(in[i])))
        << R::name << " successor i=" << i << " n=" << n;
  }

  const int deeper = std::min(level + 2, test::max_index_level<R>());
  B::first_descendant_n(in.data(), out.data(), n, deeper);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(R::equal(out[i], R::first_descendant(in[i], deeper)))
        << R::name << " first_desc i=" << i << " n=" << n;
  }
  B::last_descendant_n(in.data(), out.data(), n, level, deeper);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(R::equal(out[i], R::last_descendant(in[i], deeper)))
        << R::name << " last_desc i=" << i << " n=" << n;
  }

  // morton_quadrant_n: bulk de-interleave of level-relative Morton
  // indices (the producer of new_uniform and the bench workload builder).
  if (R::dim * level < 64) {
    std::vector<morton_t> il(n);
    const morton_t cap = level == 0 ? 1 : (morton_t{1} << (R::dim * level));
    for (std::size_t i = 0; i < n; ++i) {
      il[i] = rng.next_below(cap);
    }
    B::morton_quadrant_n(il.data(), out.data(), n, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(R::equal(out[i], R::morton_quadrant(il[i], level)))
          << R::name << " morton_quadrant i=" << i << " n=" << n;
    }
  }

  // neighbor_at_offset_n: canonical neighbor keys of the balance mark
  // phase. Out-of-root coordinates are part of the contract (the caller
  // wraps them), so every offset is valid at every level.
  {
    std::vector<std::int64_t> nx(n), ny(n), nz(n);
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - level);
    const int zd = R::dim == 3 ? 1 : 0;
    const int offsets[][3] = {{1, 0, 0},   {-1, 0, 0},  {0, -1, zd},
                              {-1, 1, 0},  {1, 1, zd},  {-1, -1, -zd}};
    for (const auto& d : offsets) {
      B::neighbor_at_offset_n(in.data(), nx.data(), ny.data(), nz.data(), n,
                              d[0], d[1], d[2], level);
      for (std::size_t i = 0; i < n; ++i) {
        const CanonicalQuadrant c = to_canonical<R>(in[i]);
        ASSERT_EQ(nx[i], c.x + d[0] * h)
            << R::name << " nboff x d=(" << d[0] << "," << d[1] << ","
            << d[2] << ") i=" << i << " n=" << n;
        ASSERT_EQ(ny[i], c.y + d[1] * h)
            << R::name << " nboff y i=" << i << " n=" << n;
        ASSERT_EQ(nz[i], c.z + d[2] * h)
            << R::name << " nboff z i=" << i << " n=" << n;
      }
    }
  }

  // Comparators: a batch against a half-perturbed copy of itself.
  std::vector<quad_t> other = in;
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    other[i] = test::random_quadrant_at<R>(rng, level);
  }
  std::vector<std::uint8_t> mask(n);
  B::equal_mask(in.data(), other.data(), mask.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(mask[i] != 0, R::equal(in[i], other[i]))
        << R::name << " equal i=" << i << " n=" << n;
  }
  B::less_mask(in.data(), other.data(), mask.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(mask[i] != 0, R::less(in[i], other[i]))
        << R::name << " less i=" << i << " n=" << n;
  }

  // The adjacent-pair overlap used by sort/dedup sweeps (b = a + 1).
  if (n > 1) {
    B::equal_mask(in.data(), in.data() + 1, mask.data(), n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ASSERT_EQ(mask[i] != 0, R::equal(in[i], in[i + 1]))
          << R::name << " adj-equal i=" << i << " n=" << n;
    }
    B::less_mask(in.data(), in.data() + 1, mask.data(), n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ASSERT_EQ(mask[i] != 0, R::less(in[i], in[i + 1]))
          << R::name << " adj-less i=" << i << " n=" << n;
    }
  }
}

template <class R>
void check_all_sizes(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int levels[] = {0, 1, 5,
                        std::min(7, test::max_index_level<R>() - 1)};
  for (const std::size_t n : kSizes) {
    for (const int level : levels) {
      check_ops<R>(rng, n, level);
    }
  }
}

template <class R>
class BatchDispatchT : public ::testing::Test {};
TYPED_TEST_SUITE(BatchDispatchT, test::AllReps);

TYPED_TEST(BatchDispatchT, MatchesScalarOps) {
  check_all_sizes<TypeParam>(42);
}

/// Restores the process-global dispatch flag even when an ASSERT_ bails
/// out of the test body, so later tests never run with stale state.
struct BatchFlagGuard {
  explicit BatchFlagGuard(bool on) : saved_(batch::enabled()) {
    batch::set_enabled(on);
  }
  ~BatchFlagGuard() { batch::set_enabled(saved_); }
  bool saved_;
};

TYPED_TEST(BatchDispatchT, ScalarDispatchPathMatches) {
  // Force the generic scalar bodies even where SIMD kernels exist — the
  // path a non-AVX host takes — and require identical results.
  const BatchFlagGuard guard(false);
  check_all_sizes<TypeParam>(43);
}

TYPED_TEST(BatchDispatchT, InPlaceAliasingAllowed) {
  using R = TypeParam;
  Xoshiro256 rng(44);
  const int level = 4;
  auto quads = level_uniform_batch<R>(rng, 101, level);
  const auto orig = quads;
  BatchOps<R>::child_uniform(quads.data(), quads.data(), quads.size(), 1,
                             level);
  for (std::size_t i = 0; i < quads.size(); ++i) {
    ASSERT_TRUE(R::equal(quads[i], R::child(orig[i], 1)));
  }
}

TEST(BatchDispatch, AvxSpecializationIsSelected) {
  // The dispatch seam must actually route AvxRep to the SIMD kernels when
  // this build and host have them; everyone else reports no SIMD kernels.
  EXPECT_EQ(BatchOps<AvxRep<3>>::has_simd_kernels,
            static_cast<bool>(QFOREST_HAVE_AVX2));
  EXPECT_FALSE(BatchOps<StandardRep<3>>::has_simd_kernels);
  EXPECT_FALSE(BatchOps<MortonRep<3>>::has_simd_kernels);
  EXPECT_FALSE(BatchOps<WideMortonRep<3>>::has_simd_kernels);
  if (QFOREST_HAVE_AVX2 && simd::avx2_usable()) {
    EXPECT_TRUE(BatchOps<AvxRep<3>>::simd_active());
    const BatchFlagGuard guard(false);
    EXPECT_FALSE(BatchOps<AvxRep<3>>::simd_active());
  }
}

}  // namespace
}  // namespace qforest

/// \file test_payload.cpp
/// \brief The per-leaf payload side channel (the standard representation's
/// 8 user bytes, restored for compact encodings as a parallel array) must
/// stay synchronized across refine, coarsen and balance.

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

template <class R>
class PayloadT : public ::testing::Test {};

using PayloadReps = ::testing::Types<StandardRep<2>, MortonRep<2>,
                                     MortonRep<3>, AvxRep<3>>;
TYPED_TEST_SUITE(PayloadT, PayloadReps);

TYPED_TEST(PayloadT, EnableInitializesAllLeaves) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.enable_payload(42);
  EXPECT_TRUE(f.payload_enabled());
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    ASSERT_EQ(f.tree_payloads(t).size(), f.tree_quadrants(t).size());
    for (const std::uint64_t v : f.tree_payloads(t)) {
      EXPECT_EQ(v, 42u);
    }
  }
}

TYPED_TEST(PayloadT, ChildrenInheritOnRefine) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 1);
  f.enable_payload(0);
  // Tag each leaf with its own level_index.
  for (std::size_t i = 0; i < f.tree_quadrants(0).size(); ++i) {
    f.payload(0, i) = R::level_index(f.tree_quadrants(0)[i]);
  }
  f.refine(false, [](tree_id_t, const typename R::quad_t&) { return true; });
  const auto& leaves = f.tree_quadrants(0);
  const auto& payloads = f.tree_payloads(0);
  ASSERT_EQ(payloads.size(), leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    // Each child carries the parent's tag = the parent's level index.
    const auto p = R::parent(leaves[i]);
    EXPECT_EQ(payloads[i], R::level_index(p));
  }
}

TYPED_TEST(PayloadT, ParentTakesFirstChildOnCoarsen) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.enable_payload(0);
  for (std::size_t i = 0; i < f.tree_quadrants(0).size(); ++i) {
    f.payload(0, i) = 1000 + i;
  }
  f.coarsen(false, [](tree_id_t, const typename R::quad_t*) { return true; });
  const auto& payloads = f.tree_payloads(0);
  ASSERT_EQ(payloads.size(), f.tree_quadrants(0).size());
  constexpr std::size_t nc = DimConstants<R::dim>::num_children;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i], 1000 + i * nc);  // first child of each family
  }
}

TYPED_TEST(PayloadT, BalanceKeepsPayloadArraysAligned) {
  using R = TypeParam;
  auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
  f.enable_payload(7);
  f.refine(true, [](tree_id_t, const typename R::quad_t& q) {
    const int l = R::level(q);
    const morton_t chain =
        l == 0 ? 0 : (morton_t{1} << (R::dim * (l - 1))) - 1;
    return l < 5 && R::level_index(q) == chain;
  });
  f.balance(BalanceKind::kFull);
  ASSERT_TRUE(f.is_valid());
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    ASSERT_EQ(f.tree_payloads(t).size(), f.tree_quadrants(t).size());
    for (const std::uint64_t v : f.tree_payloads(t)) {
      EXPECT_EQ(v, 7u);  // everything descends from the tagged root
    }
  }
}

TYPED_TEST(PayloadT, MixedAdaptationRoundsKeepAlignment) {
  using R = TypeParam;
  Xoshiro256 rng(555);
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.enable_payload(1);
  for (int round = 0; round < 4; ++round) {
    f.refine(false, [&](tree_id_t, const typename R::quad_t& q) {
      return R::level(q) < 6 && rng.next_bool(0.3);
    });
    f.coarsen(false, [&](tree_id_t, const typename R::quad_t*) {
      return rng.next_bool(0.3);
    });
    f.balance(BalanceKind::kFace);
    for (tree_id_t t = 0; t < f.num_trees(); ++t) {
      ASSERT_EQ(f.tree_payloads(t).size(), f.tree_quadrants(t).size())
          << "round " << round;
    }
    ASSERT_TRUE(f.is_valid());
  }
}

TEST(PayloadDisabled, ForestWorksWithoutChannel) {
  auto f = Forest<MortonRep<3>>::new_uniform(Connectivity::unit(3), 2);
  EXPECT_FALSE(f.payload_enabled());
  f.refine(false,
           [](tree_id_t, const MortonRep<3>::quad_t&) { return true; });
  EXPECT_TRUE(f.is_valid());
}

}  // namespace
}  // namespace qforest

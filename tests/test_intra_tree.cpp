/// \file test_intra_tree.cpp
/// \brief Intra-tree (chunk-level) scheduling of refine / coarsen /
/// balance: equivalence of the chunked paths against the serial path at
/// adversarial chunk grains (1, 2, 7 — every chunk boundary lands inside
/// families and sibling runs), deterministic exception propagation out of
/// parallel adaptation callbacks, and structural consistency of the
/// forest after a rethrow.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

/// Restore the process-global scheduling switches after every test (they
/// are shared by the whole binary).
class IntraTreeEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_tree_ = tree_parallelism();
    saved_intra_ = intra_tree_parallelism();
    saved_grain_ = chunk_grain();
    saved_batch_ = batch::enabled();
  }
  void TearDown() override {
    set_tree_parallelism(saved_tree_);
    set_intra_tree_parallelism(saved_intra_);
    set_chunk_grain(saved_grain_);
    batch::set_enabled(saved_batch_);
  }

 private:
  bool saved_tree_ = true;
  bool saved_intra_ = true;
  std::size_t saved_grain_ = 0;
  bool saved_batch_ = true;
};

template <class R>
class IntraTreeT : public IntraTreeEnv {};
TYPED_TEST_SUITE(IntraTreeT, test::AllReps);

/// Deterministic pseudo-random refinement criterion: a pure function of
/// the canonical cell, so every scheduling of the callbacks marks the
/// same set.
template <class R>
bool hash_refine(const typename R::quad_t& q, int max_depth) {
  const CanonicalQuadrant c = to_canonical<R>(q);
  if (c.level >= max_depth) {
    return false;
  }
  const int s = kCanonicalLevel - 8;
  std::uint64_t h = static_cast<std::uint64_t>(c.x >> s) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(c.y >> s) * 0xC2B2AE3D27D4EB4Full;
  h ^= static_cast<std::uint64_t>(c.z >> s) * 0x165667B19E3779F9ull;
  h ^= static_cast<std::uint64_t>(c.level) << 32;
  return ((h >> 17) & 3) != 0;
}

template <class R>
bool hash_coarsen(const typename R::quad_t* fam, int keep_above) {
  const CanonicalQuadrant c = to_canonical<R>(fam[0]);
  if (c.level <= keep_above) {
    return false;
  }
  const int s = kCanonicalLevel - 8;
  const std::uint64_t h =
      (static_cast<std::uint64_t>(c.x >> s) * 31 +
       static_cast<std::uint64_t>(c.y >> s) * 17 +
       static_cast<std::uint64_t>(c.z >> s)) ^
      static_cast<std::uint64_t>(c.level);
  return (h & 1) != 0;
}

/// The adaptation pipeline under test: recursive refine (exercises the
/// incremental splice waves), full balance, recursive coarsen — with the
/// payload channel on, so payload propagation is compared too.
template <class R>
Forest<R> run_pipeline() {
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.enable_payload(7);
  f.refine(true, [](tree_id_t, const typename R::quad_t& q) {
    return hash_refine<R>(q, 4);
  });
  f.balance(BalanceKind::kFull);
  f.coarsen(true, [](tree_id_t, const typename R::quad_t* fam) {
    return hash_coarsen<R>(fam, 2);
  });
  return f;
}

template <class R>
::testing::AssertionResult same_forest(const Forest<R>& a,
                                       const Forest<R>& b) {
  if (a.num_quadrants() != b.num_quadrants()) {
    return ::testing::AssertionFailure()
           << "leaf counts differ: " << a.num_quadrants() << " vs "
           << b.num_quadrants();
  }
  for (tree_id_t t = 0; t < a.num_trees(); ++t) {
    const auto& ta = a.tree_quadrants(t);
    const auto& tb = b.tree_quadrants(t);
    if (ta.size() != tb.size()) {
      return ::testing::AssertionFailure()
             << "tree " << t << " sizes differ: " << ta.size() << " vs "
             << tb.size();
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (!R::equal(ta[i], tb[i])) {
        return ::testing::AssertionFailure()
               << "tree " << t << " leaf " << i << " differs";
      }
      if (a.payload_enabled() &&
          a.tree_payloads(t)[i] != b.tree_payloads(t)[i]) {
        return ::testing::AssertionFailure()
               << "tree " << t << " payload " << i << " differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TYPED_TEST(IntraTreeT, TinyChunkGrainsMatchSerialPath) {
  using R = TypeParam;
  set_tree_parallelism(false);  // disables both levels: reference path
  const Forest<R> reference = run_pipeline<R>();
  ASSERT_TRUE(reference.is_valid());
  set_tree_parallelism(true);
  set_intra_tree_parallelism(true);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}}) {
    set_chunk_grain(grain);
    const Forest<R> chunked = run_pipeline<R>();
    EXPECT_TRUE(chunked.is_valid()) << "grain " << grain;
    EXPECT_TRUE(same_forest(reference, chunked)) << "grain " << grain;
  }
}

TYPED_TEST(IntraTreeT, PerTreeOnlySchedulerMatchesChunked) {
  using R = TypeParam;
  set_tree_parallelism(true);
  set_intra_tree_parallelism(false);  // per-tree only (pre-chunking)
  const Forest<R> per_tree = run_pipeline<R>();
  set_intra_tree_parallelism(true);
  set_chunk_grain(3);
  const Forest<R> chunked = run_pipeline<R>();
  EXPECT_TRUE(same_forest(per_tree, chunked));
}

using R3 = MortonRep<3>;

TEST_F(IntraTreeEnv, MultiTreeTinyChunksMatchSerial) {
  auto build = [] {
    auto f = Forest<R3>::new_uniform(Connectivity::brick3d(2, 2, 1), 2);
    f.refine(true, [](tree_id_t, const R3::quad_t& q) {
      return hash_refine<R3>(q, 4);
    });
    f.balance(BalanceKind::kFull);
    return f;
  };
  set_tree_parallelism(false);
  const auto reference = build();
  set_tree_parallelism(true);
  set_intra_tree_parallelism(true);
  set_chunk_grain(2);
  const auto chunked = build();
  EXPECT_TRUE(same_forest(reference, chunked));
}

TEST_F(IntraTreeEnv, BalanceGridReuseAcrossFixpointIterationsMatchesScalar) {
  // A corner chain refined far past its neighbors forces several balance
  // fixpoint iterations, so grids of unchanged trees get reused while
  // dirty trees rebuild theirs.
  auto build = [] {
    auto f = Forest<R3>::new_uniform(Connectivity::brick3d(2, 1, 1), 1);
    f.refine(true, [](tree_id_t t, const R3::quad_t& q) {
      return t == 0 && R3::level(q) < 6 && R3::level_index(q) == 0;
    });
    return f;
  };
  auto scalar = build();
  batch::set_enabled(false);
  scalar.balance(BalanceKind::kFull);
  auto batched = build();
  batch::set_enabled(true);
  set_chunk_grain(5);
  batched.balance(BalanceKind::kFull);
  EXPECT_TRUE(scalar.is_balanced(BalanceKind::kFull));
  EXPECT_TRUE(same_forest(scalar, batched));
  // Reuse must also keep the no-op property: a second balance changes
  // nothing.
  const gidx_t leaves = batched.num_quadrants();
  batched.balance(BalanceKind::kFull);
  EXPECT_EQ(batched.num_quadrants(), leaves);
}

/// Structural consistency after a callback throw: the exception must
/// surface, and the forest must stay valid with offsets matching the
/// (possibly partially adapted) trees.
template <class R>
void expect_consistent(const Forest<R>& f) {
  EXPECT_TRUE(f.is_valid());
  gidx_t total = 0;
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    EXPECT_EQ(f.global_index(t, 0), total);
    total += static_cast<gidx_t>(f.tree_quadrants(t).size());
  }
  EXPECT_EQ(f.num_quadrants(), total);
}

TEST_F(IntraTreeEnv, RefineCallbackThrowLeavesForestConsistent) {
  set_chunk_grain(1);
  auto f = Forest<R3>::new_uniform(Connectivity::unit(3), 2);
  f.enable_payload(1);
  EXPECT_THROW(
      f.refine(false, [](tree_id_t, const R3::quad_t&) -> bool {
        throw std::runtime_error("refine boom");
      }),
      std::runtime_error);
  expect_consistent(f);
  EXPECT_EQ(f.num_quadrants(), 64);  // mark wave threw: nothing applied
}

TEST_F(IntraTreeEnv, RecursiveWaveThrowLeavesForestConsistent) {
  set_chunk_grain(2);
  auto f = Forest<R3>::new_uniform(Connectivity::unit(3), 1);
  // First wave succeeds everywhere, the incremental second wave throws.
  EXPECT_THROW(
      f.refine(true, [](tree_id_t, const R3::quad_t& q) -> bool {
        if (R3::level(q) == 1) {
          return true;
        }
        throw std::runtime_error("wave boom");
      }),
      std::runtime_error);
  expect_consistent(f);
  EXPECT_EQ(f.num_quadrants(), 64);  // wave 1 applied, wave 2 threw
}

TEST_F(IntraTreeEnv, CoarsenCallbackThrowLeavesForestConsistent) {
  set_chunk_grain(1);
  auto f = Forest<R3>::new_uniform(Connectivity::unit(3), 2);
  EXPECT_THROW(
      f.coarsen(false, [](tree_id_t, const R3::quad_t*) -> bool {
        throw std::runtime_error("coarsen boom");
      }),
      std::runtime_error);
  expect_consistent(f);
  EXPECT_EQ(f.num_quadrants(), 64);  // decision pass threw: no rebuild
}

TEST_F(IntraTreeEnv, MultiTreeThrowKeepsOtherTreesStructurallySound) {
  set_chunk_grain(4);
  auto f = Forest<R3>::new_uniform(Connectivity::brick3d(2, 1, 1), 2);
  EXPECT_THROW(
      f.refine(false, [](tree_id_t t, const R3::quad_t&) -> bool {
        if (t == 1) {
          throw std::runtime_error("tree 1 boom");
        }
        return true;
      }),
      std::runtime_error);
  // Tree 0 may have been refined before tree 1 threw; either way the
  // offsets must describe whatever the trees now hold.
  expect_consistent(f);
}

TEST_F(IntraTreeEnv, LowestIndexChunkExceptionWinsDeterministically) {
  // The suppressed-exception report is expected here; keep the test
  // output clean.
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::kSilent);
  set_chunk_grain(1);  // one leaf per chunk: chunk index == leaf index
  for (int round = 0; round < 20; ++round) {
    auto f = Forest<R3>::new_uniform(Connectivity::unit(3), 2);
    std::string what;
    try {
      f.refine(false, [](tree_id_t, const R3::quad_t& q) -> bool {
        throw std::runtime_error(
            std::to_string(R3::level_index(q)));
      });
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    // Every chunk throws; the surfaced exception must be chunk 0's (the
    // curve-first leaf), independent of worker completion order.
    EXPECT_EQ(what, "0") << "round " << round;
  }
  set_log_level(saved_level);
}

TEST_F(IntraTreeEnv, CallbacksRunConcurrentlyWithinOneTree) {
  // Not a strict requirement of the contract (a 1-core host may never
  // overlap), but the callback count must be exact regardless of the
  // scheduling: every leaf is consulted exactly once per wave.
  set_chunk_grain(8);
  auto f = Forest<R3>::new_uniform(Connectivity::unit(3), 2);
  std::atomic<int> calls{0};
  f.refine(false, [&](tree_id_t, const R3::quad_t&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return false;
  });
  EXPECT_EQ(calls.load(), 64);
}

TEST_F(IntraTreeEnv, ReentrantAdaptationFromChunkCallbackRunsInline) {
  // A callback that adapts *another* forest must not deadlock the pool
  // and must produce the same result as doing it outside.
  set_chunk_grain(4);
  auto outer = Forest<R3>::new_uniform(Connectivity::unit(3), 2);
  std::atomic<gidx_t> inner_leaves{0};
  std::atomic<bool> once{false};
  outer.refine(false, [&](tree_id_t, const R3::quad_t&) {
    if (!once.exchange(true)) {
      auto inner = Forest<R3>::new_uniform(Connectivity::unit(3), 1);
      inner.refine(false,
                   [](tree_id_t, const R3::quad_t&) { return true; });
      inner_leaves.store(inner.num_quadrants());
    }
    return false;
  });
  EXPECT_EQ(inner_leaves.load(), 64);
}

}  // namespace
}  // namespace qforest

// Behavioral tests for the annotated lock drop-ins in
// src/util/thread_annotations.hpp: qf::Mutex / LockGuard / UniqueLock /
// CondVar must be byte-for-byte std::mutex semantics (the annotations are
// compile-time only, and no-ops off Clang). The interesting cases are the
// ones the obs/par migration leans on: the CondVar adopt/release wait
// (the lock must still be owned by the qf::UniqueLock afterwards), the
// UniqueLock manual unlock/relock cycle, and the Mailbox-style empty
// LockGuard wake handshake.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.hpp"

namespace {

TEST(ThreadAnnotations, MutexProvidesExclusion) {
  qf::Mutex mutex;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const qf::LockGuard lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ThreadAnnotations, MutexTryLockFailsWhileHeld) {
  qf::Mutex mutex;
  mutex.lock();
  std::atomic<bool> acquired{true};
  // try_lock from another thread: locking a std::mutex the same thread
  // already holds is UB, so probe cross-thread.
  std::thread probe([&] {
    // mo: relaxed — joined before the read below; join orders it.
    acquired.store(mutex.try_lock(), std::memory_order_relaxed);
  });
  probe.join();
  EXPECT_FALSE(acquired.load(std::memory_order_relaxed));  // mo: see store
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(ThreadAnnotations, UniqueLockUnlockRelockRoundTrip) {
  qf::Mutex mutex;
  qf::UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_TRUE(mutex.try_lock());  // actually released
  mutex.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  // Destructor releases the reacquired lock; a second guard proves it.
  // (Scoped so the UniqueLock dies before the check.)
}

TEST(ThreadAnnotations, UniqueLockDestructorReleasesOnlyIfHeld) {
  qf::Mutex mutex;
  {
    qf::UniqueLock lock(mutex);
    lock.unlock();
  }  // dtor must not double-unlock
  {
    const qf::LockGuard lock(mutex);  // still lockable
  }
  SUCCEED();
}

TEST(ThreadAnnotations, CondVarWaitReleasesAndReacquires) {
  qf::Mutex mutex;
  qf::CondVar cv;
  bool ready = false;    // guarded by mutex
  bool consumed = false;  // guarded by mutex
  std::thread waiter([&] {
    qf::UniqueLock lock(mutex);
    while (!ready) {
      cv.wait(lock);
    }
    // wait() reacquired: this guarded write must be race-free (TSAN leg
    // would flag it otherwise) and the lock still owned.
    EXPECT_TRUE(lock.owns_lock());
    consumed = true;
  });
  {
    // If wait() failed to release the mutex this lock() would deadlock.
    const qf::LockGuard lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  const qf::LockGuard lock(mutex);
  EXPECT_TRUE(consumed);
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter) {
  qf::Mutex mutex;
  qf::CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      qf::UniqueLock lock(mutex);
      while (!go) {
        cv.wait(lock);
      }
      ++awake;
    });
  }
  {
    const qf::LockGuard lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& th : threads) {
    th.join();
  }
  const qf::LockGuard lock(mutex);
  EXPECT_EQ(awake, kWaiters);
}

TEST(ThreadAnnotations, EmptyGuardWakeHandshake) {
  // The Mailbox::push protocol: publish the payload, take-and-drop the
  // wake mutex, notify. The empty critical section orders the publish
  // against a sleeper's predicate check so the notify cannot land in the
  // window between "predicate saw false" and "wait started".
  qf::Mutex mutex;
  qf::CondVar cv;
  std::atomic<bool> payload{false};
  std::thread sleeper([&] {
    qf::UniqueLock lock(mutex);
    // mo: acquire — pairs with the release publish in the main thread.
    while (!payload.load(std::memory_order_acquire)) {
      cv.wait(lock);
    }
  });
  // mo: release — publishes before the wake handshake below.
  payload.store(true, std::memory_order_release);
  {
    const qf::LockGuard lock(mutex);
  }
  cv.notify_one();
  sleeper.join();
  SUCCEED();
}

}  // namespace

/// \file test_algorithms.cpp
/// \brief Representation-generic composed algorithms: family predicates,
/// graded face neighbors, curve ranges, complete_region, point location.

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

template <class R>
class AlgoT : public ::testing::Test {};

using AlgoReps = ::testing::Types<StandardRep<3>, MortonRep<3>, AvxRep<3>,
                                  WideMortonRep<3>, StandardRep<2>,
                                  MortonRep<2>>;
TYPED_TEST_SUITE(AlgoT, AlgoReps);

TYPED_TEST(AlgoT, SiblingAndParentPredicates) {
  using R = TypeParam;
  Xoshiro256 rng(901);
  for (int i = 0; i < 3000; ++i) {
    const int cap = test::max_index_level<R>();
    const int lvl = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(cap)));
    const auto q = test::random_quadrant_at<R>(rng, lvl);
    const auto p = R::parent(q);
    EXPECT_TRUE((is_parent_of<R>(p, q)));
    EXPECT_FALSE((is_parent_of<R>(q, p)));
    EXPECT_FALSE((is_sibling<R>(q, q)));
    const int id = R::child_id(q);
    for (int s = 0; s < DimConstants<R::dim>::num_children; ++s) {
      EXPECT_EQ((is_sibling<R>(q, R::sibling(q, s))), s != id);
    }
  }
}

TYPED_TEST(AlgoT, ChildrenFormAFamily) {
  using R = TypeParam;
  Xoshiro256 rng(902);
  for (int i = 0; i < 3000; ++i) {
    const auto q =
        test::random_quadrant<R>(rng, test::max_index_level<R>() - 1);
    const auto kids = children<R>(q);
    EXPECT_TRUE(is_family<R>(kids.data()));
    // A family with one member replaced is no family.
    auto broken = kids;
    broken[1] = broken[0];
    EXPECT_FALSE(is_family<R>(broken.data()));
  }
}

TYPED_TEST(AlgoT, CoarseFaceNeighborContainsEqualNeighbor) {
  using R = TypeParam;
  Xoshiro256 rng(903);
  for (int i = 0; i < 3000; ++i) {
    const int cap = test::max_index_level<R>();
    const int lvl = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(cap)));
    const auto q = test::random_quadrant_at<R>(rng, lvl);
    int tb[3];
    R::tree_boundaries(q, tb);
    for (int f = 0; f < DimConstants<R::dim>::num_faces; ++f) {
      if (tb[f >> 1] == f) {
        continue;
      }
      const auto n = R::face_neighbor(q, f);
      const auto cn = coarse_face_neighbor<R>(q, f);
      EXPECT_EQ(R::level(cn), lvl - 1);
      EXPECT_TRUE(R::equal(cn, n) || R::is_ancestor(cn, n));
    }
  }
}

TYPED_TEST(AlgoT, HalfFaceNeighborsTouchTheFace) {
  using R = TypeParam;
  Xoshiro256 rng(904);
  for (int i = 0; i < 2000; ++i) {
    const int cap = test::max_index_level<R>();
    const int lvl = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(cap) - 1));
    const auto q = test::random_quadrant_at<R>(rng, lvl);
    int tb[3];
    R::tree_boundaries(q, tb);
    for (int f = 0; f < DimConstants<R::dim>::num_faces; ++f) {
      if (tb[f >> 1] == f) {
        continue;
      }
      const auto halves = half_face_neighbors<R>(q, f);
      ASSERT_EQ(halves.size(),
                static_cast<std::size_t>(
                    DimConstants<R::dim>::num_children / 2));
      const auto n = R::face_neighbor(q, f);
      for (const auto& h : halves) {
        EXPECT_EQ(R::level(h), lvl + 1);
        EXPECT_TRUE(R::is_ancestor(n, h));
        // Each half neighbor's face back toward q is adjacent: its
        // face-neighbor across f^1 must overlap q.
        EXPECT_TRUE(R::overlaps(R::face_neighbor(h, f ^ 1), q));
      }
      // They are sorted and pairwise distinct.
      for (std::size_t k = 0; k + 1 < halves.size(); ++k) {
        EXPECT_TRUE(R::less(halves[k], halves[k + 1]));
      }
    }
  }
}

TYPED_TEST(AlgoT, CurveRangeMatchesDistance) {
  using R = TypeParam;
  Xoshiro256 rng(905);
  for (int i = 0; i < 300; ++i) {
    const int lvl =
        2 + static_cast<int>(rng.next_below(3));  // keep ranges small
    const morton_t span = morton_t{1} << (R::dim * lvl);
    morton_t ia = rng.next_below(span);
    morton_t ib = rng.next_below(span);
    if (ia > ib) {
      std::swap(ia, ib);
    }
    if (ib - ia > 300) {
      ib = ia + 300;
    }
    const auto first = R::morton_quadrant(ia, lvl);
    const auto last = R::morton_quadrant(ib, lvl);
    EXPECT_EQ((curve_distance<R>(first, last)), ib - ia);
    const auto range = curve_range<R>(first, last);
    ASSERT_EQ(range.size(), static_cast<std::size_t>(ib - ia) + 1);
    for (std::size_t k = 0; k < range.size(); ++k) {
      EXPECT_EQ(R::level_index(range[k]), ia + k);
    }
  }
}

TYPED_TEST(AlgoT, CompleteRegionFillsTheGap) {
  using R = TypeParam;
  Xoshiro256 rng(906);
  for (int i = 0; i < 300; ++i) {
    const int cap = std::min(6, test::max_index_level<R>());
    auto a = test::random_quadrant<R>(rng, cap);
    auto b = test::random_quadrant<R>(rng, cap);
    if (R::equal(a, b) || R::overlaps(a, b)) {
      continue;
    }
    if (R::less(b, a)) {
      std::swap(a, b);
    }
    const auto region = complete_region<R>(a, b);
    // Sorted, strictly between a and b, pairwise non-overlapping.
    for (std::size_t k = 0; k < region.size(); ++k) {
      EXPECT_TRUE(R::less(a, region[k]));
      EXPECT_TRUE(R::less(region[k], b));
      EXPECT_FALSE(R::overlaps(region[k], a));
      EXPECT_FALSE(R::overlaps(region[k], b));
      if (k > 0) {
        EXPECT_TRUE(R::less(region[k - 1], region[k]));
        EXPECT_FALSE(R::overlaps(region[k - 1], region[k]));
      }
    }
    // Coverage: walking max-level first-descendants, the gap between a's
    // last descendant and b's first descendant is covered. Spot check by
    // sampling successor positions of a at a deep level.
    if (!region.empty()) {
      // Every emitted quadrant is maximal: its parent would overlap a or
      // b or leave the gap.
      for (const auto& r : region) {
        if (R::level(r) == 0) {
          continue;
        }
        const auto p = R::parent(r);
        const bool parent_ok = R::less(a, p) && R::less(p, b) &&
                               !R::overlaps(p, a) && !R::overlaps(p, b);
        EXPECT_FALSE(parent_ok) << "region quadrant not maximal";
      }
    }
  }
}

TYPED_TEST(AlgoT, ContainingQuadrantLocatesPoints) {
  using R = TypeParam;
  Xoshiro256 rng(907);
  for (int i = 0; i < 3000; ++i) {
    const int lvl = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(
                           std::min(R::max_level, 40)) + 1));
    const double px = rng.next_double();
    const double py = rng.next_double();
    const double pz = R::dim == 3 ? rng.next_double() : 0.0;
    const auto q = containing_quadrant<R>(px, py, pz, lvl);
    EXPECT_EQ(R::level(q), lvl);
    EXPECT_TRUE(R::is_valid(q));
    // The canonical domain contains the point.
    const auto c = to_canonical<R>(q);
    const double scale = std::ldexp(1.0, kCanonicalLevel);
    const double h = std::ldexp(1.0, kCanonicalLevel - lvl) / scale;
    const double qx = static_cast<double>(c.x) / scale;
    const double qy = static_cast<double>(c.y) / scale;
    EXPECT_GE(px, qx - 1e-15);
    EXPECT_LT(px, qx + h + 1e-12);
    EXPECT_GE(py, qy - 1e-15);
    EXPECT_LT(py, qy + h + 1e-12);
  }
}

TYPED_TEST(AlgoT, ContainingQuadrantNested) {
  using R = TypeParam;
  // Deeper containing quadrants of the same point are descendants of the
  // shallower ones.
  Xoshiro256 rng(908);
  for (int i = 0; i < 500; ++i) {
    const double px = rng.next_double();
    const double py = rng.next_double();
    const double pz = R::dim == 3 ? rng.next_double() : 0.0;
    const int deep = std::min(R::max_level, 20);
    auto prev = containing_quadrant<R>(px, py, pz, 0);
    for (int lvl = 1; lvl <= deep; ++lvl) {
      const auto cur = containing_quadrant<R>(px, py, pz, lvl);
      EXPECT_TRUE(R::is_ancestor(prev, cur));
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace qforest

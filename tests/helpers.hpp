#pragma once
/// \file helpers.hpp
/// \brief Shared test utilities: random quadrant generation, the list of
/// representation types under test, and canonical-form matchers.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/canonical.hpp"
#include "core/debug_check.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "core/rep_traits.hpp"
#include "util/random.hpp"

namespace qforest::test {

#if QFOREST_DEBUG_CHECKS_ENABLED
/// The whole suite runs with the debug-check detectors compiled in (see
/// tests/CMakeLists.txt): this global environment fails the binary when
/// any detector recorded a violation that no test consumed — the "clean
/// suite stays silent" half of the contract. Tests that deliberately seed
/// a violation (test_debug_checks.cpp) must call
/// debug::reset_violations() before finishing.
class DebugCheckSilence : public ::testing::Environment {
 public:
  void TearDown() override {
    EXPECT_EQ(qforest::debug::total_violations(), 0u)
        << "debug-check detectors recorded unconsumed violations: "
        << qforest::debug::violation_summary();
  }
};

inline ::testing::Environment* const kDebugCheckSilenceEnv =
    ::testing::AddGlobalTestEnvironment(new DebugCheckSilence);
#endif

/// Deepest level at which the 64-bit level-relative Morton index of the
/// representation stays within 63 bits (morton_quadrant precondition).
template <class R>
constexpr int max_index_level() {
  return std::min(R::max_level, 63 / R::dim - (63 % R::dim == 0 ? 1 : 0));
}

/// Uniformly random quadrant: random level in [0, cap], random position.
template <class R>
typename R::quad_t random_quadrant(Xoshiro256& rng, int max_level_cap = -1) {
  int cap = max_index_level<R>();
  if (max_level_cap >= 0) {
    cap = std::min(cap, max_level_cap);
  }
  const int lvl = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(cap) + 1));
  const morton_t il =
      rng.next_below(std::uint64_t{1} << (R::dim * lvl));
  return R::morton_quadrant(il, lvl);
}

/// Random quadrant at exactly \p lvl.
template <class R>
typename R::quad_t random_quadrant_at(Xoshiro256& rng, int lvl) {
  const morton_t il =
      rng.next_below(std::uint64_t{1} << (R::dim * lvl));
  return R::morton_quadrant(il, lvl);
}

/// gtest assertion: two quadrants of possibly different representations
/// denote the same mesh primitive.
template <class RA, class RB>
::testing::AssertionResult canonically_equal(const typename RA::quad_t& a,
                                             const typename RB::quad_t& b) {
  const CanonicalQuadrant ca = to_canonical<RA>(a);
  const CanonicalQuadrant cb = to_canonical<RB>(b);
  if (ca == cb) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << RA::name << "(" << ca.x << "," << ca.y << "," << ca.z << ",l"
         << ca.level << ") vs " << RB::name << "(" << cb.x << "," << cb.y
         << "," << cb.z << ",l" << cb.level << ")";
}

/// All shipped representations, used by TYPED_TEST suites.
using Reps2D = ::testing::Types<StandardRep<2>, MortonRep<2>, AvxRep<2>,
                                WideMortonRep<2>>;
using Reps3D = ::testing::Types<StandardRep<3>, MortonRep<3>, AvxRep<3>,
                                WideMortonRep<3>>;
using AllReps =
    ::testing::Types<StandardRep<2>, MortonRep<2>, AvxRep<2>,
                     WideMortonRep<2>, StandardRep<3>, MortonRep<3>,
                     AvxRep<3>, WideMortonRep<3>>;

}  // namespace qforest::test

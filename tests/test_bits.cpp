/// \file test_bits.cpp
/// \brief Unit + property tests for the bit-interleaving kernels, the
/// foundation of every Morton operation.

#include <gtest/gtest.h>

#include "core/bits.hpp"
#include "util/random.hpp"

namespace qforest::bits {
namespace {

TEST(Bits, Spread2KnownValues) {
  EXPECT_EQ(spread2_magic(0u), 0u);
  EXPECT_EQ(spread2_magic(1u), 1u);
  EXPECT_EQ(spread2_magic(0b11u), 0b101u);
  EXPECT_EQ(spread2_magic(0b101u), 0b10001u);
  EXPECT_EQ(spread2_magic(0xFFFFFFFFull), kMask2X);
}

TEST(Bits, Spread3KnownValues) {
  EXPECT_EQ(spread3_magic(0u), 0u);
  EXPECT_EQ(spread3_magic(1u), 1u);
  EXPECT_EQ(spread3_magic(0b11u), 0b1001u);
  EXPECT_EQ(spread3_magic(0b111u), 0b1001001u);
  EXPECT_EQ(spread3_magic(0x1FFFFFull), 0x1249249249249249ull);
}

TEST(Bits, Spread2RoundTripExhaustive16) {
  for (std::uint64_t v = 0; v < (1u << 16); ++v) {
    EXPECT_EQ(compact2_magic(spread2_magic(v)), v);
  }
}

TEST(Bits, Spread3RoundTripExhaustive16) {
  for (std::uint64_t v = 0; v < (1u << 16); ++v) {
    EXPECT_EQ(compact3_magic(spread3_magic(v)), v);
  }
}

TEST(Bits, DispatchedMatchesMagicRandom) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v32 = rng.next_u64() & 0xFFFFFFFFull;
    const std::uint64_t v21 = rng.next_u64() & 0x1FFFFFull;
    EXPECT_EQ(spread2(v32), spread2_magic(v32));
    EXPECT_EQ(spread3(v21), spread3_magic(v21));
    EXPECT_EQ(compact2(spread2(v32)), v32);
    EXPECT_EQ(compact3(spread3(v21)), v21);
  }
}

TEST(Bits, LutMatchesMagicRandom) {
  Xoshiro256 rng(43);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v32 = rng.next_u64() & 0xFFFFFFFFull;
    const std::uint64_t v21 = rng.next_u64() & 0x1FFFFFull;
    EXPECT_EQ(spread2_lut(v32), spread2_magic(v32));
    EXPECT_EQ(spread3_lut(v21), spread3_magic(v21));
  }
}

TEST(Bits, Interleave2ManualCheck) {
  // x = 0b10, y = 0b11 -> z-order bits y1 x1 y0 x0 = 1 1 1 0.
  EXPECT_EQ(interleave2(0b10u, 0b11u), 0b1110u);
  std::uint32_t x = 0, y = 0;
  deinterleave2(0b1110u, x, y);
  EXPECT_EQ(x, 0b10u);
  EXPECT_EQ(y, 0b11u);
}

TEST(Bits, Interleave3ManualCheck) {
  // x=1,y=0,z=1 -> bits z0 y0 x0 = 101.
  EXPECT_EQ(interleave3(1u, 0u, 1u), 0b101u);
  // x=0b11, y=0b01, z=0b10 -> (z1 y1 x1)(z0 y0 x0) = (1 0 1)(0 1 1).
  EXPECT_EQ(interleave3(0b11u, 0b01u, 0b10u), 0b101011u);
  std::uint32_t x = 0, y = 0, z = 0;
  deinterleave3(0b101011u, x, y, z);
  EXPECT_EQ(x, 0b11u);
  EXPECT_EQ(y, 0b01u);
  EXPECT_EQ(z, 0b10u);
}

TEST(Bits, Interleave3OrderPreserving) {
  // Morton order refines lexicographic (z,y,x) block order: interleaving
  // is monotone in each coordinate when the others are fixed.
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    const auto z = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    EXPECT_LT(interleave3(x, y, z), interleave3(x + 1, y, z));
    EXPECT_LT(interleave3(x, y, z), interleave3(x, y + 1, z));
    EXPECT_LT(interleave3(x, y, z), interleave3(x, y, z + 1));
  }
}

TEST(Bits, HighestBit) {
  EXPECT_EQ(highest_bit(0), -1);
  EXPECT_EQ(highest_bit(1), 0);
  EXPECT_EQ(highest_bit(2), 1);
  EXPECT_EQ(highest_bit(3), 1);
  EXPECT_EQ(highest_bit(0x8000000000000000ull), 63);
  for (int b = 0; b < 64; ++b) {
    EXPECT_EQ(highest_bit(1ull << b), b);
  }
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0ull);
  EXPECT_EQ(low_mask(1), 1ull);
  EXPECT_EQ(low_mask(56), 0x00FFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bits, MaskConstantsDisjointAndComplete) {
  EXPECT_EQ(kMask3X | kMask3Y | kMask3Z, ~0ull);
  EXPECT_EQ(kMask3X & kMask3Y, 0ull);
  EXPECT_EQ(kMask3X & kMask3Z, 0ull);
  EXPECT_EQ(kMask3Y & kMask3Z, 0ull);
  EXPECT_EQ(kMask2X ^ kMask2Y, ~0ull);
  EXPECT_EQ(kMask3Y, kMask3X << 1);
  EXPECT_EQ(kMask3Z, kMask3X << 2);
}

}  // namespace
}  // namespace qforest::bits

/// \file test_sfc.cpp
/// \brief Space-filling-curve abstraction tests: Morton identity
/// properties and Hilbert bijectivity / adjacency / locality.

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "core/sfc/curve.hpp"
#include "core/sfc/hilbert.hpp"
#include "util/random.hpp"

namespace qforest::sfc {
namespace {

TEST(MortonCurve, RoundTrip) {
  Xoshiro256 rng(81);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    const auto z = static_cast<std::uint32_t>(rng.next_below(1u << 20));
    std::uint32_t rx, ry, rz;
    MortonCurve::coords3(MortonCurve::index3(x, y, z, 20), 20, rx, ry, rz);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
    EXPECT_EQ(rz, z);
    std::uint32_t qx, qy;
    MortonCurve::coords2(MortonCurve::index2(x, y, 20), 20, qx, qy);
    EXPECT_EQ(qx, x);
    EXPECT_EQ(qy, y);
  }
}

TEST(HilbertCurve, BijectiveExhaustive2D) {
  for (int level = 1; level <= 6; ++level) {
    const std::uint64_t n = 1ull << (2 * level);
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < (1u << level); ++x) {
      for (std::uint32_t y = 0; y < (1u << level); ++y) {
        const std::uint64_t d = HilbertCurve::index2(x, y, level);
        ASSERT_LT(d, n);
        seen.insert(d);
        std::uint32_t rx, ry;
        HilbertCurve::coords2(d, level, rx, ry);
        ASSERT_EQ(rx, x);
        ASSERT_EQ(ry, y);
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(HilbertCurve, BijectiveExhaustive3D) {
  for (int level = 1; level <= 4; ++level) {
    const std::uint64_t n = 1ull << (3 * level);
    std::set<std::uint64_t> seen;
    for (std::uint32_t x = 0; x < (1u << level); ++x) {
      for (std::uint32_t y = 0; y < (1u << level); ++y) {
        for (std::uint32_t z = 0; z < (1u << level); ++z) {
          const std::uint64_t d = HilbertCurve::index3(x, y, z, level);
          ASSERT_LT(d, n);
          seen.insert(d);
          std::uint32_t rx, ry, rz;
          HilbertCurve::coords3(d, level, rx, ry, rz);
          ASSERT_EQ(rx, x);
          ASSERT_EQ(ry, y);
          ASSERT_EQ(rz, z);
        }
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(HilbertCurve, Adjacency2D) {
  // Defining property Morton lacks: consecutive curve positions are
  // face-adjacent grid cells.
  const int level = 6;
  std::uint32_t px, py;
  HilbertCurve::coords2(0, level, px, py);
  for (std::uint64_t d = 1; d < (1ull << (2 * level)); ++d) {
    std::uint32_t x, y;
    HilbertCurve::coords2(d, level, x, y);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(manhattan, 1) << "at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertCurve, Adjacency3D) {
  const int level = 4;
  std::uint32_t px, py, pz;
  HilbertCurve::coords3(0, level, px, py, pz);
  for (std::uint64_t d = 1; d < (1ull << (3 * level)); ++d) {
    std::uint32_t x, y, z;
    HilbertCurve::coords3(d, level, x, y, z);
    const int manhattan =
        std::abs(static_cast<int>(x) - static_cast<int>(px)) +
        std::abs(static_cast<int>(y) - static_cast<int>(py)) +
        std::abs(static_cast<int>(z) - static_cast<int>(pz));
    ASSERT_EQ(manhattan, 1) << "at d=" << d;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(HilbertCurve, RandomRoundTripDeep) {
  Xoshiro256 rng(82);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.next_below(1u << 21));
    std::uint32_t rx, ry, rz;
    HilbertCurve::coords3(HilbertCurve::index3(x, y, z, 21), 21, rx, ry, rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(HilbertCurve, MortonVsHilbertLocality) {
  // The defining locality contrast: along Hilbert *every* pair of
  // consecutive indices is grid-adjacent; along Morton only a fraction is
  // (each carry past the lowest bit makes the curve jump).
  const int level = 5;
  const std::uint64_t n = 1ull << (2 * level);
  std::uint64_t hilbert_adjacent = 0, morton_adjacent = 0;
  for (std::uint64_t d = 0; d + 1 < n; ++d) {
    std::uint32_t hx1, hy1, hx2, hy2, mx1, my1, mx2, my2;
    HilbertCurve::coords2(d, level, hx1, hy1);
    HilbertCurve::coords2(d + 1, level, hx2, hy2);
    MortonCurve::coords2(d, level, mx1, my1);
    MortonCurve::coords2(d + 1, level, mx2, my2);
    const auto manhattan = [](std::uint32_t a, std::uint32_t b,
                              std::uint32_t c, std::uint32_t e) {
      return std::abs(static_cast<int>(a) - static_cast<int>(c)) +
             std::abs(static_cast<int>(b) - static_cast<int>(e));
    };
    hilbert_adjacent += manhattan(hx1, hy1, hx2, hy2) == 1;
    morton_adjacent += manhattan(mx1, my1, mx2, my2) == 1;
  }
  EXPECT_EQ(hilbert_adjacent, n - 1);  // Hilbert: always adjacent
  EXPECT_LT(morton_adjacent, n - 1);   // Morton: jumps exist
}

}  // namespace
}  // namespace qforest::sfc

/// \file test_ghost_exchange.cpp
/// \brief Sharded asynchronous ghost-payload exchange vs the single-rank
/// shared-memory reference: payload equality across rank counts, reps and
/// both overlap orders; rank_work_split partition properties; hook
/// ordering of the overlap seam.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "forest/io.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

using R3 = MortonRep<3>;
using S2 = StandardRep<2>;

/// Mixed-level brick forest with a distinct payload per leaf (its global
/// index scrambled, so any misrouted message shows as a value mismatch).
template <class R>
Forest<R> make_payload_forest(Connectivity conn, int base, int ranks) {
  auto f = Forest<R>::new_uniform(std::move(conn), base, ranks);
  f.refine(false, [](tree_id_t t, const typename R::quad_t& q) {
    return (R::level_index(q) + static_cast<morton_t>(t)) % 3 == 0;
  });
  f.partition();
  f.enable_payload();
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    for (std::size_t i = 0; i < f.tree_quadrants(t).size(); ++i) {
      f.payload(t, i) =
          0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(
                                      f.global_index(t, i) + 1);
    }
  }
  return f;
}

template <class R>
std::vector<GhostLayer<R>> all_ghosts(const Forest<R>& f) {
  std::vector<GhostLayer<R>> ghosts;
  ghosts.reserve(static_cast<std::size_t>(f.num_ranks()));
  for (int r = 0; r < f.num_ranks(); ++r) {
    ghosts.push_back(f.ghost_layer(r));
  }
  return ghosts;
}

/// The shared-memory reference: Forest::ghost_exchange per rank.
template <class R>
std::vector<std::vector<std::uint64_t>> reference_exchange(
    const Forest<R>& f, const std::vector<GhostLayer<R>>& ghosts) {
  std::vector<std::vector<std::uint64_t>> ref;
  for (int r = 0; r < f.num_ranks(); ++r) {
    ref.push_back(
        f.ghost_exchange(r, ghosts[static_cast<std::size_t>(r)]));
  }
  return ref;
}

template <class R>
void expect_exchange_matches_reference(Forest<R> f) {
  const auto ghosts = all_ghosts(f);
  const auto ref = reference_exchange(f, ghosts);
  for (const bool overlap : {true, false}) {
    GhostExchangeOptions opt;
    opt.overlap = overlap;
    const GhostExchangeResult res =
        exchange_ghost_payloads(f, ghosts, opt);
    ASSERT_EQ(res.payloads.size(), ref.size());
    for (std::size_t r = 0; r < ref.size(); ++r) {
      EXPECT_EQ(res.payloads[r], ref[r])
          << "rank " << r << " overlap=" << overlap;
    }
  }
}

TEST(GhostExchange, MatchesReferenceAcrossRankCounts3D) {
  for (const int p : {1, 2, 3, 5, 8}) {
    auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 2, 1), 2, p);
    expect_exchange_matches_reference(std::move(f));
  }
}

TEST(GhostExchange, MatchesReferenceAcrossRankCounts2D) {
  for (const int p : {1, 4, 7}) {
    auto f = make_payload_forest<S2>(Connectivity::brick2d(3, 2), 3, p);
    expect_exchange_matches_reference(std::move(f));
  }
}

TEST(GhostExchange, MatchesReferenceWithDeliveryDelay) {
  auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 1, 1), 2, 4);
  const auto ghosts = all_ghosts(f);
  const auto ref = reference_exchange(f, ghosts);
  GhostExchangeOptions opt;
  opt.delivery_delay = std::chrono::microseconds(500);
  const GhostExchangeResult res = exchange_ghost_payloads(f, ghosts, opt);
  for (std::size_t r = 0; r < ref.size(); ++r) {
    EXPECT_EQ(res.payloads[r], ref[r]);
  }
}

TEST(GhostExchange, ReshardedForestStaysConsistent) {
  // set_num_ranks reuses one mesh across rank counts (the scaling-bench
  // pattern); every re-sharding must keep the exchange exact.
  auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 2, 1), 2, 1);
  for (const int p : {6, 2, 9}) {
    f.set_num_ranks(p);
    ASSERT_EQ(f.num_ranks(), p);
    const auto ghosts = all_ghosts(f);
    const auto ref = reference_exchange(f, ghosts);
    const GhostExchangeResult res =
        exchange_ghost_payloads(f, ghosts, GhostExchangeOptions{});
    for (std::size_t r = 0; r < ref.size(); ++r) {
      EXPECT_EQ(res.payloads[r], ref[r]);
    }
  }
}

TEST(GhostExchange, HooksRunOncePerRankInOverlapOrder) {
  auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 1, 1), 2, 5);
  const auto ghosts = all_ghosts(f);
  const auto ref = reference_exchange(f, ghosts);
  for (const bool overlap : {true, false}) {
    GhostExchangeOptions opt;
    opt.overlap = overlap;
    std::vector<int> interior_calls(5, 0);
    std::vector<int> boundary_calls(5, 0);
    const GhostExchangeResult res = exchange_ghost_payloads(
        f, ghosts, opt,
        [&](int rank) {
          ++interior_calls[static_cast<std::size_t>(rank)];
          EXPECT_EQ(boundary_calls[static_cast<std::size_t>(rank)], 0)
              << "interior must run before boundary";
        },
        [&](int rank, const std::vector<std::uint64_t>& payloads) {
          ++boundary_calls[static_cast<std::size_t>(rank)];
          // The boundary pass observes the fully drained ghost buffer.
          EXPECT_EQ(payloads, ref[static_cast<std::size_t>(rank)]);
        });
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(interior_calls[static_cast<std::size_t>(r)], 1);
      EXPECT_EQ(boundary_calls[static_cast<std::size_t>(r)], 1);
    }
    (void)res;
  }
}

TEST(GhostExchange, RankSecondsReported) {
  auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 1, 1), 2, 4);
  const auto ghosts = all_ghosts(f);
  const GhostExchangeResult res =
      exchange_ghost_payloads(f, ghosts, GhostExchangeOptions{});
  ASSERT_EQ(res.rank_seconds.size(), 4u);
  for (const double s : res.rank_seconds) {
    EXPECT_GE(s, 0.0);
  }
}

TEST(RankWorkSplit, PartitionsTheRankRange) {
  auto f = make_payload_forest<R3>(Connectivity::brick3d(2, 2, 1), 2, 7);
  for (int r = 0; r < f.num_ranks(); ++r) {
    const RankWorkSplit split = f.rank_work_split(r);
    EXPECT_EQ(split.boundary, f.mirrors(r));
    const auto [first, last] = f.rank_range(r);
    // Boundary indices and interior runs are disjoint, sorted, and
    // together cover [first, last) exactly.
    std::vector<gidx_t> covered;
    std::size_t bi = 0;
    gidx_t pos = first;
    auto take_boundary_up_to = [&](gidx_t stop) {
      while (bi < split.boundary.size() && split.boundary[bi] < stop) {
        covered.push_back(split.boundary[bi++]);
      }
    };
    for (const auto& [a, b] : split.interior) {
      ASSERT_LT(a, b);
      take_boundary_up_to(a);
      for (gidx_t g = a; g < b; ++g) {
        covered.push_back(g);
      }
      pos = b;
    }
    take_boundary_up_to(last);
    EXPECT_EQ(bi, split.boundary.size());
    ASSERT_EQ(covered.size(), static_cast<std::size_t>(last - first));
    EXPECT_TRUE(std::is_sorted(covered.begin(), covered.end()));
    for (std::size_t k = 0; k < covered.size(); ++k) {
      EXPECT_EQ(covered[k], first + static_cast<gidx_t>(k));
    }
    (void)pos;
  }
}

}  // namespace
}  // namespace qforest

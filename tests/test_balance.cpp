/// \file test_balance.cpp
/// \brief 2:1 balance: enforcement, idempotence, minimality-ish bounds,
/// cross-tree propagation, and the is_balanced checker.

#include <mutex>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

template <class R>
class BalanceT : public ::testing::Test {};

using BalanceReps = ::testing::Types<StandardRep<2>, MortonRep<2>,
                                     StandardRep<3>, MortonRep<3>, AvxRep<3>>;
TYPED_TEST_SUITE(BalanceT, BalanceReps);

TYPED_TEST(BalanceT, PointRefinementGetsGraded) {
  using R = TypeParam;
  auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
  // Refine the chain of cells touching the domain center from below:
  // the deep cells abut the coarse half-domain cells across the center
  // plane, the classic case that forces a graded ripple.
  const int depth = 6;
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    // Chain of cells containing the point just below the domain center:
    // level 1 takes child 0, every later level the all-ones child, so the
    // deep cells abut root's other level-1 children across the center.
    const int l = R::level(q);
    const morton_t chain =
        l == 0 ? 0 : (morton_t{1} << (R::dim * (l - 1))) - 1;
    return l < depth && R::level_index(q) == chain;
  });
  EXPECT_FALSE(f.is_balanced(BalanceKind::kFull));
  f.balance(BalanceKind::kFull);
  EXPECT_TRUE(f.is_valid());
  EXPECT_TRUE(f.is_balanced(BalanceKind::kFull));
  EXPECT_EQ(f.max_level_used(), depth);  // balance never coarsens
}

TYPED_TEST(BalanceT, BalanceIsIdempotent) {
  using R = TypeParam;
  auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    const int l = R::level(q);
    const morton_t chain =
        l == 0 ? 0 : (morton_t{1} << (R::dim * (l - 1))) - 1;
    return l < 5 && R::level_index(q) == chain;
  });
  f.balance(BalanceKind::kFull);
  const gidx_t after_first = f.num_quadrants();
  f.balance(BalanceKind::kFull);
  EXPECT_EQ(f.num_quadrants(), after_first);
}

TYPED_TEST(BalanceT, FaceBalanceWeakerThanFull) {
  using R = TypeParam;
  auto make = [] {
    auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
    f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
      const int l = R::level(q);
      const morton_t chain =
          l == 0 ? 0 : (morton_t{1} << (R::dim * (l - 1))) - 1;
      return l < 5 && R::level_index(q) == chain;
    });
    return f;
  };
  auto face = make();
  face.balance(BalanceKind::kFace);
  auto full = make();
  full.balance(BalanceKind::kFull);
  EXPECT_TRUE(face.is_balanced(BalanceKind::kFace));
  EXPECT_TRUE(full.is_balanced(BalanceKind::kFull));
  // Full balance implies face balance and needs at least as many leaves.
  EXPECT_TRUE(full.is_balanced(BalanceKind::kFace));
  EXPECT_GE(full.num_quadrants(), face.num_quadrants());
}

TYPED_TEST(BalanceT, RandomForestsBecomeBalanced) {
  using R = TypeParam;
  // The refine callback runs concurrently (tree x chunk contract), so
  // the shared RNG needs a lock; the resulting mesh varies with the
  // interleaving, which is exactly what this property test wants.
  Xoshiro256 rng(4242);
  std::mutex rng_mutex;
  for (int trial = 0; trial < 3; ++trial) {
    auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 1);
    f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
      if (R::level(q) >= 6) {
        return false;
      }
      const std::lock_guard<std::mutex> lock(rng_mutex);
      return rng.next_bool(0.35);
    });
    f.balance(BalanceKind::kFull);
    ASSERT_TRUE(f.is_valid());
    ASSERT_TRUE(f.is_balanced(BalanceKind::kFull));
  }
}

TYPED_TEST(BalanceT, CrossTreeRipple) {
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 1)
                                : Connectivity::brick3d(2, 1, 1);
  auto f = Forest<R>::new_uniform(conn, 1);
  // Deep refinement only in tree 0, against the face shared with tree 1:
  // the chain along child (1,0[,0]) direction, i.e. child id 1 at every
  // level (stays on the +x face).
  f.refine(true, [&](tree_id_t t, const typename R::quad_t& q) {
    if (t != 0 || R::level(q) >= 6) {
      return false;
    }
    // Follow the +x-most, lowest-y/z corner chain.
    coord_t x, y, z;
    int lvl;
    R::to_coords(q, x, y, z, lvl);
    return y == 0 && z == 0 &&
           x + R::length_at(lvl) == (coord_t{1} << R::max_level);
  });
  EXPECT_FALSE(f.is_balanced(BalanceKind::kFull));
  f.balance(BalanceKind::kFull);
  EXPECT_TRUE(f.is_balanced(BalanceKind::kFull));
  // Tree 1 must have been refined by the ripple across the tree face.
  EXPECT_GT(f.tree_quadrants(1).size(),
            static_cast<std::size_t>(1) << R::dim);
  EXPECT_TRUE(f.is_valid());
}

TEST(BalanceEdgeKind, ThreeDEdgeBalanceBetweenFaceAndFull) {
  using R = StandardRep<3>;
  auto make = [] {
    auto f = Forest<R>::new_root(Connectivity::unit(3));
    f.refine(true, [&](tree_id_t, const R::quad_t& q) {
      const int l = R::level(q);
      const morton_t chain = l == 0 ? 0 : (morton_t{1} << (3 * (l - 1))) - 1;
      return l < 5 && R::level_index(q) == chain;
    });
    return f;
  };
  auto face = make();
  face.balance(BalanceKind::kFace);
  auto edge = make();
  edge.balance(BalanceKind::kEdge);
  auto full = make();
  full.balance(BalanceKind::kFull);
  EXPECT_LE(face.num_quadrants(), edge.num_quadrants());
  EXPECT_LE(edge.num_quadrants(), full.num_quadrants());
  EXPECT_TRUE(edge.is_balanced(BalanceKind::kEdge));
  EXPECT_TRUE(edge.is_balanced(BalanceKind::kFace));
}

TEST(BalanceUniform, AlreadyBalancedUnchanged) {
  using R = MortonRep<3>;
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 3);
  const gidx_t n = f.num_quadrants();
  f.balance(BalanceKind::kFull);
  EXPECT_EQ(f.num_quadrants(), n);
}

TYPED_TEST(BalanceT, AlreadyBalancedIsANoOp) {
  // Balancing a balanced forest must not rebuild leaf arrays, offsets or
  // the partition: the storage stays byte-for-byte in place (vector data
  // pointers are stable only when nothing was reassigned).
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 2)
                                : Connectivity::brick3d(2, 2, 1);
  auto f = Forest<R>::new_uniform(conn, 1, 3);
  f.refine(true, [&](tree_id_t t, const typename R::quad_t& q) {
    return t == 0 && R::level(q) < 4 && R::level_index(q) == 0;
  });
  f.balance(BalanceKind::kFull);
  ASSERT_TRUE(f.is_balanced(BalanceKind::kFull));

  std::vector<const void*> data_before;
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    data_before.push_back(f.tree_quadrants(t).data());
  }
  std::vector<std::pair<gidx_t, gidx_t>> ranges_before;
  for (int r = 0; r < f.num_ranks(); ++r) {
    ranges_before.push_back(f.rank_range(r));
  }

  f.balance(BalanceKind::kFull);

  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    EXPECT_EQ(f.tree_quadrants(t).data(),
              data_before[static_cast<std::size_t>(t)])
        << "tree " << t << " leaf array was reassigned by a no-op balance";
  }
  for (int r = 0; r < f.num_ranks(); ++r) {
    EXPECT_EQ(f.rank_range(r), ranges_before[static_cast<std::size_t>(r)]);
  }
}

TEST(BalancePeriodic, WrapsAroundTorus) {
  using R = StandardRep<2>;
  auto f = Forest<R>::new_uniform(Connectivity::brick2d(1, 1, true, true), 1);
  // Refine the center-corner chain deeply; with periodic wrap the
  // constraint also propagates around the torus.
  f.refine(true, [&](tree_id_t, const R::quad_t& q) {
    const int l = R::level(q);
    const morton_t chain = l == 0 ? 0 : (morton_t{1} << (2 * (l - 1))) - 1;
    return l < 6 && R::level_index(q) == chain;
  });
  f.balance(BalanceKind::kFull);
  EXPECT_TRUE(f.is_balanced(BalanceKind::kFull));
  EXPECT_TRUE(f.is_valid());
}

}  // namespace
}  // namespace qforest

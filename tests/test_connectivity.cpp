/// \file test_connectivity.cpp
/// \brief Brick connectivity: face links, periodic wrap, validity.

#include <gtest/gtest.h>

#include "forest/connectivity.hpp"

namespace qforest {
namespace {

TEST(Connectivity, UnitTreeHasOnlyBoundaries) {
  const auto c2 = Connectivity::unit(2);
  EXPECT_EQ(c2.num_trees(), 1);
  for (int f = 0; f < 4; ++f) {
    EXPECT_TRUE(c2.tree_face_neighbor(0, f).is_boundary());
  }
  const auto c3 = Connectivity::unit(3);
  for (int f = 0; f < 6; ++f) {
    EXPECT_TRUE(c3.tree_face_neighbor(0, f).is_boundary());
  }
  EXPECT_TRUE(c2.is_valid());
  EXPECT_TRUE(c3.is_valid());
}

TEST(Connectivity, Brick2DLinks) {
  const auto c = Connectivity::brick2d(3, 2);
  EXPECT_EQ(c.num_trees(), 6);
  // Tree 0 at (0,0): +x neighbor is tree 1, +y neighbor is tree 3.
  EXPECT_EQ(c.tree_face_neighbor(0, 1).tree, 1);
  EXPECT_EQ(c.tree_face_neighbor(0, 1).face, 0);
  EXPECT_EQ(c.tree_face_neighbor(0, 3).tree, 3);
  EXPECT_EQ(c.tree_face_neighbor(0, 3).face, 2);
  EXPECT_TRUE(c.tree_face_neighbor(0, 0).is_boundary());
  EXPECT_TRUE(c.tree_face_neighbor(0, 2).is_boundary());
  // Middle tree 4 at (1,1).
  EXPECT_EQ(c.tree_face_neighbor(4, 0).tree, 3);
  EXPECT_EQ(c.tree_face_neighbor(4, 1).tree, 5);
  EXPECT_EQ(c.tree_face_neighbor(4, 2).tree, 1);
  EXPECT_TRUE(c.is_valid());
}

TEST(Connectivity, PeriodicWrap) {
  const auto c = Connectivity::brick2d(3, 1, true, true);
  // Crossing -x from tree 0 wraps to tree 2.
  EXPECT_EQ(c.tree_face_neighbor(0, 0).tree, 2);
  EXPECT_EQ(c.tree_face_neighbor(2, 1).tree, 0);
  // y extent 1 and periodic: tree is its own neighbor.
  EXPECT_EQ(c.tree_face_neighbor(1, 2).tree, 1);
  EXPECT_EQ(c.tree_face_neighbor(1, 3).tree, 1);
  EXPECT_TRUE(c.is_valid());
}

TEST(Connectivity, Brick3DCoordsRoundTrip) {
  const auto c = Connectivity::brick3d(2, 3, 4);
  EXPECT_EQ(c.num_trees(), 24);
  for (tree_id_t t = 0; t < c.num_trees(); ++t) {
    const auto p = c.tree_coords(t);
    EXPECT_EQ(c.tree_at(p[0], p[1], p[2]), t);
  }
  EXPECT_TRUE(c.is_valid());
}

TEST(Connectivity, OffsetNeighborDiagonal) {
  const auto c = Connectivity::brick2d(2, 2);
  // Tree 0 at (0,0): diagonal (+1,+1) is tree 3.
  EXPECT_EQ(c.tree_offset_neighbor(0, 1, 1, 0), 3);
  EXPECT_EQ(c.tree_offset_neighbor(0, -1, 0, 0), -1);
  EXPECT_EQ(c.tree_offset_neighbor(3, -1, -1, 0), 0);
}

TEST(Connectivity, InvalidArguments) {
  EXPECT_THROW(Connectivity::brick2d(0, 1), std::invalid_argument);
  EXPECT_THROW(Connectivity::brick3d(1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qforest

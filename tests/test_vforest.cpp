/// \file test_vforest.cpp
/// \brief The runtime-representation forest must reproduce the template
/// forest's meshes exactly, for every representation kind.

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "forest/forest.hpp"
#include "forest/vforest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

const RepKind kAllKinds[] = {RepKind::kStandard, RepKind::kMorton,
                             RepKind::kAvx, RepKind::kWideMorton};

/// Canonical fingerprint of a VForest tree.
std::vector<CanonicalQuadrant> fingerprint(const VForest& f, tree_id_t t) {
  std::vector<CanonicalQuadrant> out;
  for (const VQuad& q : f.tree_quadrants(t)) {
    out.push_back(f.ops().canonical(q));
  }
  return out;
}

/// Canonical fingerprint of a template forest tree.
template <class R>
std::vector<CanonicalQuadrant> fingerprint(const Forest<R>& f, tree_id_t t) {
  std::vector<CanonicalQuadrant> out;
  for (const auto& q : f.tree_quadrants(t)) {
    out.push_back(to_canonical<R>(q));
  }
  return out;
}

TEST(VForest, UniformCreationAllKinds) {
  for (const RepKind kind : kAllKinds) {
    for (int dim : {2, 3}) {
      const auto f = VForest::new_uniform(kind, Connectivity::unit(dim), 2);
      EXPECT_EQ(f.num_quadrants(), std::int64_t{1} << (dim * 2));
      EXPECT_TRUE(f.is_valid()) << rep_kind_name(kind) << " dim " << dim;
      EXPECT_EQ(f.max_level_used(), 2);
    }
  }
}

TEST(VForest, RefineMatchesTemplateForest) {
  // The same refinement driven through the virtual interface and through
  // the template forest produces canonically identical meshes.
  auto criterion_level_index = [](int lvl, morton_t idx) {
    return lvl < 5 && idx % 5 == 0;
  };

  auto tf = Forest<MortonRep<3>>::new_uniform(Connectivity::unit(3), 2);
  tf.refine(true, [&](tree_id_t, const MortonRep<3>::quad_t& q) {
    return criterion_level_index(MortonRep<3>::level(q),
                                 MortonRep<3>::level_index(q));
  });

  for (const RepKind kind : kAllKinds) {
    auto vf = VForest::new_uniform(kind, Connectivity::unit(3), 2);
    const auto& ops = vf.ops();
    vf.refine(true, [&](tree_id_t, const VQuad& q) {
      return criterion_level_index(ops.level(q), ops.level_index(q));
    });
    EXPECT_TRUE(vf.is_valid());
    EXPECT_EQ(vf.num_quadrants(), tf.num_quadrants())
        << rep_kind_name(kind);
    EXPECT_EQ(fingerprint(vf, 0), fingerprint(tf, 0)) << rep_kind_name(kind);
  }
}

TEST(VForest, CoarsenInvertsRefine) {
  for (const RepKind kind : kAllKinds) {
    auto f = VForest::new_uniform(kind, Connectivity::unit(2), 3);
    const std::int64_t before = f.num_quadrants();
    f.refine(false, [](tree_id_t, const VQuad&) { return true; });
    EXPECT_EQ(f.num_quadrants(), before * 4);
    f.coarsen(false, [](tree_id_t, const VQuad*) { return true; });
    EXPECT_EQ(f.num_quadrants(), before);
    EXPECT_TRUE(f.is_valid());
  }
}

TEST(VForest, BalanceMatchesTemplateForest) {
  auto chain = [](int l, morton_t idx) {
    const morton_t want = l == 0 ? 0 : (morton_t{1} << (3 * (l - 1))) - 1;
    return l < 5 && idx == want;
  };

  auto tf = Forest<StandardRep<3>>::new_root(Connectivity::unit(3));
  tf.refine(true, [&](tree_id_t, const StandardRep<3>::quad_t& q) {
    return chain(StandardRep<3>::level(q),
                 StandardRep<3>::level_index(q));
  });
  tf.balance(BalanceKind::kFull);

  for (const RepKind kind : kAllKinds) {
    auto vf = VForest::new_root(kind, Connectivity::unit(3));
    const auto& ops = vf.ops();
    vf.refine(true, [&](tree_id_t, const VQuad& q) {
      return chain(ops.level(q), ops.level_index(q));
    });
    EXPECT_FALSE(vf.is_balanced()) << rep_kind_name(kind);
    vf.balance();
    EXPECT_TRUE(vf.is_balanced()) << rep_kind_name(kind);
    EXPECT_EQ(vf.num_quadrants(), tf.num_quadrants()) << rep_kind_name(kind);
    EXPECT_EQ(fingerprint(vf, 0), fingerprint(tf, 0)) << rep_kind_name(kind);
  }
}

TEST(VForest, SearchCountsLeaves) {
  auto f = VForest::new_uniform(RepKind::kAvx, Connectivity::unit(3), 2);
  const auto& ops = f.ops();
  f.refine(false, [&](tree_id_t, const VQuad& q) {
    return ops.level_index(q) % 2 == 0;
  });
  std::size_t leaves = 0;
  f.search([&](tree_id_t, const VQuad&, std::size_t, std::size_t,
               bool is_leaf) {
    leaves += is_leaf ? 1 : 0;
    return true;
  });
  EXPECT_EQ(leaves, static_cast<std::size_t>(f.num_quadrants()));
}

TEST(VForest, MultiTreeBrickBalanceAcrossTrees) {
  auto f = VForest::new_uniform(RepKind::kMorton,
                                Connectivity::brick2d(2, 1), 1);
  const auto& ops = f.ops();
  // Deep refinement on the +x face of tree 0.
  f.refine(true, [&](tree_id_t t, const VQuad& q) {
    if (t != 0 || ops.level(q) >= 5) {
      return false;
    }
    const CanonicalQuadrant c = ops.canonical(q);
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
    return c.y == 0 && c.x + h == root;
  });
  f.balance();
  EXPECT_TRUE(f.is_balanced());
  EXPECT_TRUE(f.is_valid());
  EXPECT_GT(f.tree_quadrants(1).size(), 4u);
}

TEST(VForest, InvalidLevelThrows) {
  EXPECT_THROW(VForest::new_uniform(RepKind::kMorton,
                                    Connectivity::unit(3), 19),
               std::invalid_argument);
  EXPECT_NO_THROW(
      VForest::new_uniform(RepKind::kStandard, Connectivity::unit(3), 3));
}

}  // namespace
}  // namespace qforest

/// \file test_partition_ghost.cpp
/// \brief Simulated-rank partitioning (uniform and weighted) and ghost
/// layer construction.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

using R = MortonRep<3>;
using S = StandardRep<2>;

TEST(Partition, UniformBlockDistribution) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 3, 8);
  const gidx_t n = f.num_quadrants();
  gidx_t covered = 0;
  for (int r = 0; r < 8; ++r) {
    const auto [first, last] = f.rank_range(r);
    EXPECT_LE(first, last);
    covered += last - first;
    // Block distribution: sizes differ by at most 1.
    EXPECT_LE(last - first, (n + 7) / 8);
    EXPECT_GE(last - first, n / 8);
  }
  EXPECT_EQ(covered, n);
}

TEST(Partition, OwnerRankConsistentWithRanges) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 5);
  for (gidx_t g = 0; g < f.num_quadrants(); ++g) {
    const int r = f.owner_rank(g);
    const auto [first, last] = f.rank_range(r);
    EXPECT_GE(g, first);
    EXPECT_LT(g, last);
  }
}

TEST(Partition, WeightedSkewsBoundary) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 2);
  const gidx_t n = f.num_quadrants();
  // First half of the curve is 9x heavier: rank 0 should own fewer than
  // n/2 leaves after weighting.
  f.partition_weighted([&](tree_id_t, const R::quad_t& q) {
    return R::level_index(q) < static_cast<morton_t>(n) / 2 ? 9 : 1;
  });
  const auto [f0, l0] = f.rank_range(0);
  EXPECT_EQ(f0, 0);
  EXPECT_LT(l0 - f0, n / 2);
  const auto [f1, l1] = f.rank_range(1);
  EXPECT_EQ(l1, n);
  EXPECT_EQ(f1, l0);
}

TEST(Partition, WeightedUniformEqualsBlock) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 4);
  std::vector<std::pair<gidx_t, gidx_t>> uniform_ranges;
  for (int r = 0; r < 4; ++r) {
    uniform_ranges.push_back(f.rank_range(r));
  }
  f.partition_weighted([](tree_id_t, const R::quad_t&) { return 7; });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(f.rank_range(r), uniform_ranges[static_cast<std::size_t>(r)]);
  }
}

TEST(Partition, SingleRankOwnsEverything) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 1);
  const auto [first, last] = f.rank_range(0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, f.num_quadrants());
}

TEST(Ghost, UniformInteriorRankSeesShell) {
  // 4 ranks on a level-3 uniform 2D forest: every rank's ghost layer is
  // exactly the leaves adjacent to its contiguous curve segment.
  auto f = Forest<S>::new_uniform(Connectivity::unit(2), 3, 4);
  for (int r = 0; r < 4; ++r) {
    const auto ghost = f.ghost_layer(r);
    EXPECT_FALSE(ghost.entries.empty());
    const auto [first, last] = f.rank_range(r);
    for (const auto& e : ghost.entries) {
      EXPECT_TRUE(e.global_index < first || e.global_index >= last);
      EXPECT_NE(e.owner, r);
      EXPECT_EQ(f.owner_rank(e.global_index), e.owner);
    }
    // Sorted and unique.
    for (std::size_t i = 0; i + 1 < ghost.entries.size(); ++i) {
      EXPECT_LT(ghost.entries[i].global_index,
                ghost.entries[i + 1].global_index);
    }
  }
}

TEST(Ghost, EntriesAreExactlyAdjacentLeaves) {
  // Brute-force cross-check on a small forest: a remote leaf belongs to
  // the ghost layer iff its closed domain touches the rank's domain.
  auto f = Forest<S>::new_uniform(Connectivity::unit(2), 2, 3);
  for (int r = 0; r < 3; ++r) {
    const auto ghost = f.ghost_layer(r);
    std::set<gidx_t> got;
    for (const auto& e : ghost.entries) {
      got.insert(e.global_index);
    }
    std::set<gidx_t> want;
    const auto [first, last] = f.rank_range(r);
    for (gidx_t g = 0; g < f.num_quadrants(); ++g) {
      if (g >= first && g < last) {
        continue;
      }
      const auto [gt, gi] = f.locate(g);
      const auto& gq = f.tree_quadrants(gt)[gi];
      coord_t gx, gy, gz;
      int gl;
      S::to_coords(gq, gx, gy, gz, gl);
      const coord_t gh = S::length_at(gl);
      bool touches = false;
      for (gidx_t o = first; o < last && !touches; ++o) {
        const auto [ot, oi] = f.locate(o);
        const auto& oq = f.tree_quadrants(ot)[oi];
        coord_t ox, oy, oz;
        int ol;
        S::to_coords(oq, ox, oy, oz, ol);
        const coord_t oh = S::length_at(ol);
        touches = gx <= ox + oh && ox <= gx + gh && gy <= oy + oh &&
                  oy <= gy + gh;
      }
      if (touches) {
        want.insert(g);
      }
    }
    EXPECT_EQ(got, want) << "rank " << r;
  }
}

TEST(Ghost, CrossTreeGhostsAppear) {
  // Two trees side by side, partition cuts between them: each rank's
  // ghost layer must contain leaves of the other tree.
  auto f = Forest<S>::new_uniform(Connectivity::brick2d(2, 1), 2, 2);
  const auto ghost0 = f.ghost_layer(0);
  bool has_tree1 = false;
  for (const auto& e : ghost0.entries) {
    has_tree1 = has_tree1 || e.tree == 1;
  }
  EXPECT_TRUE(has_tree1);
}

TEST(Ghost, AdaptiveForestGhostValid) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 4);
  f.refine(false, [](tree_id_t, const R::quad_t& q) {
    return R::level_index(q) % 5 == 0;
  });
  f.balance(BalanceKind::kFull);
  for (int r = 0; r < 4; ++r) {
    const auto ghost = f.ghost_layer(r);
    const auto [first, last] = f.rank_range(r);
    for (const auto& e : ghost.entries) {
      EXPECT_TRUE(e.global_index < first || e.global_index >= last);
      EXPECT_TRUE(R::is_valid(e.quad));
    }
  }
}

TEST(Ghost, SingleRankHasEmptyGhost) {
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2, 1);
  EXPECT_TRUE(f.ghost_layer(0).entries.empty());
}

class GhostRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(GhostRankSweep, GhostsPartitionIndependentInvariants) {
  const int ranks = GetParam();
  auto f = Forest<S>::new_uniform(Connectivity::unit(2), 3, ranks);
  gidx_t total_ghosts = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto ghost = f.ghost_layer(r);
    total_ghosts += static_cast<gidx_t>(ghost.entries.size());
    for (const auto& e : ghost.entries) {
      EXPECT_NE(e.owner, r);
    }
  }
  // Adjacency is symmetric: if g is in r's ghost layer, some leaf of r is
  // in owner(g)'s ghost layer; hence every rank with a nonempty ghost
  // layer is itself a ghost source. Weak but partition-independent check:
  EXPECT_GT(total_ghosts, 0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, GhostRankSweep,
                         ::testing::Values(2, 3, 4, 7, 16));

}  // namespace
}  // namespace qforest

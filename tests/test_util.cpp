/// \file test_util.cpp
/// \brief Unit tests for the utility substrate: stats, RNG, tables,
/// memory tracking, timers, logging.

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/memory_tracker.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace qforest {
namespace {

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  Xoshiro256 rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10 - 5;
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Stats, MergeEmptyCases) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Stats, SummarizeAndPercentile) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  const SampleSummary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, SpeedupPercentMatchesPaperConvention) {
  // Baseline 1.77 s vs candidate 1.0 s -> "77% performance boost".
  EXPECT_NEAR(speedup_percent(1.77, 1.0), 77.0, 1e-9);
  EXPECT_NEAR(speedup_percent(1.0, 1.0), 0.0, 1e-12);
  EXPECT_LT(speedup_percent(0.5, 1.0), 0.0);
}

TEST(Random, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    all_equal = all_equal && va == b.next_u64();
    any_diff_c = any_diff_c || va != c.next_u64();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Random, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Random, NextInRangeInclusive) {
  Xoshiro256 rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Every line has the same column start for "value" data.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(42ll), "42");
  EXPECT_EQ(Table::fmt_bytes(512), "512 B");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(Table::fmt_bytes(3ull << 30), "3.00 GiB");
}

TEST(MemoryTracker, CountsVectorAllocations) {
  MemoryTracker::reset();
  {
    std::vector<std::uint64_t, TrackingAllocator<std::uint64_t>> v;
    v.reserve(1000);
    EXPECT_EQ(MemoryTracker::current_bytes(), 8000u);
    EXPECT_GE(MemoryTracker::peak_bytes(), 8000u);
  }
  EXPECT_EQ(MemoryTracker::current_bytes(), 0u);
  EXPECT_GE(MemoryTracker::total_bytes(), 8000u);
  EXPECT_GE(MemoryTracker::allocation_count(), 1u);
}

TEST(MemoryTracker, PeakTracksHighWater) {
  MemoryTracker::reset();
  using V = std::vector<char, TrackingAllocator<char>>;
  {
    V big;
    big.reserve(10000);
  }
  {
    V small;
    small.reserve(10);
  }
  EXPECT_GE(MemoryTracker::peak_bytes(), 10000u);
  EXPECT_EQ(MemoryTracker::current_bytes(), 0u);
}

TEST(Timer, WallTimerMonotone) {
  WallTimer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(b, a);
  EXPECT_GE(t.elapsed_ns(), 0);
}

TEST(Timer, ThreadCpuTimeAdvancesUnderWork) {
  const double t0 = thread_cpu_time_s();
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GT(thread_cpu_time_s(), t0);
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kSilent);
  log_error("this must not crash (%d)", 1);
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kInfo));
  set_log_level(before);
}

}  // namespace
}  // namespace qforest

/// \file test_debug_checks.cpp
/// \brief The QFOREST_DEBUG_CHECKS contract detectors: each one fires on
/// a deliberately seeded violation — a racy (serial-declared) callback
/// entered concurrently, overlapping / malformed chunk claims, reentrant
/// scheduling-depth abuse, a failed structural assertion — and stays
/// silent on clean use. The suite-wide silence assertion lives in
/// tests/helpers.hpp (DebugCheckSilence); every seeding test consumes its
/// violations with debug::reset_violations() before finishing.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <latch>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"
#include "par/thread_pool.hpp"

namespace qforest {
namespace {

#if !QFOREST_DEBUG_CHECKS_ENABLED
TEST(DebugChecks, CompiledOut) {
  GTEST_SKIP() << "built without QFOREST_DEBUG_CHECKS";
}
#else

using test_clock = std::chrono::steady_clock;

/// Reset detectors and scheduling switches around every test: the
/// detectors are process-global, and a leaked expect_serial(true) would
/// turn the rest of the binary's legitimate concurrency into violations.
class DebugChecks : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_grain_ = chunk_grain();
    debug::callback_detector().reset();
    debug::reset_violations();
  }
  void TearDown() override {
    set_chunk_grain(saved_grain_);
    set_tree_parallelism(true);
    set_intra_tree_parallelism(true);
    debug::callback_detector().reset();
    debug::reset_violations();
  }

 private:
  std::size_t saved_grain_ = 0;
};

// ---- callback-concurrency detector -----------------------------------------

TEST_F(DebugChecks, ConcurrentEntryIsRecordedAndFiresWhenSerialDeclared) {
  auto& det = debug::callback_detector();
  det.expect_serial(true);

  // Deterministic overlap: both threads hold their Scope open until the
  // other has entered too.
  std::latch both_inside(2);
  auto body = [&] {
    const debug::ConcurrencyDetector::Scope scope(det);
    both_inside.arrive_and_wait();
  };
  std::thread a(body), b(body);
  a.join();
  b.join();

  EXPECT_TRUE(det.concurrency_observed());
  EXPECT_GE(debug::violations(debug::Check::kCallbackConcurrency), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, SerialEntriesStaySilentEvenWhenSerialDeclared) {
  auto& det = debug::callback_detector();
  det.expect_serial(true);
  for (int i = 0; i < 100; ++i) {
    const debug::ConcurrencyDetector::Scope scope(det);
  }
  EXPECT_FALSE(det.concurrency_observed());
  EXPECT_EQ(debug::violations(debug::Check::kCallbackConcurrency), 0u);
}

TEST_F(DebugChecks, RacyRefineCallbackIsCaughtEndToEnd) {
  // A callback that is NOT thread-safe but leaves both scheduling levels
  // on: the detector must prove the concurrent entry. Each invocation
  // spins until some other invocation overlaps with it (the pool has at
  // least two executors: the submitting thread helps), so the overlap is
  // reached deterministically rather than sampled.
  auto& det = debug::callback_detector();
  det.expect_serial(true);
  set_chunk_grain(4);

  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 3);
  ASSERT_GE(f.num_quadrants(), gidx_t{16});
  f.refine(false, [&](tree_id_t, const MortonRep<2>::quad_t&) {
    const auto deadline = test_clock::now() + std::chrono::seconds(2);
    while (!det.concurrency_observed() && test_clock::now() < deadline) {
      std::this_thread::yield();
    }
    return false;
  });

  EXPECT_TRUE(det.concurrency_observed())
      << "chunked refine never overlapped two callback invocations";
  EXPECT_GE(debug::violations(debug::Check::kCallbackConcurrency), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, ContractAwareRefineStaysSilent) {
  // Same two-level parallel refine, but without the serial-only
  // declaration: concurrency may be recorded as a statistic, never as a
  // violation.
  set_chunk_grain(2);
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 3);
  std::atomic<int> calls{0};
  f.refine(false, [&](tree_id_t, const MortonRep<2>::quad_t&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return false;
  });
  EXPECT_EQ(calls.load(), 64);
  EXPECT_EQ(debug::violations(debug::Check::kCallbackConcurrency), 0u);
}

// ---- chunk-geometry coverage ------------------------------------------------

TEST_F(DebugChecks, ChunkCoverageAcceptsExactPartition) {
  debug::ChunkCoverage cov(10, 4);
  cov.claim(0, 4);
  cov.claim(4, 8);
  cov.claim(8, 10);  // final block may stop short at n
  cov.finish();
  EXPECT_EQ(debug::total_violations(), 0u);
}

TEST_F(DebugChecks, ChunkCoverageFiresOnDoubleExecution) {
  debug::ChunkCoverage cov(8, 4);
  cov.claim(0, 4);
  cov.claim(0, 4);  // the same chunk executed twice: overlapping writes
  EXPECT_EQ(debug::violations(debug::Check::kChunkOverlap), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, ChunkCoverageFiresOnMalformedBlock) {
  debug::ChunkCoverage cov(10, 4);
  cov.claim(2, 6);   // not grain-aligned
  cov.claim(4, 6);   // short block that is not the final one
  cov.claim(8, 12);  // runs past n
  EXPECT_EQ(debug::violations(debug::Check::kChunkGeometry), 3u);
  debug::reset_violations();
}

TEST_F(DebugChecks, ChunkCoverageFiresOnIncompleteCoverage) {
  debug::ChunkCoverage cov(12, 4);
  cov.claim(0, 4);
  cov.claim(8, 12);  // chunk [4, 8) never executed
  cov.finish();
  EXPECT_EQ(debug::violations(debug::Check::kChunkCoverage), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, ParallelForGrainRunsCleanUnderCoverageChecks) {
  // The live wiring in ThreadPool::parallel_for_grain: a clean run over
  // an awkward (non-dividing, nested) geometry must record nothing.
  par::ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_grain(1003, 17, [&](std::size_t b, std::size_t e) {
    total.fetch_add(e - b, std::memory_order_relaxed);
    // Nested dispatch from inside a block (helping wait): its own
    // coverage state is independent of the outer call's.
    pool.parallel_for_grain(5, 2, [&](std::size_t, std::size_t) {});
  });
  EXPECT_EQ(total.load(), 1003u);
  EXPECT_EQ(debug::total_violations(), 0u);
}

// ---- scheduling-depth invariant ---------------------------------------------

TEST_F(DebugChecks, LegalDispatchDepthsStaySilent) {
  // The legal dispatch decisions: tree-level from application code,
  // chunk-level from application code or from a tree task.
  debug::check_depth_transition(0, 1);
  debug::check_depth_transition(0, 2);
  debug::check_depth_transition(1, 2);
  EXPECT_EQ(debug::violations(debug::Check::kDepthInvariant), 0u);
}

TEST_F(DebugChecks, ChunkWorkerDispatchFires) {
  // A chunk worker (depth 2) must never submit pool tasks: both a tree-
  // level and a chunk-level dispatch from depth 2 are violations.
  debug::check_depth_transition(2, 1);
  debug::check_depth_transition(2, 2);
  EXPECT_EQ(debug::violations(debug::Check::kDepthInvariant), 2u);
  debug::reset_violations();
}

TEST_F(DebugChecks, TreeTaskTreeDispatchFires) {
  // Tree loops issued from inside a tree task must run inline, never
  // re-dispatch to the pool.
  debug::check_depth_transition(1, 1);
  EXPECT_EQ(debug::violations(debug::Check::kDepthInvariant), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, LiveTwoLevelAdaptStaysDepthSilent) {
  // The live wiring: a two-level parallel refine over several trees
  // dispatches at both levels (and its helping wait may execute tasks
  // on threads whose depth is already nonzero) — none of it may record
  // a dispatch violation.
  set_chunk_grain(2);
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::brick2d(2, 2), 3);
  f.refine(false,
           [](tree_id_t, const MortonRep<2>::quad_t&) { return false; });
  EXPECT_EQ(debug::violations(debug::Check::kDepthInvariant), 0u);
}

// ---- post-throw structural consistency --------------------------------------

TEST_F(DebugChecks, StructuralCheckFiresOnSeededFailure) {
  debug::check_structural(false, "seeded structural failure");
  EXPECT_EQ(debug::violations(debug::Check::kStructural), 1u);
  debug::reset_violations();
}

TEST_F(DebugChecks, ThrowingRefineLeavesForestValidAndSilent) {
  // The live wiring: a throwing adaptation callback exercises the
  // post-throw assert in adapt_and_rebuild, which must find the forest
  // structurally consistent (and therefore stay silent).
  set_chunk_grain(2);
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 2);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      f.refine(false,
               [&](tree_id_t, const MortonRep<2>::quad_t&) -> bool {
                 if (calls.fetch_add(1, std::memory_order_relaxed) == 5) {
                   throw std::runtime_error("seeded callback failure");
                 }
                 return true;
               }),
      std::runtime_error);
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(debug::violations(debug::Check::kStructural), 0u);
}

#endif  // QFOREST_DEBUG_CHECKS_ENABLED

}  // namespace
}  // namespace qforest

/// \file test_par.cpp
/// \brief Simulated-MPI layer: communicator collectives, thread pool,
/// strong-scaling driver semantics.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "par/communicator.hpp"
#include "par/strong_scaling.hpp"
#include "par/thread_pool.hpp"

namespace qforest::par {
namespace {

TEST(Communicator, SizeValidation) {
  EXPECT_THROW(Communicator(0), std::invalid_argument);
  EXPECT_THROW(Communicator(-3), std::invalid_argument);
  EXPECT_EQ(Communicator(4).size(), 4);
}

TEST(Communicator, ExscanPrefixSums) {
  Communicator comm(4);
  const auto out = comm.exscan({3, 1, 4, 1});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(out[2], 4);
  EXPECT_EQ(out[3], 8);
  EXPECT_EQ(out[4], 9);
}

TEST(Communicator, ExscanSizeOneFastPath) {
  Communicator comm(1);
  const auto out = comm.exscan({42});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 42);
}

TEST(Communicator, ExscanOverZeros) {
  Communicator comm(5);
  const auto out = comm.exscan({0, 0, 0, 0, 0});
  ASSERT_EQ(out.size(), 6u);
  for (const std::int64_t v : out) {
    EXPECT_EQ(v, 0);
  }
  // Zeros mixed with values: empty ranks must not shift the prefixes.
  const auto mixed = comm.exscan({0, 7, 0, 0, 2});
  const std::vector<std::int64_t> want{0, 0, 7, 7, 7, 9};
  EXPECT_EQ(mixed, want);
}

TEST(Communicator, AllgatherIsARealPerRankGather) {
  // Rank r contributes values[r]; the gathered vector must reproduce the
  // per-rank contributions (and be a fresh vector, not the caller's).
  Communicator comm(4);
  const std::vector<std::int64_t> values{10, 21, 32, 43};
  const auto gathered = comm.allgather(values);
  EXPECT_EQ(gathered, values);
  EXPECT_NE(gathered.data(), values.data());
  // Single-rank fast path.
  Communicator one(1);
  const std::vector<int> single{5};
  EXPECT_EQ(one.allgather(single), single);
}

TEST(Communicator, OwnerOfAtExactOffsetBoundaries) {
  // Offsets with empty ranks: {0,3,3,7,7,9}. A boundary index belongs to
  // the *last* rank whose range starts there — empty ranks own nothing.
  const std::vector<std::int64_t> off{0, 3, 3, 7, 7, 9};
  EXPECT_EQ(Communicator::owner_of(off, 0), 0);
  EXPECT_EQ(Communicator::owner_of(off, 2), 0);
  EXPECT_EQ(Communicator::owner_of(off, 3), 2);  // rank 1 is empty
  EXPECT_EQ(Communicator::owner_of(off, 6), 2);
  EXPECT_EQ(Communicator::owner_of(off, 7), 4);  // rank 3 is empty
  EXPECT_EQ(Communicator::owner_of(off, 8), 4);
}

TEST(StrongScaling, ShardRankCountsAndEfficiency) {
  const auto counts = shard_rank_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts.front(), 8);
  EXPECT_EQ(counts.back(), 64);
  // Ideal speedup saturates at the core count.
  EXPECT_DOUBLE_EQ(scaling_efficiency(8.0, 2.0, 4, 16), 1.0);
  EXPECT_DOUBLE_EQ(scaling_efficiency(8.0, 2.0, 16, 4), 1.0);
  EXPECT_DOUBLE_EQ(scaling_efficiency(8.0, 8.0, 16, 4), 0.25);
  EXPECT_DOUBLE_EQ(scaling_efficiency(1.0, 0.0, 4, 4), 0.0);
}

TEST(Communicator, BlockDistributionCoversEverythingEvenly) {
  for (int p : {1, 2, 3, 7, 16}) {
    Communicator comm(p);
    for (std::int64_t n : {0ll, 1ll, 13ll, 100ll, 1000001ll}) {
      const auto off = comm.block_distribution(n);
      ASSERT_EQ(static_cast<int>(off.size()), p + 1);
      EXPECT_EQ(off.front(), 0);
      EXPECT_EQ(off.back(), n);
      for (int r = 0; r < p; ++r) {
        const std::int64_t len = off[r + 1] - off[r];
        EXPECT_GE(len, n / p);
        EXPECT_LE(len, n / p + 1);
      }
    }
  }
}

TEST(Communicator, OwnerOfMatchesRanges) {
  Communicator comm(5);
  const auto off = comm.block_distribution(23);
  for (std::int64_t g = 0; g < 23; ++g) {
    const int r = Communicator::owner_of(off, g);
    EXPECT_GE(g, off[r]);
    EXPECT_LT(g, off[r + 1]);
  }
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForGrainExactBlockGeometry) {
  ThreadPool pool(3);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(100);
    std::atomic<int> blocks{0};
    pool.parallel_for_grain(100, grain, [&](std::size_t b, std::size_t e) {
      EXPECT_EQ(b % grain, 0u);
      EXPECT_TRUE(e - b == grain || e == 100u);
      blocks.fetch_add(1);
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
    const int expected =
        static_cast<int>((100 + grain - 1) / grain);
    EXPECT_EQ(blocks.load(), expected);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every worker of a tiny pool issues its own inner parallel_for; the
  // helping wait must execute the queued inner blocks instead of letting
  // all workers block on their latches.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for_grain(10, 2, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, ParallelForGrainRethrowsLowestIndexBlockToOwner) {
  // Exceptions are routed to the call that owns the region (even when a
  // block executes on another caller's helping thread) and the winner is
  // deterministic: the lowest-index throwing block.
  ThreadPool pool(2);
  for (int rep = 0; rep < 25; ++rep) {
    bool caught = false;
    try {
      pool.parallel_for_grain(8, 1, [](std::size_t b, std::size_t) {
        if (b >= 2) {
          throw std::runtime_error("block " + std::to_string(b));
        }
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "block 2");
    }
    EXPECT_TRUE(caught);
  }
}

TEST(ThreadPool, SingleWorkerNestedStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for_grain(4, 1, [&](std::size_t, std::size_t) {
    pool.parallel_for_grain(6, 3, [&](std::size_t b, std::size_t e) {
      total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(total.load(), 24);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 10);
  }
}

TEST(StrongScaling, TaskCountsMatchPaperAxes) {
  const auto counts = paper_task_counts();
  ASSERT_EQ(counts.size(), 9u);
  EXPECT_EQ(counts.front(), 2);
  EXPECT_EQ(counts.back(), 512);
  const auto small = paper_task_counts(64);
  EXPECT_EQ(small.back(), 64);
}

TEST(StrongScaling, ChunksPartitionTheRange) {
  std::vector<int> hits(1000, 0);
  run_strong_scaling(
      1000, 7,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          ++hits[i];
        }
      },
      1);
  // Every index visited exactly once per repetition sweep.
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(StrongScaling, MaxBoundsSum) {
  const auto p = run_strong_scaling(
      100000, 4,
      [&](std::size_t b, std::size_t e) {
        volatile std::uint64_t sink = 0;
        for (std::size_t i = b; i < e; ++i) {
          sink = sink + i;
        }
      },
      2);
  EXPECT_EQ(p.tasks, 4);
  EXPECT_GT(p.max_task_seconds, 0.0);
  EXPECT_LE(p.max_task_seconds, p.sum_task_seconds + 1e-12);
  EXPECT_GE(4.0 * p.max_task_seconds, p.sum_task_seconds);
}

TEST(StrongScaling, RuntimeShrinksWithTasks) {
  // The simulated strong scaling must show the paper's qualitative
  // behavior: more tasks -> smaller per-task (max) runtime.
  auto work = [](std::size_t b, std::size_t e) {
    volatile std::uint64_t sink = 0;
    for (std::size_t i = b; i < e; ++i) {
      sink = sink + i * i;
    }
  };
  const std::size_t n = 2000000;
  const auto t2 = run_strong_scaling(n, 2, work, 3);
  const auto t16 = run_strong_scaling(n, 16, work, 3);
  EXPECT_LT(t16.max_task_seconds, t2.max_task_seconds);
}

}  // namespace
}  // namespace qforest::par

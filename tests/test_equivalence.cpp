/// \file test_equivalence.cpp
/// \brief The central property suite: all four representations implement
/// the *same* logical quadrant algebra. Every low-level operation is
/// swept with random inputs through every representation and compared in
/// canonical form against the standard baseline — the paper's core claim
/// that encodings are exchangeable "while their logical information
/// remains equivalent" (§2).

#include <gtest/gtest.h>

#include "core/canonical.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

template <class R>
class Equivalence3D : public ::testing::Test {};

using Reps3 = ::testing::Types<MortonRep<3>, AvxRep<3>, WideMortonRep<3>>;
TYPED_TEST_SUITE(Equivalence3D, Reps3);

using S3 = StandardRep<3>;

/// Shared level cap: every op must agree wherever both reps can express
/// the quadrant (3D: Morton rep caps at 18).
template <class R>
constexpr int shared_cap() {
  return std::min(test::max_index_level<R>(), test::max_index_level<S3>());
}

TYPED_TEST(Equivalence3D, MortonConstruction) {
  using R = TypeParam;
  Xoshiro256 rng(101);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    EXPECT_TRUE((test::canonically_equal<R, S3>(
        R::morton_quadrant(il, lvl), S3::morton_quadrant(il, lvl))));
  }
}

TYPED_TEST(Equivalence3D, LevelIndexInverse) {
  using R = TypeParam;
  Xoshiro256 rng(102);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    EXPECT_EQ(R::level_index(R::morton_quadrant(il, lvl)), il);
  }
}

TYPED_TEST(Equivalence3D, Child) {
  using R = TypeParam;
  Xoshiro256 rng(103);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(shared_cap<R>()));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto qr = R::morton_quadrant(il, lvl);
    const auto qs = S3::morton_quadrant(il, lvl);
    for (int c = 0; c < 8; ++c) {
      EXPECT_TRUE((test::canonically_equal<R, S3>(R::child(qr, c),
                                                  S3::child(qs, c))));
    }
  }
}

TYPED_TEST(Equivalence3D, ParentSiblingSuccessorPredecessor) {
  using R = TypeParam;
  Xoshiro256 rng(104);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(shared_cap<R>()));
    const morton_t span = morton_t{1} << (3 * lvl);
    const morton_t il = 1 + rng.next_below(span - 2);  // interior of curve
    const auto qr = R::morton_quadrant(il, lvl);
    const auto qs = S3::morton_quadrant(il, lvl);
    EXPECT_TRUE(
        (test::canonically_equal<R, S3>(R::parent(qr), S3::parent(qs))));
    EXPECT_TRUE((test::canonically_equal<R, S3>(R::successor(qr),
                                                S3::successor(qs))));
    EXPECT_TRUE((test::canonically_equal<R, S3>(R::predecessor(qr),
                                                S3::predecessor(qs))));
    for (int s = 0; s < 8; ++s) {
      EXPECT_TRUE((test::canonically_equal<R, S3>(R::sibling(qr, s),
                                                  S3::sibling(qs, s))));
    }
    EXPECT_EQ(R::child_id(qr), S3::child_id(qs));
  }
}

TYPED_TEST(Equivalence3D, FaceNeighborInterior) {
  using R = TypeParam;
  Xoshiro256 rng(105);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(shared_cap<R>()));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto qr = R::morton_quadrant(il, lvl);
    const auto qs = S3::morton_quadrant(il, lvl);
    int tb[3];
    S3::tree_boundaries(qs, tb);
    for (int f = 0; f < 6; ++f) {
      if (tb[f >> 1] == f) {
        continue;  // raw Morton wraps at the boundary by design
      }
      EXPECT_TRUE((test::canonically_equal<R, S3>(
          R::face_neighbor(qr, f), S3::face_neighbor(qs, f))));
    }
  }
}

TYPED_TEST(Equivalence3D, TreeBoundaries) {
  using R = TypeParam;
  Xoshiro256 rng(106);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    int fr[3], fs[3];
    R::tree_boundaries(R::morton_quadrant(il, lvl), fr);
    S3::tree_boundaries(S3::morton_quadrant(il, lvl), fs);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(fr[d], fs[d]);
    }
  }
}

TYPED_TEST(Equivalence3D, OrderIsomorphism) {
  using R = TypeParam;
  Xoshiro256 rng(107);
  for (int i = 0; i < 20000; ++i) {
    const int la = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const int lb = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const morton_t ia = rng.next_below(morton_t{1} << (3 * la));
    const morton_t ib = rng.next_below(morton_t{1} << (3 * lb));
    const auto ar = R::morton_quadrant(ia, la);
    const auto br = R::morton_quadrant(ib, lb);
    const auto as = S3::morton_quadrant(ia, la);
    const auto bs = S3::morton_quadrant(ib, lb);
    EXPECT_EQ(R::less(ar, br), S3::less(as, bs));
    EXPECT_EQ(R::equal(ar, br), S3::equal(as, bs));
    EXPECT_EQ(R::is_ancestor(ar, br), S3::is_ancestor(as, bs));
    EXPECT_EQ(R::overlaps(ar, br), S3::overlaps(as, bs));
  }
}

TYPED_TEST(Equivalence3D, NearestCommonAncestor) {
  using R = TypeParam;
  Xoshiro256 rng(108);
  for (int i = 0; i < 10000; ++i) {
    const int la = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const int lb = static_cast<int>(rng.next_below(shared_cap<R>() + 1));
    const morton_t ia = rng.next_below(morton_t{1} << (3 * la));
    const morton_t ib = rng.next_below(morton_t{1} << (3 * lb));
    EXPECT_TRUE((test::canonically_equal<R, S3>(
        R::nearest_common_ancestor(R::morton_quadrant(ia, la),
                                   R::morton_quadrant(ib, lb)),
        S3::nearest_common_ancestor(S3::morton_quadrant(ia, la),
                                    S3::morton_quadrant(ib, lb)))));
  }
}

TYPED_TEST(Equivalence3D, AncestorsAndDescendants) {
  using R = TypeParam;
  Xoshiro256 rng(109);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(shared_cap<R>()));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto qr = R::morton_quadrant(il, lvl);
    const auto qs = S3::morton_quadrant(il, lvl);
    const int up = static_cast<int>(rng.next_below(lvl + 1));
    EXPECT_TRUE((test::canonically_equal<R, S3>(R::ancestor(qr, up),
                                                S3::ancestor(qs, up))));
    const int down =
        lvl + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(shared_cap<R>() - lvl) + 1));
    EXPECT_TRUE((test::canonically_equal<R, S3>(
        R::first_descendant(qr, down), S3::first_descendant(qs, down))));
    EXPECT_TRUE((test::canonically_equal<R, S3>(
        R::last_descendant(qr, down), S3::last_descendant(qs, down))));
  }
}

TYPED_TEST(Equivalence3D, CanonicalRoundTrip) {
  using R = TypeParam;
  Xoshiro256 rng(110);
  for (int i = 0; i < 10000; ++i) {
    const auto q = test::random_quadrant<R>(rng, shared_cap<R>());
    // R -> standard -> R is the identity.
    const auto s = convert<R, S3>(q);
    const auto back = convert<S3, R>(s);
    EXPECT_TRUE(R::equal(q, back));
  }
}

// ------------------------------------------------------------------ 2D

template <class R>
class Equivalence2D : public ::testing::Test {};

using Reps2 = ::testing::Types<MortonRep<2>, AvxRep<2>, WideMortonRep<2>>;
TYPED_TEST_SUITE(Equivalence2D, Reps2);

using S2 = StandardRep<2>;

template <class R>
constexpr int shared_cap2() {
  return std::min({test::max_index_level<R>(), test::max_index_level<S2>()});
}

TYPED_TEST(Equivalence2D, FullOperationSweep) {
  using R = TypeParam;
  Xoshiro256 rng(111);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(shared_cap2<R>()));
    const morton_t il = rng.next_below(morton_t{1} << (2 * lvl));
    const auto qr = R::morton_quadrant(il, lvl);
    const auto qs = S2::morton_quadrant(il, lvl);
    EXPECT_TRUE((test::canonically_equal<R, S2>(qr, qs)));
    EXPECT_TRUE(
        (test::canonically_equal<R, S2>(R::parent(qr), S2::parent(qs))));
    EXPECT_EQ(R::child_id(qr), S2::child_id(qs));
    if (lvl < shared_cap2<R>()) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_TRUE((test::canonically_equal<R, S2>(R::child(qr, c),
                                                    S2::child(qs, c))));
      }
    }
    for (int s = 0; s < 4; ++s) {
      EXPECT_TRUE((test::canonically_equal<R, S2>(R::sibling(qr, s),
                                                  S2::sibling(qs, s))));
    }
    int tr[2], ts[2];
    R::tree_boundaries(qr, tr);
    S2::tree_boundaries(qs, ts);
    EXPECT_EQ(tr[0], ts[0]);
    EXPECT_EQ(tr[1], ts[1]);
    int tb[2];
    S2::tree_boundaries(qs, tb);
    for (int f = 0; f < 4; ++f) {
      if (tb[f >> 1] == f) {
        continue;
      }
      EXPECT_TRUE((test::canonically_equal<R, S2>(
          R::face_neighbor(qr, f), S2::face_neighbor(qs, f))));
    }
  }
}

TYPED_TEST(Equivalence2D, OrderIsomorphism) {
  using R = TypeParam;
  Xoshiro256 rng(112);
  for (int i = 0; i < 20000; ++i) {
    const int la = static_cast<int>(rng.next_below(shared_cap2<R>() + 1));
    const int lb = static_cast<int>(rng.next_below(shared_cap2<R>() + 1));
    const morton_t ia = rng.next_below(morton_t{1} << (2 * la));
    const morton_t ib = rng.next_below(morton_t{1} << (2 * lb));
    EXPECT_EQ(R::less(R::morton_quadrant(ia, la), R::morton_quadrant(ib, lb)),
              S2::less(S2::morton_quadrant(ia, la),
                       S2::morton_quadrant(ib, lb)));
  }
}

// --------------------------------------------------- parameterized depth

/// Exhaustive agreement at one fixed level over the whole level grid:
/// catches systematic bit errors random sweeps could miss.
class ExhaustiveLevel : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveLevel, AllOpsAllPositions3D) {
  const int lvl = GetParam();
  const morton_t n = morton_t{1} << (3 * lvl);
  for (morton_t il = 0; il < n; ++il) {
    const auto s = S3::morton_quadrant(il, lvl);
    const auto m = MortonRep<3>::morton_quadrant(il, lvl);
    const auto a = AvxRep<3>::morton_quadrant(il, lvl);
    const auto w = WideMortonRep<3>::morton_quadrant(il, lvl);
    ASSERT_TRUE((test::canonically_equal<MortonRep<3>, S3>(m, s)));
    ASSERT_TRUE((test::canonically_equal<AvxRep<3>, S3>(a, s)));
    ASSERT_TRUE((test::canonically_equal<WideMortonRep<3>, S3>(w, s)));
    if (lvl > 0) {
      ASSERT_TRUE((test::canonically_equal<MortonRep<3>, S3>(
          MortonRep<3>::parent(m), S3::parent(s))));
      ASSERT_TRUE((test::canonically_equal<AvxRep<3>, S3>(
          AvxRep<3>::parent(a), S3::parent(s))));
      ASSERT_TRUE((test::canonically_equal<WideMortonRep<3>, S3>(
          WideMortonRep<3>::parent(w), S3::parent(s))));
    }
    int fs[3], fm[3], fa[3], fw[3];
    S3::tree_boundaries(s, fs);
    MortonRep<3>::tree_boundaries(m, fm);
    AvxRep<3>::tree_boundaries(a, fa);
    WideMortonRep<3>::tree_boundaries(w, fw);
    for (int d = 0; d < 3; ++d) {
      ASSERT_EQ(fm[d], fs[d]);
      ASSERT_EQ(fa[d], fs[d]);
      ASSERT_EQ(fw[d], fs[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ExhaustiveLevel, ::testing::Values(0, 1, 2, 3),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qforest

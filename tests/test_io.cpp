/// \file test_io.cpp
/// \brief Forest serialization + representation-independent checksums:
/// round trips, cross-representation loads, corruption rejection.

#include <sstream>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "forest/io.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

template <class R>
Forest<R> make_adaptive_forest() {
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 1)
                                : Connectivity::brick3d(2, 1, 1);
  auto f = Forest<R>::new_uniform(conn, 2, 3);
  f.refine(false, [](tree_id_t t, const typename R::quad_t& q) {
    return (R::level_index(q) + static_cast<morton_t>(t)) % 3 == 0;
  });
  f.balance(BalanceKind::kFull);
  return f;
}

template <class R>
class IoT : public ::testing::Test {};

using IoReps = ::testing::Types<StandardRep<2>, MortonRep<2>, AvxRep<2>,
                                WideMortonRep<2>, StandardRep<3>,
                                MortonRep<3>, AvxRep<3>, WideMortonRep<3>>;
TYPED_TEST_SUITE(IoT, IoReps);

TYPED_TEST(IoT, SaveLoadRoundTrip) {
  using R = TypeParam;
  const auto f = make_adaptive_forest<R>();
  std::stringstream ss;
  save_forest(ss, f);
  const auto g = load_forest<R>(ss);
  ASSERT_EQ(g.num_trees(), f.num_trees());
  ASSERT_EQ(g.num_quadrants(), f.num_quadrants());
  EXPECT_EQ(g.num_ranks(), f.num_ranks());
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    const auto& a = f.tree_quadrants(t);
    const auto& b = g.tree_quadrants(t);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(R::equal(a[i], b[i]));
    }
  }
  EXPECT_EQ(forest_checksum(f), forest_checksum(g));
}

TYPED_TEST(IoT, ChecksumChangesWithMesh) {
  using R = TypeParam;
  auto f = make_adaptive_forest<R>();
  const std::uint64_t before = forest_checksum(f);
  f.refine(false, [](tree_id_t, const typename R::quad_t& q) {
    return R::level_index(q) == 1;
  });
  EXPECT_NE(forest_checksum(f), before);
}

TEST(IoCrossRep, SaveMortonLoadEverywhere3D) {
  const auto f = make_adaptive_forest<MortonRep<3>>();
  std::stringstream ss;
  save_forest(ss, f);
  const std::string blob = ss.str();
  const std::uint64_t want = forest_checksum(f);

  {
    std::istringstream in(blob);
    const auto g = load_forest<StandardRep<3>>(in);
    EXPECT_EQ(forest_checksum(g), want);
    EXPECT_EQ(g.num_quadrants(), f.num_quadrants());
  }
  {
    std::istringstream in(blob);
    const auto g = load_forest<AvxRep<3>>(in);
    EXPECT_EQ(forest_checksum(g), want);
  }
  {
    std::istringstream in(blob);
    const auto g = load_forest<WideMortonRep<3>>(in);
    EXPECT_EQ(forest_checksum(g), want);
  }
}

TEST(IoCrossRep, ChecksumEqualAcrossRepresentationsByConstruction) {
  // The same logical mesh built independently in every representation
  // hashes identically.
  const std::uint64_t hs =
      forest_checksum(make_adaptive_forest<StandardRep<3>>());
  EXPECT_EQ(forest_checksum(make_adaptive_forest<MortonRep<3>>()), hs);
  EXPECT_EQ(forest_checksum(make_adaptive_forest<AvxRep<3>>()), hs);
  EXPECT_EQ(forest_checksum(make_adaptive_forest<WideMortonRep<3>>()), hs);
}

TEST(IoErrors, BadMagicRejected) {
  std::istringstream in("NOPE....");
  EXPECT_THROW(load_forest<MortonRep<3>>(in), std::runtime_error);
}

TEST(IoErrors, TruncationRejected) {
  const auto f = make_adaptive_forest<MortonRep<3>>();
  std::stringstream ss;
  save_forest(ss, f);
  std::string blob = ss.str();
  blob.resize(blob.size() / 2);
  std::istringstream in(blob);
  EXPECT_THROW(load_forest<MortonRep<3>>(in), std::runtime_error);
}

TEST(IoErrors, DimensionMismatchRejected) {
  const auto f = make_adaptive_forest<MortonRep<2>>();
  std::stringstream ss;
  save_forest(ss, f);
  EXPECT_THROW(load_forest<MortonRep<3>>(ss), std::runtime_error);
}

TEST(IoErrors, LevelBeyondRepresentationRejected) {
  // A level-20 3D mesh cannot load into MortonRep<3> (max 18).
  auto f = Forest<StandardRep<3>>::new_root(Connectivity::unit(3));
  f.refine(true, [](tree_id_t, const StandardRep<3>::quad_t& q) {
    return StandardRep<3>::level(q) < 20 &&
           StandardRep<3>::level_index(q) == 0;
  });
  std::stringstream ss;
  save_forest(ss, f);
  EXPECT_THROW(load_forest<MortonRep<3>>(ss), std::invalid_argument);
}

TEST(IoReplaceLeaves, RejectsWrongTreeCount) {
  auto f = Forest<MortonRep<3>>::new_uniform(Connectivity::unit(3), 1);
  EXPECT_THROW(f.replace_leaves({}), std::invalid_argument);
}

}  // namespace
}  // namespace qforest

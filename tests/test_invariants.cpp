/// \file test_invariants.cpp
/// \brief Failure injection and structural edge cases: is_valid must
/// reject every way a leaf array can be broken, and boundary behaviors
/// (max level, empty trees, ghost symmetry) must hold.

#include <atomic>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

using R = MortonRep<2>;
using F = Forest<R>;

F small_forest() { return F::new_uniform(Connectivity::unit(2), 2); }

std::vector<std::vector<R::quad_t>> leaves_of(const F& f) {
  std::vector<std::vector<R::quad_t>> out;
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    out.push_back(f.tree_quadrants(t));
  }
  return out;
}

TEST(FailureInjection, UnsortedLeavesRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  std::swap(trees[0][1], trees[0][2]);
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, DuplicateLeafRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  trees[0][1] = trees[0][0];
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, OverlappingLeavesRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  // Replace a leaf with its own child: overlap with the sibling gap, and
  // the region is no longer fully covered.
  trees[0][3] = R::child(trees[0][3], 0);
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, MissingLeafRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  trees[0].erase(trees[0].begin() + 5);
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, ExtraLeafRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  // Append the first leaf's deep descendant after the last leaf: sorted
  // order is violated (and coverage double-counted).
  trees[0].push_back(R::child(trees[0][0], 0));
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, GarbageWordRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  trees[0][0] = ~R::quad_t{0};  // invalid level byte and index bits
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, EmptyTreeRejected) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  trees[0].clear();
  f.replace_leaves(std::move(trees));
  EXPECT_FALSE(f.is_valid());
}

TEST(FailureInjection, ValidReplacementAccepted) {
  auto f = small_forest();
  auto trees = leaves_of(f);
  f.replace_leaves(std::move(trees));
  EXPECT_TRUE(f.is_valid());
}

TEST(EdgeCases, RefineAtMaxIndexLevelIsNoOp) {
  // MortonRep<2> allows deep levels; use a small forest at the cap by
  // refining one chain to max_level and asking again.
  auto f = F::new_root(Connectivity::unit(2));
  f.refine(true, [](tree_id_t, const R::quad_t& q) {
    return R::level(q) < R::max_level && R::level_index(q) == 0;
  });
  const gidx_t n = f.num_quadrants();
  EXPECT_EQ(f.max_level_used(), R::max_level);
  // Asking to refine everything: the max-level chain leaf must survive.
  f.refine(false, [](tree_id_t, const R::quad_t& q) {
    return R::level(q) >= R::max_level;  // only the capped leaf says yes
  });
  EXPECT_EQ(f.num_quadrants(), n);
  EXPECT_TRUE(f.is_valid());
}

TEST(EdgeCases, CoarsenRootForestIsNoOp) {
  auto f = F::new_root(Connectivity::unit(2));
  f.coarsen(true, [](tree_id_t, const R::quad_t*) { return true; });
  EXPECT_EQ(f.num_quadrants(), 1);
}

TEST(EdgeCases, CoarsenSkipsPartialFamilies) {
  auto f = F::new_uniform(Connectivity::unit(2), 1);
  // Refine leaf 0 only: leaves = {4 children of 0, 1, 2, 3}. The last
  // three level-1 leaves are 3/4 of a family (missing child 0 at level 1
  // -- it is refined), so nothing may coarsen into the root.
  f.refine(false, [](tree_id_t, const R::quad_t& q) {
    return R::level_index(q) == 0;
  });
  int calls = 0;
  f.coarsen(false, [&](tree_id_t, const R::quad_t* fam) {
    ++calls;
    // Every offered family must be a genuine family.
    EXPECT_EQ(R::child_id(fam[0]), 0);
    return false;
  });
  // The four children of former leaf 0 are the only complete family.
  EXPECT_EQ(calls, 1);
}

TEST(EdgeCases, GhostSymmetry) {
  // If leaf g (owned by o) is in rank r's ghost layer, then some leaf of
  // r is in rank o's ghost layer (adjacency is symmetric).
  auto f = Forest<StandardRep<2>>::new_uniform(Connectivity::unit(2), 3, 5);
  f.refine(false, [](tree_id_t, const StandardRep<2>::quad_t& q) {
    return StandardRep<2>::level_index(q) % 4 == 0;
  });
  std::vector<GhostLayer<StandardRep<2>>> ghosts;
  ghosts.reserve(5);
  for (int r = 0; r < 5; ++r) {
    ghosts.push_back(f.ghost_layer(r));
  }
  for (int r = 0; r < 5; ++r) {
    for (const auto& e : ghosts[static_cast<std::size_t>(r)].entries) {
      const int o = e.owner;
      bool reciprocated = false;
      for (const auto& back : ghosts[static_cast<std::size_t>(o)].entries) {
        if (back.owner == r) {
          reciprocated = true;
          break;
        }
      }
      EXPECT_TRUE(reciprocated) << "rank " << r << " sees ghosts of rank "
                                << o << " but not vice versa";
    }
  }
}

TEST(EdgeCases, SingleLeafTreeBrick) {
  // 3x3 brick of root-only trees: every neighbor lookup crosses trees.
  auto f = Forest<StandardRep<2>>::new_root(Connectivity::brick2d(3, 3));
  EXPECT_EQ(f.num_quadrants(), 9);
  EXPECT_TRUE(f.is_valid());
  EXPECT_TRUE(f.is_balanced(BalanceKind::kFull));
  std::atomic<gidx_t> faces{0}, boundaries{0};  // callback runs concurrently
  f.iterate_faces([&](const FaceInfo<StandardRep<2>>& info) {
    (info.is_boundary ? boundaries : faces) += 1;
  });
  EXPECT_EQ(faces, 12);       // 2 * 3 * 2 interior tree interfaces
  EXPECT_EQ(boundaries, 12);  // 4 * 3 outer faces
}

TEST(EdgeCases, LocateRoundTripsGlobalIndices) {
  auto f = Forest<MortonRep<3>>::new_uniform(
      Connectivity::brick3d(2, 2, 1), 2, 3);
  for (gidx_t g = 0; g < f.num_quadrants(); ++g) {
    const auto [t, i] = f.locate(g);
    EXPECT_EQ(f.global_index(t, i), g);
  }
}

}  // namespace
}  // namespace qforest

/// \file test_read_paths.cpp
/// \brief Batched-vs-scalar parity of the read-side consumer paths:
/// ghost_layer (multi-rank, cross-tree, periodic wrap), mirrors (one-pass
/// == per-rank recomputation), iterate_faces (hanging + boundary faces,
/// unbalanced forests) and search_points (vs per-point search), on both
/// dispatch paths and under tiny chunk grains that force many chunks.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "forest/vforest.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

/// Restores the process-global dispatch flag even when an ASSERT_ bails
/// out of the test body.
struct BatchFlagGuard {
  explicit BatchFlagGuard(bool on) : saved_(batch::enabled()) {
    batch::set_enabled(on);
  }
  ~BatchFlagGuard() { batch::set_enabled(saved_); }
  bool saved_;
};

/// Restores the chunk grain (tests shrink it to force many chunks).
struct ChunkGrainGuard {
  explicit ChunkGrainGuard(std::size_t grain) : saved_(chunk_grain()) {
    set_chunk_grain(grain);
  }
  ~ChunkGrainGuard() { set_chunk_grain(saved_); }
  std::size_t saved_;
};

/// A mixed-level forest: refine a deterministic scatter of leaves so the
/// mesh has hanging interfaces in every tree.
template <class R>
Forest<R> make_refined(Connectivity conn, int base, int ranks) {
  auto f = Forest<R>::new_uniform(std::move(conn), base, ranks);
  f.refine(false, [](tree_id_t t, const typename R::quad_t& q) {
    return (R::level_index(q) + static_cast<morton_t>(t)) % 5 == 0;
  });
  f.partition();
  return f;
}

/// Every rank's ghost set as sorted global indices.
template <class R>
std::vector<std::vector<gidx_t>> ghost_sets(const Forest<R>& f) {
  std::vector<std::vector<gidx_t>> out;
  for (int r = 0; r < f.num_ranks(); ++r) {
    std::vector<gidx_t> g;
    for (const auto& e : f.ghost_layer(r).entries) {
      g.push_back(e.global_index);
    }
    out.push_back(std::move(g));
  }
  return out;
}

template <class R>
void expect_ghost_parity(const Forest<R>& f) {
  std::vector<std::vector<gidx_t>> scalar, batched;
  {
    const BatchFlagGuard guard(false);
    scalar = ghost_sets(f);
  }
  {
    const BatchFlagGuard guard(true);
    batched = ghost_sets(f);
  }
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t r = 0; r < scalar.size(); ++r) {
    EXPECT_EQ(scalar[r], batched[r]) << R::name << " rank " << r;
  }
  // Tiny grain: every chunk boundary becomes a seam the batched scan must
  // handle (span staging, cursor seeding, bucket merging).
  {
    const BatchFlagGuard guard(true);
    const ChunkGrainGuard grain(3);
    EXPECT_EQ(ghost_sets(f), scalar) << R::name << " grain=3";
  }
}

using S2 = StandardRep<2>;
using M3 = MortonRep<3>;

template <class R>
class ReadPathsT : public ::testing::Test {};
TYPED_TEST_SUITE(ReadPathsT, test::AllReps);

TYPED_TEST(ReadPathsT, GhostParityMultiRank) {
  using R = TypeParam;
  const int base = R::dim == 3 ? 2 : 3;
  expect_ghost_parity(
      make_refined<R>(Connectivity::unit(R::dim), base, 4));
}

TEST(ReadPaths, GhostParityCrossTree2D) {
  expect_ghost_parity(make_refined<S2>(Connectivity::brick2d(3, 2), 2, 5));
}

TEST(ReadPaths, GhostParityCrossTree3D) {
  expect_ghost_parity(make_refined<M3>(Connectivity::brick3d(2, 2, 2), 1, 3));
}

TEST(ReadPaths, GhostParityPeriodicWrap) {
  // Periodic in both directions: neighbor keys wrap back into the source
  // tree (target == t after the wrap) and into sibling trees.
  expect_ghost_parity(
      make_refined<S2>(Connectivity::brick2d(1, 1, true, true), 3, 4));
  expect_ghost_parity(
      make_refined<S2>(Connectivity::brick2d(2, 1, true, true), 2, 3));
}

TEST(ReadPaths, MirrorsMatchPerRankRecomputation) {
  // Pin the one-pass mirrors() to the old O(ranks x ghost) definition:
  // own leaves appearing in some other rank's ghost layer.
  const auto f = make_refined<S2>(Connectivity::brick2d(2, 2), 2, 5);
  for (int r = 0; r < f.num_ranks(); ++r) {
    std::set<gidx_t> expected;
    const auto [first, last] = f.rank_range(r);
    for (int other = 0; other < f.num_ranks(); ++other) {
      if (other == r) {
        continue;
      }
      for (const auto& e : f.ghost_layer(other).entries) {
        if (e.global_index >= first && e.global_index < last) {
          expected.insert(e.global_index);
        }
      }
    }
    const std::vector<gidx_t> got = f.mirrors(r);
    EXPECT_EQ(got, std::vector<gidx_t>(expected.begin(), expected.end()))
        << "rank " << r;
  }
}

/// Order-independent face fingerprint: one canonical tuple per emission.
template <class R>
std::multiset<std::tuple<bool, bool, tree_id_t, std::size_t, int, tree_id_t,
                         std::size_t, int>>
face_fingerprint(const Forest<R>& f) {
  std::multiset<std::tuple<bool, bool, tree_id_t, std::size_t, int,
                           tree_id_t, std::size_t, int>>
      out;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<R>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    out.insert({info.is_boundary, info.is_hanging, info.tree[0],
                info.leaf_index[0], info.face[0], info.tree[1],
                info.leaf_index[1], info.face[1]});
  });
  return out;
}

template <class R>
void expect_iterate_parity(const Forest<R>& f) {
  const BatchFlagGuard scalar_guard(false);
  const auto scalar = face_fingerprint(f);
  ASSERT_FALSE(scalar.empty());
  {
    const BatchFlagGuard guard(true);
    EXPECT_EQ(face_fingerprint(f), scalar) << R::name;
    const ChunkGrainGuard grain(2);
    EXPECT_EQ(face_fingerprint(f), scalar) << R::name << " grain=2";
  }
}

TYPED_TEST(ReadPathsT, IterateFacesParityHangingAndBoundary) {
  using R = TypeParam;
  const int base = R::dim == 3 ? 2 : 3;
  expect_iterate_parity(
      make_refined<R>(Connectivity::unit(R::dim), base, 1));
}

TEST(ReadPaths, IterateFacesParityUnbalanced) {
  // A refinement chain leaves the forest non-2:1-balanced: hanging pairs
  // may differ by several levels.
  auto f = Forest<S2>::new_uniform(Connectivity::unit(2), 1);
  f.refine(true, [](tree_id_t, const S2::quad_t& q) {
    const int l = S2::level(q);
    const morton_t chain = l == 0 ? 0 : (morton_t{1} << (2 * (l - 1))) - 1;
    return l < 5 && S2::level_index(q) == chain;
  });
  ASSERT_FALSE(f.is_balanced(BalanceKind::kFace));
  expect_iterate_parity(f);
}

TEST(ReadPaths, IterateFacesParityCrossTreeAndPeriodic) {
  expect_iterate_parity(make_refined<S2>(Connectivity::brick2d(3, 2), 2, 1));
  expect_iterate_parity(
      make_refined<S2>(Connectivity::brick2d(2, 2, true, true), 2, 1));
  expect_iterate_parity(
      make_refined<M3>(Connectivity::brick3d(2, 1, 2), 1, 1));
}

/// Random in-domain canonical points, biased toward leaf boundaries (the
/// half-open convention's interesting case) by snapping some coordinates
/// to coarse grid lines.
std::vector<PointQuery> random_points(Xoshiro256& rng, int dim,
                                      tree_id_t num_trees, std::size_t n) {
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
  std::vector<PointQuery> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PointQuery p;
    p.tree = static_cast<tree_id_t>(rng.next_below(
        static_cast<std::uint64_t>(num_trees)));
    auto coord = [&]() {
      std::int64_t c = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(root)));
      if (rng.next_below(4) == 0) {
        c &= ~((std::int64_t{1} << (kCanonicalLevel - 3)) - 1);
      }
      return c;
    };
    p.x = coord();
    p.y = coord();
    p.z = dim == 3 ? coord() : 0;
    pts.push_back(p);
  }
  return pts;
}

TYPED_TEST(ReadPathsT, SearchPointsMatchesPerPointScalar) {
  using R = TypeParam;
  const int base = R::dim == 3 ? 2 : 3;
  const auto f =
      make_refined<R>(Connectivity::unit(R::dim), base, 1);
  Xoshiro256 rng(2024);
  const auto pts = random_points(rng, R::dim, f.num_trees(), 500);
  std::vector<gidx_t> scalar, batched;
  {
    const BatchFlagGuard guard(false);
    scalar = f.search_points(pts);
  }
  {
    const BatchFlagGuard guard(true);
    batched = f.search_points(pts);
    const ChunkGrainGuard grain(7);
    EXPECT_EQ(f.search_points(pts), scalar) << R::name << " grain=7";
  }
  EXPECT_EQ(batched, scalar) << R::name;
  // The resolved leaf must actually contain its point (half-open boxes).
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto [t, li] = f.locate(scalar[i]);
    ASSERT_EQ(t, pts[i].tree);
    const CanonicalQuadrant c = to_canonical<R>(f.tree_quadrants(t)[li]);
    const std::int64_t h = std::int64_t{1}
                           << (kCanonicalLevel - c.level);
    EXPECT_TRUE(pts[i].x >= c.x && pts[i].x < c.x + h) << i;
    EXPECT_TRUE(pts[i].y >= c.y && pts[i].y < c.y + h) << i;
    if (R::dim == 3) {
      EXPECT_TRUE(pts[i].z >= c.z && pts[i].z < c.z + h) << i;
    }
  }
}

TEST(ReadPaths, SearchPointsMultiTree) {
  const auto f = make_refined<S2>(Connectivity::brick2d(3, 2), 2, 1);
  Xoshiro256 rng(7);
  const auto pts = random_points(rng, 2, f.num_trees(), 400);
  std::vector<gidx_t> scalar;
  {
    const BatchFlagGuard guard(false);
    scalar = f.search_points(pts);
  }
  const BatchFlagGuard guard(true);
  EXPECT_EQ(f.search_points(pts), scalar);
}

TEST(ReadPaths, SearchPointsRejectsOutOfDomain) {
  const auto f = Forest<S2>::new_uniform(Connectivity::unit(2), 2);
  EXPECT_THROW((void)f.search_points({PointQuery{1, 0, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW((void)f.search_points({PointQuery{0, -1, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)f.search_points({PointQuery{0, 0, 0, 1}}),  // z != 0 in 2D
      std::invalid_argument);
}

TEST(ReadPaths, VForestSearchPointsMatchesTemplateForest) {
  // Same uniform mesh in both stacks: identical curve order, so global
  // indices must agree query-for-query.
  const int level = 3;
  const auto f = Forest<S2>::new_uniform(Connectivity::unit(2), level);
  const auto vf =
      VForest::new_uniform(RepKind::kStandard, Connectivity::unit(2), level);
  Xoshiro256 rng(99);
  const auto pts = random_points(rng, 2, 1, 300);
  const std::vector<gidx_t> expected = f.search_points(pts);
  const std::vector<std::int64_t> got = vf.search_points(pts);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << i;
  }
}

}  // namespace
}  // namespace qforest

/// \file test_quadrant_avx.cpp
/// \brief Unit tests for the Vec128 SIMD wrapper and the 128-bit AVX2
/// quadrant representation, paper §2.3 / Algorithms 9-12.

#include <gtest/gtest.h>

#include "core/quadrant_avx.hpp"
#include "core/quadrant_std.hpp"
#include "helpers.hpp"
#include "simd/feature_detect.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

using simd::Vec128;
using A2 = AvxRep<2>;
using A3 = AvxRep<3>;
using S3 = StandardRep<3>;

// ---------------------------------------------------------------- Vec128

TEST(Vec128, SetAndExtractLanes) {
  const auto v = Vec128::set32(4, 3, 2, 1);
  EXPECT_EQ(v.lane32<0>(), 1u);
  EXPECT_EQ(v.lane32<1>(), 2u);
  EXPECT_EQ(v.lane32<2>(), 3u);
  EXPECT_EQ(v.lane32<3>(), 4u);
  EXPECT_EQ(v.lane64<0>(), (std::uint64_t{2} << 32) | 1u);
  EXPECT_EQ(v.lane64<1>(), (std::uint64_t{4} << 32) | 3u);
}

TEST(Vec128, Set64MatchesLane32Pairs) {
  const auto v = Vec128::set64(0xAABBCCDD11223344ull, 0x5566778899AABBCCull);
  EXPECT_EQ(v.lane32<0>(), 0x99AABBCCu);
  EXPECT_EQ(v.lane32<1>(), 0x55667788u);
  EXPECT_EQ(v.lane32<2>(), 0x11223344u);
  EXPECT_EQ(v.lane32<3>(), 0xAABBCCDDu);
}

TEST(Vec128, BitwiseOps) {
  const auto a = Vec128::set32(0xF0F0F0F0u, 0xFF00FF00u, 0x0F0F0F0Fu, 0xAAAAAAAAu);
  const auto b = Vec128::set32(0x0F0F0F0Fu, 0x00FF00FFu, 0xF0F0F0F0u, 0x55555555u);
  EXPECT_TRUE((a & b).all_zero());
  EXPECT_TRUE(Vec128::equal(a | b, Vec128::ones()));
  EXPECT_TRUE(Vec128::equal(a ^ b, Vec128::ones()));
  EXPECT_TRUE(Vec128::equal(~a, b));
  EXPECT_TRUE(Vec128::equal(Vec128::andnot(a, b), b));
}

TEST(Vec128, Arithmetic32) {
  const auto a = Vec128::set32(10, 20, 30, 40);
  const auto b = Vec128::set32(1, 2, 3, 4);
  const auto sum = Vec128::add32(a, b);
  EXPECT_EQ(sum.lane32<0>(), 44u);
  EXPECT_EQ(sum.lane32<3>(), 11u);
  const auto diff = Vec128::sub32(a, b);
  EXPECT_EQ(diff.lane32<0>(), 36u);
  EXPECT_EQ(diff.lane32<3>(), 9u);
  // Unsigned wrap on subtraction below zero.
  const auto wrap = Vec128::sub32(b, a);
  EXPECT_EQ(wrap.lane32<0>(), static_cast<std::uint32_t>(4 - 40));
}

TEST(Vec128, Shifts) {
  const auto v = Vec128::broadcast32(0x10u);
  EXPECT_EQ(Vec128::shl32(v, 4).lane32<2>(), 0x100u);
  EXPECT_EQ(Vec128::shr32(v, 4).lane32<1>(), 0x1u);
  const auto vv = Vec128::set32(8, 4, 2, 1);
  const auto sh = Vec128::shlv32(vv, Vec128::set32(0, 1, 2, 3));
  EXPECT_EQ(sh.lane32<0>(), 8u);
  EXPECT_EQ(sh.lane32<1>(), 8u);
  EXPECT_EQ(sh.lane32<2>(), 8u);
  EXPECT_EQ(sh.lane32<3>(), 8u);
  const auto shr = Vec128::shrv32(sh, Vec128::set32(3, 2, 1, 0));
  EXPECT_EQ(shr.lane32<0>(), 8u);
  EXPECT_EQ(shr.lane32<3>(), 1u);
}

TEST(Vec128, Shifts64) {
  const auto v = Vec128::set64(0x10, 0x10);
  const auto l = Vec128::shlv64(v, Vec128::set64(8, 4));
  EXPECT_EQ(l.lane64<0>(), 0x100u);
  EXPECT_EQ(l.lane64<1>(), 0x1000u);
  const auto r = Vec128::shrv64(l, Vec128::set64(8, 4));
  EXPECT_EQ(r.lane64<0>(), 0x10u);
  EXPECT_EQ(r.lane64<1>(), 0x10u);
}

TEST(Vec128, CompareAndBlend) {
  const auto a = Vec128::set32(1, 2, 3, 4);
  const auto b = Vec128::set32(1, 9, 3, 9);
  const auto eq = Vec128::cmpeq32(a, b);
  EXPECT_EQ(eq.lane32<3>(), 0xFFFFFFFFu);
  EXPECT_EQ(eq.lane32<2>(), 0u);
  EXPECT_EQ(eq.lane32<1>(), 0xFFFFFFFFu);
  EXPECT_EQ(eq.lane32<0>(), 0u);
  const auto sel = Vec128::blend(eq, Vec128::broadcast32(7),
                                 Vec128::broadcast32(9));
  EXPECT_EQ(sel.lane32<3>(), 7u);
  EXPECT_EQ(sel.lane32<0>(), 9u);
  const auto gt = Vec128::cmpgt32(Vec128::set32(0, 0, 1, 0),
                                  Vec128::set32(0, 0, 0, 0));
  EXPECT_EQ(gt.lane32<1>(), 0xFFFFFFFFu);
  EXPECT_EQ(gt.lane32<0>(), 0u);
}

TEST(Vec128, WithLane) {
  auto v = Vec128::zero();
  v = v.with_lane32<3>(0x42u);
  EXPECT_EQ(v.lane32<3>(), 0x42u);
  EXPECT_EQ(v.lane32<0>(), 0u);
}

TEST(Vec128, FeatureReport) {
  // The detection must at least not crash and report a coherent story.
  const auto& f = simd::cpu_features();
  if (simd::avx2_usable()) {
    EXPECT_TRUE(f.avx2);
  }
  EXPECT_FALSE(simd::feature_string().empty());
}

// ------------------------------------------------------------- AvxRep

TEST(AvxLayout, StorageAndLimits) {
  // Paper: 16 bytes, max level above standard's 29.
  EXPECT_EQ(sizeof(A3::quad_t), 16u);
  EXPECT_EQ(A3::max_level, 30);
}

TEST(AvxAlgorithm9, ChildMatchesStandard) {
  Xoshiro256 rng(51);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(21));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = A3::morton_quadrant(il, lvl);
    const auto s = S3::morton_quadrant(il, lvl);
    for (int c = 0; c < 8; ++c) {
      const auto qc = A3::child(q, c);
      const auto sc = S3::child(s, c);
      EXPECT_TRUE((test::canonically_equal<A3, S3>(qc, sc)));
      EXPECT_EQ(A3::child_id(qc), c);
      EXPECT_TRUE(A3::equal(A3::parent(qc), q));
    }
  }
}

TEST(AvxAlgorithm10, ParentLevelLane) {
  Xoshiro256 rng(52);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const auto q = test::random_quadrant_at<A3>(rng, lvl);
    const auto p = A3::parent(q);
    EXPECT_EQ(A3::level(p), lvl - 1);
    EXPECT_TRUE(A3::is_ancestor(p, q));
  }
}

TEST(AvxAlgorithm11, MortonMatchesStandard) {
  Xoshiro256 rng(53);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(22));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto a = A3::morton_quadrant(il, lvl);
    const auto s = S3::morton_quadrant(il, lvl);
    EXPECT_TRUE((test::canonically_equal<A3, S3>(a, s)));
    EXPECT_EQ(A3::level_index(a), il);
  }
}

TEST(AvxAlgorithm11, TwoDimensional) {
  Xoshiro256 rng(54);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(31));
    const morton_t il = rng.next_below(morton_t{1} << (2 * lvl));
    const auto a = A2::morton_quadrant(il, lvl);
    EXPECT_EQ(A2::level_index(a), il);
    EXPECT_EQ(A2::level(a), lvl);
    EXPECT_TRUE(A2::is_valid(a));
  }
}

TEST(AvxAlgorithm12, TreeBoundariesEncoding) {
  int f[3];
  A3::tree_boundaries(A3::root(), f);
  EXPECT_EQ(f[0], kBoundaryAll);
  EXPECT_EQ(f[1], kBoundaryAll);
  EXPECT_EQ(f[2], kBoundaryAll);

  A3::tree_boundaries(A3::child(A3::root(), 0), f);
  EXPECT_EQ(f[0], 0);
  EXPECT_EQ(f[1], 2);
  EXPECT_EQ(f[2], 4);

  A3::tree_boundaries(A3::child(A3::root(), 7), f);
  EXPECT_EQ(f[0], 1);
  EXPECT_EQ(f[1], 3);
  EXPECT_EQ(f[2], 5);

  // Mixed: child 1 touches +x, -y, -z.
  A3::tree_boundaries(A3::child(A3::root(), 1), f);
  EXPECT_EQ(f[0], 1);
  EXPECT_EQ(f[1], 2);
  EXPECT_EQ(f[2], 4);

  // Interior quadrant.
  const coord_t h2 = A3::length_at(2);
  A3::tree_boundaries(A3::from_coords(h2, h2, h2, 2), f);
  EXPECT_EQ(f[0], kBoundaryNone);
  EXPECT_EQ(f[1], kBoundaryNone);
  EXPECT_EQ(f[2], kBoundaryNone);
}

TEST(AvxAlgorithm12, MatchesStandardRandomSweep) {
  Xoshiro256 rng(55);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(21));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto a = A3::morton_quadrant(il, lvl);
    // Compare against the standard formulation at standard's scaling.
    const auto s = S3::morton_quadrant(il, lvl);
    int fa[3], fs[3];
    A3::tree_boundaries(a, fa);
    S3::tree_boundaries(s, fs);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(fa[d], fs[d]);
    }
  }
}

TEST(AvxSibling, MatchesChildOfParent) {
  Xoshiro256 rng(56);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const auto q = test::random_quadrant_at<A3>(rng, lvl);
    const auto p = A3::parent(q);
    for (int s = 0; s < 8; ++s) {
      EXPECT_TRUE(A3::equal(A3::sibling(q, s), A3::child(p, s)));
    }
  }
}

TEST(AvxFaceNeighbor, InverseAndExterior) {
  Xoshiro256 rng(57);
  for (int i = 0; i < 10000; ++i) {
    const auto q = test::random_quadrant<A3>(rng, 20);
    for (int f = 0; f < 6; ++f) {
      const auto n = A3::face_neighbor(q, f);
      EXPECT_TRUE(A3::equal(A3::face_neighbor(n, f ^ 1), q));
      EXPECT_EQ(A3::level(n), A3::level(q));
    }
  }
  // Exterior detection via signed lanes.
  const auto corner = A3::child(A3::root(), 0);
  EXPECT_FALSE(A3::inside_root(A3::face_neighbor(corner, 0)));
  EXPECT_TRUE(A3::inside_root(A3::face_neighbor(corner, 1)));
}

TEST(AvxCornerNeighbor, MatchesStandard) {
  Xoshiro256 rng(58);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto a = A3::morton_quadrant(il, lvl);
    const auto s = S3::morton_quadrant(il, lvl);
    for (int c = 0; c < 8; ++c) {
      const auto na = A3::corner_neighbor(a, c);
      const auto ns = S3::corner_neighbor(s, c);
      if (S3::inside_root(ns)) {
        EXPECT_TRUE((test::canonically_equal<A3, S3>(na, ns)));
      }
    }
  }
}

TEST(AvxCompare, TotalOrderConsistency) {
  Xoshiro256 rng(59);
  for (int i = 0; i < 20000; ++i) {
    const auto a = test::random_quadrant<A3>(rng, 20);
    const auto b = test::random_quadrant<A3>(rng, 20);
    const bool lt = A3::less(a, b);
    const bool gt = A3::less(b, a);
    EXPECT_FALSE(lt && gt);
    if (!lt && !gt) {
      EXPECT_TRUE(A3::equal(a, b));
    }
  }
}

TEST(AvxDescendants, BracketQuadrant) {
  Xoshiro256 rng(60);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(19));
    const auto q = test::random_quadrant_at<A3>(rng, lvl);
    const int up = static_cast<int>(rng.next_below(lvl));
    const auto anc = A3::ancestor(q, up);
    const auto fd = A3::first_descendant(anc, lvl);
    const auto ld = A3::last_descendant(anc, lvl);
    EXPECT_FALSE(A3::less(q, fd));
    EXPECT_FALSE(A3::less(ld, q));
  }
}

TEST(AvxSuccessor, AgreesWithStandard) {
  Xoshiro256 rng(61);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const morton_t il =
        rng.next_below((morton_t{1} << (3 * lvl)) - 1);
    const auto a = A3::morton_quadrant(il, lvl);
    EXPECT_EQ(A3::level_index(A3::successor(a)), il + 1);
    EXPECT_TRUE(A3::equal(A3::predecessor(A3::successor(a)), a));
  }
}

TEST(AvxValidity, SignedExteriorRejected) {
  const auto bad = A3::from_coords(-1, 0, 0, A3::max_level);
  EXPECT_FALSE(A3::is_valid(bad));
  const auto good = A3::from_coords(0, 0, 0, A3::max_level);
  EXPECT_TRUE(A3::is_valid(good));
}

}  // namespace
}  // namespace qforest

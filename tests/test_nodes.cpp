/// \file test_nodes.cpp
/// \brief Corner-node numbering: counts on uniform grids, hanging node
/// classification, periodic identification, cross-representation
/// equality, and ghost mirror/exchange semantics.

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "forest/nodes.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

TEST(Nodes, Uniform2DCounts) {
  for (int lvl = 0; lvl <= 4; ++lvl) {
    auto f = Forest<StandardRep<2>>::new_uniform(Connectivity::unit(2), lvl);
    const auto nodes = number_corner_nodes(f);
    const std::int64_t n = (std::int64_t{1} << lvl) + 1;
    EXPECT_EQ(nodes.num_nodes(), n * n) << "level " << lvl;
    EXPECT_EQ(nodes.num_independent(), n * n);
    EXPECT_EQ(nodes.element_nodes.size(),
              static_cast<std::size_t>(f.num_quadrants()));
  }
}

TEST(Nodes, Uniform3DCounts) {
  for (int lvl = 0; lvl <= 3; ++lvl) {
    auto f = Forest<MortonRep<3>>::new_uniform(Connectivity::unit(3), lvl);
    const auto nodes = number_corner_nodes(f);
    const std::int64_t n = (std::int64_t{1} << lvl) + 1;
    EXPECT_EQ(nodes.num_nodes(), n * n * n) << "level " << lvl;
    EXPECT_EQ(nodes.num_independent(), n * n * n);
  }
}

TEST(Nodes, SingleHangingFace2D) {
  // Refine one quadrant of a level-1 mesh: the two new edge midpoints on
  // the faces shared with the *unrefined* neighbors are hanging; the
  // center point and boundary midpoints are not.
  auto f = Forest<StandardRep<2>>::new_uniform(Connectivity::unit(2), 1);
  f.refine(false, [](tree_id_t, const StandardRep<2>::quad_t& q) {
    return StandardRep<2>::level_index(q) == 0;
  });
  ASSERT_TRUE(f.is_balanced(BalanceKind::kFace));
  const auto nodes = number_corner_nodes(f);
  // 3x3 coarse grid (9) + 4 new points from the refinement: the refined
  // quadrant adds its center and 4 edge midpoints, 2 of which lie on the
  // domain boundary (not hanging), 2 on interior faces shared with
  // coarser neighbors (hanging).
  EXPECT_EQ(nodes.num_nodes(), 9 + 5);
  std::int64_t hanging = 0;
  for (const bool h : nodes.hanging) {
    hanging += h ? 1 : 0;
  }
  EXPECT_EQ(hanging, 2);
  EXPECT_EQ(nodes.num_independent(), nodes.num_nodes() - 2);
}

TEST(Nodes, ElementNodeIdsAreShared) {
  // Adjacent elements reference the same id for their shared corners.
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 2);
  const auto nodes = number_corner_nodes(f);
  // Element 0 (lower-left cell) corner 1 (lower-right) == element of the
  // +x neighbor, corner 0.
  const auto& leaves = f.tree_quadrants(0);
  std::size_t right = leaves.size();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    coord_t x, y, z;
    int lvl;
    MortonRep<2>::to_coords(leaves[i], x, y, z, lvl);
    if (x == MortonRep<2>::length_at(2) && y == 0) {
      right = i;
    }
  }
  ASSERT_LT(right, leaves.size());
  EXPECT_EQ(nodes.element_nodes[0][1], nodes.element_nodes[right][0]);
}

TEST(Nodes, PeriodicIdentifiesOppositeFaces) {
  // On a fully periodic unit torus at level l there are exactly 2^(2l)
  // distinct nodes (wrap identifies the boundary).
  for (int lvl = 1; lvl <= 3; ++lvl) {
    auto f = Forest<StandardRep<2>>::new_uniform(
        Connectivity::brick2d(1, 1, true, true), lvl);
    const auto nodes = number_corner_nodes(f);
    EXPECT_EQ(nodes.num_nodes(), std::int64_t{1} << (2 * lvl));
  }
}

TEST(Nodes, MultiTreeBrickSharesFaceNodes) {
  // Two trees side by side at level 1: 3x3 nodes per tree minus the
  // shared column of 3 -> 15.
  auto f = Forest<StandardRep<2>>::new_uniform(Connectivity::brick2d(2, 1),
                                               1);
  const auto nodes = number_corner_nodes(f);
  EXPECT_EQ(nodes.num_nodes(), 15);
}

TEST(Nodes, CrossRepresentationIdenticalNumbering) {
  auto make = [](auto rep_tag) {
    using R = decltype(rep_tag);
    auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 1);
    f.refine(true, [](tree_id_t, const typename R::quad_t& q) {
      const int l = R::level(q);
      const morton_t chain =
          l == 0 ? 0 : (morton_t{1} << (R::dim * (l - 1))) - 1;
      return l < 4 && R::level_index(q) == chain;
    });
    f.balance(BalanceKind::kFull);
    return number_corner_nodes(f);
  };
  const auto a = make(StandardRep<3>{});
  const auto b = make(MortonRep<3>{});
  const auto c = make(AvxRep<3>{});
  EXPECT_EQ(a.coordinates, b.coordinates);
  EXPECT_EQ(a.hanging, b.hanging);
  EXPECT_EQ(a.element_nodes, b.element_nodes);
  EXPECT_EQ(a.coordinates, c.coordinates);
  EXPECT_EQ(a.hanging, c.hanging);
}

TEST(Nodes, HangingCount3DKnownConfiguration) {
  // Refine one octant of a level-1 mesh: the fine octant contributes
  // face-midpoint and edge-midpoint nodes on the three interior faces.
  auto f = Forest<MortonRep<3>>::new_uniform(Connectivity::unit(3), 1);
  f.refine(false, [](tree_id_t, const MortonRep<3>::quad_t& q) {
    return MortonRep<3>::level_index(q) == 0;
  });
  ASSERT_TRUE(f.is_balanced(BalanceKind::kFull));
  const auto nodes = number_corner_nodes(f);
  std::int64_t hanging = 0;
  for (const bool h : nodes.hanging) {
    hanging += h ? 1 : 0;
  }
  // The refined octant has 3 interior faces (x=1/2, y=1/2, z=1/2 quarter
  // planes). Per face, the 3x3 fine node grid contains 5 non-corner
  // points: 1 face center (on the coarse neighbor's open face) and 4
  // edge midpoints (on coarse octants' open edges) — all hanging. The
  // three faces pairwise share one diagonal edge midpoint each, so the
  // distinct count is 3*5 - 3 = 12.
  EXPECT_EQ(hanging, 12);
  EXPECT_EQ(nodes.num_independent(), nodes.num_nodes() - hanging);
}

TEST(Nodes, UnbalancedForestRejected) {
  auto f = Forest<StandardRep<2>>::new_root(Connectivity::unit(2));
  f.refine(true, [](tree_id_t, const StandardRep<2>::quad_t& q) {
    const int l = StandardRep<2>::level(q);
    const morton_t chain =
        l == 0 ? 0 : (morton_t{1} << (2 * (l - 1))) - 1;
    return l < 4 && StandardRep<2>::level_index(q) == chain;
  });
  ASSERT_FALSE(f.is_balanced(BalanceKind::kFace));
  EXPECT_THROW(number_corner_nodes(f), std::invalid_argument);
}

TEST(GhostExchange, MirrorsReciprocateGhosts) {
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 3, 4);
  for (int r = 0; r < 4; ++r) {
    const auto m = f.mirrors(r);
    const auto [first, last] = f.rank_range(r);
    for (const gidx_t g : m) {
      EXPECT_GE(g, first);
      EXPECT_LT(g, last);
    }
    // Every mirror is someone's ghost: count cross-check.
    std::size_t appearances = 0;
    for (int o = 0; o < 4; ++o) {
      if (o == r) {
        continue;
      }
      for (const auto& e : f.ghost_layer(o).entries) {
        if (e.global_index >= first && e.global_index < last) {
          ++appearances;
        }
      }
    }
    EXPECT_GE(appearances, m.size());
  }
}

TEST(GhostExchange, PayloadArrivesFromOwner) {
  auto f = Forest<MortonRep<2>>::new_uniform(Connectivity::unit(2), 3, 4);
  f.enable_payload(0);
  // Tag every leaf with its global index.
  for (gidx_t g = 0; g < f.num_quadrants(); ++g) {
    const auto [t, i] = f.locate(g);
    f.payload(t, i) = static_cast<std::uint64_t>(g) * 13 + 7;
  }
  for (int r = 0; r < 4; ++r) {
    const auto ghost = f.ghost_layer(r);
    const auto data = f.ghost_exchange(r, ghost);
    ASSERT_EQ(data.size(), ghost.entries.size());
    for (std::size_t k = 0; k < data.size(); ++k) {
      EXPECT_EQ(data[k],
                static_cast<std::uint64_t>(ghost.entries[k].global_index) *
                        13 + 7);
    }
  }
}

}  // namespace
}  // namespace qforest

/// \file test_obs.cpp
/// \brief Observability subsystem: counter/histogram shard merging, the
/// disabled-path no-op contract, ground-truth counts for the instrumented
/// forest and message paths, and trace span recording + JSON export.
///
/// Metrics live in a process-global registry, so every assertion here is
/// on the *delta* of a counter across the operation under test, and each
/// test restores the enabled/disabled gates it flips.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/quadrant_morton.hpp"
#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/message_queue.hpp"
#include "util/log.hpp"

namespace qforest {
namespace {

using R2 = MortonRep<2>;

/// Flips the metrics gate for one scope and restores the previous state.
struct MetricsOn {
  bool prev = obs::metrics_enabled();
  MetricsOn() { obs::set_metrics(true); }
  ~MetricsOn() { obs::set_metrics(prev); }
};

TEST(ObsMetrics, DisabledRecordingIsANoOp) {
  obs::set_metrics(false);
  obs::Counter& c = obs::counter("test.obs.disabled_counter");
  obs::Histogram& h = obs::histogram("test.obs.disabled_hist");
  c.reset();
  h.reset();
  c.add(5);
  h.record(42);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsMetrics, CounterShardMergeIsExactAcrossThreads) {
  const MetricsOn on;
  obs::Counter& c = obs::counter("test.obs.sharded_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        c.add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * kAdds);
}

TEST(ObsMetrics, HistogramShardMergeIsExactAcrossThreads) {
  const MetricsOn on;
  obs::Histogram& h = obs::histogram("test.obs.sharded_hist");
  h.reset();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t v = 0; v < 100; ++v) {
        h.record(v + static_cast<std::uint64_t>(t) * 100);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 800u);
  EXPECT_EQ(s.sum, 799u * 800u / 2);  // 0 + 1 + ... + 799
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 799u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, 800u);
}

TEST(ObsMetrics, HistogramBucketsFollowThePowerOfTwoLayout) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_floor(4), 8u);

  const MetricsOn on;
  obs::Histogram& h = obs::histogram("test.obs.bucket_hist");
  h.reset();
  h.record(0);
  h.record(7);
  h.record(8);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[4], 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(ObsMetrics, SnapshotAndExportsCoverRegisteredMetrics) {
  const MetricsOn on;
  obs::counter("test.obs.export_counter").reset();
  obs::counter("test.obs.export_counter").add(3);
  obs::histogram("test.obs.export_hist").reset();
  obs::histogram("test.obs.export_hist").record(9);

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  bool saw_counter = false, saw_hist = false;
  for (const auto& row : snap.counters) {
    if (row.name == "test.obs.export_counter") {
      saw_counter = true;
      EXPECT_EQ(row.value, 3u);
    }
  }
  for (const auto& row : snap.histograms) {
    if (row.name == "test.obs.export_hist") {
      saw_hist = true;
      EXPECT_EQ(row.hist.count, 1u);
      EXPECT_EQ(row.hist.sum, 9u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);

  const std::string json = obs::metrics_json();
  EXPECT_NE(json.find("\"test.obs.export_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.export_hist\""), std::string::npos);
  const std::string summary = obs::metrics_summary();
  EXPECT_NE(summary.find("test.obs.export_counter"), std::string::npos);
}

TEST(ObsForest, RefineWaveCountsMatchGroundTruth) {
  const MetricsOn on;
  obs::Counter& waves = obs::counter("forest.refine.waves");
  obs::Counter& rebuilds = obs::counter("forest.refine.wave_rebuilds");
  obs::Counter& splices = obs::counter("forest.refine.wave_splices");
  const std::uint64_t waves0 = waves.value();
  const std::uint64_t rebuilds0 = rebuilds.value();
  const std::uint64_t splices0 = splices.value();

  // Uniform L0 -> recursive refine-everything to L2: wave 1 splits the
  // root (dense by construction), wave 2 splits all four L1 children —
  // dense again (4 marks * 4 children * 4 >= 4 leaves), wave 3 finds
  // nothing and is not counted.
  auto f = Forest<R2>::new_uniform(Connectivity::unit(2), 0);
  f.refine(true, [](tree_id_t, const R2::quad_t& q) {
    return R2::level(q) < 2;
  });
  EXPECT_EQ(f.num_quadrants(), 16);
  EXPECT_EQ(waves.value() - waves0, 2u);
  EXPECT_EQ(rebuilds.value() - rebuilds0, 1u);
  EXPECT_EQ(splices.value() - splices0, 0u);
}

TEST(ObsForest, SparseWavesTakeTheSplicePath) {
  const MetricsOn on;
  obs::Counter& waves = obs::counter("forest.refine.waves");
  obs::Counter& splices = obs::counter("forest.refine.wave_splices");
  obs::Counter& rebuilds = obs::counter("forest.refine.wave_rebuilds");
  obs::Counter& serial = obs::counter("forest.refine.splice_serial");
  obs::Counter& par = obs::counter("forest.refine.splice_parallel");
  const std::uint64_t waves0 = waves.value();
  const std::uint64_t splices0 = splices.value();
  const std::uint64_t rebuilds0 = rebuilds.value();
  const std::uint64_t paths0 = serial.value() + par.value();

  // Uniform L3 (64 leaves) -> recursively refine only the origin-corner
  // quadrant to L6. Wave 1 is the dense-by-construction first wave;
  // waves 2 and 3 each mark exactly one fresh child (1 * 4 * 4 < 67) and
  // must splice.
  auto f = Forest<R2>::new_uniform(Connectivity::unit(2), 3);
  f.refine(true, [](tree_id_t, const R2::quad_t& q) {
    return R2::level(q) < 6 && R2::level_index(q) == 0;
  });
  EXPECT_EQ(f.num_quadrants(), 64 + 3 * 3);
  EXPECT_EQ(waves.value() - waves0, 3u);
  EXPECT_EQ(splices.value() - splices0, 2u);
  EXPECT_EQ(rebuilds.value() - rebuilds0, 0u);
  // Each splice wave takes exactly one of the two shift paths.
  EXPECT_EQ(serial.value() + par.value() - paths0, 2u);
}

TEST(ObsForest, ParallelSpliceMatchesSerialSplice) {
  // The sparse splice takes the scatter-parallel path only when the
  // shifted tail spans at least two grains; drive the same recursive
  // refinement once with a tiny grain (parallel) and once with a huge
  // grain (serial) and demand identical leaves and payloads.
  const std::size_t prev_grain = chunk_grain();
  const auto build = [](std::size_t grain) {
    set_chunk_grain(grain);
    auto f = Forest<R2>::new_uniform(Connectivity::unit(2), 3);
    f.enable_payload();
    for (std::size_t i = 0; i < f.tree_quadrants(0).size(); ++i) {
      f.payload(0, i) = 1000 + i;
    }
    f.refine(true, [](tree_id_t, const R2::quad_t& q) {
      return R2::level(q) < 6 && R2::level_index(q) % 23 == 0;
    });
    return f;
  };
  const auto parallel = build(3);
  const auto serial = build(std::size_t{1} << 20);
  set_chunk_grain(prev_grain);

  ASSERT_EQ(parallel.num_quadrants(), serial.num_quadrants());
  EXPECT_TRUE(parallel.tree_quadrants(0) == serial.tree_quadrants(0));
  EXPECT_TRUE(parallel.tree_payloads(0) == serial.tree_payloads(0));
  EXPECT_TRUE(parallel.is_valid());
}

TEST(ObsForest, CoarsenFamilyDecisionsMatchGroundTruth) {
  const MetricsOn on;
  obs::Counter& accepted = obs::counter("forest.coarsen.families_accepted");
  obs::Counter& rejected = obs::counter("forest.coarsen.families_rejected");

  // Uniform L2 (16 leaves, 4 complete sibling families). Accept-all
  // coarsens every family; reject-all inspects the same four and keeps
  // the mesh.
  const std::uint64_t accepted0 = accepted.value();
  auto f = Forest<R2>::new_uniform(Connectivity::unit(2), 2);
  f.coarsen(false, [](tree_id_t, const R2::quad_t*) { return true; });
  EXPECT_EQ(f.num_quadrants(), 4);
  EXPECT_EQ(accepted.value() - accepted0, 4u);

  const std::uint64_t rejected0 = rejected.value();
  auto g = Forest<R2>::new_uniform(Connectivity::unit(2), 2);
  g.coarsen(false, [](tree_id_t, const R2::quad_t*) { return false; });
  EXPECT_EQ(g.num_quadrants(), 16);
  EXPECT_EQ(rejected.value() - rejected0, 4u);
}

TEST(ObsPar, MessageCountersMatchGroundTruth) {
  const MetricsOn on;
  obs::Counter& sends = obs::counter("par.msg.sends");
  obs::Counter& send_bytes = obs::counter("par.msg.send_bytes");
  obs::Counter& recvs = obs::counter("par.msg.recvs");
  obs::Counter& recv_bytes = obs::counter("par.msg.recv_bytes");
  obs::Counter& unexpected = obs::counter("par.msg.unexpected_hits");
  const std::uint64_t sends0 = sends.value();
  const std::uint64_t send_bytes0 = send_bytes.value();
  const std::uint64_t recvs0 = recvs.value();
  const std::uint64_t recv_bytes0 = recv_bytes.value();
  const std::uint64_t unexpected0 = unexpected.value();

  // Rank 0 posts tag 1 (3 bytes) then tag 2 (5 bytes); rank 1 receives
  // tag 2 first, so the tag-1 message is dequeued, parked on the
  // unexpected list, and satisfied from there by the later receive: two
  // sends, two mailbox dequeues, exactly one unexpected hit.
  par::RankGroup group(2);
  group.run([](par::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.isend(1, 1, std::vector<std::uint8_t>(3, 0xAB));
      (void)ctx.isend(1, 2, std::vector<std::uint8_t>(5, 0xCD));
    } else {
      const par::Message second = ctx.recv(0, 2);
      EXPECT_EQ(second.bytes.size(), 5u);
      const par::Message first = ctx.recv(0, 1);
      EXPECT_EQ(first.bytes.size(), 3u);
    }
  });
  EXPECT_EQ(sends.value() - sends0, 2u);
  EXPECT_EQ(send_bytes.value() - send_bytes0, 8u);
  EXPECT_EQ(recvs.value() - recvs0, 2u);
  EXPECT_EQ(recv_bytes.value() - recv_bytes0, 8u);
  EXPECT_EQ(unexpected.value() - unexpected0, 1u);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::set_tracing(false);
  const std::size_t before = obs::trace_event_count();
  {
    obs::TraceSpan span("test", "disabled");
    span.arg("x", 1);
  }
  obs::trace_complete("test", "disabled_manual", 0, 10);
  EXPECT_EQ(obs::trace_event_count(), before);
}

TEST(ObsTrace, SpansNestAndExportAsChromeJson) {
  obs::clear_trace();
  obs::set_tracing(true);
  {
    obs::TraceSpan outer("test", "outer");
    outer.arg("leaves", 64);
    obs::TraceSpan inner("test", "inner");
  }
  obs::trace_complete("test", "manual", obs::trace_clock_ns() - 500,
                      obs::trace_clock_ns(), "overlap", 1);
  obs::set_tracing(false);

  EXPECT_EQ(obs::trace_event_count(), 3u);
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"manual\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"leaves\":64"), std::string::npos);
  EXPECT_NE(json.find("\"overlap\":1"), std::string::npos);
  obs::clear_trace();
}

TEST(ObsTrace, ConcurrentEmittersFillChunksWithoutLoss) {
  obs::clear_trace();
  obs::set_tracing(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 700;  // crosses the 512-event chunk boundary
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::TraceSpan span("test", "worker_span");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  obs::set_tracing(false);
  EXPECT_EQ(obs::trace_event_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsTrace, RankWorkersStampTheirRankAsTid) {
  obs::clear_trace();
  obs::set_tracing(true);
  par::RankGroup group(2);
  group.run([](par::RankCtx& ctx) {
    obs::TraceSpan span("test", "rank_span");
    span.arg("rank", ctx.rank());
  });
  obs::set_tracing(false);
  EXPECT_EQ(obs::trace_event_count(), 2u);
  const std::string json = obs::trace_json();
  // Rank workers carry their rank id as the Perfetto tid (and get "rank
  // N" thread-name metadata); synthetic thread ids start at 1000.
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  obs::clear_trace();
}

TEST(ObsLog, ThreadRankScopeNestsAndRestores) {
  EXPECT_EQ(thread_rank(), -1);
  {
    const ThreadRankScope outer(3);
    EXPECT_EQ(thread_rank(), 3);
    {
      const ThreadRankScope inner(7);
      EXPECT_EQ(thread_rank(), 7);
    }
    EXPECT_EQ(thread_rank(), 3);
  }
  EXPECT_EQ(thread_rank(), -1);
}

}  // namespace
}  // namespace qforest

/// \file test_iterate.cpp
/// \brief Face iteration: each interior face exactly once, boundary faces
/// once, hanging faces from the fine side; works without 2:1 balance.

#include <map>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

using S2 = StandardRep<2>;
using M3 = MortonRep<3>;

// iterate_faces invokes the callback concurrently on the batched path, so
// every callback below serializes its shared-state mutation with a mutex.

TEST(Iterate, Uniform2DCounts) {
  const int lvl = 3;
  auto f = Forest<S2>::new_uniform(Connectivity::unit(2), lvl);
  const gidx_t n_per_side = gidx_t{1} << lvl;
  gidx_t interior = 0, boundary = 0;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    (info.is_boundary ? boundary : interior) += 1;
    if (!info.is_boundary) {
      EXPECT_FALSE(info.is_hanging);
      EXPECT_EQ(S2::level(info.quad[0]), lvl);
      EXPECT_EQ(S2::level(info.quad[1]), lvl);
    }
  });
  // 2D uniform grid: 2 * n(n-1) interior faces, 4n boundary faces.
  EXPECT_EQ(interior, 2 * n_per_side * (n_per_side - 1));
  EXPECT_EQ(boundary, 4 * n_per_side);
}

TEST(Iterate, Uniform3DCounts) {
  const int lvl = 2;
  auto f = Forest<M3>::new_uniform(Connectivity::unit(3), lvl);
  const gidx_t n = gidx_t{1} << lvl;
  gidx_t interior = 0, boundary = 0;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<M3>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    (info.is_boundary ? boundary : interior) += 1;
  });
  EXPECT_EQ(interior, 3 * n * n * (n - 1));
  EXPECT_EQ(boundary, 6 * n * n);
}

TEST(Iterate, EachPairSeenOnce) {
  auto f = Forest<S2>::new_uniform(Connectivity::unit(2), 2);
  f.refine(false, [](tree_id_t, const S2::quad_t& q) {
    return S2::level_index(q) % 2 == 0;
  });
  std::set<std::pair<gidx_t, gidx_t>> pairs;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    if (info.is_boundary) {
      return;
    }
    const gidx_t a = f.global_index(info.tree[0], info.leaf_index[0]);
    const gidx_t b = f.global_index(info.tree[1], info.leaf_index[1]);
    const auto key = std::minmax(a, b);
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(pairs.insert(key).second)
        << "pair (" << key.first << "," << key.second << ") seen twice";
  });
  EXPECT_FALSE(pairs.empty());
}

TEST(Iterate, HangingFacesEmittedFromFineSide) {
  auto f = Forest<S2>::new_uniform(Connectivity::unit(2), 1);
  // Refine only the first child: creates hanging faces against its
  // same-level neighbors.
  f.refine(false, [](tree_id_t, const S2::quad_t& q) {
    return S2::level_index(q) == 0;
  });
  int hanging = 0, conforming = 0, boundary = 0;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    if (info.is_boundary) {
      ++boundary;
      return;
    }
    if (info.is_hanging) {
      ++hanging;
      EXPECT_GT(S2::level(info.quad[0]), S2::level(info.quad[1]));
    } else {
      ++conforming;
      EXPECT_EQ(S2::level(info.quad[0]), S2::level(info.quad[1]));
    }
  });
  // Quadrant 0 split into 4 children; 2 children touch quadrant 1 (+x),
  // 2 children touch quadrant 2 (+y): 4 hanging faces.
  EXPECT_EQ(hanging, 4);
  EXPECT_GT(conforming, 0);
  EXPECT_GT(boundary, 0);
}

TEST(Iterate, NonBalancedForestStillCovered) {
  // The paper lists "mesh iteration functional in the presence of
  // non-2:1-balanced meshes" as upcoming work; our iterator supports it.
  auto f = Forest<S2>::new_uniform(Connectivity::unit(2), 1);
  f.refine(true, [](tree_id_t, const S2::quad_t& q) {
    const int l = S2::level(q);
    const morton_t chain = l == 0 ? 0 : (morton_t{1} << (2 * (l - 1))) - 1;
    return l < 4 && S2::level_index(q) == chain;
  });
  ASSERT_FALSE(f.is_balanced(BalanceKind::kFace));
  gidx_t faces = 0;
  std::set<gidx_t> leaves_seen;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    ++faces;
    leaves_seen.insert(f.global_index(info.tree[0], info.leaf_index[0]));
    if (!info.is_boundary) {
      leaves_seen.insert(f.global_index(info.tree[1], info.leaf_index[1]));
      // In this unbalanced forest hanging pairs may differ by more than
      // one level; the hanging flag must match the level relation.
      EXPECT_EQ(info.is_hanging,
                S2::level(info.quad[0]) > S2::level(info.quad[1]));
    }
  });
  // Every leaf participates in at least one face.
  EXPECT_EQ(leaves_seen.size(), static_cast<std::size_t>(f.num_quadrants()));
  EXPECT_GT(faces, 0);
}

TEST(Iterate, CrossTreeFacesEmitted) {
  auto f = Forest<S2>::new_uniform(Connectivity::brick2d(2, 1), 1);
  int cross = 0;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    if (!info.is_boundary && info.tree[0] != info.tree[1]) {
      ++cross;
      EXPECT_EQ(info.face[0] >> 1, 0);  // crossing along x
      EXPECT_EQ(info.face[1], info.face[0] ^ 1);
    }
  });
  // Two level-1 leaves per tree meet at the shared tree face.
  EXPECT_EQ(cross, 2);
}

TEST(Iterate, PeriodicTorusHasNoBoundary) {
  auto f =
      Forest<S2>::new_uniform(Connectivity::brick2d(1, 1, true, true), 2);
  gidx_t boundary = 0, interior = 0;
  std::mutex mu;
  f.iterate_faces([&](const FaceInfo<S2>& info) {
    const std::lock_guard<std::mutex> lock(mu);
    (info.is_boundary ? boundary : interior) += 1;
  });
  EXPECT_EQ(boundary, 0);
  // On a torus every face is interior: 2 * n^2 per direction pair.
  const gidx_t n = 4;
  EXPECT_EQ(interior, 2 * n * n);
}

}  // namespace
}  // namespace qforest

/// \file test_quadrant_std.cpp
/// \brief Unit tests for the standard (xyz + level) representation,
/// including the paper's Algorithms 1-3 semantics.

#include <gtest/gtest.h>

#include "core/quadrant_std.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

using R2 = StandardRep<2>;
using R3 = StandardRep<3>;

TEST(StandardLayout, PaperStorageSizes) {
  // Paper §2.1: 24 bytes per octant in 3D (8 of which are payload).
  EXPECT_EQ(sizeof(StandardQuadrant<3>), 24u);
  EXPECT_EQ(sizeof(StandardQuadrant<2>), 24u);  // natural alignment in 2D
}

TEST(StandardRoot, Properties) {
  const auto r = R3::root();
  EXPECT_EQ(R3::level(r), 0);
  EXPECT_EQ(R3::length(r), coord_t{1} << R3::max_level);
  EXPECT_TRUE(R3::is_valid(r));
  EXPECT_TRUE(R3::inside_root(r));
}

TEST(StandardMorton, Algorithm1KnownValues3D) {
  // Level-1 index c yields the child c of the root: coordinates are the
  // direction bits scaled to half the root length.
  const coord_t h = R3::length_at(1);
  for (int c = 0; c < 8; ++c) {
    const auto q = R3::morton_quadrant(static_cast<morton_t>(c), 1);
    EXPECT_EQ(q.x, (c & 1) ? h : 0);
    EXPECT_EQ(q.y, (c & 2) ? h : 0);
    EXPECT_EQ(q.z, (c & 4) ? h : 0);
    EXPECT_EQ(R3::level(q), 1);
  }
}

TEST(StandardMorton, PdepVariantAgreesWithAlgorithm1) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(22));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    EXPECT_TRUE(R3::equal(R3::morton_quadrant(il, lvl),
                          R3::morton_quadrant_pdep(il, lvl)));
  }
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(30));
    const morton_t il = rng.next_below(morton_t{1} << (2 * lvl));
    EXPECT_TRUE(R2::equal(R2::morton_quadrant(il, lvl),
                          R2::morton_quadrant_pdep(il, lvl)));
  }
}

TEST(StandardMorton, RoundTripLevelIndex) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(22));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = R3::morton_quadrant(il, lvl);
    EXPECT_EQ(R3::level_index(q), il);
    EXPECT_EQ(R3::level(q), lvl);
    EXPECT_TRUE(R3::is_valid(q));
  }
}

TEST(StandardChild, Algorithm2Definition21) {
  // Definition 2.1: child index I_{l+1} = 2^d I_l + c.
  Xoshiro256 rng(13);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(20));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = R3::morton_quadrant(il, lvl);
    for (int c = 0; c < 8; ++c) {
      const auto ch = R3::child(q, c);
      EXPECT_EQ(R3::level(ch), lvl + 1);
      EXPECT_EQ(R3::level_index(ch), 8 * il + static_cast<morton_t>(c));
      EXPECT_EQ(R3::child_id(ch), c);
      EXPECT_TRUE(R3::equal(R3::parent(ch), q));
      EXPECT_TRUE(R3::is_ancestor(q, ch));
    }
  }
}

TEST(StandardChild, Property22ZeroChildSharesCorner) {
  Xoshiro256 rng(14);
  for (int i = 0; i < 5000; ++i) {
    const auto q = test::random_quadrant<R3>(rng, 20);
    const auto c0 = R3::child(q, 0);
    EXPECT_EQ(c0.x, q.x);
    EXPECT_EQ(c0.y, q.y);
    EXPECT_EQ(c0.z, q.z);
    EXPECT_EQ(R3::length(c0) * 2, R3::length(q));
  }
}

TEST(StandardSibling, Algorithm3Definition23) {
  // Definition 2.3: sibling index = I_l - (I_l mod 2^d) + s.
  Xoshiro256 rng(15);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = R3::morton_quadrant(il, lvl);
    for (int s = 0; s < 8; ++s) {
      const auto sib = R3::sibling(q, s);
      EXPECT_EQ(R3::level(sib), lvl);
      EXPECT_EQ(R3::level_index(sib), il - il % 8 + static_cast<morton_t>(s));
      EXPECT_TRUE(R3::equal(R3::parent(sib), R3::parent(q)));
      EXPECT_EQ(R3::child_id(sib), s);
    }
    // Sibling with the own child id is the identity.
    EXPECT_TRUE(R3::equal(R3::sibling(q, R3::child_id(q)), q));
  }
}

TEST(StandardSuccessor, MatchesIndexIncrement) {
  Xoshiro256 rng(16);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const morton_t il =
        rng.next_below((morton_t{1} << (3 * lvl)) - 1);  // not the last
    const auto q = R3::morton_quadrant(il, lvl);
    const auto s = R3::successor(q);
    EXPECT_EQ(R3::level_index(s), il + 1);
    EXPECT_TRUE(R3::equal(R3::predecessor(s), q));
  }
}

TEST(StandardSuccessor, WrapsAtLastQuadrant) {
  const int lvl = 3;
  const morton_t last = (morton_t{1} << (3 * lvl)) - 1;
  const auto q = R3::morton_quadrant(last, lvl);
  const auto s = R3::successor(q);
  EXPECT_EQ(R3::level_index(s), 0u);
}

TEST(StandardAncestorDescendant, Relations) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 2 + static_cast<int>(rng.next_below(18));
    const auto q = test::random_quadrant_at<R3>(rng, lvl);
    const int up = static_cast<int>(rng.next_below(lvl));
    const auto anc = R3::ancestor(q, up);
    EXPECT_EQ(R3::level(anc), up);
    EXPECT_TRUE(up == lvl ? R3::equal(anc, q) : R3::is_ancestor(anc, q));
    // First/last descendants of the ancestor bracket q in Morton order.
    const auto fd = R3::first_descendant(anc, lvl);
    const auto ld = R3::last_descendant(anc, lvl);
    EXPECT_FALSE(R3::less(q, fd));
    EXPECT_FALSE(R3::less(ld, q));
    EXPECT_EQ(R3::level_index(ld) - R3::level_index(fd),
              (morton_t{1} << (3 * (lvl - up))) - 1);
  }
}

TEST(StandardFaceNeighbor, GeometryAndInverse) {
  Xoshiro256 rng(18);
  for (int i = 0; i < 5000; ++i) {
    const auto q = test::random_quadrant<R3>(rng, 18);
    const coord_t h = R3::length(q);
    for (int f = 0; f < 6; ++f) {
      const auto n = R3::face_neighbor(q, f);
      EXPECT_EQ(R3::level(n), R3::level(q));
      const coord_t expected_delta = (f & 1) ? h : -h;
      const int axis = f >> 1;
      EXPECT_EQ(R3::coord(n, axis) - R3::coord(q, axis), expected_delta);
      for (int a = 0; a < 3; ++a) {
        if (a != axis) {
          EXPECT_EQ(R3::coord(n, a), R3::coord(q, a));
        }
      }
      // Crossing back returns to q.
      EXPECT_TRUE(R3::equal(R3::face_neighbor(n, f ^ 1), q));
    }
  }
}

TEST(StandardCornerNeighbor, Geometry) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 3000; ++i) {
    const auto q = test::random_quadrant<R3>(rng, 18);
    const coord_t h = R3::length(q);
    for (int c = 0; c < 8; ++c) {
      const auto n = R3::corner_neighbor(q, c);
      EXPECT_EQ(n.x - q.x, (c & 1) ? h : -h);
      EXPECT_EQ(n.y - q.y, (c & 2) ? h : -h);
      EXPECT_EQ(n.z - q.z, (c & 4) ? h : -h);
      // The diagonally opposite corner move returns.
      EXPECT_TRUE(R3::equal(R3::corner_neighbor(n, c ^ 7), q));
    }
  }
}

TEST(StandardTreeBoundaries, EncodingMatchesAlgorithm12Spec) {
  int f[3];
  R3::tree_boundaries(R3::root(), f);
  EXPECT_EQ(f[0], kBoundaryAll);
  EXPECT_EQ(f[1], kBoundaryAll);
  EXPECT_EQ(f[2], kBoundaryAll);

  // Child 0 of root touches the lower faces in every direction.
  R3::tree_boundaries(R3::child(R3::root(), 0), f);
  EXPECT_EQ(f[0], 0);
  EXPECT_EQ(f[1], 2);
  EXPECT_EQ(f[2], 4);

  // Child 7 touches the upper faces.
  R3::tree_boundaries(R3::child(R3::root(), 7), f);
  EXPECT_EQ(f[0], 1);
  EXPECT_EQ(f[1], 3);
  EXPECT_EQ(f[2], 5);

  // An interior quadrant touches nothing.
  const auto mid = R3::from_coords(R3::length_at(2), R3::length_at(2),
                                   R3::length_at(2), 2);
  R3::tree_boundaries(mid, f);
  EXPECT_EQ(f[0], kBoundaryNone);
  EXPECT_EQ(f[1], kBoundaryNone);
  EXPECT_EQ(f[2], kBoundaryNone);
}

TEST(StandardCompare, MortonOrderMatchesIndexOrder) {
  Xoshiro256 rng(20);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(20));
    const auto a = test::random_quadrant_at<R3>(rng, lvl);
    const auto b = test::random_quadrant_at<R3>(rng, lvl);
    EXPECT_EQ(R3::less(a, b), R3::level_index(a) < R3::level_index(b));
  }
}

TEST(StandardCompare, AncestorPrecedesDescendant) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(18));
    const auto q = test::random_quadrant_at<R3>(rng, lvl);
    const auto anc =
        R3::ancestor(q, static_cast<int>(rng.next_below(lvl)));
    EXPECT_TRUE(R3::less(anc, q));
    EXPECT_FALSE(R3::less(q, anc));
  }
}

TEST(StandardNca, IsDeepestCommonAncestor) {
  Xoshiro256 rng(22);
  for (int i = 0; i < 5000; ++i) {
    const auto a = test::random_quadrant<R3>(rng, 18);
    const auto b = test::random_quadrant<R3>(rng, 18);
    const auto n = R3::nearest_common_ancestor(a, b);
    EXPECT_TRUE(R3::equal(n, a) || R3::is_ancestor(n, a));
    EXPECT_TRUE(R3::equal(n, b) || R3::is_ancestor(n, b));
    if (R3::level(n) < R3::level(a) && R3::level(n) < R3::level(b)) {
      // One level deeper must separate a and b.
      const int la = R3::ancestor_id(a, R3::level(n) + 1);
      const int lb = R3::ancestor_id(b, R3::level(n) + 1);
      EXPECT_NE(la, lb);
    }
  }
}

TEST(StandardOverlaps, SiblingNeverOverlaps) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(18));
    const auto q = test::random_quadrant_at<R3>(rng, lvl);
    const int id = R3::child_id(q);
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ(R3::overlaps(q, R3::sibling(q, s)), s == id);
    }
    EXPECT_TRUE(R3::overlaps(q, R3::parent(q)));
    EXPECT_TRUE(R3::overlaps(q, q));
  }
}

TEST(Standard2D, ChildSiblingParentConsistency) {
  Xoshiro256 rng(24);
  for (int i = 0; i < 5000; ++i) {
    const auto q = test::random_quadrant<R2>(rng, 25);
    if (R2::level(q) >= R2::max_level) {
      continue;
    }
    for (int c = 0; c < 4; ++c) {
      const auto ch = R2::child(q, c);
      EXPECT_TRUE(R2::equal(R2::parent(ch), q));
      EXPECT_EQ(R2::child_id(ch), c);
      for (int s = 0; s < 4; ++s) {
        EXPECT_TRUE(R2::equal(R2::sibling(ch, s), R2::child(q, s)));
      }
    }
  }
}

TEST(Standard2D, TreeBoundariesTwoDirections) {
  int f[2];
  R2::tree_boundaries(R2::root(), f);
  EXPECT_EQ(f[0], kBoundaryAll);
  EXPECT_EQ(f[1], kBoundaryAll);
  R2::tree_boundaries(R2::child(R2::root(), 1), f);
  EXPECT_EQ(f[0], 1);  // touches +x face
  EXPECT_EQ(f[1], 2);  // touches -y face
}

TEST(StandardValidity, RejectsMisaligned) {
  auto q = R3::from_coords(1, 0, 0, 1);  // x=1 not aligned to level-1 grid
  EXPECT_FALSE(R3::is_valid(q));
  q = R3::from_coords(0, 0, 0, 1);
  EXPECT_TRUE(R3::is_valid(q));
}

TEST(StandardValidity, ExteriorDetected) {
  const auto q = R3::from_coords(0, 0, 0, 1);
  const auto n = R3::face_neighbor(q, 0);  // crosses -x out of the tree
  EXPECT_FALSE(R3::inside_root(n));
  EXPECT_TRUE(R3::inside_root(R3::face_neighbor(q, 1)));
}

}  // namespace
}  // namespace qforest

/// \file test_message_queue.cpp
/// \brief Sharded rank runtime: MPSC mailbox, (source, tag) matching with
/// out-of-order delivery, nonblocking requests, the message-passing
/// collectives, delivery delay and failure propagation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/communicator.hpp"
#include "par/message_queue.hpp"
#include "util/timer.hpp"

namespace qforest::par {
namespace {

std::vector<std::uint8_t> byte_payload(std::initializer_list<int> values) {
  std::vector<std::uint8_t> bytes;
  for (int v : values) {
    bytes.push_back(static_cast<std::uint8_t>(v));
  }
  return bytes;
}

TEST(Mailbox, PushPopPreservesFifoPerQueue) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) {
    box.push(Message{0, i, byte_payload({i})},
             Mailbox::clock::time_point::min());
  }
  Message m;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.try_pop(m));
    EXPECT_EQ(m.tag, i);
    ASSERT_EQ(m.bytes.size(), 1u);
    EXPECT_EQ(m.bytes[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_FALSE(box.try_pop(m));
}

TEST(RankGroup, SendRecvRoundTrip) {
  RankGroup group(2);
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.isend(1, 7, byte_payload({42}));
    } else {
      const Message m = ctx.recv(0, 7);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      ASSERT_EQ(m.bytes.size(), 1u);
      EXPECT_EQ(m.bytes[0], 42u);
    }
  });
}

TEST(RankGroup, TagMatchingHandlesOutOfOrderDelivery) {
  // The sender posts tags 7 then 3; the receiver asks for 3 first. The
  // tag-7 message arrives ahead of its recv, parks on the unexpected
  // list and is delivered by the later matching receive.
  RankGroup group(2);
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.isend(1, 7, byte_payload({77}));
      (void)ctx.isend(1, 3, byte_payload({33}));
    } else {
      const Message first = ctx.recv(0, 3);
      EXPECT_EQ(first.bytes[0], 33u);
      const Message second = ctx.recv(0, 7);
      EXPECT_EQ(second.bytes[0], 77u);
    }
  });
}

TEST(RankGroup, SourceMatchingAndWildcards) {
  RankGroup group(4);
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      // Ask for rank 2's message first although ranks 1..3 all send.
      const Message from2 = ctx.recv(2, kAnyTag);
      EXPECT_EQ(from2.source, 2);
      int seen = 0;
      for (int k = 0; k < 2; ++k) {
        const Message any = ctx.recv(kAnySource, kAnyTag);
        EXPECT_NE(any.source, 2);
        seen += any.source;
      }
      EXPECT_EQ(seen, 1 + 3);
    } else {
      (void)ctx.isend(0, ctx.rank(), byte_payload({ctx.rank()}));
    }
  });
}

TEST(RankGroup, ManyProducersOneConsumer) {
  // MPSC stress: every other rank floods rank 0; the sum of all payload
  // bytes must arrive intact (this is the TSAN workout for the lock-free
  // push path).
  constexpr int kRanks = 8;
  constexpr int kPerRank = 200;
  RankGroup group(kRanks);
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::int64_t sum = 0;
      for (int k = 0; k < (kRanks - 1) * kPerRank; ++k) {
        const Message m = ctx.recv();
        sum += m.bytes.at(0);
      }
      EXPECT_EQ(sum, std::int64_t{kRanks - 1} * kPerRank * 5);
    } else {
      for (int k = 0; k < kPerRank; ++k) {
        (void)ctx.isend(0, k, byte_payload({5}));
      }
    }
  });
}

TEST(RankGroup, IrecvWaitAllCompletesInAnyOrder) {
  RankGroup group(4);
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::vector<Request> reqs;
      for (int s = 3; s >= 1; --s) {  // posted in reverse source order
        reqs.push_back(ctx.irecv(s, 11));
      }
      reqs.push_back(ctx.isend(1, 12, byte_payload({1})));
      ctx.wait_all(reqs);
      for (const auto& r : reqs) {
        EXPECT_TRUE(r.done);
      }
      EXPECT_EQ(reqs[0].message.source, 3);
      EXPECT_EQ(reqs[1].message.source, 2);
      EXPECT_EQ(reqs[2].message.source, 1);
      EXPECT_EQ(reqs[2].message.bytes[0], 10u);
    } else {
      (void)ctx.isend(0, 11, byte_payload({10 * ctx.rank()}));
      if (ctx.rank() == 1) {
        (void)ctx.recv(0, 12);
      }
    }
  });
}

TEST(RankGroup, CollectivesAgreeAcrossRanks) {
  constexpr int kRanks = 6;
  RankGroup group(kRanks);
  std::vector<std::int64_t> prefixes(kRanks, -1);
  group.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    // allgather: every rank sees every contribution in rank order.
    const std::vector<int> all = ctx.allgather(r * r);
    ASSERT_EQ(static_cast<int>(all.size()), kRanks);
    for (int s = 0; s < kRanks; ++s) {
      EXPECT_EQ(all[static_cast<std::size_t>(s)], s * s);
    }
    // exscan: exclusive prefix of rank indices.
    prefixes[static_cast<std::size_t>(r)] = ctx.exscan(r + 1);
    // alltoallv: rank r sends (r + s + 1) bytes of value r to rank s.
    std::vector<std::vector<std::uint8_t>> to_each(kRanks);
    for (int s = 0; s < kRanks; ++s) {
      to_each[static_cast<std::size_t>(s)].assign(
          static_cast<std::size_t>(r + s + 1),
          static_cast<std::uint8_t>(r));
    }
    const auto from_each = ctx.alltoallv(std::move(to_each));
    ASSERT_EQ(static_cast<int>(from_each.size()), kRanks);
    for (int s = 0; s < kRanks; ++s) {
      const auto& buf = from_each[static_cast<std::size_t>(s)];
      ASSERT_EQ(buf.size(), static_cast<std::size_t>(r + s + 1));
      for (const std::uint8_t b : buf) {
        EXPECT_EQ(b, static_cast<std::uint8_t>(s));
      }
    }
    ctx.barrier();
  });
  std::int64_t expect = 0;
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(prefixes[static_cast<std::size_t>(r)], expect);
    expect += r + 1;
  }
}

TEST(RankGroup, BackToBackCollectivesDoNotCrossMatch) {
  // Each collective call burns one internal tag; values from consecutive
  // allgathers must never mix even though all messages share mailboxes.
  RankGroup group(5);
  group.run([](RankCtx& ctx) {
    for (int round = 0; round < 20; ++round) {
      const std::vector<int> all = ctx.allgather(round * 100 + ctx.rank());
      for (int s = 0; s < ctx.size(); ++s) {
        EXPECT_EQ(all[static_cast<std::size_t>(s)], round * 100 + s);
      }
    }
  });
}

TEST(RankGroup, SizeOneRunsInlineWithoutThreads) {
  RankGroup group(1);
  std::thread::id caller = std::this_thread::get_id();
  group.run([&](RankCtx& ctx) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(ctx.size(), 1);
    EXPECT_EQ(ctx.allgather(7), std::vector<int>{7});
    EXPECT_EQ(ctx.exscan(9), 0);
    ctx.barrier();
  });
}

TEST(RankGroup, DeliveryDelayHoldsMessagesBack) {
  RankGroup group(2);
  group.set_delivery_delay(std::chrono::milliseconds(20));
  group.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.isend(1, 1, {});
    } else {
      WallTimer t;
      (void)ctx.recv(0, 1);
      // Generous lower bound: the message cannot be receivable before
      // its ready time (minus scheduler resolution slack).
      EXPECT_GE(t.elapsed_s(), 0.010);
    }
  });
}

TEST(RankGroup, WorkerExceptionUnblocksPeersAndPropagates) {
  // Rank 2 throws before sending; rank 0 would block forever on the
  // matching recv without the group abort. run() must rethrow the
  // original exception, not the secondary RankAborted of rank 0.
  RankGroup group(3);
  bool caught = false;
  try {
    group.run([](RankCtx& ctx) {
      if (ctx.rank() == 2) {
        throw std::runtime_error("boom on rank 2");
      }
      if (ctx.rank() == 0) {
        (void)ctx.recv(2, 1);
        FAIL() << "recv from the failed rank must not complete";
      }
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "boom on rank 2");
  }
  EXPECT_TRUE(caught);
}

TEST(Communicator, RunRanksExposesTheQueue) {
  Communicator comm(4);
  std::atomic<int> total{0};
  comm.run_ranks([&](RankCtx& ctx) {
    const auto all = ctx.allgather(1);
    total.fetch_add(std::accumulate(all.begin(), all.end(), 0));
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace qforest::par

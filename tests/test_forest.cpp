/// \file test_forest.cpp
/// \brief High-level forest algorithms over every representation:
/// creation, refinement, coarsening, search, validity. TYPED over all
/// four representations to demonstrate the paper's exchangeability claim
/// at the workflow level.

#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

template <class R>
class ForestT : public ::testing::Test {};

using ForestReps = ::testing::Types<StandardRep<2>, MortonRep<2>, AvxRep<2>,
                                    WideMortonRep<2>, StandardRep<3>,
                                    MortonRep<3>, AvxRep<3>,
                                    WideMortonRep<3>>;
TYPED_TEST_SUITE(ForestT, ForestReps);

TYPED_TEST(ForestT, NewRootIsValidSingleLeaf) {
  using R = TypeParam;
  auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
  EXPECT_EQ(f.num_quadrants(), 1);
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.max_level_used(), 0);
}

TYPED_TEST(ForestT, NewUniformCounts) {
  using R = TypeParam;
  const int lvl = 3;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), lvl);
  EXPECT_EQ(f.num_quadrants(), gidx_t{1} << (R::dim * lvl));
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.count_level(lvl), f.num_quadrants());
  EXPECT_EQ(f.count_level(lvl - 1), 0);
}

TYPED_TEST(ForestT, UniformIsSortedAlongCurve) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 3);
  const auto& leaves = f.tree_quadrants(0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(R::level_index(leaves[i]), i);
  }
}

TYPED_TEST(ForestT, RefineAllOnceDoublesDepth) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.refine(false, [](tree_id_t, const typename R::quad_t&) { return true; });
  EXPECT_EQ(f.num_quadrants(), gidx_t{1} << (R::dim * 3));
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.max_level_used(), 3);
}

TYPED_TEST(ForestT, RecursiveRefineToDepth) {
  using R = TypeParam;
  auto f = Forest<R>::new_root(Connectivity::unit(R::dim));
  const int target = 4;
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    // Refine only the curve-first corner chain to the target depth.
    return R::level(q) < target && R::level_index(q) == 0;
  });
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.max_level_used(), target);
  // Each refinement adds (2^d - 1) leaves along the chain.
  EXPECT_EQ(f.num_quadrants(),
            1 + target * ((gidx_t{1} << R::dim) - 1));
}

TYPED_TEST(ForestT, CoarsenInvertsRefine) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 3);
  const gidx_t before = f.num_quadrants();
  f.refine(false, [](tree_id_t, const typename R::quad_t&) { return true; });
  f.coarsen(false,
            [](tree_id_t, const typename R::quad_t*) { return true; });
  EXPECT_EQ(f.num_quadrants(), before);
  EXPECT_TRUE(f.is_valid());
}

TYPED_TEST(ForestT, RecursiveCoarsenToRoot) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 3);
  f.coarsen(true, [](tree_id_t, const typename R::quad_t*) { return true; });
  EXPECT_EQ(f.num_quadrants(), 1);
  EXPECT_EQ(f.max_level_used(), 0);
  EXPECT_TRUE(f.is_valid());
}

TYPED_TEST(ForestT, SelectiveCoarsenKeepsOthers) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  // Coarsen only the family whose parent is the curve-first child.
  f.coarsen(false, [](tree_id_t, const typename R::quad_t* fam) {
    return R::level_index(R::parent(fam[0])) == 0;
  });
  EXPECT_EQ(f.num_quadrants(),
            (gidx_t{1} << (2 * R::dim)) - (gidx_t{1} << R::dim) + 1);
  EXPECT_TRUE(f.is_valid());
}

TYPED_TEST(ForestT, MultiTreeBrickCountsAndValidity) {
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(3, 2)
                                : Connectivity::brick3d(2, 2, 2);
  auto f = Forest<R>::new_uniform(conn, 2);
  EXPECT_EQ(f.num_quadrants(),
            conn.num_trees() * (gidx_t{1} << (R::dim * 2)));
  EXPECT_TRUE(f.is_valid());
  // Global indexing is continuous across trees.
  EXPECT_EQ(f.global_index(1, 0), gidx_t{1} << (R::dim * 2));
  const auto [t, i] = f.locate(f.global_index(1, 3));
  EXPECT_EQ(t, 1);
  EXPECT_EQ(i, 3u);
}

TYPED_TEST(ForestT, SearchVisitsExactlyTheLeaves) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 2);
  f.refine(false, [](tree_id_t, const typename R::quad_t& q) {
    return R::level_index(q) % 3 == 0;
  });
  std::size_t leaf_visits = 0, node_visits = 0;
  f.search([&](tree_id_t, const typename R::quad_t&, std::size_t,
               std::size_t, bool is_leaf) {
    (is_leaf ? leaf_visits : node_visits) += 1;
    return true;
  });
  EXPECT_EQ(leaf_visits, static_cast<std::size_t>(f.num_quadrants()));
  EXPECT_GT(node_visits, 0u);
}

TYPED_TEST(ForestT, SearchPruningSkipsSubtrees) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 3);
  std::size_t visits = 0;
  f.search([&](tree_id_t, const typename R::quad_t& anc, std::size_t,
               std::size_t, bool) {
    ++visits;
    return R::level(anc) < 1;  // never descend past level 1
  });
  // Root + its children only.
  EXPECT_EQ(visits, 1u + (1u << R::dim));
}

TYPED_TEST(ForestT, FindEnclosingLeaf) {
  using R = TypeParam;
  auto f = Forest<R>::new_uniform(Connectivity::unit(R::dim), 3);
  // Any level-5 probe position has the level-3 leaf above it.
  Xoshiro256 rng(222);
  for (int i = 0; i < 200; ++i) {
    const auto probe = test::random_quadrant_at<R>(rng, 5);
    const auto idx = f.find_enclosing_leaf(0, probe);
    ASSERT_TRUE(idx.has_value());
    const auto& leaf = f.tree_quadrants(0)[*idx];
    EXPECT_EQ(R::level(leaf), 3);
    EXPECT_TRUE(R::is_ancestor(leaf, probe));
  }
}

TYPED_TEST(ForestT, NeighborAtOffsetCrossesTrees) {
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 1)
                                : Connectivity::brick3d(2, 1, 1);
  auto f = Forest<R>::new_uniform(conn, 1);
  // The +x-most leaf of tree 0 at level 1 has its +x neighbor in tree 1.
  const auto q = R::morton_quadrant(1, 1);  // child 1: upper x half
  const auto nb = f.neighbor_at_offset(0, q, 1, 0, 0);
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->tree, 1);
  EXPECT_EQ(R::level_index(nb->quad), 0u);  // lower x half of tree 1
  // And -x from tree 0's lower half is the physical boundary.
  const auto q0 = R::morton_quadrant(0, 1);
  EXPECT_FALSE(f.neighbor_at_offset(0, q0, -1, 0, 0).has_value());
}

TYPED_TEST(ForestT, InvalidConstructionArguments) {
  using R = TypeParam;
  EXPECT_THROW(Forest<R>::new_uniform(Connectivity::unit(R::dim), -1),
               std::invalid_argument);
  EXPECT_THROW(
      Forest<R>::new_uniform(Connectivity::unit(R::dim == 2 ? 3 : 2), 1),
      std::invalid_argument);
}

// Representative deep-type checks on one 3D representation to keep the
// suite's runtime modest.

TEST(ForestMixed, RefineCoarsenStressKeepsValidity) {
  using R = MortonRep<3>;
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), 2);
  // Both callbacks run concurrently (tree x chunk contract), so the
  // shared RNG needs a lock; the mesh trajectory varies with the
  // interleaving, which suits this validity stress test.
  Xoshiro256 rng(31337);
  std::mutex rng_mutex;
  for (int round = 0; round < 6; ++round) {
    f.refine(false, [&](tree_id_t, const R::quad_t& q) {
      if (R::level(q) >= 6) {
        return false;
      }
      const std::lock_guard<std::mutex> lock(rng_mutex);
      return (R::level_index(q) ^ rng.next_u64()) % 3 == 0;
    });
    ASSERT_TRUE(f.is_valid()) << "after refine round " << round;
    f.coarsen(false, [&](tree_id_t, const R::quad_t*) {
      const std::lock_guard<std::mutex> lock(rng_mutex);
      return rng.next_bool(0.4);
    });
    ASSERT_TRUE(f.is_valid()) << "after coarsen round " << round;
  }
}

TEST(ForestMixed, CompletenessCheckCatchesGaps) {
  using R = StandardRep<2>;
  auto f = Forest<R>::new_uniform(Connectivity::unit(2), 1);
  EXPECT_TRUE(f.is_valid());
  // A hand-built forest with a missing leaf must fail validation. We
  // simulate by coarsening a partial family through the public API being
  // impossible — so probe is_valid's sortedness detection instead with a
  // deliberately broken copy (white-box via const_cast is avoided; we
  // check that refine/coarsen never produce an invalid forest instead).
  f.refine(false, [](tree_id_t, const R::quad_t& q) {
    return R::level_index(q) == 2;
  });
  EXPECT_TRUE(f.is_valid());
  EXPECT_EQ(f.num_quadrants(), 7);
}

}  // namespace
}  // namespace qforest

/// \file test_balance_cross_tree.cpp
/// \brief Cross-tree balance marking parity: the batched mark phase
/// (bulk neighbor keys + sorted-merge lookup) and the scalar per-quadrant
/// reference path (QFOREST_NO_BATCH semantics via batch::set_enabled) must
/// produce identical final meshes when the 2:1 ripple crosses one tree
/// face, two faces (diagonal tree_step on 2 axes) and — in 3D — tree
/// edges and corners (tree_step on 3 axes), including periodic wrap where
/// the "neighbor" tree is the source tree itself.

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "core/batch_ops.hpp"
#include "forest/forest.hpp"
#include "helpers.hpp"

namespace qforest {
namespace {

/// Restores the process-global dispatch flag even when an ASSERT_ bails
/// out of the test body, so later tests never run with stale state.
struct BatchFlagGuard {
  explicit BatchFlagGuard(bool on) : saved_(batch::enabled()) {
    batch::set_enabled(on);
  }
  ~BatchFlagGuard() { batch::set_enabled(saved_); }
  bool saved_;
};

/// Balance two copies of \p f — one per mark-phase implementation — and
/// require bit-identical leaf arrays tree for tree. Balance only ever
/// splits, so equal final meshes imply the two mark phases requested the
/// same cumulative split sets.
template <class R>
void expect_mark_parity(const Forest<R>& f, BalanceKind kind) {
  Forest<R> scalar = f;
  {
    const BatchFlagGuard guard(false);
    scalar.balance(kind);
  }
  Forest<R> batched = f;
  {
    const BatchFlagGuard guard(true);
    batched.balance(kind);
  }
  ASSERT_TRUE(batched.is_valid()) << R::name;
  ASSERT_TRUE(batched.is_balanced(kind)) << R::name;
  ASSERT_EQ(scalar.num_quadrants(), batched.num_quadrants()) << R::name;
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    const auto& st = scalar.tree_quadrants(t);
    const auto& bt = batched.tree_quadrants(t);
    ASSERT_EQ(st.size(), bt.size()) << R::name << " tree " << t;
    for (std::size_t i = 0; i < st.size(); ++i) {
      ASSERT_TRUE(R::equal(st[i], bt[i]))
          << R::name << " tree " << t << " leaf " << i;
    }
  }
}

/// Refine the chain of leaves hugging the given corner of tree \p which
/// (corner bit set => the +max side of that axis), to \p depth levels.
/// Canonical coordinates keep the predicate exact for every
/// representation, including the >32-bit wide-morton grids.
template <class R>
Forest<R> corner_refined(Connectivity conn, tree_id_t which, unsigned corner,
                         int depth) {
  auto f = Forest<R>::new_uniform(std::move(conn), 1, 2);
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
  f.refine(true, [&](tree_id_t t, const typename R::quad_t& q) {
    if (t != which) {
      return false;
    }
    const CanonicalQuadrant c = to_canonical<R>(q);
    if (c.level >= depth) {
      return false;
    }
    const std::int64_t h = root >> c.level;
    const std::int64_t lo[3] = {c.x, c.y, c.z};
    for (int a = 0; a < R::dim; ++a) {
      const bool hi = (corner >> a) & 1u;
      if (lo[a] != (hi ? root - h : 0)) {
        return false;
      }
    }
    return true;
  });
  return f;
}

template <class R>
class CrossTreeBalanceT : public ::testing::Test {};

using CrossReps =
    ::testing::Types<StandardRep<2>, MortonRep<2>, AvxRep<2>,
                     StandardRep<3>, MortonRep<3>, AvxRep<3>,
                     WideMortonRep<3>>;
TYPED_TEST_SUITE(CrossTreeBalanceT, CrossReps);

TYPED_TEST(CrossTreeBalanceT, SingleFaceCrossing) {
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 1)
                                : Connectivity::brick3d(2, 1, 1);
  // +x face chain of tree 0 (corner bit 0 only): ripple into tree 1.
  const auto f = corner_refined<R>(conn, 0, 0b001, 6);
  expect_mark_parity(f, BalanceKind::kFull);
}

TYPED_TEST(CrossTreeBalanceT, TwoAxisDiagonalCrossing) {
  using R = TypeParam;
  const auto conn = R::dim == 2 ? Connectivity::brick2d(2, 2)
                                : Connectivity::brick3d(2, 2, 1);
  // (+x,+y) corner of tree 0: tree_step crosses two tree faces at once,
  // landing in the diagonal tree 3.
  const auto f = corner_refined<R>(conn, 0, 0b011, 6);
  for (const auto kind :
       {BalanceKind::kFace, BalanceKind::kEdge, BalanceKind::kFull}) {
    expect_mark_parity(f, kind);
  }
  // The diagonal neighbor must actually receive the ripple under kFull.
  Forest<R> full = f;
  full.balance(BalanceKind::kFull);
  EXPECT_GT(full.tree_quadrants(3).size(),
            static_cast<std::size_t>(1) << R::dim);
}

TEST(CrossTreeBalance3D, EdgeAndCornerCrossing) {
  using R = MortonRep<3>;
  // (+x,+y,+z) corner of tree 0 in a 2x2x2 brick: the ripple crosses
  // faces, the three 2-axis tree edges, and the 3-axis corner into the
  // antipodal tree 7.
  const auto f =
      corner_refined<R>(Connectivity::brick3d(2, 2, 2), 0, 0b111, 6);
  for (const auto kind :
       {BalanceKind::kFace, BalanceKind::kEdge, BalanceKind::kFull}) {
    expect_mark_parity(f, kind);
  }
  Forest<R> full = f;
  full.balance(BalanceKind::kFull);
  EXPECT_GT(full.tree_quadrants(7).size(), std::size_t{8});
}

TYPED_TEST(CrossTreeBalanceT, PeriodicWrapToSelf) {
  using R = TypeParam;
  // Fully periodic single-tree brick: every tree-crossing offset wraps
  // back into tree 0 itself, so the candidate bucketing must handle
  // target == source with a nonzero tree_step.
  const auto conn = R::dim == 2
                        ? Connectivity::brick2d(1, 1, true, true)
                        : Connectivity::brick3d(1, 1, 1, true, true, true);
  const auto f = corner_refined<R>(conn, 0, 0, 6);
  expect_mark_parity(f, BalanceKind::kFull);
}

TYPED_TEST(CrossTreeBalanceT, ScatteredRefinementParity) {
  using R = TypeParam;
  // Deterministic pseudo-random marks (hash of the level index, so the
  // predicate is pure and safe under the per-tree parallel callbacks)
  // scattered over a multi-tree brick: exercises many simultaneous
  // cross-tree candidates in every direction.
  const auto conn = R::dim == 2 ? Connectivity::brick2d(3, 2)
                                : Connectivity::brick3d(2, 2, 2);
  auto f = Forest<R>::new_uniform(conn, 1, 2);
  f.refine(true, [](tree_id_t t, const typename R::quad_t& q) {
    if (R::level(q) >= 5) {
      return false;
    }
    const std::uint64_t h =
        (static_cast<std::uint64_t>(R::level_index(q)) +
         static_cast<std::uint64_t>(t) * 1469598103934665603ull) *
        2654435761u;
    return (h >> 7) % 100 < 35;
  });
  expect_mark_parity(f, BalanceKind::kFull);
}

}  // namespace
}  // namespace qforest

/// \file test_quadrant_morton.cpp
/// \brief Unit tests for the raw Morton index representation,
/// paper §2.2 / Algorithms 4-8.

#include <gtest/gtest.h>

#include "core/quadrant_morton.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

using M2 = MortonRep<2>;
using M3 = MortonRep<3>;

TEST(MortonLayout, StorageAndLimits) {
  // Paper: 8 bytes per quadrant, max level 18 in 3D (same as original
  // p4est) and 28 in 2D.
  EXPECT_EQ(sizeof(M3::quad_t), 8u);
  EXPECT_EQ(M3::max_level, 18);
  EXPECT_EQ(M2::max_level, 28);
  EXPECT_EQ(M3::index_bits, 54);
  EXPECT_EQ(M2::index_bits, 56);
}

TEST(MortonAlgorithm4, ConstructionIsShiftAndOr) {
  // Paper Algorithm 4: q = (l << 56) | (I_l << d(L-l)).
  Xoshiro256 rng(31);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(M3::max_level + 1));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = M3::morton_quadrant(il, lvl);
    EXPECT_EQ(q, (static_cast<std::uint64_t>(lvl) << 56) |
                     (il << (3 * (M3::max_level - lvl))));
    EXPECT_EQ(M3::level(q), lvl);
    EXPECT_EQ(M3::level_index(q), il);
    EXPECT_TRUE(M3::is_valid(q));
  }
}

TEST(MortonLevel, AccessedByRightShift56) {
  for (int lvl = 0; lvl <= M3::max_level; ++lvl) {
    const auto q = M3::morton_quadrant(0, lvl);
    EXPECT_EQ(q >> 56, static_cast<std::uint64_t>(lvl));
  }
}

TEST(MortonAlgorithm5, SuccessorIsOneAddition) {
  Xoshiro256 rng(32);
  for (int i = 0; i < 20000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const morton_t il =
        rng.next_below((morton_t{1} << (3 * lvl)) - 1);
    const auto q = M3::morton_quadrant(il, lvl);
    const auto s = M3::successor(q);
    EXPECT_EQ(s, q + (std::uint64_t{1} << (3 * (M3::max_level - lvl))));
    EXPECT_EQ(M3::level_index(s), il + 1);
    EXPECT_EQ(M3::level(s), lvl);
    EXPECT_EQ(M3::predecessor(s), q);
  }
}

TEST(MortonAlgorithm5, IsLastOfLevelGuard) {
  const int lvl = 4;
  const morton_t last = (morton_t{1} << (3 * lvl)) - 1;
  EXPECT_TRUE(M3::is_last_of_level(M3::morton_quadrant(last, lvl)));
  EXPECT_FALSE(M3::is_last_of_level(M3::morton_quadrant(last - 1, lvl)));
  EXPECT_TRUE(M3::is_last_of_level(M3::root()));
}

TEST(MortonAlgorithm6, ChildDefinition21) {
  Xoshiro256 rng(33);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(M3::max_level));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto q = M3::morton_quadrant(il, lvl);
    for (int c = 0; c < 8; ++c) {
      const auto ch = M3::child(q, c);
      EXPECT_EQ(M3::level(ch), lvl + 1);
      EXPECT_EQ(M3::level_index(ch), 8 * il + static_cast<morton_t>(c));
      EXPECT_EQ(M3::child_id(ch), c);
      EXPECT_EQ(M3::parent(ch), q);  // Algorithm 7 inverts Algorithm 6
      EXPECT_TRUE(M3::is_ancestor(q, ch));
    }
  }
}

TEST(MortonAlgorithm7, ParentZeroesLevelBits) {
  Xoshiro256 rng(34);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const auto q = test::random_quadrant_at<M3>(rng, lvl);
    const auto p = M3::parent(q);
    EXPECT_EQ(M3::level(p), lvl - 1);
    // Definition 2.5: I_{l-1} = (I_l - (I_l mod 2^d)) / 2^d.
    EXPECT_EQ(M3::level_index(p), M3::level_index(q) / 8);
  }
}

TEST(MortonSibling, Definition23) {
  Xoshiro256 rng(35);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const auto q = test::random_quadrant_at<M3>(rng, lvl);
    const morton_t il = M3::level_index(q);
    for (int s = 0; s < 8; ++s) {
      const auto sib = M3::sibling(q, s);
      EXPECT_EQ(M3::level_index(sib), il - il % 8 + static_cast<morton_t>(s));
      EXPECT_EQ(M3::parent(sib), M3::parent(q));
    }
  }
}

TEST(MortonAlgorithm8, FaceNeighborMovesOneLength) {
  Xoshiro256 rng(36);
  int boundary_skips = 0;
  for (int i = 0; i < 20000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const auto q = test::random_quadrant_at<M3>(rng, lvl);
    int tb[3];
    M3::tree_boundaries(q, tb);
    for (int f = 0; f < 6; ++f) {
      // Skip neighbors that would wrap across the unit tree boundary.
      if (tb[f >> 1] == f) {
        ++boundary_skips;
        continue;
      }
      const auto n = M3::face_neighbor(q, f);
      coord_t qx, qy, qz, nx, ny, nz;
      int ql, nl;
      M3::to_coords(q, qx, qy, qz, ql);
      M3::to_coords(n, nx, ny, nz, nl);
      EXPECT_EQ(nl, ql);
      const coord_t h = M3::length(q);
      const coord_t qc[3] = {qx, qy, qz};
      const coord_t nc[3] = {nx, ny, nz};
      for (int a = 0; a < 3; ++a) {
        if (a == (f >> 1)) {
          EXPECT_EQ(nc[a] - qc[a], (f & 1) ? h : -h);
        } else {
          EXPECT_EQ(nc[a], qc[a]);
        }
      }
      // Inverse: crossing back restores q (Algorithm 8 is an involution
      // with the opposite face).
      EXPECT_EQ(M3::face_neighbor(n, f ^ 1), q);
    }
  }
  EXPECT_GT(boundary_skips, 0);  // the sweep did exercise boundaries
}

TEST(MortonAlgorithm8, WrapsPeriodicallyAtBoundary) {
  // At the lower x boundary, the -x neighbor wraps to the upper end.
  const auto q = M3::morton_quadrant(0, 3);  // corner at origin
  const auto n = M3::face_neighbor(q, 0);
  coord_t x, y, z;
  int lvl;
  M3::to_coords(n, x, y, z, lvl);
  EXPECT_EQ(x, (coord_t{1} << M3::max_level) - M3::length_at(3));
  EXPECT_EQ(y, 0);
  EXPECT_EQ(z, 0);
}

TEST(MortonTreeBoundaries, MatchesCoordinateDefinition) {
  Xoshiro256 rng(37);
  for (int i = 0; i < 20000; ++i) {
    const auto q = test::random_quadrant<M3>(rng);
    int got[3];
    M3::tree_boundaries(q, got);
    coord_t c[3];
    int lvl;
    M3::to_coords(q, c[0], c[1], c[2], lvl);
    if (lvl == 0) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(got[a], kBoundaryAll);
      }
      continue;
    }
    const coord_t up = (coord_t{1} << M3::max_level) - M3::length(q);
    for (int a = 0; a < 3; ++a) {
      const int want =
          c[a] == 0 ? 2 * a : (c[a] == up ? 2 * a + 1 : kBoundaryNone);
      EXPECT_EQ(got[a], want);
    }
  }
}

TEST(MortonCompare, IndexThenLevel) {
  Xoshiro256 rng(38);
  for (int i = 0; i < 20000; ++i) {
    const auto a = test::random_quadrant<M3>(rng);
    const auto b = test::random_quadrant<M3>(rng);
    const bool lt = M3::less(a, b);
    const bool gt = M3::less(b, a);
    EXPECT_FALSE(lt && gt);
    if (!lt && !gt) {
      EXPECT_EQ(a, b);
    }
  }
  // Ancestor precedes descendants.
  const auto anc = M3::morton_quadrant(5, 4);
  EXPECT_TRUE(M3::less(anc, M3::child(anc, 0)));
  EXPECT_TRUE(M3::less(anc, M3::child(anc, 7)));
}

TEST(MortonAncestors, RoundTripThroughDescendants) {
  Xoshiro256 rng(39);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const auto q = test::random_quadrant_at<M3>(rng, lvl);
    const int up = static_cast<int>(rng.next_below(lvl + 1));
    const auto anc = M3::ancestor(q, up);
    EXPECT_EQ(M3::level(anc), up);
    EXPECT_EQ(M3::first_descendant(anc, lvl) <= q &&
                  q <= M3::last_descendant(anc, lvl),
              true);
    EXPECT_TRUE(up == lvl ? anc == q : M3::is_ancestor(anc, q));
  }
}

TEST(MortonValidity, RejectsBrokenWords) {
  // Level beyond max.
  EXPECT_FALSE(M3::is_valid(std::uint64_t{19} << 56));
  // Index bits beyond d*L.
  EXPECT_FALSE(M3::is_valid(std::uint64_t{1} << 55));
  // Misaligned index for the level.
  const auto q = M3::morton_quadrant(1, 3);
  EXPECT_TRUE(M3::is_valid(q));
  EXPECT_FALSE(M3::is_valid(q | 1u));
}

TEST(Morton2D, FullOpSweep) {
  Xoshiro256 rng(40);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M2::max_level));
    const auto q = test::random_quadrant_at<M2>(rng, lvl);
    EXPECT_TRUE(M2::is_valid(q));
    EXPECT_EQ(M2::parent(M2::child(M2::parent(q), M2::child_id(q))),
              M2::parent(q));
    if (lvl < M2::max_level) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(M2::parent(M2::child(q, c)), q);
      }
    }
    int tb[2];
    M2::tree_boundaries(q, tb);
    for (int f = 0; f < 4; ++f) {
      if (tb[f >> 1] == f) {
        continue;
      }
      EXPECT_EQ(M2::face_neighbor(M2::face_neighbor(q, f), f ^ 1), q);
    }
  }
}

TEST(MortonCorner, DiagonalComposition) {
  Xoshiro256 rng(41);
  for (int i = 0; i < 5000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(M3::max_level));
    const auto q = test::random_quadrant_at<M3>(rng, lvl);
    int tb[3];
    M3::tree_boundaries(q, tb);
    // Use the interior-safe corner: move away from any touched boundary.
    int c = 0;
    for (int a = 0; a < 3; ++a) {
      if (tb[a] == 2 * a) {
        c |= 1 << a;  // at lower boundary: move up
      }
    }
    const auto n = M3::corner_neighbor(q, c);
    EXPECT_EQ(M3::corner_neighbor(n, c ^ 7), q);
  }
}

}  // namespace
}  // namespace qforest

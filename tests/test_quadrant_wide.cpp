/// \file test_quadrant_wide.cpp
/// \brief Unit tests for the 128-bit wide Morton representation (the
/// paper's future-work combination of raw index + 128-bit registers),
/// with emphasis on levels beyond the 32-bit coordinate limit.

#include <gtest/gtest.h>

#include "core/canonical.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

using W2 = WideMortonRep<2>;
using W3 = WideMortonRep<3>;
using S3 = StandardRep<3>;

TEST(WideLayout, StorageAndLimits) {
  EXPECT_EQ(sizeof(W3::quad_t), 16u);  // same footprint as the AVX rep
  EXPECT_EQ(W3::max_level, 40);        // beyond standard's 29
  EXPECT_EQ(W2::max_level, 60);
}

TEST(WideCoords, RoundTrip3D) {
  Xoshiro256 rng(71);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(W3::max_level + 1));
    const auto hx = W3::length_at(lvl);
    const std::int64_t x = static_cast<std::int64_t>(
                               rng.next_below(std::uint64_t{1} << lvl)) * hx;
    const std::int64_t y = static_cast<std::int64_t>(
                               rng.next_below(std::uint64_t{1} << lvl)) * hx;
    const std::int64_t z = static_cast<std::int64_t>(
                               rng.next_below(std::uint64_t{1} << lvl)) * hx;
    const auto q = W3::from_wide_coords(x, y, z, lvl);
    std::int64_t rx, ry, rz;
    int rl;
    W3::to_wide_coords(q, rx, ry, rz, rl);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
    EXPECT_EQ(rz, z);
    EXPECT_EQ(rl, lvl);
    EXPECT_TRUE(W3::is_valid(q));
  }
}

TEST(WideCoords, RoundTrip2DDeepLevels) {
  Xoshiro256 rng(72);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(W2::max_level + 1));
    const auto h = W2::length_at(lvl);
    const std::int64_t x = static_cast<std::int64_t>(
                               rng.next_below(std::uint64_t{1} << lvl)) * h;
    const std::int64_t y = static_cast<std::int64_t>(
                               rng.next_below(std::uint64_t{1} << lvl)) * h;
    const auto q = W2::from_wide_coords(x, y, 0, lvl);
    std::int64_t rx, ry, rz;
    int rl;
    W2::to_wide_coords(q, rx, ry, rz, rl);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
    EXPECT_EQ(rl, lvl);
  }
}

TEST(WideFamily, ChildParentSiblingDeep) {
  Xoshiro256 rng(73);
  for (int i = 0; i < 10000; ++i) {
    // Deep levels: beyond what 32-bit coordinate reps can express.
    const int lvl =
        30 + static_cast<int>(rng.next_below(W3::max_level - 30));
    std::int64_t c[3];
    const auto h = W3::length_at(lvl);
    for (auto& v : c) {
      v = static_cast<std::int64_t>(rng.next_below(std::uint64_t{1} << lvl)) *
          h;
    }
    const auto q = W3::from_wide_coords(c[0], c[1], c[2], lvl);
    const auto p = W3::parent(q);
    EXPECT_EQ(W3::level(p), lvl - 1);
    EXPECT_TRUE(W3::is_ancestor(p, q));
    EXPECT_EQ(W3::child(p, W3::child_id(q)), q);
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ(W3::parent(W3::sibling(q, s)), p);
    }
  }
}

TEST(WideSuccessor, OneAdditionDeep) {
  Xoshiro256 rng(74);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = 1 + static_cast<int>(rng.next_below(W3::max_level));
    // Exclude the last quadrant of the level (successor precondition).
    const auto span = std::uint64_t{1} << std::min(60, 3 * lvl);
    const auto q = W3::morton_quadrant(rng.next_below(span - 1), lvl);
    const auto s = W3::successor(q);
    EXPECT_EQ(W3::predecessor(s), q);
    EXPECT_EQ(W3::level(s), lvl);
  }
}

TEST(WideFaceNeighbor, InverseDeep) {
  Xoshiro256 rng(75);
  for (int i = 0; i < 10000; ++i) {
    // Levels >= 2 so strictly interior positions exist.
    const int lvl = 2 + static_cast<int>(rng.next_below(W3::max_level - 1));
    std::int64_t c[3];
    const auto h = W3::length_at(lvl);
    for (auto& v : c) {
      // Stay strictly interior so no wrap can occur.
      v = (1 + static_cast<std::int64_t>(
                   rng.next_below((std::uint64_t{1} << lvl) - 2))) * h;
    }
    const auto q = W3::from_wide_coords(c[0], c[1], c[2], lvl);
    for (int f = 0; f < 6; ++f) {
      const auto n = W3::face_neighbor(q, f);
      EXPECT_EQ(W3::face_neighbor(n, f ^ 1), q);
      std::int64_t nx, ny, nz;
      int nl;
      W3::to_wide_coords(n, nx, ny, nz, nl);
      const std::int64_t nc[3] = {nx, ny, nz};
      for (int a = 0; a < 3; ++a) {
        const std::int64_t want =
            a == (f >> 1) ? c[a] + ((f & 1) ? h : -h) : c[a];
        EXPECT_EQ(nc[a], want);
      }
    }
  }
}

TEST(WideTreeBoundaries, DeepLevels) {
  // The far corner octant at level 40 touches the three upper faces.
  const int lvl = W3::max_level;
  const std::int64_t up = (std::int64_t{1} << lvl) - 1;
  const auto h = W3::length_at(lvl);
  const auto q = W3::from_wide_coords(up * h, up * h, up * h, lvl);
  int f[3];
  W3::tree_boundaries(q, f);
  EXPECT_EQ(f[0], 1);
  EXPECT_EQ(f[1], 3);
  EXPECT_EQ(f[2], 5);
}

TEST(WideAgainstStandard, SharedLevelsAgree) {
  Xoshiro256 rng(76);
  for (int i = 0; i < 10000; ++i) {
    const int lvl = static_cast<int>(rng.next_below(21));
    const morton_t il = rng.next_below(morton_t{1} << (3 * lvl));
    const auto w = W3::morton_quadrant(il, lvl);
    const auto s = S3::morton_quadrant(il, lvl);
    EXPECT_TRUE((test::canonically_equal<W3, S3>(w, s)));
    EXPECT_EQ(W3::level_index(w), il);
  }
}

TEST(WideCompare, OrderSweep) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 20000; ++i) {
    const auto a = test::random_quadrant<W3>(rng);
    const auto b = test::random_quadrant<W3>(rng);
    const bool lt = W3::less(a, b);
    const bool gt = W3::less(b, a);
    EXPECT_FALSE(lt && gt);
    if (!lt && !gt) {
      EXPECT_EQ(a, b);
    }
  }
}

TEST(WideNca, DeepSeparation) {
  Xoshiro256 rng(78);
  for (int i = 0; i < 5000; ++i) {
    const auto a = test::random_quadrant<W3>(rng);
    const auto b = test::random_quadrant<W3>(rng);
    const auto n = W3::nearest_common_ancestor(a, b);
    EXPECT_TRUE(n == a || W3::is_ancestor(n, a));
    EXPECT_TRUE(n == b || W3::is_ancestor(n, b));
  }
}

TEST(WideValidity, Rejections) {
  EXPECT_FALSE(W3::is_valid(static_cast<W3::quad_t>(41) << 120));
  EXPECT_TRUE(W3::is_valid(W3::root()));
  const auto q = W3::morton_quadrant(3, 2);
  EXPECT_TRUE(W3::is_valid(q));
  EXPECT_FALSE(W3::is_valid(q | 1));
}

}  // namespace
}  // namespace qforest

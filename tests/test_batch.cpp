/// \file test_batch.cpp
/// \brief 256-bit batched quadrant operations must agree element-wise
/// with the per-quadrant AVX kernels, including odd-length tails.

#include <vector>

#include <gtest/gtest.h>

#include "core/batch_avx.hpp"
#include "helpers.hpp"
#include "util/random.hpp"

namespace qforest {
namespace {

template <int Dim>
std::vector<typename AvxRep<Dim>::quad_t> uniform_level_batch(
    Xoshiro256& rng, std::size_t n, int level) {
  std::vector<typename AvxRep<Dim>::quad_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(AvxRep<Dim>::morton_quadrant(
        rng.next_below(morton_t{1} << (Dim * level)), level));
  }
  return out;
}

class BatchSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizes, ChildUniformMatchesScalar3D) {
  using A = AvxRep<3>;
  Xoshiro256 rng(1001);
  const std::size_t n = GetParam();
  const int level = 5;
  const auto in = uniform_level_batch<3>(rng, n, level);
  std::vector<A::quad_t> out(n);
  for (int c = 0; c < 8; ++c) {
    AvxBatch<3>::child_uniform(in.data(), out.data(), n, c, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(A::equal(out[i], A::child(in[i], c)))
          << "c=" << c << " i=" << i;
    }
  }
}

TEST_P(BatchSizes, ParentUniformMatchesScalar3D) {
  using A = AvxRep<3>;
  Xoshiro256 rng(1002);
  const std::size_t n = GetParam();
  const int level = 7;
  const auto in = uniform_level_batch<3>(rng, n, level);
  std::vector<A::quad_t> out(n);
  AvxBatch<3>::parent_uniform(in.data(), out.data(), n, level);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(A::equal(out[i], A::parent(in[i])));
  }
}

TEST_P(BatchSizes, FaceNeighborUniformMatchesScalar3D) {
  using A = AvxRep<3>;
  Xoshiro256 rng(1003);
  const std::size_t n = GetParam();
  const int level = 6;
  const auto in = uniform_level_batch<3>(rng, n, level);
  std::vector<A::quad_t> out(n);
  for (int f = 0; f < 6; ++f) {
    AvxBatch<3>::face_neighbor_uniform(in.data(), out.data(), n, f, level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(A::equal(out[i], A::face_neighbor(in[i], f)))
          << "f=" << f << " i=" << i;
    }
  }
}

// Odd sizes exercise the scalar tail; 0 and 1 are the degenerate cases.
INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 65, 1001));

TEST(Batch2D, ChildUniformMatchesScalar) {
  using A = AvxRep<2>;
  Xoshiro256 rng(1004);
  const int level = 5;
  std::vector<A::quad_t> in = uniform_level_batch<2>(rng, 513, level);
  std::vector<A::quad_t> out(in.size());
  for (int c = 0; c < 4; ++c) {
    AvxBatch<2>::child_uniform(in.data(), out.data(), in.size(), c, level);
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_TRUE(A::equal(out[i], A::child(in[i], c)));
    }
  }
}

TEST(Batch, InPlaceOperationAllowed) {
  // out == in aliasing must work (pure load-compute-store loops).
  using A = AvxRep<3>;
  Xoshiro256 rng(1005);
  const int level = 4;
  auto quads = uniform_level_batch<3>(rng, 100, level);
  const auto orig = quads;
  AvxBatch<3>::child_uniform(quads.data(), quads.data(), quads.size(), 3,
                             level);
  for (std::size_t i = 0; i < quads.size(); ++i) {
    ASSERT_TRUE(A::equal(quads[i], A::child(orig[i], 3)));
  }
}

TEST(Batch, RoundTripChildParent) {
  using A = AvxRep<3>;
  Xoshiro256 rng(1006);
  const int level = 6;
  const auto in = uniform_level_batch<3>(rng, 777, level);
  std::vector<A::quad_t> kids(in.size()), back(in.size());
  AvxBatch<3>::child_uniform(in.data(), kids.data(), in.size(), 6, level);
  AvxBatch<3>::parent_uniform(kids.data(), back.data(), kids.size(),
                              level + 1);
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_TRUE(A::equal(back[i], in[i]));
  }
}

}  // namespace
}  // namespace qforest

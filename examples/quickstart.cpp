/// \file quickstart.cpp
/// \brief Minimal tour of the qforest public API: build a forest, refine
/// it adaptively, enforce 2:1 balance, partition it over simulated ranks,
/// and render the resulting 2D mesh as ASCII.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart [representation]
/// where representation is one of: standard (default), morton, avx,
/// wide-morton. The printed mesh is identical for every choice — the
/// paper's exchangeability claim in action.

#include <cmath>
#include <cstdio>
#include <string>

#include "core/canonical.hpp"
#include "forest/forest.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace qforest;

/// Refine quadrants whose cell touches the circle of radius 0.3 around
/// (0.4, 0.4): the kind of interface tracking AMR applications do.
template <class R>
bool near_circle(const typename R::quad_t& q) {
  // Go through the canonical form: exact for every representation,
  // including wide-morton whose own grid exceeds 32-bit coordinates.
  const CanonicalQuadrant c = to_canonical<R>(q);
  const double scale = std::ldexp(1.0, kCanonicalLevel);
  const double h =
      std::ldexp(1.0, kCanonicalLevel - c.level) / scale;
  const double cx = static_cast<double>(c.x) / scale + h / 2;
  const double cy = static_cast<double>(c.y) / scale + h / 2;
  const double dx = cx - 0.4, dy = cy - 0.4;
  const double r = std::sqrt(dx * dx + dy * dy);
  return std::abs(r - 0.3) < h;
}

/// Render leaf levels on a character grid (one cell per finest quadrant).
template <class R>
void render(const Forest<R>& forest, int grid_level) {
  const int n = 1 << grid_level;
  std::vector<std::string> canvas(static_cast<std::size_t>(n),
                                  std::string(static_cast<std::size_t>(n),
                                              ' '));
  for (const auto& q : forest.tree_quadrants(0)) {
    const CanonicalQuadrant c = to_canonical<R>(q);
    const int down = kCanonicalLevel - grid_level;
    const int gx = static_cast<int>(c.x >> down);
    const int gy = static_cast<int>(c.y >> down);
    const int cells =
        c.level >= grid_level ? 1 : 1 << (grid_level - c.level);
    for (int j = 0; j < cells; ++j) {
      for (int i = 0; i < cells; ++i) {
        canvas[static_cast<std::size_t>(gy + j)]
              [static_cast<std::size_t>(gx + i)] =
                  static_cast<char>('0' + c.level);
      }
    }
  }
  for (int row = n - 1; row >= 0; --row) {  // y grows upward
    std::printf("  %s\n", canvas[static_cast<std::size_t>(row)].c_str());
  }
}

template <class R>
int run() {
  std::printf("qforest quickstart — representation: %s (max level %d, "
              "%zu bytes/quadrant)\n\n",
              R::name, R::max_level, sizeof(typename R::quad_t));

  // 1. A forest of one unit quadtree, uniformly refined to level 3.
  auto forest = Forest<R>::new_uniform(Connectivity::unit(2), 3,
                                       /*num_ranks=*/4);
  std::printf("uniform level 3: %lld leaves\n",
              static_cast<long long>(forest.num_quadrants()));

  // 2. Adaptive refinement around a circular interface, to level 6.
  forest.refine(true, [](tree_id_t, const typename R::quad_t& q) {
    return R::level(q) < 6 && near_circle<R>(q);
  });
  std::printf("after refine:   %lld leaves, levels %s\n",
              static_cast<long long>(forest.num_quadrants()),
              forest.is_balanced(BalanceKind::kFull) ? "(already balanced)"
                                                     : "(unbalanced)");

  // 3. 2:1 balance.
  forest.balance(BalanceKind::kFull);
  std::printf("after balance:  %lld leaves, balanced=%s, valid=%s\n",
              static_cast<long long>(forest.num_quadrants()),
              forest.is_balanced(BalanceKind::kFull) ? "yes" : "no",
              forest.is_valid() ? "yes" : "no");

  // 4. Partition over 4 simulated ranks, weighted by level.
  forest.partition_weighted([](tree_id_t, const typename R::quad_t& q) {
    return 1 + R::level(q);
  });
  qforest::Table t({"rank", "first leaf", "last leaf", "count", "ghosts"});
  for (int r = 0; r < forest.num_ranks(); ++r) {
    const auto [first, last] = forest.rank_range(r);
    t.add_row({qforest::Table::fmt(static_cast<long long>(r)),
               qforest::Table::fmt(static_cast<long long>(first)),
               qforest::Table::fmt(static_cast<long long>(last)),
               qforest::Table::fmt(static_cast<long long>(last - first)),
               qforest::Table::fmt(static_cast<long long>(
                   forest.ghost_layer(r).entries.size()))});
  }
  t.print();

  // 5. The mesh, one digit per finest-level cell (digit = leaf level).
  std::printf("\nmesh levels (level-6 resolution):\n");
  render(forest, 6);

  // With QFOREST_TRACE=1 the adaptation spans above (refine, balance,
  // adjacency scans) land in a Perfetto-loadable trace; a no-op otherwise.
  qforest::obs::write_trace_if_enabled("TRACE_quickstart.json");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string rep = argc > 1 ? argv[1] : "standard";
  if (rep == "standard") return run<StandardRep<2>>();
  if (rep == "morton") return run<MortonRep<2>>();
  if (rep == "avx") return run<AvxRep<2>>();
  if (rep == "wide-morton" || rep == "wide") return run<WideMortonRep<2>>();
  std::fprintf(stderr,
               "unknown representation '%s' (use standard|morton|avx|"
               "wide-morton)\n",
               rep.c_str());
  return 1;
}

/// \file fractal_refine.cpp
/// \brief 3D geometric refinement at scale: refine a two-tree brick
/// around a Menger-sponge surface, 2:1 balance it, partition across
/// simulated ranks with level-proportional weights, and report the load
/// balance and ghost layer sizes per rank — the multi-tree, multi-rank
/// workflow of a production p4est run.
///
/// Run: ./build/examples/fractal_refine [max_level] [ranks] [rep]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/canonical.hpp"
#include "forest/forest.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace qforest;

/// Menger sponge membership test on the unit cube at ternary depth 3:
/// a cell is "in the sponge surface band" when its center survives the
/// recursive middle-third removal.
bool in_sponge(double x, double y, double z) {
  for (int d = 0; d < 3; ++d) {
    const int tx = static_cast<int>(x * 3) % 3;
    const int ty = static_cast<int>(y * 3) % 3;
    const int tz = static_cast<int>(z * 3) % 3;
    if ((tx == 1) + (ty == 1) + (tz == 1) >= 2) {
      return false;  // removed middle cross
    }
    x = x * 3 - std::floor(x * 3);
    y = y * 3 - std::floor(y * 3);
    z = z * 3 - std::floor(z * 3);
  }
  return true;
}

template <class R>
bool on_sponge_boundary(const typename R::quad_t& q) {
  // Canonical form: representation-exact for all encodings.
  const CanonicalQuadrant c0 = to_canonical<R>(q);
  const double scale = std::ldexp(1.0, kCanonicalLevel);
  const double h = std::ldexp(1.0, kCanonicalLevel - c0.level) / scale;
  const double cx = static_cast<double>(c0.x) / scale + h / 2;
  const double cy = static_cast<double>(c0.y) / scale + h / 2;
  const double cz = static_cast<double>(c0.z) / scale + h / 2;
  // Refine where the sponge membership changes across the cell: sample
  // center and corners.
  const bool c = in_sponge(cx, cy, cz);
  for (int corner = 0; corner < 8; ++corner) {
    const double px = cx + ((corner & 1) ? h / 2 : -h / 2);
    const double py = cy + ((corner & 2) ? h / 2 : -h / 2);
    const double pz = cz + ((corner & 4) ? h / 2 : -h / 2);
    if (in_sponge(px, py, pz) != c) {
      return true;
    }
  }
  return false;
}

template <class R>
int run(int max_level, int ranks) {
  std::printf("fractal_refine — Menger sponge surface on a 2x1x1 brick, "
              "rep %s, levels 2..%d, %d ranks\n\n",
              R::name, max_level, ranks);
  WallTimer total;

  auto forest =
      Forest<R>::new_uniform(Connectivity::brick3d(2, 1, 1), 2, ranks);

  WallTimer t;
  forest.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    return R::level(q) < max_level && on_sponge_boundary<R>(q);
  });
  const double refine_s = t.elapsed_s();

  t.reset();
  forest.balance(BalanceKind::kFull);
  const double balance_s = t.elapsed_s();

  t.reset();
  forest.partition_weighted([](tree_id_t, const typename R::quad_t& q) {
    return 1 + R::level(q) * R::level(q);  // finer cells cost more
  });
  const double partition_s = t.elapsed_s();

  std::printf("leaves: %lld  (refine %.3f s, balance %.3f s, partition "
              "%.3f s)\n",
              static_cast<long long>(forest.num_quadrants()), refine_s,
              balance_s, partition_s);
  std::printf("balanced: %s, valid: %s\n\n",
              forest.is_balanced(BalanceKind::kFull) ? "yes" : "NO",
              forest.is_valid() ? "yes" : "NO");

  std::printf("leaves per level:\n");
  for (int l = 0; l <= forest.max_level_used(); ++l) {
    const gidx_t c = forest.count_level(l);
    if (c > 0) {
      std::printf("  L%-2d %8lld  %s\n", l, static_cast<long long>(c),
                  std::string(static_cast<std::size_t>(
                                  1 + 40 * c / forest.num_quadrants()),
                              '#')
                      .c_str());
    }
  }

  Table table({"rank", "leaves", "weight share %", "ghosts"});
  std::int64_t total_weight = 0;
  std::vector<std::int64_t> weights(static_cast<std::size_t>(ranks), 0);
  for (int r = 0; r < ranks; ++r) {
    const auto [first, last] = forest.rank_range(r);
    for (gidx_t g = first; g < last; ++g) {
      const auto [tt, ii] = forest.locate(g);
      const int l = R::level(forest.tree_quadrants(tt)[ii]);
      weights[static_cast<std::size_t>(r)] += 1 + l * l;
    }
    total_weight += weights[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < ranks; ++r) {
    const auto [first, last] = forest.rank_range(r);
    table.add_row(
        {Table::fmt(static_cast<long long>(r)),
         Table::fmt(static_cast<long long>(last - first)),
         Table::fmt(100.0 * static_cast<double>(
                                weights[static_cast<std::size_t>(r)]) /
                        static_cast<double>(total_weight),
                    2),
         Table::fmt(static_cast<long long>(
             forest.ghost_layer(r).entries.size()))});
  }
  std::printf("\n");
  table.print();

  std::printf("\ntotal runtime %.3f s\n", total.elapsed_s());
  return forest.is_valid() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 5;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string rep = argc > 3 ? argv[3] : "morton";
  if (rep == "standard") return run<StandardRep<3>>(max_level, ranks);
  if (rep == "morton") return run<MortonRep<3>>(max_level, ranks);
  if (rep == "avx") return run<AvxRep<3>>(max_level, ranks);
  if (rep == "wide-morton" || rep == "wide") {
    return run<WideMortonRep<3>>(max_level, ranks);
  }
  std::fprintf(stderr, "unknown representation '%s'\n", rep.c_str());
  return 1;
}

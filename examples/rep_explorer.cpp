/// \file rep_explorer.cpp
/// \brief Interactive inspector for the four quadrant encodings: give a
/// position and level, see the exact bit layout of each representation
/// (paper §2.1-2.3 and Figure 1) plus the result of every low-level
/// operation, all verified to agree through the canonical form.
///
/// Run: ./build/examples/rep_explorer [level [index]]
/// Defaults to a small demonstration quadrant.

#include <bitset>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/canonical.hpp"
#include "core/virtual_ops.hpp"
#include "util/table.hpp"

namespace {

using namespace qforest;

std::string u64_bits(std::uint64_t v, int groups_of = 8) {
  std::string s = std::bitset<64>(v).to_string();
  std::string out;
  for (int i = 0; i < 64; ++i) {
    if (i > 0 && i % groups_of == 0) {
      out += ' ';
    }
    out += s[static_cast<std::size_t>(i)];
  }
  return out;
}

template <class R>
void describe(morton_t il, int lvl) {
  const auto q = R::morton_quadrant(il, lvl);
  const auto c = to_canonical<R>(q);
  std::printf("--- %s (max_level %d, %zu bytes) ---\n", R::name,
              R::max_level, sizeof(q));
  // Own-grid coordinates derived from the canonical form, which stays
  // exact even for the wide representation's 64-bit coordinates.
  const int down = kCanonicalLevel - R::max_level;
  std::printf("  coords on own 2^%d grid: x=%" PRId64 " y=%" PRId64
              " z=%" PRId64 " level=%d\n",
              R::max_level, c.x >> down, c.y >> down, c.z >> down, c.level);
  std::printf("  canonical (2^%d grid):   x=%" PRId64 " y=%" PRId64
              " z=%" PRId64 "\n",
              kCanonicalLevel, c.x, c.y, c.z);

  if constexpr (std::is_same_v<typename R::quad_t, std::uint64_t>) {
    std::printf("  word: %s\n", u64_bits(q).c_str());
    std::printf("        ^level^ ^---- Morton index I (56 bits) ----\n");
  }

  std::printf("  child_id=%d", lvl > 0 ? R::child_id(q) : -1);
  if (lvl > 0) {
    const auto p = R::parent(q);
    std::printf("  parent level_index=%" PRIu64, R::level_index(p));
  }
  if (lvl < R::max_level) {
    std::printf("  child(0) level_index=%" PRIu64,
                R::level_index(R::child(q, 0)));
  }
  std::printf("\n");
  int tb[3] = {99, 99, 99};
  R::tree_boundaries(q, tb);
  std::printf("  tree_boundaries: [%d %d %d]  (-2 all, -1 none, else face "
              "id)\n\n",
              tb[0], tb[1], R::dim == 3 ? tb[2] : -99);
}

}  // namespace

int main(int argc, char** argv) {
  const int lvl = argc > 1 ? std::atoi(argv[1]) : 3;
  const morton_t il =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10)
               : (morton_t{1} << (3 * lvl)) / 3;  // somewhere mid-curve

  std::printf("qforest rep_explorer — 3D quadrant with level-%d Morton "
              "index %" PRIu64 "\n\n",
              lvl, il);

  describe<StandardRep<3>>(il, lvl);
  describe<MortonRep<3>>(il, lvl);
  describe<AvxRep<3>>(il, lvl);
  describe<WideMortonRep<3>>(il, lvl);

  // Cross-check all four through the canonical form.
  const auto s = to_canonical<StandardRep<3>>(
      StandardRep<3>::morton_quadrant(il, lvl));
  const auto m =
      to_canonical<MortonRep<3>>(MortonRep<3>::morton_quadrant(il, lvl));
  const auto a = to_canonical<AvxRep<3>>(AvxRep<3>::morton_quadrant(il, lvl));
  const auto w = to_canonical<WideMortonRep<3>>(
      WideMortonRep<3>::morton_quadrant(il, lvl));
  const bool agree = s == m && m == a && a == w;
  std::printf("all four representations agree canonically: %s\n",
              agree ? "yes" : "NO");

  // Demonstrate a random walk through the virtual interface.
  std::printf("\nvirtual-interface walk (morton rep): root");
  const VirtualQuadrantOps& ops = virtual_ops(RepKind::kMorton, 3);
  VQuad v = ops.root();
  for (int c : {0, 7, 3}) {
    v = ops.child(v, c);
    std::printf(" -> child %d (level %d, level_index %" PRIu64 ")", c,
                ops.level(v), ops.level_index(v));
  }
  std::printf("\n");
  return agree ? 0 : 1;
}

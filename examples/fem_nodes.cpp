/// \file fem_nodes.cpp
/// \brief Continuous-element node numbering on an adaptive mesh: build a
/// balanced forest around a corner singularity (the classic L-shaped-
/// domain refinement pattern), number the corner nodes, and report
/// independent vs hanging degrees of freedom — what a conforming FEM
/// discretization on p4est consumes (paper §1: "node numberings for low-
/// and high-order continuous elements").
///
/// Run: ./build/examples/fem_nodes [max_level] [rep]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/canonical.hpp"
#include "forest/forest.hpp"
#include "forest/nodes.hpp"
#include "util/table.hpp"

namespace {

using namespace qforest;

/// Refine toward the re-entrant corner at (0.5, 0.5): cells whose
/// distance to the corner is below 2 cell widths, the grading a
/// singularity-resolving FEM mesh uses.
template <class R>
bool near_corner(const typename R::quad_t& q) {
  const CanonicalQuadrant c = to_canonical<R>(q);
  const double scale = std::ldexp(1.0, kCanonicalLevel);
  const double h = std::ldexp(1.0, kCanonicalLevel - c.level) / scale;
  const double cx = static_cast<double>(c.x) / scale + h / 2;
  const double cy = static_cast<double>(c.y) / scale + h / 2;
  const double dx = cx - 0.5, dy = cy - 0.5;
  return std::sqrt(dx * dx + dy * dy) < 2 * h;
}

template <class R>
int run(int max_level) {
  std::printf("fem_nodes — corner-singularity mesh, rep %s, levels 2..%d\n\n",
              R::name, max_level);

  auto forest = Forest<R>::new_uniform(Connectivity::unit(2), 2);
  Table t({"pass", "leaves", "nodes", "independent", "hanging",
           "hanging %"});
  for (int target = 3; target <= max_level; ++target) {
    forest.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
      return R::level(q) < target && near_corner<R>(q);
    });
    forest.balance(BalanceKind::kFull);
    const auto nodes = number_corner_nodes(forest);
    const std::int64_t hang = nodes.num_nodes() - nodes.num_independent();
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f",
                  100.0 * static_cast<double>(hang) /
                      static_cast<double>(nodes.num_nodes()));
    t.add_row({Table::fmt(static_cast<long long>(target)),
               Table::fmt(static_cast<long long>(forest.num_quadrants())),
               Table::fmt(static_cast<long long>(nodes.num_nodes())),
               Table::fmt(static_cast<long long>(nodes.num_independent())),
               Table::fmt(static_cast<long long>(hang)), pct});
  }
  t.print();

  // Element connectivity sample: the first element's global node ids.
  const auto nodes = number_corner_nodes(forest);
  std::printf("\nelement 0 connectivity (z-order corners): [%lld %lld %lld "
              "%lld]\n",
              static_cast<long long>(nodes.element_nodes[0][0]),
              static_cast<long long>(nodes.element_nodes[0][1]),
              static_cast<long long>(nodes.element_nodes[0][2]),
              static_cast<long long>(nodes.element_nodes[0][3]));

  // A conforming discretization sanity check: every element references
  // 2^d valid node ids and no independent node is orphaned.
  std::vector<int> refs(static_cast<std::size_t>(nodes.num_nodes()), 0);
  for (const auto& elem : nodes.element_nodes) {
    for (int c = 0; c < 4; ++c) {
      refs[static_cast<std::size_t>(elem[static_cast<std::size_t>(c)])]++;
    }
  }
  int orphans = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    orphans += refs[i] == 0 ? 1 : 0;
  }
  std::printf("orphan nodes: %d (must be 0)\n", orphans);
  return orphans == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string rep = argc > 2 ? argv[2] : "morton";
  if (rep == "standard") return run<StandardRep<2>>(max_level);
  if (rep == "morton") return run<MortonRep<2>>(max_level);
  if (rep == "avx") return run<AvxRep<2>>(max_level);
  if (rep == "wide-morton" || rep == "wide") {
    return run<WideMortonRep<2>>(max_level);
  }
  std::fprintf(stderr, "unknown representation '%s'\n", rep.c_str());
  return 1;
}

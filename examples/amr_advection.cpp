/// \file amr_advection.cpp
/// \brief Dynamic AMR driver: a Gaussian tracer blob advected across a
/// periodic 2D domain. Every step the mesh refines where the tracer
/// gradient is steep and coarsens where it is flat — the refine/coarsen/
/// balance/partition cycle p4est applications run, exercised end to end
/// on the raw Morton representation.
///
/// Run: ./build/examples/amr_advection [steps]
/// Prints a per-step table (leaves, level range, interface faces, max
/// pointwise error of the analytically known solution) and an ASCII film
/// strip of the moving refinement window.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "forest/forest.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace qforest;
using R = MortonRep<2>;

constexpr double kSigma = 0.08;   // blob width
constexpr double kVelX = 0.11;    // advection velocity (units/step)
constexpr double kVelY = 0.045;

/// Analytic tracer value at (x, y) when the blob center is (cx, cy),
/// on the periodic unit square (nearest-image distance).
double tracer(double x, double y, double cx, double cy) {
  auto wrap = [](double d) {
    d = std::fmod(std::fabs(d), 1.0);
    return std::min(d, 1.0 - d);
  };
  const double dx = wrap(x - cx);
  const double dy = wrap(y - cy);
  return std::exp(-(dx * dx + dy * dy) / (2 * kSigma * kSigma));
}

/// Cell center in unit coordinates.
void cell_center(const R::quad_t& q, double& cx, double& cy, double& h) {
  coord_t x, y, z;
  int lvl;
  R::to_coords(q, x, y, z, lvl);
  const double scale = static_cast<double>(coord_t{1} << R::max_level);
  h = static_cast<double>(R::length_at(lvl)) / scale;
  cx = static_cast<double>(x) / scale + h / 2;
  cy = static_cast<double>(y) / scale + h / 2;
}

/// Refinement indicator: finite-difference gradient of the tracer across
/// the cell exceeds a threshold scaled by cell size.
bool steep(const R::quad_t& q, double bx, double by) {
  double cx, cy, h;
  cell_center(q, cx, cy, h);
  const double v0 = tracer(cx - h / 2, cy, bx, by);
  const double v1 = tracer(cx + h / 2, cy, bx, by);
  const double v2 = tracer(cx, cy - h / 2, bx, by);
  const double v3 = tracer(cx, cy + h / 2, bx, by);
  const double grad = std::fabs(v1 - v0) + std::fabs(v3 - v2);
  return grad > 0.05;
}

void render_strip(const Forest<R>& forest, int grid_level) {
  const int n = 1 << grid_level;
  std::vector<std::string> canvas(static_cast<std::size_t>(n),
                                  std::string(static_cast<std::size_t>(n),
                                              '.'));
  for (const auto& q : forest.tree_quadrants(0)) {
    coord_t x, y, z;
    int lvl;
    R::to_coords(q, x, y, z, lvl);
    const int down = R::max_level - grid_level;
    const int gx = static_cast<int>(x >> down);
    const int gy = static_cast<int>(y >> down);
    // Leaves finer than the render grid collapse into one character.
    const int cells = lvl >= grid_level ? 1 : 1 << (grid_level - lvl);
    const char c = lvl <= 3 ? '.' : static_cast<char>('0' + lvl);
    for (int j = 0; j < cells; ++j) {
      for (int i = 0; i < cells; ++i) {
        canvas[static_cast<std::size_t>(gy + j)]
              [static_cast<std::size_t>(gx + i)] = c;
      }
    }
  }
  for (int row = n - 1; row >= 0; --row) {
    std::printf("    %s\n", canvas[static_cast<std::size_t>(row)].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;
  const int min_level = 3, max_level = 7;

  std::printf("qforest amr_advection — Gaussian blob on the periodic unit "
              "square, %d steps, levels %d..%d, representation %s\n\n",
              steps, min_level, max_level, R::name);

  auto forest = Forest<R>::new_uniform(
      Connectivity::brick2d(1, 1, true, true), min_level, /*ranks=*/4);

  Table t({"step", "blob center", "leaves", "levels", "faces", "hanging",
           "step [ms]"});
  double bx = 0.25, by = 0.3;
  for (int step = 0; step < steps; ++step) {
    WallTimer timer;

    // Adapt: refine along the steep flank, coarsen what flattened out.
    forest.refine(true, [&](tree_id_t, const R::quad_t& q) {
      return R::level(q) < max_level && steep(q, bx, by);
    });
    forest.coarsen(true, [&](tree_id_t, const R::quad_t* fam) {
      if (R::level(fam[0]) <= min_level) {
        return false;
      }
      for (int c = 0; c < 4; ++c) {
        if (steep(fam[c], bx, by)) {
          return false;
        }
      }
      return true;
    });
    forest.balance(BalanceKind::kFull);
    forest.partition();

    // Mesh interrogation: count conforming and hanging faces (the
    // callback is invoked concurrently, hence the atomics).
    std::atomic<gidx_t> faces{0}, hanging{0};
    forest.iterate_faces([&](const FaceInfo<R>& info) {
      faces += 1;
      hanging += info.is_hanging ? 1 : 0;
    });

    int lo = R::max_level, hi = 0;
    for (const auto& q : forest.tree_quadrants(0)) {
      lo = std::min(lo, R::level(q));
      hi = std::max(hi, R::level(q));
    }

    char center[32], levels[32];
    std::snprintf(center, sizeof center, "(%.2f, %.2f)", bx, by);
    std::snprintf(levels, sizeof levels, "%d..%d", lo, hi);
    t.add_row({Table::fmt(static_cast<long long>(step)), center,
               Table::fmt(static_cast<long long>(forest.num_quadrants())),
               levels, Table::fmt(static_cast<long long>(faces)),
               Table::fmt(static_cast<long long>(hanging)),
               Table::fmt(timer.elapsed_s() * 1000, 1)});

    // Advect the blob (periodic wrap).
    bx = std::fmod(bx + kVelX, 1.0);
    by = std::fmod(by + kVelY, 1.0);
  }
  t.print();

  std::printf("\nfinal mesh (digits = leaf level >= 4, '.' = coarse):\n");
  render_strip(forest, 6);

  const bool ok = forest.is_valid() &&
                  forest.is_balanced(BalanceKind::kFull);
  std::printf("\nfinal forest valid and balanced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

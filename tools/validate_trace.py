#!/usr/bin/env python3
"""Validate a qforest Chrome trace-event JSON file (obs/trace.hpp output).

Checks, in order:

1. Schema: the document is an object with a ``traceEvents`` list; every
   entry is an object with a string ``ph``; every complete ("X") event
   carries string ``name``/``cat``, numeric ``ts >= 0`` and ``dur >= 0``,
   and integer ``pid``/``tid``; ``args``, when present, is an object.
2. Ordering: the non-metadata events appear sorted by ascending ``ts``
   (the exporter's contract, which Perfetto relies on).
3. Nesting: per (pid, tid) lane, complete events form a proper stack —
   any two spans are either disjoint or one contains the other. Partial
   overlap means a span "leaked" across an enclosing span's end and the
   trace would render misleadingly.

Overlap ablation checks (for bench_strong_scaling traces, where
``ghost.interior`` and ``ghost.inflight`` spans carry an ``overlap`` arg):

``--require-overlap``   at least one interior span with overlap=1 must
                        intersect an inflight span on the same lane
                        (comm/compute overlap actually happened).
``--require-disjoint``  no interior span with overlap=0 may intersect any
                        inflight span on its lane (the QFOREST_NO_OVERLAP
                        ordering serializes compute after the drain).

Exit status 0 on success, 1 on any violation. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

# Timestamps are microseconds with 3 decimals (ns resolution); allow for
# float formatting slop when testing containment.
EPS_US = 0.0005


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(path: str) -> list[dict]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        fail(f"{path}: document must be an object with a 'traceEvents' list")
    return doc["traceEvents"]


def check_schema(events: list[dict]) -> list[dict]:
    """Returns the complete ("X") events after validating every entry."""
    complete = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{i}]: not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str):
            fail(f"traceEvents[{i}]: missing string 'ph'")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"traceEvents[{i}]: 'args' must be an object")
        if ph == "M":
            continue
        if ph != "X":
            fail(f"traceEvents[{i}]: unexpected phase '{ph}' "
                 "(exporter only emits M and X)")
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                fail(f"traceEvents[{i}]: missing string '{key}'")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                fail(f"traceEvents[{i}] ({ev['name']}): "
                     f"'{key}' must be a number >= 0, got {v!r}")
        for key in ("pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"traceEvents[{i}] ({ev['name']}): "
                     f"'{key}' must be an integer, got {v!r}")
        complete.append(ev)
    return complete


def check_order(complete: list[dict]) -> None:
    prev = -1.0
    for ev in complete:
        if ev["ts"] < prev - EPS_US:
            fail(f"event '{ev['name']}' at ts={ev['ts']} breaks the "
                 f"ascending-ts order (previous ts={prev})")
        prev = ev["ts"]


def lanes(complete: list[dict]) -> dict[tuple, list[dict]]:
    by_lane: dict[tuple, list[dict]] = {}
    for ev in complete:
        by_lane.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    return by_lane


def check_nesting(by_lane: dict[tuple, list[dict]]) -> None:
    for (pid, tid), evs in sorted(by_lane.items()):
        # Containment-friendly order: by start, longest first at ties.
        evs = sorted(evs, key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []  # currently open spans, innermost last
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - EPS_US:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end + EPS_US:
                    fail(f"lane pid={pid} tid={tid}: span '{ev['name']}' "
                         f"[{start}, {end}] partially overlaps enclosing "
                         f"'{stack[-1]['name']}' ending at {parent_end}")
            stack.append(ev)


def intersects(a: dict, b: dict) -> bool:
    a0, a1 = a["ts"], a["ts"] + a["dur"]
    b0, b1 = b["ts"], b["ts"] + b["dur"]
    return min(a1, b1) - max(a0, b0) > EPS_US


def check_overlap_ablation(by_lane: dict[tuple, list[dict]],
                           require_overlap: bool,
                           require_disjoint: bool) -> None:
    saw_overlapping_pair = False
    saw_overlap_interior = False
    saw_disjoint_interior = False
    for (pid, tid), evs in sorted(by_lane.items()):
        inflight = [e for e in evs if e["name"] == "ghost.inflight"]
        for ev in evs:
            if ev["name"] != "ghost.interior":
                continue
            mode = ev.get("args", {}).get("overlap")
            hit = any(intersects(ev, f) for f in inflight)
            if mode == 1:
                saw_overlap_interior = True
                saw_overlapping_pair = saw_overlapping_pair or hit
            elif mode == 0:
                saw_disjoint_interior = True
                if hit:
                    fail(f"lane pid={pid} tid={tid}: interior span with "
                         "overlap=0 intersects an in-flight exchange span "
                         "(the no-overlap ordering must drain first)")
    if require_overlap:
        if not saw_overlap_interior:
            fail("--require-overlap: no ghost.interior span with overlap=1 "
                 "in the trace")
        if not saw_overlapping_pair:
            fail("--require-overlap: no overlap=1 interior span intersects "
                 "a ghost.inflight span (comm/compute overlap not visible)")
    if require_disjoint and not saw_disjoint_interior:
        fail("--require-disjoint: no ghost.interior span with overlap=0 "
             "in the trace")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of complete events (default 1)")
    ap.add_argument("--require-overlap", action="store_true",
                    help="demand an overlap=1 interior span intersecting an "
                         "in-flight exchange span")
    ap.add_argument("--require-disjoint", action="store_true",
                    help="demand overlap=0 interior spans exist (their "
                         "disjointness from inflight is always enforced)")
    args = ap.parse_args()

    events = load_events(args.trace)
    complete = check_schema(events)
    if len(complete) < args.min_events:
        fail(f"only {len(complete)} complete event(s), "
             f"expected >= {args.min_events}")
    check_order(complete)
    by_lane = lanes(complete)
    check_nesting(by_lane)
    check_overlap_ablation(by_lane, args.require_overlap,
                           args.require_disjoint)
    names = {e["name"] for e in complete}
    print(f"validate_trace: OK: {len(complete)} events, "
          f"{len(by_lane)} lanes, {len(names)} distinct span names")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Thresholded bench regression gate (stdlib only).

Compares the boost_percent of every SIMD-active record in the current
BENCH_*.json files against the committed baseline and fails (exit 1) when
any matched record regresses by more than --threshold percentage points:

    check_bench_regression.py --baseline bench/baselines/ci_baseline.json \
        --threshold 20 build/bench/BENCH_forest.json \
        build/bench/BENCH_balance_mark.json

Records are matched on (bench, rep, phase). Only records whose current
run reports simd_active=true OR gate=true are gated: the non-SIMD
representations and scalar-forced builds measure staging overhead whose
boost hovers around zero and would only add noise, and benches that are
meaningless on the current host (e.g. the strong-scaling overlap boost
on a 1-core runner) mark their records gate=false. A run with no
gateable records (e.g. the scalar-forced CI leg or a non-AVX host)
passes trivially.

The committed baseline holds conservative floors (see the file's note),
so the gate catches real collapses — a batched path silently falling back
to scalar dispatch — without flapping on runner-to-runner variance.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("records", [])


def key_of(rec):
    return (rec.get("bench"), rec.get("rep"), rec.get("phase"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="max allowed boost regression in percentage points")
    ap.add_argument("current", nargs="+", help="BENCH_*.json files to gate")
    args = ap.parse_args()

    baseline = {key_of(r): r for r in load_records(args.baseline)
                if "boost_percent" in r}
    gated = 0
    skipped = 0
    failures = []
    rows = []
    for path in args.current:
        for rec in load_records(path):
            if "boost_percent" not in rec:
                continue
            if not (rec.get("simd_active", False) or rec.get("gate", False)):
                skipped += 1
                continue
            base = baseline.get(key_of(rec))
            if base is None:
                skipped += 1
                continue
            gated += 1
            regression = base["boost_percent"] - rec["boost_percent"]
            status = "FAIL" if regression > args.threshold else "ok"
            rows.append((status,
                         "/".join(str(k) for k in key_of(rec)),
                         f"{rec['boost_percent']:.1f}",
                         f"{base['boost_percent']:.1f}",
                         f"{regression:+.1f}",
                         f"{args.threshold:.0f}"))
            if regression > args.threshold:
                failures.append(key_of(rec))

    # Measured-vs-floor table, printed on success and failure alike so
    # every CI log shows how much headroom each gated phase has left.
    if rows:
        headers = ("status", "bench/rep/phase", "measured %",
                   "floor %", "regression pt", "limit pt")
        widths = [max(len(h), max(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        def fmt_row(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        print(fmt_row(headers))
        print(fmt_row(tuple("-" * w for w in widths)))
        for r in rows:
            print(fmt_row(r))

    print(f"gated {gated} record(s), skipped {skipped} "
          f"(ungateable or unmatched)")
    if failures:
        print(f"bench regression gate FAILED for {len(failures)} record(s)",
              file=sys.stderr)
        return 1
    if gated == 0:
        print("no gateable records (scalar build / unsuited host): pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Custom concurrency lint for the qforest source tree (stdlib only).

Flags the shared-state patterns that bit this codebase before (racy plain
statics fixed in PR 5) and that clang-tidy has no check for:

  mutable-static    A namespace- or function-scope `static` (or `inline`)
                    variable that is mutable and not one of the allowed
                    synchronized types. Every long-lived mutable global in
                    a library whose callbacks run on a thread pool must be
                    std::atomic, mutex-protected, thread_local, or an
                    internally synchronized type.
  plain-bool-flag   A mutable static/global `bool` — the classic racy kill
                    switch; must be std::atomic<bool>.
  atomic-ref-bool   std::atomic_ref<bool> / atomic_ref over a vector<bool>
                    element: vector<bool> hands out proxy objects, not
                    addressable bools, so the atomic_ref is UB; store
                    std::uint8_t and atomic_ref that instead.
  volatile-sync     `volatile` used on an integral/bool — volatile is not a
                    synchronization primitive; use std::atomic.
  detached-thread   `.detach()` on a thread — detached threads outlive
                    scope, race with static destruction and swallow
                    exceptions; library threads must be joined (the rank
                    runtime in src/par/message_queue.hpp) or owned by the
                    pool.
  system-clock      std::chrono::system_clock in library code — the wall
                    clock jumps (NTP, DST) so intervals measured with it
                    go negative; durations, trace timestamps and timeouts
                    must use steady_clock.
  sleep-poll        sleep_for / sleep_until inside a loop — a sleep-poll
                    retry loop burns latency and hides the missing wakeup
                    protocol; wait on a condition variable (see
                    Mailbox::pop_blocking) or the pool's task futures.
  stale-allow       a `lint-allow(<rule>)` comment on a line where <rule>
                    no longer fires — stale suppressions hide real future
                    findings and must be deleted, so they are errors.

A finding is suppressed by a trailing `// lint-allow(<rule>): <reason>`
comment on the same line; the reason is mandatory and the suppression is
reported in the summary (with file:line) so every exemption stays
visible. tools/qf_check (the AST-based checker) honors the same
spelling.

Usage: lint_concurrency.py [--quiet] DIR_OR_FILE...
Exit status 1 when any unsuppressed finding remains.
"""

import argparse
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

# Types whose static instances are allowed: internally synchronized,
# immutable after construction, or confined to one thread. obs::Counter
# and obs::Histogram are sharded atomics (src/obs/metrics.hpp), built to
# be cached in function-local statics at every instrumentation site.
ALLOWED_TYPE_RE = re.compile(
    r"std::atomic\b|std::mutex\b|std::shared_mutex\b|std::once_flag\b"
    r"|std::condition_variable\b|ThreadPool\b|std::latch\b|std::barrier\b"
    r"|obs::Counter\b|obs::Histogram\b"
    # The annotated drop-ins (src/util/thread_annotations.hpp) are as
    # internally synchronized as the std types they wrap.
    r"|\bMutex\b|\bCondVar\b"
)

QUALIFIER_ALLOW_RE = re.compile(r"\b(constexpr|thread_local)\b")

# `static <type> name ...` where the declaration is a variable, i.e. the
# declarator is followed by an initializer or the statement just ends —
# `name(` (a function) is excluded below.
STATIC_DECL_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?P<decl>[^;{}()]*?[\w\]>]\s*"
    r"(?:\[\s*\w*\s*\])?)\s*(?:=|\{|;)"
)

ALLOW_RE = re.compile(r"//\s*lint-allow\((?P<rule>[\w-]+)\):\s*(?P<reason>.+)")

SLEEP_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(|\bdo\s*(?:\{|$)")
DO_WHILE_TAIL_RE = re.compile(r"^\s*\}\s*while\s*\(")

ATOMIC_REF_BOOL_RE = re.compile(r"std::atomic_ref\s*<\s*bool\s*>")
DETACHED_THREAD_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
VOLATILE_SYNC_RE = re.compile(
    r"\bvolatile\s+(?:std::)?(?:bool|int|unsigned|long|size_t|u?int\d+_t)\b"
)
SYSTEM_CLOCK_RE = re.compile(r"std::chrono::system_clock\b")


def is_function_declaration(decl: str) -> bool:
    """The declarator names a function when the identifier that ends the
    matched declaration is immediately a call-like `(` in the raw line —
    STATIC_DECL_RE already excludes `(` from the match, so a parenthesis
    right after the declarator means a function or a paren-initializer;
    treat both as non-findings (paren-init of statics is not used here)."""
    return False  # STATIC_DECL_RE cannot match function declarations


def lint_line(line: str):
    """Yield (rule, message) findings for one source line."""
    code = line.split("//", 1)[0]

    if ATOMIC_REF_BOOL_RE.search(code):
        yield ("atomic-ref-bool",
               "std::atomic_ref<bool> — vector<bool> elements are proxies "
               "and bool storage invites it; use std::uint8_t storage")

    if DETACHED_THREAD_RE.search(code):
        yield ("detached-thread",
               "detached thread in library code — join it (or hand it to "
               "the pool / rank runtime) so shutdown stays deterministic")

    if VOLATILE_SYNC_RE.search(code):
        yield ("volatile-sync",
               "volatile integral used where synchronization is needed; "
               "use std::atomic")

    if SYSTEM_CLOCK_RE.search(code):
        yield ("system-clock",
               "std::chrono::system_clock — the wall clock is not "
               "monotonic; use std::chrono::steady_clock for durations "
               "and timestamps")

    m = STATIC_DECL_RE.match(code)
    if m:
        decl = m.group("decl").strip()
        # `const char* p` declares a MUTABLE pointer to const data: the
        # variable only counts as immutable when the const applies to the
        # variable itself (no pointer declarator, or `* const`).
        if "*" in decl:
            is_const_var = "* const" in decl or "*const" in decl
        else:
            is_const_var = (re.match(r"^const\b", decl) is not None
                            or " const " in f" {decl} ")
        if (not QUALIFIER_ALLOW_RE.search(decl)
                and not ALLOWED_TYPE_RE.search(decl)
                and not is_const_var):
            if re.search(r"\bbool\b", decl):
                yield ("plain-bool-flag",
                       f"mutable static bool `{decl}` — the classic racy "
                       "flag; use std::atomic<bool>")
            else:
                yield ("mutable-static",
                       f"mutable static `{decl}` without synchronization; "
                       "use std::atomic / a mutex / thread_local, or make "
                       "it const")


def lint_file(path: pathlib.Path, quiet: bool):
    findings = []
    suppressed = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"{path}: unreadable: {e}", file=sys.stderr)
        return findings, suppressed

    # Approximate loop tracking for the sleep-poll rule: brace depth plus
    # the depths at which loop bodies opened. A `for`/`while`/`do` head
    # arms `pending`; the next `{` (from the head onward, so an earlier
    # `if (…) {` on the same line is not misattributed) converts it into
    # a loop scope, and a braceless single-statement body disarms it at
    # the first statement-ending line after the head.
    depth = 0
    loop_depths = []
    pending_loop = False
    pending_line = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        code = line.split("//", 1)[0]
        hits = list(lint_line(line))

        m_loop = (None if DO_WHILE_TAIL_RE.match(code)
                  else LOOP_HEAD_RE.search(code))
        if SLEEP_RE.search(code) and (loop_depths or pending_loop or m_loop):
            hits.append(("sleep-poll",
                         "sleep inside a loop — a sleep-poll retry loop; "
                         "wait on a condition variable (Mailbox::"
                         "pop_blocking) or a task future instead"))

        loop_pos = m_loop.start() if m_loop else None
        for i, ch in enumerate(code):
            if loop_pos is not None and i >= loop_pos:
                pending_loop = True
                pending_line = lineno
                loop_pos = None
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth = max(0, depth - 1)
        if loop_pos is not None:  # head after the last brace on the line
            pending_loop = True
            pending_line = lineno
        if (pending_loop and lineno > pending_line
                and ";" in code and "{" not in code):
            pending_loop = False  # braceless body ended

        allow = ALLOW_RE.search(line)
        for rule, message in hits:
            if allow and allow.group("rule") == rule:
                suppressed.append((path, lineno, rule, allow.group("reason")))
            else:
                findings.append((path, lineno, rule, message))
        if allow and allow.group("rule") not in {r for r, _ in hits}:
            findings.append(
                (path, lineno, "stale-allow",
                 f"lint-allow({allow.group('rule')}) suppresses nothing "
                 "on this line — the finding is gone; delete the comment"))
    return findings, suppressed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+", help="directories or files to lint")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-exemption summary")
    args = ap.parse_args()

    files = []
    for raw in args.paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in SOURCE_SUFFIXES))
        else:
            files.append(p)

    all_findings = []
    all_suppressed = []
    for f in files:
        findings, suppressed = lint_file(f, args.quiet)
        all_findings.extend(findings)
        all_suppressed.extend(suppressed)

    for path, lineno, rule, message in all_findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if not args.quiet:
        for path, lineno, rule, reason in all_suppressed:
            print(f"{path}:{lineno}: [{rule}] suppressed: {reason}")

    print(f"lint_concurrency: {len(files)} file(s), "
          f"{len(all_findings)} finding(s), "
          f"{len(all_suppressed)} suppressed")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())

// qf_check fixture: mutable-static / plain-bool-flag / atomic-ref-bool —
// AST-engine ports of the lint_concurrency.py rules.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/thread_annotations.hpp"

namespace fixture {

inline int config_lookup() {
  static int call_count = 0;  // FINDING: mutable-static
  return ++call_count;
}

inline bool first_time() {
  static bool seen = false;  // FINDING: plain-bool-flag
  seen = true;
  return seen;
}

inline std::uint64_t ok_statics() {
  static const int table_size = 64;                 // OK: const
  static std::atomic<std::uint64_t> hits{0};        // OK: atomic
  static qforest::Mutex registry_mutex;             // OK: internally sync
  static thread_local int scratch = 0;              // OK: thread_local
  (void)registry_mutex;
  scratch += table_size;
  return hits.fetch_add(1, std::memory_order_relaxed);  // mo: relaxed — tally
}

inline void flip_flags(std::vector<bool>& flags) {
  std::atomic_ref<bool> ref(flags[0]);  // FINDING: atomic-ref-bool
  ref.store(true);
}

inline int suppressed_static() {
  static int tuning_knob = 3;  // qf-allow(mutable-static): fixture exemption
  return tuning_knob;
}

}  // namespace fixture

#!/usr/bin/env python3
"""Golden test for qf_check itself (registered in ctest).

Modes:
  run_fixture_tests.py              diff fixture findings vs expected.txt
  run_fixture_tests.py --update     regenerate expected.txt
  run_fixture_tests.py --src DIR    run qf_check over the real tree: must
                                    be clean (exit 0), the memory-order
                                    inventory fully justified, and the
                                    lock-order graph cycle-free

The golden stores `file:line: [check]` prefixes only, so check messages
can be reworded without touching it; locations and check names cannot.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
QF_CHECK = HERE.parent / "qf_check.py"

_LINE_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<check>[\w-]+)\]"
    r"(?P<sup> suppressed)?")


def run_qf_check(args):
    proc = subprocess.run(
        [sys.executable, str(QF_CHECK), "--engine", "tokens", *args],
        capture_output=True, text=True)
    return proc


def normalized_findings(stdout):
    out = []
    for line in stdout.splitlines():
        m = _LINE_RE.match(line)
        if m:
            sup = " suppressed" if m.group("sup") else ""
            out.append(f"{pathlib.Path(m.group('path')).name}:"
                       f"{m.group('line')}: [{m.group('check')}]{sup}")
    return out


def fixture_mode(update):
    proc = run_qf_check([str(HERE)])
    got = normalized_findings(proc.stdout)
    if update:
        header = [l for l in (HERE / "expected.txt").read_text().splitlines()
                  if l.startswith("#")]
        (HERE / "expected.txt").write_text(
            "\n".join(header + got) + "\n")
        print(f"run_fixture_tests: wrote {len(got)} entries")
        return 0
    want = [l for l in (HERE / "expected.txt").read_text().splitlines()
            if l and not l.startswith("#")]
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 on fixtures, got {proc.returncode}\n"
              f"{proc.stdout}{proc.stderr}")
        return 1
    if got != want:
        print("FAIL: fixture findings differ from expected.txt")
        for line in sorted(set(want) - set(got)):
            print(f"  missing: {line}")
        for line in sorted(set(got) - set(want)):
            print(f"  extra:   {line}")
        return 1
    print(f"OK: {len(got)} expected finding(s)/suppression(s) matched")
    return 0


def src_mode(src):
    with tempfile.TemporaryDirectory() as tmp:
        mo = pathlib.Path(tmp) / "mo_inventory.json"
        dot = pathlib.Path(tmp) / "lock_order.dot"
        proc = run_qf_check(["--mo-inventory", str(mo),
                             "--lock-order-dot", str(dot), src])
        if proc.returncode != 0:
            print(f"FAIL: qf_check reports findings on {src}:\n"
                  f"{proc.stdout}{proc.stderr}")
            return 1
        inv = json.loads(mo.read_text())
        if inv["justified"] != inv["total"]:
            print(f"FAIL: {inv['total'] - inv['justified']} memory-order "
                  "site(s) without `// mo:` justification")
            return 1
        m = re.search(r"(\d+) cycle\(s\)", proc.stdout)
        if not m or m.group(1) != "0":
            print(f"FAIL: lock-order graph has cycles:\n{dot.read_text()}")
            return 1
    print(f"OK: {src} clean, {inv['total']} mo site(s) justified, "
          "lock-order graph acyclic")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--src", metavar="DIR",
                    help="check the real tree instead of the fixtures")
    args = ap.parse_args()
    if args.src:
        return src_mode(args.src)
    return fixture_mode(args.update)


if __name__ == "__main__":
    sys.exit(main())

// qf_check fixture: guarded-by — a QF_GUARDED_BY member accessed without
// its lock. This file is ALSO the CI Clang negative test: compiled with
// `clang++ -Wthread-safety -Werror=thread-safety -I src` it must FAIL,
// proving the compiler leg and qf_check agree on this violation class.

#include "util/thread_annotations.hpp"

namespace fixture {

class BankVault {
 public:
  void deposit_locked(int amount) {
    const qforest::LockGuard lock(vault_mutex_);
    balance_qf7_ += amount;  // OK: lock held
  }

  int peek_unlocked() const {
    return balance_qf7_;  // FINDING: guarded-by (and -Wthread-safety error)
  }

  void audited_helper() QF_REQUIRES(vault_mutex_) {
    balance_qf7_ -= 1;  // OK: caller must hold the lock
  }

  void suppressed_access() {
    balance_qf7_ = 0;  // qf-allow(guarded-by): fixture exemption
  }

 private:
  mutable qforest::Mutex vault_mutex_;
  int balance_qf7_ QF_GUARDED_BY(vault_mutex_) = 0;
};

}  // namespace fixture

// qf_check fixture: unnamed-raii — an RAII guard constructed as a
// discarded temporary dies at the end of the full expression, silently
// protecting nothing. Brace-initialized forms are used where a
// parenthesized one would be a declaration (most vexing parse).

#include "util/thread_annotations.hpp"

namespace fixture {

// Stand-in for obs::TraceSpan (two-literal constructor).
struct TraceSpan {
  TraceSpan(const char*, const char*) {}
};

class Pipeline {
 public:
  void run() {
    TraceSpan("fixture", "run");  // FINDING: unnamed-raii (dies instantly)
    qforest::LockGuard{work_mutex_};  // FINDING: unnamed-raii
    const qforest::LockGuard lock(work_mutex_);  // OK: named
    const TraceSpan span("fixture", "inner");  // OK: named
    steps_qf7_ += 1;
  }

  void suppressed_flush() {
    // The empty-guard wake handshake (see Mailbox::push) is the one
    // legitimate unnamed-ish use — but it names the guard; a truly
    // unnamed one needs an explicit exemption:
    qforest::LockGuard{work_mutex_};  // qf-allow(unnamed-raii): fixture exemption
  }

 private:
  qforest::Mutex work_mutex_;
  int steps_qf7_ QF_GUARDED_BY(work_mutex_) = 0;
};

}  // namespace fixture

// qf_check fixture: blocking-while-locked — a blocking primitive
// (direct, or transitively through the call graph) reached while a
// qf::Mutex is held. Condvar waits that drop the only held lock are the
// documented exemption.

#include <chrono>
#include <thread>

#include "util/thread_annotations.hpp"

namespace fixture {

class Throttle {
 public:
  void direct_sleep_under_lock() {
    const qforest::LockGuard lock(gate_mutex_);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1));  // FINDING: blocking-while-locked
  }

  void helper_that_blocks() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // no lock: OK
  }

  void transitive_block_under_lock() {
    const qforest::LockGuard lock(gate_mutex_);
    helper_that_blocks();  // FINDING: blocking-while-locked (transitive)
  }

  void condvar_wait_is_exempt() {
    qforest::UniqueLock lock(gate_mutex_);
    while (!ready_qf7_) {
      gate_cv_.wait(lock);  // OK: drops the only held lock
    }
  }

  void sleep_outside_lock() {
    {
      const qforest::LockGuard lock(gate_mutex_);
      ready_qf7_ = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // OK
  }

 private:
  qforest::Mutex gate_mutex_;
  qforest::CondVar gate_cv_;
  bool ready_qf7_ QF_GUARDED_BY(gate_mutex_) = false;
};

}  // namespace fixture

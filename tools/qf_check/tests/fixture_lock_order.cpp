// qf_check fixture: lock-order — two functions acquiring the same pair
// of mutexes in opposite orders form a cycle in the nested-acquisition
// graph; qf_check must report lock-order-cycle (and the DOT artifact
// shows the ring).

#include "util/thread_annotations.hpp"

namespace fixture {

class Transfer {
 public:
  void debit_then_credit() {
    const qforest::LockGuard a(debit_mutex_);
    const qforest::LockGuard b(credit_mutex_);  // edge: debit -> credit
    (void)this;
  }

  void credit_then_debit() {
    const qforest::LockGuard b(credit_mutex_);
    const qforest::LockGuard a(debit_mutex_);  // FINDING: lock-order-cycle
    (void)this;
  }

 private:
  qforest::Mutex debit_mutex_;
  qforest::Mutex credit_mutex_;
};

}  // namespace fixture

// qf_check fixture: mo-comment — every memory_order_* site needs a
// `// mo:` justification on its line or in the contiguous comment block
// above. Seeds one unjustified site between two justified ones.
// NOT part of the build: parsed by qf_check only (and by the CI Clang
// thread-safety leg, where it must compile cleanly — the violations here
// are comment-discipline ones, invisible to the compiler).

#include <atomic>

namespace fixture {

std::atomic<int> g_counter{0};
std::atomic<bool> g_flag{false};

inline void justified_same_line() {
  g_counter.fetch_add(1, std::memory_order_relaxed);  // mo: relaxed — tally
}

inline void justified_block_above() {
  // mo: relaxed — gate flag; readers only branch on it.
  g_flag.store(true, std::memory_order_relaxed);
}

inline int finding_unjustified() {
  return g_counter.load(std::memory_order_acquire);  // FINDING: mo-comment
}

inline void blank_line_breaks_coverage() {
  // mo: relaxed — covers only the store below, blank line ends the run.
  g_counter.store(0, std::memory_order_relaxed);

  g_flag.store(false, std::memory_order_release);  // FINDING: mo-comment
}

inline void suppressed_site() {
  g_counter.store(1, std::memory_order_relaxed);  // qf-allow(mo-comment): fixture exemption
}

}  // namespace fixture

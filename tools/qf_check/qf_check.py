#!/usr/bin/env python3
"""qf_check — AST/model-based concurrency contract checker for qforest.

Checks that Clang Thread Safety annotations cannot express:

  mo-comment             every memory_order_* site needs a `// mo:`
                         justification; full inventory via --mo-inventory
  unnamed-raii           TraceSpan/LockGuard/UniqueLock/ThreadRankScope
                         constructed as a discarded temporary
  guarded-by             access to a QF_GUARDED_BY member without the lock
                         (the no-clang mirror of -Wthread-safety)
  blocking-while-locked  blocking primitive (condvar wait, pop_blocking,
                         wait_idle, parallel_for, join, sleep, collectives)
                         transitively reachable while a lock is held
  lock-order             nested-acquisition graph (DOT via
                         --lock-order-dot); any cycle is an error
  mutable-static         unsynchronized static — AST-engine port of the
                         lint_concurrency.py rule
  atomic-ref-bool        std::atomic_ref<bool> — port of the same

Engines: `--engine tokens` (stdlib lexer, always available — the ctest
default), `--engine libclang` (clang.cindex when importable — the CI
default), `--engine auto` (libclang if importable, else tokens).

Suppress a finding with `// qf-allow(<check>): reason` on its line
(`lint-allow` is accepted too); suppressions are listed in the summary.

Exit status: 1 when any unsuppressed finding remains, else 0.

Examples:
  tools/qf_check/qf_check.py src
  tools/qf_check/qf_check.py --engine tokens --mo-inventory mo.json \\
      --lock-order-dot lock_order.dot src
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import checks as checks_mod           # noqa: E402
import cpp_model                      # noqa: E402

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

# The annotation header defines the lock wrappers themselves (lock() on a
# bare mutex, adopt_lock plumbing) — the one file the discipline checks
# must not read literally.
DEFAULT_EXCLUDES = {"thread_annotations.hpp"}


def gather_files(paths, excludes):
    files = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in SOURCE_SUFFIXES))
        else:
            files.append(p)
    return [f for f in files if f.name not in excludes]


def build_model(files, engine):
    if engine in ("auto", "libclang"):
        try:
            import clang_engine
            if clang_engine.available():
                return clang_engine.build_model(files), "libclang"
            if engine == "libclang":
                print("qf_check: libclang engine requested but "
                      "clang.cindex/libclang is not available",
                      file=sys.stderr)
                sys.exit(2)
        except ImportError:
            if engine == "libclang":
                raise
    return cpp_model.build_model(files), "tokens"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="+", help="directories or files to check")
    ap.add_argument("--engine", choices=("auto", "tokens", "libclang"),
                    default="auto")
    ap.add_argument("--checks", default="all",
                    help="comma-separated check names (default: all); "
                         f"known: {', '.join(sorted(checks_mod.ALL_CHECKS))}")
    ap.add_argument("--mo-inventory", metavar="PATH",
                    help="write the memory-order inventory JSON here")
    ap.add_argument("--lock-order-dot", metavar="PATH",
                    help="write the nested-acquisition graph (DOT) here")
    ap.add_argument("--no-default-excludes", action="store_true",
                    help="also scan thread_annotations.hpp")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-exemption summary")
    args = ap.parse_args()

    excludes = set() if args.no_default_excludes else set(DEFAULT_EXCLUDES)
    files = gather_files(args.paths, excludes)
    if not files:
        print("qf_check: no source files found", file=sys.stderr)
        return 2

    model, engine = build_model(files, args.engine)

    selected = (sorted(checks_mod.ALL_CHECKS)
                if args.checks == "all" else args.checks.split(","))
    unknown = [c for c in selected if c not in checks_mod.ALL_CHECKS]
    if unknown:
        print(f"qf_check: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    findings = []
    suppressed = []
    for name in selected:
        for f in checks_mod.ALL_CHECKS[name](model):
            sup = model.suppressions.get((f.file, f.line))
            if sup and checks_mod.CHECK_OF_LABEL.get(sup[0]) == name:
                suppressed.append((f, sup[1]))
            else:
                findings.append(f)

    findings.sort(key=lambda f: (f.file, f.line, f.check))
    for f in findings:
        print(f"{f.file}:{f.line}: [{f.check}] {f.message}")
    if not args.quiet:
        for f, reason in sorted(suppressed,
                                key=lambda x: (x[0].file, x[0].line)):
            print(f"{f.file}:{f.line}: [{f.check}] suppressed: {reason}")

    if args.mo_inventory:
        inv = checks_mod.mo_inventory(model)
        pathlib.Path(args.mo_inventory).write_text(
            json.dumps(inv, indent=2) + "\n")
        print(f"qf_check: wrote {args.mo_inventory} "
              f"({inv['justified']}/{inv['total']} sites justified)")
    if args.lock_order_dot:
        nodes, edges = checks_mod.lock_order_graph(model)
        pathlib.Path(args.lock_order_dot).write_text(
            checks_mod.lock_order_dot(nodes, edges))
        ncyc = len(checks_mod.find_cycles(nodes, edges))
        print(f"qf_check: wrote {args.lock_order_dot} "
              f"({len(nodes)} lock(s), {len(edges)} edge(s), "
              f"{ncyc} cycle(s))")

    print(f"qf_check[{engine}]: {len(files)} file(s), "
          f"{len(findings)} finding(s), {len(suppressed)} suppressed")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

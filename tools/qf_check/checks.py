"""Concurrency contract checks over the engine-agnostic Model.

Each check yields Finding(file, line, check, message). Suppression —
`// qf-allow(<check>): reason` (the legacy `lint-allow` spelling is
honored too) on the finding's line — is applied by the caller
(qf_check.py), so checks stay pure.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

from cpp_model import (AccessEvent, AcquireEvent, CallEvent, Model, ScopeEnd)


@dataclasses.dataclass
class Finding:
    file: str
    line: int
    check: str
    message: str


# ---------------------------------------------------------------------------
# memory-order audit
# ---------------------------------------------------------------------------

def check_mo_comment(model: Model):
    for s in model.mo_sites:
        if not s.justified:
            yield Finding(
                s.file, s.line, "mo-comment",
                f"memory_order_{s.order} without a `// mo:` justification "
                "comment (same line or the contiguous comment block above); "
                f"site: `{s.context}`")


def mo_inventory(model: Model) -> dict:
    """The CI artifact: every memory_order site, justified or not."""
    sites = [dataclasses.asdict(s) for s in model.mo_sites]
    orders = {}
    for s in model.mo_sites:
        orders[s.order] = orders.get(s.order, 0) + 1
    return {
        "total": len(sites),
        "justified": sum(1 for s in model.mo_sites if s.justified),
        "by_order": dict(sorted(orders.items())),
        "sites": sites,
    }


# ---------------------------------------------------------------------------
# unnamed RAII temporaries
# ---------------------------------------------------------------------------

def check_unnamed_raii(model: Model):
    for t in model.raii_temps:
        yield Finding(
            t.file, t.line, "unnamed-raii",
            f"{t.type_name} constructed as a discarded temporary — it is "
            "destroyed at the end of the full expression, so the scope it "
            "was meant to cover is never protected; name the object")


# ---------------------------------------------------------------------------
# mutable-static / atomic-ref-bool (AST-engine ports of lint_concurrency)
# ---------------------------------------------------------------------------

# Token-joined declarations carry spaces around `::`; allow both spellings.
_ALLOWED_TYPE_RE = re.compile(
    r"std\s*::\s*(?:atomic\b|mutex\b|shared_mutex\b|once_flag\b"
    r"|condition_variable\b|latch\b|barrier\b)"
    r"|\bThreadPool\b|\bMutex\b|\bCondVar\b"
    r"|obs\s*::\s*(?:Counter\b|Histogram\b)|\bCounter\b|\bHistogram\b"
)
_QUALIFIER_ALLOW_RE = re.compile(r"\b(constexpr|thread_local)\b")


def _static_is_const(decl: str) -> bool:
    if "*" in decl:
        return "* const" in decl or "*const" in decl
    return re.match(r"^const\b", decl) is not None or " const " in f" {decl} "


def check_mutable_static(model: Model):
    for s in model.statics:
        if (_QUALIFIER_ALLOW_RE.search(s.decl)
                or _ALLOWED_TYPE_RE.search(s.decl)
                or _static_is_const(s.decl)):
            continue
        if s.is_bool:
            yield Finding(
                s.file, s.line, "plain-bool-flag",
                f"mutable static bool `{s.decl}` — the classic racy flag; "
                "use std::atomic<bool>")
        else:
            yield Finding(
                s.file, s.line, "mutable-static",
                f"mutable static `{s.decl}` without synchronization; use "
                "std::atomic / a mutex / thread_local, or make it const")


def check_atomic_ref_bool(model: Model):
    for file, line in model.atomic_ref_bools:
        yield Finding(
            file, line, "atomic-ref-bool",
            "std::atomic_ref<bool> — vector<bool> elements are proxies and "
            "bool storage invites it; use std::uint8_t storage")


# ---------------------------------------------------------------------------
# held-lock walking (shared by guarded-by / blocking / lock-order)
# ---------------------------------------------------------------------------

def _walk_held(fn):
    """Yield (event, held) where held is the list of AcquireEvents alive
    at that point (function QF_REQUIRES first, as pseudo-acquisitions)."""
    held = [AcquireEvent(line=fn.line, var=f"<requires:{m}>", mutex=m,
                         depth=0, kind="requires")
            for m in sorted(fn.requires)]
    for ev in fn.events:
        if isinstance(ev, ScopeEnd):
            held = [h for h in held if h.depth < ev.depth]
            continue
        yield ev, held
        if isinstance(ev, AcquireEvent):
            held = held + [ev]


# ---------------------------------------------------------------------------
# guarded-by
# ---------------------------------------------------------------------------

def check_guarded_by(model: Model):
    guard_map = model.guarded_names()
    if not guard_map:
        return
    decl_lines = {(g.file, g.line) for g in model.guarded}
    guarded_classes = {}
    for g in model.guarded:
        guarded_classes.setdefault(g.name, set()).add(g.cls)
    # A member name also declared by an *unguarded* class is ambiguous to
    # a typeless engine: check it only inside the guarded class's own
    # methods (the Clang leg covers the qualified accesses precisely).
    ambiguous = {name for (cls, name) in model.members
                 if name in guard_map and cls not in guarded_classes[name]}
    for fn in model.functions:
        if fn.is_ctor_dtor:
            continue            # construction/teardown is single-threaded
        reported = set()
        for ev, held in _walk_held(fn):
            if not isinstance(ev, AccessEvent):
                continue
            if (fn.file, ev.line) in decl_lines:
                continue
            # Scope the name match: the access must be in the guarded
            # class's own methods or in the file that declares it — a
            # typeless engine cannot follow cross-file object types.
            guards = {g.guard for g in model.guarded
                      if g.name == ev.member
                      and (g.cls == fn.cls or g.file == fn.file)}
            if not guards:
                continue
            if (ev.member in ambiguous
                    and fn.cls not in guarded_classes[ev.member]):
                continue
            held_names = {h.mutex for h in held}
            if guards & held_names:
                continue
            key = (ev.line, ev.member)
            if key in reported:
                continue
            reported.add(key)
            want = " or ".join(sorted(guards))
            yield Finding(
                fn.file, ev.line, "guarded-by",
                f"`{ev.member}` is QF_GUARDED_BY({want}) but accessed in "
                f"{fn.qualname} without holding it "
                f"(held: {sorted(held_names) or 'none'})")


# ---------------------------------------------------------------------------
# blocking-while-locked
# ---------------------------------------------------------------------------

# Primitives that can park the calling thread. `wait` doubles as the
# condvar wait, exempted below when it drops the only held lock.
BLOCKING_PRIMITIVES = {
    "sleep_for", "sleep_until", "join", "wait", "wait_all", "wait_idle",
    "parallel_for", "parallel_for_grain", "barrier", "recv", "pop_blocking",
    "exscan", "allgather", "alltoallv", "run_ranks",
}


def _callees_by_name(model: Model):
    by_name = {}
    for fn in model.functions:
        by_name.setdefault(fn.name, []).append(fn)
    return by_name


def _may_block_names(model: Model):
    """Transitive closure: function names that can reach a blocking
    primitive. Resolution is by unqualified name (both engines), which is
    conservative in the right direction for a checker."""
    by_name = _callees_by_name(model)
    may_block = set(BLOCKING_PRIMITIVES)
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            if fn.name in may_block:
                continue
            for ev in fn.events:
                if isinstance(ev, CallEvent) and ev.callee in may_block:
                    may_block.add(fn.name)
                    changed = True
                    break
    return may_block, by_name


def check_blocking_while_locked(model: Model):
    may_block, _ = _may_block_names(model)
    for fn in model.functions:
        for ev, held in _walk_held(fn):
            if not isinstance(ev, CallEvent) or not held:
                continue
            if ev.callee not in may_block:
                continue
            # Condvar exemption: `cv.wait(lk)` atomically drops lk; legal
            # when lk's mutex is the *only* capability held.
            if ev.callee == "wait" and len(ev.args) >= 1:
                lockvars = {h.var: h.mutex for h in held}
                arg_ids = re.findall(r"[A-Za-z_]\w*", ev.args[0])
                dropped = lockvars.get(arg_ids[-1]) if arg_ids else None
                if dropped is not None:
                    if all(h.mutex == dropped for h in held):
                        continue
            held_names = sorted({h.mutex for h in held})
            yield Finding(
                fn.file, ev.line, "blocking-while-locked",
                f"{fn.qualname} calls blocking `{ev.callee}` while holding "
                f"{held_names} — a blocked holder stalls (or deadlocks) "
                "every other acquirer; drop the lock first")


# ---------------------------------------------------------------------------
# lock-order extraction
# ---------------------------------------------------------------------------

def _node(file: str, mutex: str) -> str:
    return f"{pathlib.Path(file).name}:{mutex}"


def _may_acquire(model: Model):
    """fn.name -> set of (file, mutex) it may acquire, transitively."""
    by_name = _callees_by_name(model)
    acq = {}
    for fn in model.functions:
        acq[fn.name] = acq.get(fn.name, set())
        for ev in fn.events:
            if isinstance(ev, AcquireEvent):
                acq[fn.name].add((fn.file, ev.mutex))
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            mine = acq[fn.name]
            for ev in fn.events:
                if isinstance(ev, CallEvent) and ev.callee in acq:
                    extra = acq[ev.callee] - mine
                    if extra:
                        mine |= extra
                        changed = True
    return acq


def lock_order_graph(model: Model):
    """Return (nodes, edges) where edges maps (a, b) -> [(file, line), ...]
    meaning b was (possibly transitively) acquired while a was held."""
    acq = _may_acquire(model)
    nodes = set()
    edges = {}

    def add_edge(a, b, file, line):
        if a == b:
            return
        nodes.add(a)
        nodes.add(b)
        edges.setdefault((a, b), []).append((file, line))

    for fn in model.functions:
        for ev, held in _walk_held(fn):
            if isinstance(ev, AcquireEvent):
                nodes.add(_node(fn.file, ev.mutex))
                for h in held:
                    add_edge(_node(fn.file, h.mutex),
                             _node(fn.file, ev.mutex), fn.file, ev.line)
            elif isinstance(ev, CallEvent) and held:
                for cfile, cmutex in acq.get(ev.callee, ()):
                    for h in held:
                        add_edge(_node(fn.file, h.mutex),
                                 _node(cfile, cmutex), fn.file, ev.line)
    return nodes, edges


def lock_order_dot(nodes, edges) -> str:
    out = ["digraph lock_order {"]
    out.append('  // a -> b: b acquired while a held; cycle = deadlock risk')
    for n in sorted(nodes):
        out.append(f'  "{n}";')
    for (a, b), sites in sorted(edges.items()):
        file, line = sites[0]
        label = f"{pathlib.Path(file).name}:{line}"
        if len(sites) > 1:
            label += f" (+{len(sites) - 1})"
        out.append(f'  "{a}" -> "{b}" [label="{label}"];')
    out.append("}")
    return "\n".join(out) + "\n"


def find_cycles(nodes, edges):
    """All elementary cycles found by DFS (one per back edge)."""
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
    cycles = []
    state = {}            # node -> 'active' | 'done'
    stack = []

    def dfs(u):
        state[u] = "active"
        stack.append(u)
        for v in adj.get(u, ()):
            if state.get(v) == "active":
                cycles.append(stack[stack.index(v):] + [v])
            elif v not in state:
                dfs(v)
        stack.pop()
        state[u] = "done"

    for n in sorted(nodes):
        if n not in state:
            dfs(n)
    return cycles


def check_lock_order(model: Model):
    nodes, edges = lock_order_graph(model)
    for cyc in find_cycles(nodes, edges):
        first = edges.get((cyc[0], cyc[1])) or [("<unknown>", 0)]
        file, line = first[0]
        yield Finding(
            file, line, "lock-order-cycle",
            "lock acquisition cycle " + " -> ".join(cyc) +
            " — two threads taking the ring from different entry points "
            "deadlock; impose one order (see ARCHITECTURE.md hierarchy)")


ALL_CHECKS = {
    "mo-comment": check_mo_comment,
    "unnamed-raii": check_unnamed_raii,
    "mutable-static": check_mutable_static,
    "atomic-ref-bool": check_atomic_ref_bool,
    "guarded-by": check_guarded_by,
    "blocking-while-locked": check_blocking_while_locked,
    "lock-order": check_lock_order,
}

# Suppression comments may name either the check or the finding label
# (mutable-static also emits plain-bool-flag findings).
CHECK_OF_LABEL = {
    "mo-comment": "mo-comment",
    "unnamed-raii": "unnamed-raii",
    "mutable-static": "mutable-static",
    "plain-bool-flag": "mutable-static",
    "atomic-ref-bool": "atomic-ref-bool",
    "guarded-by": "guarded-by",
    "blocking-while-locked": "blocking-while-locked",
    "lock-order-cycle": "lock-order",
}

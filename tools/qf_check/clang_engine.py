"""libclang (clang.cindex) model builder for qf_check.

Used when a python clang binding and a matching libclang shared library
are importable (the CI job installs the distro's pinned python3-clang);
the container's local fallback is the token engine in cpp_model.py. Both
produce the same Model, so checks.py and the fixture goldens are shared.

The AST gives this engine what tokens cannot have: real function
boundaries (no heuristic header matching), lambda bodies attached to the
right function, and member accesses resolved through the object's actual
class. Line-level facts (memory-order comments, RAII temporaries, static
declarations, suppressions) intentionally reuse the token collector so
the two engines agree on those checks byte for byte.
"""

from __future__ import annotations

import os
import pathlib
import re

import cpp_model
from cpp_model import (AccessEvent, AcquireEvent, CallEvent, Function,
                       GuardedMember, Model, ScopeEnd, canonical)

_LOCK_TYPE_RE = re.compile(
    r"\b(LockGuard|UniqueLock|lock_guard|unique_lock|scoped_lock)\b")

_ARGS = ["-xc++", "-std=c++20", "-fsyntax-only",
         "-Wno-everything"]          # diagnostics are not this tool's job


def available() -> bool:
    try:
        import clang.cindex
        # QF_CHECK_LIBCLANG pins the shared library when the distro's
        # python binding does not find it on its own (CI sets it).
        lib = os.environ.get("QF_CHECK_LIBCLANG")
        if lib:
            try:
                clang.cindex.Config.set_library_file(lib)
            except Exception:
                pass  # already configured earlier in this process
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def _qualname(cursor):
    parts = []
    c = cursor
    while c is not None and c.spelling:
        import clang.cindex as ci
        if c.kind in (ci.CursorKind.TRANSLATION_UNIT,):
            break
        if c.kind in (ci.CursorKind.NAMESPACE, ci.CursorKind.CLASS_DECL,
                      ci.CursorKind.STRUCT_DECL, ci.CursorKind.CXX_METHOD,
                      ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CONSTRUCTOR,
                      ci.CursorKind.DESTRUCTOR, ci.CursorKind.CLASS_TEMPLATE,
                      ci.CursorKind.FUNCTION_TEMPLATE):
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _annotation_args(cursor, macro):
    """Arguments of a QF_* annotation macro spelled in the cursor's
    source extent (macros survive in the token stream even when the
    attribute itself is exposed oddly across libclang versions)."""
    toks = [t.spelling for t in cursor.get_tokens()]
    out = []
    i = 0
    while i < len(toks):
        if toks[i] == macro and i + 1 < len(toks) and toks[i + 1] == "(":
            level = 0
            j = i + 1
            inner = []
            while j < len(toks):
                if toks[j] == "(":
                    level += 1
                elif toks[j] == ")":
                    level -= 1
                    if level == 0:
                        break
                if j > i + 1:
                    inner.append(toks[j])
                j += 1
            out.append(" ".join(inner))
            i = j
        i += 1
    return out


class _FunctionWalker:
    def __init__(self, fn: Function, model: Model):
        self.fn = fn
        self.model = model

    def walk(self, cursor, depth):
        import clang.cindex as ci
        for child in cursor.get_children():
            kind = child.kind
            line = child.location.line or 0
            if kind == ci.CursorKind.COMPOUND_STMT:
                self.walk(child, depth + 1)
                self.fn.events.append(
                    ScopeEnd(line=child.extent.end.line, depth=depth + 1))
                continue
            if kind == ci.CursorKind.VAR_DECL:
                tspell = child.type.spelling
                m = _LOCK_TYPE_RE.search(tspell)
                if m:
                    arg_toks = [t.spelling for t in child.get_tokens()]
                    inner = self._ctor_args(arg_toks)
                    if inner and not any(x in inner for x in
                                         ("adopt_lock", "defer_lock")):
                        self.fn.events.append(AcquireEvent(
                            line=line, var=child.spelling,
                            mutex=canonical(inner.split(",")[0]),
                            depth=depth,
                            kind=("unique" if "nique" in m.group(1)
                                  else "guard")))
                        continue
            if kind == ci.CursorKind.CALL_EXPR and child.spelling:
                args = []
                for a in child.get_arguments():
                    args.append(" ".join(
                        t.spelling for t in a.get_tokens()))
                self.fn.events.append(CallEvent(
                    line=line, callee=child.spelling.split("::")[-1],
                    args=args, depth=depth))
            if kind in (ci.CursorKind.MEMBER_REF_EXPR,
                        ci.CursorKind.DECL_REF_EXPR) and child.spelling:
                self.fn.events.append(AccessEvent(
                    line=line, member=child.spelling, depth=depth))
            self.walk(child, depth)

    @staticmethod
    def _ctor_args(toks):
        """`LockGuard lock(expr)` / `{expr}` -> 'expr' from decl tokens."""
        for opener, closer in (("(", ")"), ("{", "}")):
            if opener in toks:
                i = toks.index(opener)
                level = 0
                inner = []
                for j in range(i, len(toks)):
                    if toks[j] == opener:
                        level += 1
                    elif toks[j] == closer:
                        level -= 1
                        if level == 0:
                            return " ".join(inner)
                    if j > i:
                        inner.append(toks[j])
        return ""


def build_model(paths, raii_types=cpp_model._DEFAULT_RAII_TYPES) -> Model:
    import clang.cindex as ci

    # Line-level facts come from the shared token collector.
    token_eng = cpp_model.TokenEngine(raii_types=raii_types)
    for p in paths:
        token_eng.add_file(p)
    token_model = token_eng.finish()

    model = Model()
    model.files = list(token_model.files)
    model.mo_sites = token_model.mo_sites
    model.raii_temps = token_model.raii_temps
    model.statics = token_model.statics
    model.atomic_ref_bools = token_model.atomic_ref_bools
    model.suppressions = token_model.suppressions

    index = ci.Index.create()
    include_dirs = set()
    for p in paths:
        p = pathlib.Path(p).resolve()
        for parent in p.parents:
            if parent.name == "src" or (parent / "util").is_dir():
                include_dirs.add(str(parent))
    args = _ARGS + [f"-I{d}" for d in sorted(include_dirs)]

    want = {str(pathlib.Path(p).resolve()) for p in paths}
    for p in paths:
        tu = index.parse(str(p), args=args)
        _visit_tu(ci, tu.cursor, want, model)

    # Dedup functions parsed through multiple TUs (headers).
    seen = set()
    uniq = []
    for fn in model.functions:
        key = (fn.file, fn.line, fn.qualname)
        if key not in seen:
            seen.add(key)
            uniq.append(fn)
    model.functions = uniq
    model.guarded = list({(g.cls, g.name, g.guard, g.file, g.line): g
                          for g in model.guarded}.values())
    # A QF_REQUIRES on the header prototype covers the .cpp definition:
    # propagate by qualified name (declaration-only stubs carry no events,
    # so they are inert in every check).
    req_by_qual = {}
    for fn in model.functions:
        if fn.requires:
            req_by_qual.setdefault(fn.qualname, set()).update(fn.requires)
    for fn in model.functions:
        fn.requires |= req_by_qual.get(fn.qualname, set())
    return model


def _visit_tu(ci, cursor, want, model):
    for child in cursor.get_children():
        loc = child.location
        if loc.file is None:
            continue
        fpath = str(pathlib.Path(loc.file.name).resolve())
        if fpath not in want:
            continue
        kind = child.kind
        if kind in (ci.CursorKind.NAMESPACE, ci.CursorKind.CLASS_DECL,
                    ci.CursorKind.STRUCT_DECL, ci.CursorKind.CLASS_TEMPLATE,
                    ci.CursorKind.UNEXPOSED_DECL,
                    ci.CursorKind.LINKAGE_SPEC):
            _visit_tu(ci, child, want, model)
            if kind in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                        ci.CursorKind.CLASS_TEMPLATE):
                _collect_class(ci, child, loc.file.name, model)
            continue
        if kind in (ci.CursorKind.CXX_METHOD, ci.CursorKind.FUNCTION_DECL,
                    ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                    ci.CursorKind.FUNCTION_TEMPLATE):
            reqs = {canonical(a) for a in
                    _annotation_args(child, "QF_REQUIRES")}
            if not child.is_definition():
                if reqs:
                    # remember for the out-of-line definition
                    model.functions.append(Function(
                        qualname=_qualname(child), cls=None,
                        name=child.spelling, file=loc.file.name,
                        line=loc.line, requires=reqs))
                continue
            parent = child.semantic_parent
            cls = (parent.spelling
                   if parent is not None and parent.kind in (
                       ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                       ci.CursorKind.CLASS_TEMPLATE)
                   else None)
            fn = Function(
                qualname=_qualname(child), cls=cls, name=child.spelling,
                file=loc.file.name, line=loc.line, requires=reqs,
                is_ctor_dtor=child.kind in (ci.CursorKind.CONSTRUCTOR,
                                            ci.CursorKind.DESTRUCTOR))
            _FunctionWalker(fn, model).walk(child, 1)
            model.functions.append(fn)


def _collect_class(ci, cursor, fname, model):
    cls = cursor.spelling
    for child in cursor.get_children():
        if child.kind == ci.CursorKind.FIELD_DECL:
            model.members.add((cls, child.spelling))
            for guard in _annotation_args(child, "QF_GUARDED_BY"):
                model.guarded.append(GuardedMember(
                    cls=cls, name=child.spelling, guard=canonical(guard),
                    file=fname, line=child.location.line))
        elif child.kind in (ci.CursorKind.CLASS_DECL,
                            ci.CursorKind.STRUCT_DECL):
            _collect_class(ci, child, fname, model)

"""Token-level C++ model extraction for qf_check (stdlib only).

This is the *fallback* engine: a hand-rolled lexer plus a brace-tracking
scanner that recovers just enough structure for the concurrency contract
checks — function bodies with their ordered lock/call/member-access
events, class members annotated QF_GUARDED_BY, QF_REQUIRES clauses,
memory_order sites, statement-level RAII temporaries and static
declarations. It deliberately understands a *disciplined* dialect of C++
(the one this repo writes: qf::Mutex/LockGuard/UniqueLock, scoped locks
only, no goto) rather than the whole language; the libclang engine
(clang_engine.py) produces the same Model from a real AST when a
libclang python binding is importable.

Both engines emit the shared dataclasses below so checks.py is
engine-agnostic.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
from typing import Optional

# ---------------------------------------------------------------------------
# Shared model dataclasses (produced by both engines)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class MoSite:
    """One memory_order_* occurrence."""
    file: str
    line: int
    order: str          # e.g. "relaxed", "acquire"
    justified: bool     # a `// mo:` comment covers it
    context: str        # the stripped source line


@dataclasses.dataclass
class RaiiTemp:
    """A named-RAII type constructed as a discarded temporary."""
    file: str
    line: int
    type_name: str


@dataclasses.dataclass
class StaticDecl:
    """A namespace- or function-scope static variable declaration."""
    file: str
    line: int
    decl: str           # declaration text up to the initializer
    is_bool: bool


@dataclasses.dataclass
class GuardedMember:
    """A class member declared QF_GUARDED_BY(guard)."""
    cls: str
    name: str
    guard: str          # canonical guard name (last `.`/`->`/`::` component)
    file: str
    line: int


@dataclasses.dataclass
class AcquireEvent:
    """A scoped lock constructed in a function body."""
    line: int
    var: str            # the lock variable name ('' for unnamed)
    mutex: str          # canonical mutex name (last component of arg 1)
    depth: int          # brace depth at acquisition (for scope-end release)
    kind: str           # 'guard' | 'unique'


@dataclasses.dataclass
class CallEvent:
    """A call site inside a function body."""
    line: int
    callee: str         # last name component, e.g. 'wait', 'pop_blocking'
    args: list          # top-level argument token strings
    depth: int


@dataclasses.dataclass
class AccessEvent:
    """A read or write of a (possibly guarded) member name."""
    line: int
    member: str
    depth: int


@dataclasses.dataclass
class ScopeEnd:
    """A closing brace: locks acquired at >= depth die here."""
    line: int
    depth: int


@dataclasses.dataclass
class Function:
    """One function definition with its ordered body events."""
    qualname: str       # 'ThreadPool::submit', 'counter', ...
    cls: Optional[str]  # enclosing/qualifying class name or None
    name: str           # unqualified name
    file: str
    line: int
    events: list = dataclasses.field(default_factory=list)
    requires: set = dataclasses.field(default_factory=set)
    is_ctor_dtor: bool = False


@dataclasses.dataclass
class Model:
    files: list = dataclasses.field(default_factory=list)
    functions: list = dataclasses.field(default_factory=list)
    guarded: list = dataclasses.field(default_factory=list)
    mo_sites: list = dataclasses.field(default_factory=list)
    raii_temps: list = dataclasses.field(default_factory=list)
    statics: list = dataclasses.field(default_factory=list)
    atomic_ref_bools: list = dataclasses.field(default_factory=list)
    # every (cls, member) seen, guarded or not — used to recognize
    # same-named members of *unguarded* classes (name collisions)
    members: set = dataclasses.field(default_factory=set)
    # (file, line) -> (check, reason) from `// qf-allow(check): reason`
    suppressions: dict = dataclasses.field(default_factory=dict)

    def guarded_names(self) -> dict:
        """member name -> set of guard names (over every class)."""
        out = {}
        for g in self.guarded:
            out.setdefault(g.name, set()).add(g.guard)
        return out


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Tok:
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d[\w.+-]*)
    | (?P<punct>::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||[-+*/%&|^!<>=]=|<<|>>
        |[{}()\[\];,.<>=*&!?:~%^|/+-])
    """,
    re.VERBOSE,
)


def canonical(expr: str) -> str:
    """Last identifier component of a lock/guard expression.

    `reg.mutex` -> `mutex`, `state->mutex` -> `mutex`,
    `pool->mutex_` -> `mutex_`, `mutex_` -> `mutex_`.
    """
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else expr.strip()


def strip_strings_and_comments(text: str):
    """Return (code_text, comments) where comments is [(line, text)] and
    code_text has comments/strings/chars blanked (newlines preserved)."""
    out = []
    comments = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            out.append(c)
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append((line, text[i:j]))
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            for off, part in enumerate(chunk.split("\n")):
                comments.append((line + off, part))
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            chunk = text[i:j]
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if chunk.endswith(quote) and j - i > 1 else ""))
            line += chunk.count("\n")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), comments


def tokenize(code: str) -> list:
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


# ---------------------------------------------------------------------------
# Scanner
# ---------------------------------------------------------------------------

_LOCK_TYPES = {
    "LockGuard": "guard",
    "UniqueLock": "unique",
    "lock_guard": "guard",        # std::lock_guard<...>
    "unique_lock": "unique",
    "scoped_lock": "guard",
}

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast", "new",
    "delete", "throw", "catch", "co_await", "co_return", "assert",
    "static_assert", "decltype", "noexcept", "case", "do", "else", "typeid",
}

_SUPPRESS_RE = re.compile(
    r"//\s*(?:qf|lint)-allow\((?P<check>[\w-]+)\):\s*(?P<reason>.+)")

_MO_RE = re.compile(r"\bmemory_order_(\w+)")

_DEFAULT_RAII_TYPES = ("TraceSpan", "LockGuard", "UniqueLock",
                       "ThreadRankScope", "lock_guard", "unique_lock",
                       "scoped_lock")


@dataclasses.dataclass
class _Scope:
    kind: str                    # 'ns' | 'class' | 'func' | 'block'
    name: str = ""
    func: Optional[Function] = None


class TokenEngine:
    """Builds a Model from source files without a compiler."""

    def __init__(self, raii_types=_DEFAULT_RAII_TYPES):
        self.raii_types = set(raii_types)
        self.model = Model()
        # (cls, name) -> requires set, collected from declarations so a
        # QF_REQUIRES on the header prototype covers the .cpp definition.
        self._requires_decl = {}

    # -- public --------------------------------------------------------

    def add_file(self, path) -> None:
        path = pathlib.Path(path)
        text = path.read_text(encoding="utf-8", errors="replace")
        self.model.files.append(str(path))
        code, comments = strip_strings_and_comments(text)
        self._collect_line_facts(str(path), text, code, comments)
        self._scan(str(path), tokenize(code))

    def finish(self) -> Model:
        for fn in self.model.functions:
            fn.requires |= self._requires_decl.get((fn.cls, fn.name), set())
            fn.requires |= self._requires_decl.get((None, fn.name), set())
        return self.model

    # -- line-based facts ----------------------------------------------

    def _collect_line_facts(self, fname, text, code, comments):
        raw_lines = text.split("\n")
        code_lines = code.split("\n")
        comment_by_line = {}
        for line, c in comments:
            comment_by_line.setdefault(line, []).append(c)
            m = _SUPPRESS_RE.search(c)
            if m:
                self.model.suppressions[(fname, line)] = (
                    m.group("check"), m.group("reason").strip())

        def has_mo_comment(line):
            return any("mo:" in c for c in comment_by_line.get(line, ()))

        for i, cl in enumerate(code_lines, start=1):
            for m in _MO_RE.finditer(cl):
                justified = has_mo_comment(i)
                # Walk up through the contiguous (no blank line) run of at
                # most 10 preceding lines; a `// mo:` anywhere in it covers
                # this site (block justifications span loops).
                j = i - 1
                while (not justified and j > 0 and i - j <= 10
                       and raw_lines[j - 1].strip()):
                    justified = has_mo_comment(j)
                    j -= 1
                self.model.mo_sites.append(MoSite(
                    file=fname, line=i, order=m.group(1),
                    justified=justified,
                    context=raw_lines[i - 1].strip()))
            if re.search(r"std::atomic_ref\s*<\s*bool\s*>", cl):
                self.model.atomic_ref_bools.append((fname, i))

    # -- token scan ----------------------------------------------------

    def _scan(self, fname, toks):
        scopes = [_Scope("ns", "")]
        stmt_start = 0          # index of the first token of the statement
        i = 0
        n = len(toks)

        def cur_func():
            # a class body nested in a function is class scope, not body
            for s in reversed(scopes):
                if s.kind == "class":
                    return None
                if s.kind == "func":
                    return s.func
            return None

        def cur_class():
            for s in reversed(scopes):
                if s.kind == "class":
                    return s.name
                if s.kind == "func":
                    return None
            return None

        def depth():
            return len(scopes)

        while i < n:
            t = toks[i]
            if t.text == "{":
                self._maybe_member(toks, i, cur_func(), cur_class())
                scopes.append(self._classify_scope(
                    fname, toks, stmt_start, i, scopes))
                i += 1
                stmt_start = i
                continue
            if t.text == "}":
                closing = scopes.pop() if len(scopes) > 1 else scopes[0]
                fn = cur_func() or (closing.func
                                    if closing.kind == "func" else None)
                if fn is not None:
                    fn.events.append(ScopeEnd(line=t.line, depth=depth() + 1))
                i += 1
                stmt_start = i
                continue
            if t.text == ";":
                self._maybe_member(toks, i, cur_func(), cur_class())
                i += 1
                stmt_start = i
                continue

            fn = cur_func()

            if t.text in ("=",) and fn is None and cur_class() is not None:
                self._maybe_member(toks, i, fn, cur_class())

            # QF_GUARDED_BY(expr) after a member declarator, in class scope.
            if (t.text == "QF_GUARDED_BY" and fn is None
                    and cur_class() is not None
                    and i + 1 < n and toks[i + 1].text == "("):
                close, args = self._read_parens(toks, i + 1)
                member = toks[i - 1].text if i > 0 else ""
                if re.match(r"^[A-Za-z_]\w*$", member):
                    self.model.guarded.append(GuardedMember(
                        cls=cur_class(), name=member,
                        guard=canonical(" ".join(args)),
                        file=fname, line=t.line))
                    self.model.members.add((cur_class(), member))
                i = close + 1
                continue

            # QF_REQUIRES(expr) on a declaration or definition header.
            if t.text == "QF_REQUIRES" and i + 1 < n and toks[i + 1].text == "(":
                close, args = self._read_parens(toks, i + 1)
                name = self._decl_name_before(toks, stmt_start, i)
                req = {canonical(a) for a in self._split_args(args)}
                if name:
                    cls = cur_class()
                    self._requires_decl.setdefault((cls, name), set()).update(req)
                    if cls is None and "::" not in name:
                        self._requires_decl.setdefault(
                            (None, name), set()).update(req)
                i = close + 1
                continue

            if fn is not None:
                i, stmt_start = self._scan_body_token(
                    fname, toks, i, stmt_start, fn, depth())
                continue

            # Namespace/class scope: static declarations.
            if (t.text == "static" and i == stmt_start
                    and scopes[-1].kind in ("ns", "class")
                    and scopes[-1].kind == "ns"):
                self._record_static(fname, toks, i)
            i += 1
        # never reached with balanced braces; fall through otherwise

    # -- helpers -------------------------------------------------------

    def _classify_scope(self, fname, toks, stmt_start, brace_i, scopes):
        head = toks[stmt_start:brace_i]
        texts = [t.text for t in head]
        in_func = any(s.kind == "func" for s in scopes)

        if "namespace" in texts:
            idx = texts.index("namespace")
            name = texts[idx + 1] if idx + 1 < len(texts) else ""
            return _Scope("ns", name if re.match(r"^\w+$", name or "-") else "")
        if "enum" in texts or "union" in texts:
            return _Scope("block")
        for kw in ("class", "struct"):
            if kw in texts and "(" not in texts[: texts.index(kw)]:
                idx = texts.index(kw)
                # skip attribute-like macros: the name is the last plain
                # identifier before `:` / `{` / 'final'
                tail = texts[idx + 1:]
                stop = len(tail)
                for stopper in (":",):
                    if stopper in tail:
                        stop = min(stop, tail.index(stopper))
                cand = [x for x in tail[:stop]
                        if re.match(r"^[A-Za-z_]\w*$", x)
                        and x not in ("final", "alignas")
                        and not x.startswith("QF_")]
                if cand and (not tail or tail[0] != "<"):
                    return _Scope("class", cand[-1])
        if in_func:
            return _Scope("block")

        # Function definition: `... name ( params ) [quals] {`
        fn = self._match_function_header(fname, head)
        if fn is not None:
            cls = None
            for s in reversed(scopes):
                if s.kind == "class":
                    cls = s.name
                    break
                if s.kind == "func":
                    break
            if "::" in fn.qualname:
                cls = fn.qualname.split("::")[-2]
            fn.cls = cls
            fn.is_ctor_dtor = (cls is not None
                               and fn.name.lstrip("~") == cls)
            self.model.functions.append(fn)
            return _Scope("func", fn.name, fn)
        return _Scope("block")

    def _match_function_header(self, fname, head):
        texts = [t.text for t in head]
        if "(" not in texts:
            return None

        # Constructor definitions end in an init list: truncate the head
        # at a top-level single `:` (tokenizer emits `::` as one token)
        # that follows the parameter list's `)`.
        level = 0
        seen_close = False
        for k, x in enumerate(texts):
            if x in "([{":
                level += 1
            elif x in ")]}":
                level -= 1
                seen_close = True
            elif x == ":" and level == 0 and seen_close:
                texts = texts[:k]
                break

        # Strip trailing qualifiers, `-> ret` trailing returns, and
        # annotation-macro groups `QF_*(...)` so the parameter list's `)`
        # ends the (stripped) head.
        quals = {"const", "noexcept", "override", "final", "mutable", "&",
                 "&&", "try"}
        while texts:
            if texts[-1] in quals:
                texts.pop()
                continue
            if texts[-1] == ")":
                open_j = self._match_back(texts, len(texts) - 1)
                if open_j > 0 and texts[open_j - 1].startswith("QF_"):
                    del texts[open_j - 1:]
                    continue
                if open_j > 0 and texts[open_j - 1] == "noexcept":
                    del texts[open_j - 1:]
                    continue
            if "->" in texts:
                arrow = len(texts) - 1 - texts[::-1].index("->")
                # trailing return only when the arrow follows the `)`
                lvl = 0
                for x in texts[arrow:]:
                    if x in "([{":
                        lvl += 1
                    elif x in ")]}":
                        lvl -= 1
                if lvl <= 0 and arrow > 0 and texts[arrow - 1] == ")":
                    del texts[arrow:]
                    continue
            break
        if not texts or texts[-1] != ")":
            return None
        open_j = self._match_back(texts, len(texts) - 1)
        if open_j <= 0:
            return None
        before = texts[open_j - 1]
        if before == "]":
            return None          # lambda introducer: body is a block
        if not re.match(r"^[A-Za-z_~]\w*$", before):
            return None
        if before in _KEYWORDS or before.startswith("QF_"):
            return None
        # collect `A::B::name`
        parts = [before]
        j = open_j - 1
        while j >= 2 and texts[j - 1] == "::" and re.match(
                r"^[A-Za-z_~]\w*$", texts[j - 2]):
            parts.append(texts[j - 2])
            j -= 2
        parts.reverse()
        name = parts[-1]
        return Function(qualname="::".join(parts), cls=None, name=name,
                        file=fname, line=head[0].line if head else 0)

    @staticmethod
    def _match_back(texts, close_i):
        """Index of the '(' matching the ')' at close_i, or -1."""
        level = 0
        for j in range(close_i, -1, -1):
            if texts[j] == ")":
                level += 1
            elif texts[j] == "(":
                level -= 1
                if level == 0:
                    return j
        return -1

    def _scan_body_token(self, fname, toks, i, stmt_start, fn, depth_):
        t = toks[i]
        n = len(toks)

        # Scoped lock declaration: [const] LockType [<...>] var ( expr )
        if t.text in _LOCK_TYPES and i + 1 < n:
            j = i + 1
            if toks[j].text == "<":                   # std::lock_guard<...>
                j = self._skip_angles(toks, j)
            if j < n and re.match(r"^[A-Za-z_]\w*$", toks[j].text):
                var = toks[j].text
                if j + 1 < n and toks[j + 1].text in "({":
                    close, args = self._read_group(toks, j + 1)
                    arglist = self._split_args(args)
                    if arglist and not any(
                            a in ("adopt_lock", "defer_lock",
                                  "std :: adopt_lock", "std :: defer_lock")
                            or "adopt_lock" in a or "defer_lock" in a
                            for a in arglist):
                        fn.events.append(AcquireEvent(
                            line=t.line, var=var,
                            mutex=canonical(arglist[0]),
                            depth=depth_, kind=_LOCK_TYPES[t.text]))
                    return close + 1, stmt_start
            # Unnamed temporary: LockType ( ... ) ; or LockType { ... } ;
            if i == stmt_start or (i >= 2 and toks[i - 1].text == "::"):
                if j < n and toks[j].text in "({":
                    close, _ = self._read_group(toks, j)
                    if close + 1 < n and toks[close + 1].text == ";":
                        self.model.raii_temps.append(RaiiTemp(
                            file=fname, line=t.line, type_name=t.text))
                        return close + 2, close + 2
            return i + 1, stmt_start

        # Other named-RAII temporaries at statement start.
        if (t.text in self.raii_types
                and (i == stmt_start
                     or (i == stmt_start + 2 and toks[i - 1].text == "::"))
                and i + 1 < n and toks[i + 1].text in "({"):
            close, _ = self._read_group(toks, i + 1)
            if close + 1 < n and toks[close + 1].text == ";":
                self.model.raii_temps.append(RaiiTemp(
                    file=fname, line=t.line, type_name=t.text))
                return close + 2, close + 2

        # static declarations at function scope
        if t.text == "static" and i == stmt_start:
            self._record_static(fname, toks, i)
            return i + 1, stmt_start

        # Call: ident ( ... )
        if (re.match(r"^[A-Za-z_]\w*$", t.text)
                and t.text not in _KEYWORDS
                and i + 1 < n and toks[i + 1].text == "("
                and not (i > 0 and toks[i - 1].text
                         in ("class", "struct", "enum"))):
            close, args = self._read_parens(toks, i + 1)
            fn.events.append(CallEvent(
                line=t.line, callee=t.text,
                args=self._split_args(args), depth=depth_))
            # keep scanning inside the arguments for member accesses
            return i + 1, stmt_start

        # Member access candidate for guarded-by.
        if re.match(r"^[A-Za-z_]\w*$", t.text) and t.text not in _KEYWORDS:
            fn.events.append(AccessEvent(
                line=t.line, member=t.text, depth=depth_))
        return i + 1, stmt_start

    def _record_static(self, fname, toks, i):
        """Record `static <decl> = / { / ;` skipping functions."""
        j = i + 1
        parts = []
        n = len(toks)
        while j < n and toks[j].text not in (";", "{", "=", "("):
            parts.append(toks[j].text)
            j += 1
        if j >= n or toks[j].text == "(":
            return              # function declaration or call-like init
        decl = " ".join(parts)
        if not parts or not re.match(r"^[A-Za-z_]\w*$", parts[-1]):
            return
        self.model.statics.append(StaticDecl(
            file=fname, line=toks[i].line, decl=decl,
            is_bool=bool(re.search(r"\bbool\b", decl))))

    _MEMBER_SKIP = {"true", "false", "nullptr", "default", "delete",
                    "override", "final", "const", "noexcept", "public",
                    "private", "protected"}

    def _maybe_member(self, toks, i, fn, cls):
        """Census of plain class members: the identifier right before a
        `;` / `=` / `{` at class scope."""
        if fn is not None or cls is None or i == 0:
            return
        prev = toks[i - 1].text
        if (re.match(r"^[A-Za-z_]\w*$", prev)
                and prev not in self._MEMBER_SKIP
                and prev not in _KEYWORDS):
            self.model.members.add((cls, prev))

    # token-group utilities --------------------------------------------

    @staticmethod
    def _read_parens(toks, open_i):
        return TokenEngine._read_group(toks, open_i)

    @staticmethod
    def _read_group(toks, open_i):
        """Return (index_of_close, inner_token_texts) for a ( or { group."""
        opener = toks[open_i].text
        closer = {"(": ")", "{": "}", "[": "]", "<": ">"}[opener]
        level = 0
        inner = []
        j = open_i
        n = len(toks)
        while j < n:
            x = toks[j].text
            if x == opener:
                level += 1
            elif x == closer:
                level -= 1
                if level == 0:
                    return j, inner
            if j > open_i:
                inner.append(x)
            j += 1
        return n - 1, inner

    @staticmethod
    def _skip_angles(toks, open_i):
        level = 0
        j = open_i
        n = len(toks)
        while j < n:
            if toks[j].text == "<":
                level += 1
            elif toks[j].text == ">":
                level -= 1
                if level == 0:
                    return j + 1
            elif toks[j].text in (";", "{"):
                return open_i + 1     # not a template argument list
            j += 1
        return n

    @staticmethod
    def _split_args(inner):
        """Split the token texts of a group on top-level commas."""
        args = []
        cur = []
        level = 0
        for x in inner:
            if x in "([{<":
                level += 1
            elif x in ")]}>":
                level -= 1
            if x == "," and level == 0:
                args.append(" ".join(cur))
                cur = []
            else:
                cur.append(x)
        if cur:
            args.append(" ".join(cur))
        return args

    @staticmethod
    def _decl_name_before(toks, stmt_start, attr_i):
        """Function name for `ret name(params) QF_REQUIRES(...)`: the
        identifier immediately before the parameter list's '('."""
        level = 0
        for j in range(attr_i - 1, stmt_start - 1, -1):
            x = toks[j].text
            if x == ")":
                level += 1
            elif x == "(":
                level -= 1
                if level == 0:
                    k = j - 1
                    if k >= 0 and re.match(r"^[A-Za-z_~]\w*$", toks[k].text):
                        return toks[k].text
                    return ""
        return ""


def build_model(paths, raii_types=_DEFAULT_RAII_TYPES) -> Model:
    eng = TokenEngine(raii_types=raii_types)
    for p in paths:
        eng.add_file(p)
    return eng.finish()

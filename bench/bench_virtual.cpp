/// \file bench_virtual.cpp
/// \brief Ablation: cost of the runtime virtualized-quadrant interface
/// (one virtual call + box/unbox per operation) versus compile-time
/// traits. Quantifies the trade-off the paper's conclusion discusses:
/// "we cannot predict whether the new interface and glue code will be
/// acceptable to the community".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "core/virtual_ops.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

template <class R>
double time_static_child(const std::vector<WorkItem>& items, int reps) {
  const auto w = Workload<R>::build(items);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < w.quads.size(); ++i) {
      if (R::level(w.quads[i]) >= R::max_level) {
        continue;
      }
      sink ^= static_cast<std::uint64_t>(
          R::child_id(R::child(w.quads[i], w.items[i].child)));
    }
    do_not_optimize(sink);
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

double time_virtual_child(RepKind kind, const std::vector<WorkItem>& items,
                          int reps) {
  const VirtualQuadrantOps& ops = virtual_ops(kind, 3);
  std::vector<VQuad> quads;
  quads.reserve(items.size());
  for (const auto& it : items) {
    quads.push_back(ops.morton_quadrant(it.level_index, it.level));
  }
  const int max_level = ops.max_level();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < quads.size(); ++i) {
      if (ops.level(quads[i]) >= max_level) {
        continue;
      }
      sink ^= static_cast<std::uint64_t>(
          ops.child_id(ops.child(quads[i], items[i].child)));
    }
    do_not_optimize(sink);
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest;
  using namespace qforest::bench;

  std::size_t n = kPaperQuadrantCount;
  if (const char* env = std::getenv("QFOREST_BENCH_N")) {
    n = std::strtoull(env, nullptr, 10);
  }
  const auto items = make_work_items(n, kPaperMaxLevel, 3);
  const int reps = 5;

  std::printf("== Virtual dispatch ablation: Child+child_id over %zu 3D "
              "quadrants ==\n\n",
              n);
  Table t({"representation", "static traits [s]", "virtual vtable [s]",
           "dispatch overhead %"});

  struct Row {
    const char* name;
    double stat;
    double virt;
  };
  const Row rows[] = {
      {"standard", time_static_child<StandardRep<3>>(items, reps),
       time_virtual_child(RepKind::kStandard, items, reps)},
      {"morton", time_static_child<MortonRep<3>>(items, reps),
       time_virtual_child(RepKind::kMorton, items, reps)},
      {"avx", time_static_child<AvxRep<3>>(items, reps),
       time_virtual_child(RepKind::kAvx, items, reps)},
      {"wide-morton", time_static_child<WideMortonRep<3>>(items, reps),
       time_virtual_child(RepKind::kWideMorton, items, reps)},
  };
  for (const Row& r : rows) {
    t.add_row({r.name, Table::fmt(r.stat, 6), Table::fmt(r.virt, 6),
               Table::fmt(100.0 * (r.virt - r.stat) / r.stat, 1)});
  }
  t.print();
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("virtual/static_morton",
                               [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = time_static_child<MortonRep<3>>(items, 1);
      benchmark::DoNotOptimize(v);
    }
  });
  benchmark::RegisterBenchmark("virtual/vtable_morton",
                               [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = time_virtual_child(RepKind::kMorton, items, 1);
      benchmark::DoNotOptimize(v);
    }
  });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

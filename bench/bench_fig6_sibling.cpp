/// \file bench_fig6_sibling.cpp
/// \brief Figure 6: strong scaling of Sibling (paper Algorithm 3 and its
/// raw-Morton / AVX counterparts). Paper: morton-id +23%, avx +21%
/// average boost vs standard.

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  std::uint32_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (q.level == 0) {
      continue;
    }
    const auto r = S::sibling(q, w.items[i].child);
    sink ^= static_cast<std::uint32_t>(r.x) ^
            static_cast<std::uint32_t>(r.y) ^
            static_cast<std::uint32_t>(r.z) ^
            static_cast<std::uint32_t>(r.level);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  std::uint64_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto q = w.quads[i];
    if (M::level(q) == 0) {
      continue;
    }
    sink ^= M::sibling(q, w.items[i].child);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  simd::Vec128 sink;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (A::level(q) == 0) {
      continue;
    }
    sink = sink ^ A::sibling(q, w.items[i].child);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 6", "Sibling",
             "morton-id +23% avg, avx +21% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig6_sibling", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

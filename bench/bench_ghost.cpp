/// \file bench_ghost.cpp
/// \brief Read-path ablation: the batched consumer paths (ghost_layer,
/// iterate_faces, search_points) against their scalar per-quadrant
/// reference paths, selected by the batch kill switch exactly like the
/// balance mark ablation.
///
/// Workload: the shared sphere-band mesh (workload.hpp) on a 2x2x1 brick,
/// refined and 2:1-balanced, partitioned across 8 simulated ranks —
/// >= 1M leaves at the default depth. Three timings per representation:
///   - ghost:         ghost_layer(r) for every rank (the per-timestep
///                    exchange set build);
///   - iterate_faces: one full face sweep with a counting callback;
///   - search_points: one batched point location of ~num_leaves random
///                    canonical points (scalar path: per-point search).
///
/// The two dispatch paths must agree exactly — ghost sets per rank,
/// face-emission fingerprint, and per-point results; the binary exits
/// nonzero otherwise (CI runs it as a smoke test). With SIMD active and
/// the default mesh size, the batched ghost path must beat the scalar
/// path by >= 1.5x (disable via QFOREST_GH_ENFORCE=0 for smoke runs).
/// Results land on stdout and in BENCH_ghost.json.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.hpp"
#include "core/batch_ops.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "forest/forest.hpp"
#include "simd/feature_detect.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

constexpr int kRanks = 8;
constexpr gidx_t kEnforceMinLeaves = 1000000;
constexpr double kEnforceMinBoost = 1.5;

struct ReadTimes {
  double ghost_s = 0;
  double iterate_s = 0;
  double search_s = 0;
};

struct ReadResults {
  std::vector<std::vector<gidx_t>> ghost;  ///< per rank, global indices
  std::uint64_t face_fingerprint = 0;      ///< order-independent sum
  gidx_t faces = 0;
  std::vector<gidx_t> points;
};

template <class R>
Forest<R> make_mesh(int base_level, int max_depth) {
  auto f = Forest<R>::new_uniform(Connectivity::brick3d(2, 2, 1), base_level,
                                  kRanks);
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    return R::level(q) < max_depth && near_sphere<R>(q);
  });
  f.balance(BalanceKind::kFull);
  f.partition();
  return f;
}

std::vector<PointQuery> make_points(int num_trees, std::size_t n) {
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
  Xoshiro256 rng(20240809);
  std::vector<PointQuery> pts(n);
  for (PointQuery& p : pts) {
    p.tree = static_cast<tree_id_t>(
        rng.next_below(static_cast<std::uint64_t>(num_trees)));
    p.x = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(root)));
    p.y = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(root)));
    p.z = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(root)));
  }
  return pts;
}

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

template <class R>
ReadTimes run_path(const Forest<R>& f, const std::vector<PointQuery>& pts,
                   int sweeps, ReadResults* out) {
  ReadTimes best;
  for (int s = 0; s < sweeps; ++s) {
    ReadResults res;
    WallTimer t;
    res.ghost.reserve(static_cast<std::size_t>(f.num_ranks()));
    for (int r = 0; r < f.num_ranks(); ++r) {
      const auto layer = f.ghost_layer(r);
      std::vector<gidx_t> g;
      g.reserve(layer.entries.size());
      for (const auto& e : layer.entries) {
        g.push_back(e.global_index);
      }
      res.ghost.push_back(std::move(g));
    }
    const double ghost_s = t.elapsed_s();

    t.reset();
    std::atomic<std::uint64_t> fingerprint{0};
    std::atomic<gidx_t> faces{0};
    f.iterate_faces([&](const FaceInfo<R>& info) {
      // Order-independent: the callback runs concurrently on the
      // batched path, and addition commutes.
      const std::uint64_t a =
          info.is_boundary
              ? ~std::uint64_t{0}
              : static_cast<std::uint64_t>(
                    f.global_index(info.tree[1], info.leaf_index[1]));
      const std::uint64_t h =
          mix(static_cast<std::uint64_t>(
                  f.global_index(info.tree[0], info.leaf_index[0])) *
                  6 +
              static_cast<std::uint64_t>(info.face[0])) ^
          mix(a + (info.is_hanging ? 0x9e3779b97f4a7c15ULL : 0));
      fingerprint.fetch_add(h, std::memory_order_relaxed);
      faces.fetch_add(1, std::memory_order_relaxed);
    });
    const double iterate_s = t.elapsed_s();
    res.face_fingerprint = fingerprint.load();
    res.faces = faces.load();

    t.reset();
    res.points = f.search_points(pts);
    const double search_s = t.elapsed_s();

    if (s == 0 || ghost_s < best.ghost_s) {
      best.ghost_s = ghost_s;
    }
    if (s == 0 || iterate_s < best.iterate_s) {
      best.iterate_s = iterate_s;
    }
    if (s == 0 || search_s < best.search_s) {
      best.search_s = search_s;
    }
    if (out != nullptr && s == sweeps - 1) {
      *out = std::move(res);
    }
  }
  return best;
}

double pct(double scalar_s, double batched_s) {
  return batched_s > 0 ? (scalar_s / batched_s - 1.0) * 100.0 : 0.0;
}

template <class R>
void bench_rep(Table& table, BenchJson& json, int base_level, int max_depth,
               int sweeps, bool enforce) {
  const Forest<R> f = make_mesh<R>(base_level, max_depth);
  const auto pts = make_points(f.num_trees(),
                               static_cast<std::size_t>(f.num_quadrants()));

  batch::set_enabled(false);
  ReadResults scalar_res;
  const ReadTimes scalar = run_path(f, pts, sweeps, &scalar_res);
  batch::set_enabled(true);
  ReadResults batched_res;
  const ReadTimes batched = run_path(f, pts, sweeps, &batched_res);

  if (scalar_res.ghost != batched_res.ghost) {
    std::fprintf(stderr,
                 "FAIL: %s ghost sets diverge between the scalar and the "
                 "batched path\n",
                 R::name);
    std::exit(1);
  }
  if (scalar_res.faces != batched_res.faces ||
      scalar_res.face_fingerprint != batched_res.face_fingerprint) {
    std::fprintf(stderr,
                 "FAIL: %s face emissions diverge (%lld vs %lld faces)\n",
                 R::name, static_cast<long long>(scalar_res.faces),
                 static_cast<long long>(batched_res.faces));
    std::exit(1);
  }
  if (scalar_res.points != batched_res.points) {
    std::fprintf(stderr,
                 "FAIL: %s search_points diverges between the scalar and "
                 "the batched path\n",
                 R::name);
    std::exit(1);
  }

  const gidx_t leaves = f.num_quadrants();
  table.add_row({R::name, Table::fmt(scalar.ghost_s, 4),
                 Table::fmt(batched.ghost_s, 4),
                 Table::fmt(pct(scalar.ghost_s, batched.ghost_s), 1),
                 Table::fmt(scalar.iterate_s, 4),
                 Table::fmt(batched.iterate_s, 4),
                 Table::fmt(pct(scalar.iterate_s, batched.iterate_s), 1),
                 Table::fmt(scalar.search_s, 4),
                 Table::fmt(batched.search_s, 4),
                 Table::fmt(pct(scalar.search_s, batched.search_s), 1),
                 Table::fmt(static_cast<long long>(leaves))});

  const char* phases[] = {"ghost", "iterate_faces", "search_points"};
  const double scalar_s[] = {scalar.ghost_s, scalar.iterate_s,
                             scalar.search_s};
  const double batched_s[] = {batched.ghost_s, batched.iterate_s,
                              batched.search_s};
  for (int p = 0; p < 3; ++p) {
    json.begin_record();
    json.field("bench", "ghost");
    json.field("rep", R::name);
    json.field("phase", phases[p]);
    json.field("scalar_seconds", scalar_s[p]);
    json.field("batched_seconds", batched_s[p]);
    json.field("boost_percent", pct(scalar_s[p], batched_s[p]));
    json.field("leaves", static_cast<long long>(leaves));
    json.field("simd_active", BatchOps<R>::simd_active());
  }

  // Acceptance gate: with SIMD kernels active and a production-size mesh
  // the batched ghost build must beat the scalar path by >= 1.5x.
  if (enforce && BatchOps<R>::simd_active() && leaves >= kEnforceMinLeaves &&
      scalar.ghost_s < kEnforceMinBoost * batched.ghost_s) {
    std::fprintf(stderr,
                 "FAIL: %s batched ghost_layer %.4fs vs scalar %.4fs — "
                 "below the %.1fx floor at %lld leaves\n",
                 R::name, batched.ghost_s, scalar.ghost_s, kEnforceMinBoost,
                 static_cast<long long>(leaves));
    std::exit(1);
  }
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  int base_level = 3, max_depth = 8, sweeps = 3;
  bool enforce = true;
  if (const char* env = std::getenv("QFOREST_GH_DEPTH")) {
    max_depth = std::atoi(env);
  }
  if (const char* env = std::getenv("QFOREST_GH_SWEEPS")) {
    sweeps = std::atoi(env);
  }
  if (const char* env = std::getenv("QFOREST_GH_ENFORCE")) {
    enforce = std::atoi(env) != 0;
  }

  std::printf("== read paths: batched (bulk neighbor keys + grid/merge "
              "resolution) vs scalar per-quadrant lookups, 2x2x1 brick, "
              "uniform L%d -> balanced sphere band to L%d, %d ranks, best "
              "of %d ==\n",
              base_level, max_depth, kRanks, sweeps);
  std::printf("cpu features: %s; avx batch kernels %s\n",
              simd::feature_string().c_str(),
              BatchOps<AvxRep<3>>::has_simd_kernels && simd::avx2_usable()
                  ? "active for avx rep"
                  : "unavailable (scalar kernels everywhere)");

  Table table({"representation", "ghost scal [s]", "ghost batch [s]",
               "boost %", "iter scal [s]", "iter batch [s]", "boost %",
               "search scal [s]", "search batch [s]", "boost %", "leaves"});
  BenchJson json;
  bench_rep<StandardRep<3>>(table, json, base_level, max_depth, sweeps,
                            enforce);
  bench_rep<MortonRep<3>>(table, json, base_level, max_depth, sweeps,
                          enforce);
  bench_rep<AvxRep<3>>(table, json, base_level, max_depth, sweeps, enforce);
  bench_rep<WideMortonRep<3>>(table, json, base_level, max_depth, sweeps,
                              enforce);
  table.print();
  std::printf("\n(per-rank ghost sets, the face-emission fingerprint and "
              "every point result must agree between the two paths.)\n");

  json.write("BENCH_ghost.json");
  return 0;
}

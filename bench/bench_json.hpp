#pragma once
/// \file bench_json.hpp
/// \brief Minimal machine-readable benchmark output: every bench binary
/// appends flat records and writes one JSON document, so the performance
/// trajectory of the repo can be tracked run over run (CI archives the
/// BENCH_*.json artifacts).
///
/// Format: {"schema": 1, "cpu": "...", "unix_time": N, "records": [{...}]}
/// with records holding only strings, integers and doubles — trivially
/// diffable and loadable from any plotting script.

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "simd/feature_detect.hpp"

namespace qforest::bench {

/// Append-only JSON document of flat benchmark records.
class BenchJson {
 public:
  void begin_record() {
    records_.emplace_back();
  }

  void field(const char* key, const std::string& value) {
    add(key, "\"" + escape(value) + "\"");
  }
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }
  void field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    add(key, buf);
  }
  void field(const char* key, long long value) {
    add(key, std::to_string(value));
  }
  void field(const char* key, std::size_t value) {
    add(key, std::to_string(value));
  }
  void field(const char* key, bool value) {
    add(key, value ? "true" : "false");
  }
  /// Embed a pre-serialized JSON value verbatim (e.g. a metrics snapshot
  /// from obs::metrics_json()). The caller guarantees it is valid JSON.
  void field_raw(const char* key, const std::string& json_value) {
    add(key, json_value);
  }

  /// Write the document; returns false (and keeps quiet) on I/O failure so
  /// benches never fail because a working directory is read-only.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      return false;
    }
    std::string doc = "{\n  \"schema\": 1,\n  \"cpu\": \"" +
                      escape(simd::feature_string()) +
                      "\",\n  \"unix_time\": " +
                      std::to_string(static_cast<long long>(
                          std::time(nullptr))) +
                      ",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      doc += "    {";
      for (std::size_t j = 0; j < records_[i].size(); ++j) {
        doc += "\"" + records_[i][j].first +
               "\": " + records_[i][j].second;
        if (j + 1 < records_[i].size()) {
          doc += ", ";
        }
      }
      doc += i + 1 < records_.size() ? "},\n" : "}\n";
    }
    doc += "  ]\n}\n";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (ok) {
      std::printf("wrote %s (%zu records)\n", path, records_.size());
    }
    return ok;
  }

 private:
  void add(const char* key, std::string json_value) {
    records_.back().emplace_back(key, std::move(json_value));
  }

  static std::string escape(const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        r += '\\';
      }
      r += c;
    }
    return r;
  }

  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace qforest::bench

/// \file bench_fig3_child.cpp
/// \brief Figure 3: strong scaling of Child (paper Algorithms 2, 6, 9).
/// Paper: morton-id +20%, avx +29% average boost vs standard — the AVX
/// version replaces the per-coordinate conditionals by masked lane ops
/// (30-46% fewer operations per the paper's §2.3 count).

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  std::uint32_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (q.level >= S::max_level) {
      continue;
    }
    const auto r = S::child(q, w.items[i].child);
    sink ^= static_cast<std::uint32_t>(r.x) ^
            static_cast<std::uint32_t>(r.y) ^
            static_cast<std::uint32_t>(r.z) ^
            static_cast<std::uint32_t>(r.level);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  std::uint64_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto q = w.quads[i];
    if (M::level(q) >= M::max_level) {
      continue;
    }
    sink ^= M::child(q, w.items[i].child);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  simd::Vec128 sink;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (A::level(q) >= A::max_level) {
      continue;
    }
    sink = sink ^ A::child(q, w.items[i].child);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 3", "Child",
             "morton-id +20% avg, avx +29% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig3_child", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

/// \file bench_fig7_tbound.cpp
/// \brief Figure 7: strong scaling of Tree Boundaries (paper Algorithm
/// 12), the kernel where the AVX2 representation shines: two lane-wise
/// compares replace six scalar comparisons. Paper: morton-id +3%,
/// avx +31% average boost vs standard.

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  int sink = 0;
  int f[3];
  for (std::size_t i = b; i < e; ++i) {
    S::tree_boundaries(w.quads[i], f);
    sink ^= f[0] ^ (f[1] << 4) ^ (f[2] << 8);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  int sink = 0;
  int f[3];
  for (std::size_t i = b; i < e; ++i) {
    M::tree_boundaries(w.quads[i], f);
    sink ^= f[0] ^ (f[1] << 4) ^ (f[2] << 8);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  int sink = 0;
  int f[3];
  for (std::size_t i = b; i < e; ++i) {
    A::tree_boundaries(w.quads[i], f);
    sink ^= f[0] ^ (f[1] << 4) ^ (f[2] << 8);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 7", "Tree Boundaries",
             "morton-id +3% avg, avx +31% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig7_tbound", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

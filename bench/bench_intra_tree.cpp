/// \file bench_intra_tree.cpp
/// \brief Intra-tree work-partitioning ablation: the two-level (tree x
/// chunk) scheduler against the per-tree-only scheduler and the fully
/// serial path, on the two forest shapes that matter:
///
///   - single: one unit tree — the common benchmark shape, where the
///     per-tree scheduler degenerates to one worker and the pool idles;
///   - multi:  a 2x2x1 brick, where per-tree parallelism already helps
///     and chunking must at least not hurt.
///
/// All three schedulers must produce the identical mesh (the binary
/// exits nonzero otherwise — CI runs it as a smoke test). On hosts with
/// >= 2 hardware threads the single-tree recursive-refine speedup of the
/// chunked scheduler over the per-tree scheduler is enforced to be
/// >= 1.5x (QFOREST_IT_ENFORCE=0 overrides; on single-core hosts the
/// check is advisory, as time-sliced workers cannot speed anything up).
/// Results land on stdout and in BENCH_intra_tree.json.

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_json.hpp"
#include "core/quadrant_morton.hpp"
#include "forest/forest.hpp"
#include "simd/feature_detect.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

using R = MortonRep<3>;

struct SchedTimes {
  double refine_s = 0;
  double balance_s = 0;
  double coarsen_s = 0;
  gidx_t leaves = 0;  ///< after refine + balance
};

enum class Scheduler { kSerial, kPerTree, kChunked };

const char* name_of(Scheduler s) {
  switch (s) {
    case Scheduler::kSerial: return "serial";
    case Scheduler::kPerTree: return "per-tree";
    default: return "chunked";
  }
}

void select(Scheduler s) {
  set_tree_parallelism(s != Scheduler::kSerial);
  set_intra_tree_parallelism(s == Scheduler::kChunked);
}

Connectivity make_conn(bool single) {
  return single ? Connectivity::unit(3) : Connectivity::brick3d(2, 2, 1);
}

SchedTimes run_workflow(bool single, int base_level, int max_depth,
                        int sweeps, Forest<R>* mesh_out) {
  // The brick has 4 trees; running it one level shallower keeps the two
  // shapes at comparable total leaf counts (4 trees x L-1 ~ 1 tree x L),
  // so the rows isolate the scheduling, not the mesh size.
  const int depth = single ? max_depth : max_depth - 1;
  SchedTimes best;
  for (int s = 0; s < sweeps; ++s) {
    auto f = Forest<R>::new_uniform(make_conn(single), base_level);
    WallTimer t;
    f.refine(true, [&](tree_id_t, const R::quad_t& q) {
      return R::level(q) < depth && near_sphere<R>(q);
    });
    const double refine_s = t.elapsed_s();

    t.reset();
    f.balance(BalanceKind::kFull);
    const double balance_s = t.elapsed_s();
    const gidx_t leaves = f.num_quadrants();

    t.reset();
    f.coarsen(true, [&](tree_id_t, const R::quad_t* fam) {
      return R::level(fam[0]) > base_level && !near_sphere<R>(fam[0]);
    });
    const double coarsen_s = t.elapsed_s();

    if (s == 0 || refine_s < best.refine_s) {
      best.refine_s = refine_s;
    }
    if (s == 0 || balance_s < best.balance_s) {
      best.balance_s = balance_s;
    }
    if (s == 0 || coarsen_s < best.coarsen_s) {
      best.coarsen_s = coarsen_s;
    }
    best.leaves = leaves;
    if (mesh_out != nullptr && s == sweeps - 1) {
      *mesh_out = std::move(f);
    }
  }
  return best;
}

bool same_mesh(const Forest<R>& a, const Forest<R>& b) {
  if (a.num_quadrants() != b.num_quadrants() ||
      a.num_trees() != b.num_trees()) {
    return false;
  }
  for (tree_id_t t = 0; t < a.num_trees(); ++t) {
    const auto& ta = a.tree_quadrants(t);
    const auto& tb = b.tree_quadrants(t);
    if (ta.size() != tb.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (!R::equal(ta[i], tb[i])) {
        return false;
      }
    }
  }
  return true;
}

double speedup(double base_s, double new_s) {
  return new_s > 0 ? base_s / new_s : 0.0;
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  int base_level = 3, max_depth = 8, sweeps = 3;
  if (const char* env = std::getenv("QFOREST_IT_DEPTH")) {
    max_depth = std::atoi(env);
  }
  if (const char* env = std::getenv("QFOREST_IT_SWEEPS")) {
    sweeps = std::atoi(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned workers = detail::forest_pool().size();
  bool enforce = hw >= 2 && workers >= 2;
  if (const char* env = std::getenv("QFOREST_IT_ENFORCE")) {
    enforce = std::atoi(env) != 0;
  }

  std::printf("== intra-tree work partitioning: chunked (tree x chunk) vs "
              "per-tree-only vs serial scheduling, uniform L%d -> sphere "
              "band to L%d (single tree; the 2x2x1 brick runs one level "
              "shallower), best of %d ==\n",
              base_level, max_depth, sweeps);
  std::printf("cpu: %s; hardware threads %u; forest pool workers %u; chunk "
              "grain %zu\n",
              simd::feature_string().c_str(), hw, workers, chunk_grain());

  Table table({"shape", "scheduler", "refine [s]", "balance [s]",
               "coarsen [s]", "refine speedup vs per-tree", "leaves"});
  BenchJson json;
  bool mesh_ok = true;
  double single_refine_speedup = 0;

  for (const bool single : {true, false}) {
    Forest<R> meshes[3] = {Forest<R>::new_root(make_conn(single)),
                           Forest<R>::new_root(make_conn(single)),
                           Forest<R>::new_root(make_conn(single))};
    SchedTimes times[3];
    const Scheduler order[3] = {Scheduler::kSerial, Scheduler::kPerTree,
                                Scheduler::kChunked};
    for (int s = 0; s < 3; ++s) {
      select(order[s]);
      times[s] =
          run_workflow(single, base_level, max_depth, sweeps, &meshes[s]);
    }
    select(Scheduler::kChunked);  // restore the default scheduler

    for (int s = 1; s < 3; ++s) {
      if (!same_mesh(meshes[0], meshes[s])) {
        std::fprintf(stderr,
                     "FAIL: %s-tree mesh diverges between the serial and "
                     "the %s scheduler\n",
                     single ? "single" : "multi", name_of(order[s]));
        mesh_ok = false;
      }
    }

    const double refine_speedup =
        speedup(times[1].refine_s, times[2].refine_s);
    if (single) {
      single_refine_speedup = refine_speedup;
    }
    for (int s = 0; s < 3; ++s) {
      table.add_row({single ? "single" : "multi", name_of(order[s]),
                     Table::fmt(times[s].refine_s, 4),
                     Table::fmt(times[s].balance_s, 4),
                     Table::fmt(times[s].coarsen_s, 4),
                     s == 2 ? Table::fmt(refine_speedup, 2) : "-",
                     Table::fmt(static_cast<long long>(times[s].leaves))});
      const char* phases[] = {"refine", "balance", "coarsen"};
      const double secs[] = {times[s].refine_s, times[s].balance_s,
                             times[s].coarsen_s};
      const double per_tree_secs[] = {times[1].refine_s, times[1].balance_s,
                                      times[1].coarsen_s};
      for (int p = 0; p < 3; ++p) {
        json.begin_record();
        json.field("bench", "intra_tree");
        json.field("shape", single ? "single" : "multi");
        json.field("scheduler", name_of(order[s]));
        json.field("phase", phases[p]);
        json.field("seconds", secs[p]);
        json.field("speedup_vs_per_tree", speedup(per_tree_secs[p], secs[p]));
        json.field("leaves", static_cast<long long>(times[s].leaves));
        json.field("workers", static_cast<long long>(workers));
      }
    }
  }
  table.print();
  std::printf("\n(all three schedulers must produce the identical mesh; "
              "single-tree rows are the shape the per-tree scheduler "
              "cannot parallelize.)\n");
  json.write("BENCH_intra_tree.json");

  if (!mesh_ok) {
    return 1;
  }
  if (single_refine_speedup < 1.5 && enforce) {
    std::fprintf(stderr,
                 "FAIL: single-tree recursive refine speedup %.2fx < 1.5x "
                 "(chunked vs per-tree scheduler, %u workers)\n",
                 single_refine_speedup, workers);
    return 1;
  }
  if (single_refine_speedup < 1.5) {
    std::printf("note: speedup %.2fx below the 1.5x target, not enforced "
                "(%u hardware threads)\n",
                single_refine_speedup, hw);
  }
  return 0;
}

/// \file bench_fig5_parent.cpp
/// \brief Figure 5: strong scaling of Parent (paper Algorithms 7 and 10).
/// Paper: morton-id +27%, avx +15% average boost vs standard.

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  std::uint32_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (q.level == 0) {
      continue;
    }
    const auto r = S::parent(q);
    sink ^= static_cast<std::uint32_t>(r.x) ^
            static_cast<std::uint32_t>(r.y) ^
            static_cast<std::uint32_t>(r.z) ^
            static_cast<std::uint32_t>(r.level);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  std::uint64_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto q = w.quads[i];
    if (M::level(q) == 0) {
      continue;
    }
    sink ^= M::parent(q);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  simd::Vec128 sink;
  for (std::size_t i = b; i < e; ++i) {
    const auto& q = w.quads[i];
    if (A::level(q) == 0) {
      continue;
    }
    sink = sink ^ A::parent(q);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 5", "Parent",
             "morton-id +27% avg, avx +15% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig5_parent", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

#include "figure.hpp"

#include <cstdlib>

namespace qforest::bench {

namespace {
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

FigureConfig FigureConfig::from_env() {
  FigureConfig cfg;
  cfg.n = static_cast<std::size_t>(
      env_u64("QFOREST_BENCH_N", kPaperQuadrantCount));
  cfg.max_tasks = static_cast<int>(env_u64("QFOREST_BENCH_MAX_TASKS", 512));
  cfg.sweeps = static_cast<int>(env_u64("QFOREST_BENCH_SWEEPS", 3));
  return cfg;
}

int figure_main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace qforest::bench

/// \file bench_balance_mark.cpp
/// \brief Balance mark-phase ablation: the batched mark phase (bulk
/// neighbor keys through BatchOps<R>::neighbor_at_offset_n + one sorted-
/// merge sweep per target tree, per-tree parallel) against the scalar
/// per-quadrant reference path (neighbor_at_offset + upper_bound per
/// (leaf, offset) pair), selected by the batch kill switch exactly like
/// the kernel dispatch ablation.
///
/// Two timings per representation:
///   - balance:   full 2:1 enforcement of an unbalanced sphere-band mesh
///                (mark + apply until fixpoint);
///   - mark-only: balance() of the already-balanced result — one complete
///                mark sweep that finds nothing, no apply, no rebuild —
///                the purest measurement of the mark phase itself.
///
/// The two dispatch paths must agree on the final mesh leaf-for-leaf; the
/// binary exits nonzero otherwise (CI runs it as a smoke test). Results
/// land on stdout and in BENCH_balance_mark.json.

#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "core/batch_ops.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "forest/forest.hpp"
#include "simd/feature_detect.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

struct MarkTimes {
  double balance_s = 0;    ///< full balance of the unbalanced mesh
  double mark_only_s = 0;  ///< one no-op mark sweep of the balanced mesh
  gidx_t leaves = 0;       ///< after balance
};

template <class R>
Forest<R> make_unbalanced(int base_level, int max_depth) {
  auto f = Forest<R>::new_uniform(Connectivity::brick3d(2, 2, 1), base_level);
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    return R::level(q) < max_depth && near_sphere<R>(q);
  });
  return f;
}

template <class R>
MarkTimes run_path(const Forest<R>& base, int sweeps,
                   Forest<R>* mesh_out = nullptr) {
  MarkTimes best;
  for (int s = 0; s < sweeps; ++s) {
    Forest<R> f = base;
    WallTimer t;
    f.balance(BalanceKind::kFull);
    const double balance_s = t.elapsed_s();

    t.reset();
    f.balance(BalanceKind::kFull);  // already balanced: pure mark sweep
    const double mark_only_s = t.elapsed_s();

    if (s == 0 || balance_s < best.balance_s) {
      best.balance_s = balance_s;
    }
    if (s == 0 || mark_only_s < best.mark_only_s) {
      best.mark_only_s = mark_only_s;
    }
    best.leaves = f.num_quadrants();
    if (mesh_out != nullptr && s == sweeps - 1) {
      *mesh_out = std::move(f);
    }
  }
  return best;
}

/// Leaf-for-leaf mesh equality between the two dispatch paths.
template <class R>
bool same_mesh(const Forest<R>& a, const Forest<R>& b) {
  if (a.num_quadrants() != b.num_quadrants()) {
    return false;
  }
  for (tree_id_t t = 0; t < a.num_trees(); ++t) {
    const auto& ta = a.tree_quadrants(t);
    const auto& tb = b.tree_quadrants(t);
    if (ta.size() != tb.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (!R::equal(ta[i], tb[i])) {
        return false;
      }
    }
  }
  return true;
}

double pct(double scalar_s, double batched_s) {
  return batched_s > 0 ? (scalar_s / batched_s - 1.0) * 100.0 : 0.0;
}

template <class R>
void bench_rep(Table& table, BenchJson& json, int base_level, int max_depth,
               int sweeps) {
  const Forest<R> base = make_unbalanced<R>(base_level, max_depth);

  Forest<R> scalar_mesh = base;
  batch::set_enabled(false);
  const MarkTimes scalar = run_path(base, sweeps, &scalar_mesh);
  Forest<R> batched_mesh = base;
  batch::set_enabled(true);
  const MarkTimes batched = run_path(base, sweeps, &batched_mesh);

  if (!same_mesh(scalar_mesh, batched_mesh)) {
    std::fprintf(stderr,
                 "FAIL: %s balanced mesh diverges between the scalar and "
                 "the batched mark phase (%lld vs %lld leaves)\n",
                 R::name, static_cast<long long>(scalar.leaves),
                 static_cast<long long>(batched.leaves));
    std::exit(1);
  }

  table.add_row({R::name, Table::fmt(scalar.balance_s, 4),
                 Table::fmt(batched.balance_s, 4),
                 Table::fmt(pct(scalar.balance_s, batched.balance_s), 1),
                 Table::fmt(scalar.mark_only_s, 4),
                 Table::fmt(batched.mark_only_s, 4),
                 Table::fmt(pct(scalar.mark_only_s, batched.mark_only_s), 1),
                 Table::fmt(static_cast<long long>(batched.leaves))});

  const char* phases[] = {"balance", "mark_only"};
  const double scalar_s[] = {scalar.balance_s, scalar.mark_only_s};
  const double batched_s[] = {batched.balance_s, batched.mark_only_s};
  for (int p = 0; p < 2; ++p) {
    json.begin_record();
    json.field("bench", "balance_mark");
    json.field("rep", R::name);
    json.field("phase", phases[p]);
    json.field("scalar_seconds", scalar_s[p]);
    json.field("batched_seconds", batched_s[p]);
    json.field("boost_percent", pct(scalar_s[p], batched_s[p]));
    json.field("leaves", static_cast<long long>(batched.leaves));
    json.field("simd_active", BatchOps<R>::simd_active());
  }
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  int base_level = 3, max_depth = 7, sweeps = 3;
  if (const char* env = std::getenv("QFOREST_BM_DEPTH")) {
    max_depth = std::atoi(env);
  }
  if (const char* env = std::getenv("QFOREST_BM_SWEEPS")) {
    sweeps = std::atoi(env);
  }

  std::printf("== balance mark phase: batched (bulk neighbor keys + sorted "
              "merge) vs scalar per-quadrant lookups, 2x2x1 brick, uniform "
              "L%d -> sphere band to L%d, best of %d ==\n",
              base_level, max_depth, sweeps);
  std::printf("cpu features: %s; avx batch kernels %s\n",
              simd::feature_string().c_str(),
              BatchOps<AvxRep<3>>::has_simd_kernels && simd::avx2_usable()
                  ? "active for avx rep"
                  : "unavailable (scalar kernels everywhere)");

  Table table({"representation", "balance scalar [s]", "balance batch [s]",
               "boost %", "mark scalar [s]", "mark batch [s]", "boost %",
               "leaves"});
  BenchJson json;
  bench_rep<StandardRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<MortonRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<AvxRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<WideMortonRep<3>>(table, json, base_level, max_depth, sweeps);
  table.print();
  std::printf("\n(both mark phases must produce the identical balanced "
              "mesh; mark-only rows time one complete no-op mark sweep.)\n");

  json.write("BENCH_balance_mark.json");
  return 0;
}

/// \file bench_batch256.cpp
/// \brief Ablation for the paper's future-work item "use of a wider
/// register capacity (256-bit AVX2)": batched two-quadrants-per-register
/// Child / Parent / FNeigh versus the per-quadrant 128-bit kernels.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/batch_avx.hpp"
#include "core/quadrant_avx.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

using A = AvxRep<3>;
using Batch = AvxBatch<3>;

struct Setup {
  std::vector<A::quad_t> in;
  std::vector<A::quad_t> out;
  int level = 6;
};

Setup make_setup(std::size_t n, int level) {
  Setup s;
  s.level = level;
  Xoshiro256 rng(515);
  s.in.reserve(n);
  s.out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.in.push_back(A::morton_quadrant(
        rng.next_below(morton_t{1} << (3 * level)), level));
  }
  return s;
}

template <class Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest;
  using namespace qforest::bench;

  std::size_t n = kPaperQuadrantCount;
  if (const char* env = std::getenv("QFOREST_BENCH_N")) {
    n = std::strtoull(env, nullptr, 10);
  }
  auto s = make_setup(n, 6);
  const int reps = 5;

  std::printf("== 256-bit batch ablation (future work): %zu uniform "
              "level-%d octants, vectorized build: %s ==\n\n",
              n, s.level, Batch::vectorized() ? "yes" : "no (fallback)");

  Table t({"kernel", "per-quad 128-bit [s]", "batch 256-bit [s]",
           "batch boost %"});

  const double c128 = best_of(reps, [&] {
    for (std::size_t i = 0; i < s.in.size(); ++i) {
      s.out[i] = A::child(s.in[i], 5);
    }
    do_not_optimize(s.out.front());
  });
  const double c256 = best_of(reps, [&] {
    Batch::child_uniform(s.in.data(), s.out.data(), s.in.size(), 5, s.level);
    do_not_optimize(s.out.front());
  });
  t.add_row({"child", Table::fmt(c128, 6), Table::fmt(c256, 6),
             Table::fmt(speedup_percent(c128, c256), 1)});

  const double p128 = best_of(reps, [&] {
    for (std::size_t i = 0; i < s.in.size(); ++i) {
      s.out[i] = A::parent(s.in[i]);
    }
    do_not_optimize(s.out.front());
  });
  const double p256 = best_of(reps, [&] {
    Batch::parent_uniform(s.in.data(), s.out.data(), s.in.size(), s.level);
    do_not_optimize(s.out.front());
  });
  t.add_row({"parent", Table::fmt(p128, 6), Table::fmt(p256, 6),
             Table::fmt(speedup_percent(p128, p256), 1)});

  const double f128 = best_of(reps, [&] {
    for (std::size_t i = 0; i < s.in.size(); ++i) {
      s.out[i] = A::face_neighbor(s.in[i], 1);
    }
    do_not_optimize(s.out.front());
  });
  const double f256 = best_of(reps, [&] {
    Batch::face_neighbor_uniform(s.in.data(), s.out.data(), s.in.size(), 1,
                                 s.level);
    do_not_optimize(s.out.front());
  });
  t.add_row({"face_neighbor", Table::fmt(f128, 6), Table::fmt(f256, 6),
             Table::fmt(speedup_percent(f128, f256), 1)});

  t.print();
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("batch256/child_128", [&](benchmark::State& st) {
    for (auto _ : st) {
      for (std::size_t i = 0; i < s.in.size(); ++i) {
        s.out[i] = A::child(s.in[i], 5);
      }
      benchmark::DoNotOptimize(s.out.data());
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.in.size()));
  });
  benchmark::RegisterBenchmark("batch256/child_256", [&](benchmark::State& st) {
    for (auto _ : st) {
      Batch::child_uniform(s.in.data(), s.out.data(), s.in.size(), 5,
                           s.level);
      benchmark::DoNotOptimize(s.out.data());
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.in.size()));
  });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

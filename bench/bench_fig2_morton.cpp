/// \file bench_fig2_morton.cpp
/// \brief Figure 2: strong scaling of Morton (index -> quadrant
/// construction; paper Algorithms 1, 4 and 11) in the three quadrant
/// representations. The paper reports a 77% average boost for the raw
/// Morton index (the transformation is nearly the identity) and 17% for
/// AVX2 versus the standard bit loop.

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  std::uint32_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto& it = w.items[i];
    const auto q = S::morton_quadrant(it.level_index, it.level);
    sink ^= static_cast<std::uint32_t>(q.x) ^
            static_cast<std::uint32_t>(q.y) ^
            static_cast<std::uint32_t>(q.z) ^
            static_cast<std::uint32_t>(q.level);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  std::uint64_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto& it = w.items[i];
    sink ^= M::morton_quadrant(it.level_index, it.level);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  simd::Vec128 sink;
  for (std::size_t i = b; i < e; ++i) {
    const auto& it = w.items[i];
    sink = sink ^ A::morton_quadrant(it.level_index, it.level);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 2", "Morton (index -> quadrant)",
             "morton-id +77% avg, avx +17% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig2_morton", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

/// \file bench_interleave.cpp
/// \brief Ablation: the three bit-interleaving backends (BMI2 pdep/pext,
/// magic-number cascades, byte LUT) and their effect on the Figure 2
/// Morton construction. This quantifies how much of the paper's standard
/// baseline cost is the published bit loop of Algorithm 1 rather than an
/// intrinsic limit of the representation: with hardware bit-deposit the
/// standard construction closes most of the gap to the raw Morton index.

#include <cstdio>

#include "core/bits.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "simd/feature_detect.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

std::vector<std::uint64_t> make_values(std::size_t n) {
  Xoshiro256 rng(9001);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) {
    x = rng.next_u64() & bits::low_mask(21);
  }
  return v;
}

template <class Fn>
double time_spread(const std::vector<std::uint64_t>& v, int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    std::uint64_t sink = 0;
    for (const std::uint64_t x : v) {
      sink ^= fn(x);
    }
    do_not_optimize(sink);
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest;
  using namespace qforest::bench;

  std::size_t n = kPaperQuadrantCount;
  if (const char* env = std::getenv("QFOREST_BENCH_N")) {
    n = std::strtoull(env, nullptr, 10);
  }
  const auto values = make_values(n);
  const int reps = 5;

  std::printf("== Interleave backend ablation (%zu values) ==\n", n);
  std::printf("bmi2 usable: %s\n\n", simd::bmi2_usable() ? "yes" : "no");

  Table t({"backend", "spread3 [s]", "vs magic %"});
  const double t_magic =
      time_spread(values, reps, [](std::uint64_t x) {
        return bits::spread3_magic(x);
      });
  const double t_lut = time_spread(values, reps, [](std::uint64_t x) {
    return bits::spread3_lut(x);
  });
  const double t_hw = time_spread(values, reps, [](std::uint64_t x) {
    return bits::spread3(x);  // pdep when compiled in
  });
  t.add_row({"magic cascades", Table::fmt(t_magic, 6), Table::fmt(0.0, 1)});
  t.add_row({"byte LUT", Table::fmt(t_lut, 6),
             Table::fmt(speedup_percent(t_magic, t_lut), 1)});
  t.add_row({QFOREST_HAVE_BMI2 ? "bmi2 pdep" : "dispatch (no bmi2)",
             Table::fmt(t_hw, 6),
             Table::fmt(speedup_percent(t_magic, t_hw), 1)});
  t.print();

  // Effect on Figure 2's standard baseline.
  const auto items = make_work_items(n, kPaperMaxLevel, 3);
  using S = StandardRep<3>;
  using M = MortonRep<3>;
  auto time_ctor = [&](auto&& ctor) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer t2;
      std::uint32_t sink = 0;
      for (const auto& it : items) {
        const auto q = ctor(it.level_index, it.level);
        sink ^= static_cast<std::uint32_t>(q.x) ^
                static_cast<std::uint32_t>(q.y) ^
                static_cast<std::uint32_t>(q.z);
      }
      do_not_optimize(sink);
      best = std::min(best, t2.elapsed_s());
    }
    return best;
  };
  const double t_alg1 = time_ctor([](morton_t il, int l) {
    return S::morton_quadrant(il, l);
  });
  const double t_pdep = time_ctor([](morton_t il, int l) {
    return S::morton_quadrant_pdep(il, l);
  });
  double t_raw;
  {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer t2;
      std::uint64_t sink = 0;
      for (const auto& it : items) {
        sink ^= M::morton_quadrant(it.level_index, it.level);
      }
      do_not_optimize(sink);
      best = std::min(best, t2.elapsed_s());
    }
    t_raw = best;
  }

  std::printf("\nFigure-2 standard baseline with hardware deposit:\n");
  Table t2({"constructor", "time [s]", "vs Alg.1 loop %"});
  t2.add_row({"standard Alg.1 loop (paper)", Table::fmt(t_alg1, 6),
              Table::fmt(0.0, 1)});
  t2.add_row({"standard pdep variant", Table::fmt(t_pdep, 6),
              Table::fmt(speedup_percent(t_alg1, t_pdep), 1)});
  t2.add_row({"raw morton (Alg.4)", Table::fmt(t_raw, 6),
              Table::fmt(speedup_percent(t_alg1, t_raw), 1)});
  t2.print();
  std::printf("\n");

  // This binary's measurements are all custom tables; no google-benchmark
  // registrations, so skip the (empty) micro section.
  (void)argc;
  (void)argv;
  return 0;
}

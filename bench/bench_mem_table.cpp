/// \file bench_mem_table.cpp
/// \brief Paper §3.2 memory-consumption experiment: build a uniform 3D
/// octree by repeated calls to the Morton algorithm and account every
/// byte of quadrant storage. The paper measures 25.8 / 17.2 / 8.6 GB for
/// standard / AVX / raw-Morton at level 10 with VTune; the scale-invariant
/// claim is the byte-per-quadrant ratio 3 : 2 : 1, which we verify exactly
/// with a counting allocator at a container-friendly level (default 7,
/// override with QFOREST_MEM_LEVEL).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "util/memory_tracker.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace qforest::bench {
namespace {

struct MemResult {
  const char* name;
  std::size_t quads;
  std::size_t bytes;
  double per_quad;
  double build_seconds;
};

template <class R>
MemResult build_uniform_tracked(int level) {
  MemoryTracker::reset();
  const auto n = std::uint64_t{1} << (3 * level);
  WallTimer timer;
  std::size_t peak;
  {
    std::vector<typename R::quad_t, TrackingAllocator<typename R::quad_t>> q;
    q.reserve(n);  // exact-size allocation, as p4est's sc_array does
    for (std::uint64_t i = 0; i < n; ++i) {
      q.push_back(R::morton_quadrant(i, level));
    }
    peak = MemoryTracker::peak_bytes();
  }
  return {R::name, static_cast<std::size_t>(n), peak,
          static_cast<double>(peak) / static_cast<double>(n),
          timer.elapsed_s()};
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  int level = 7;
  if (const char* env = std::getenv("QFOREST_MEM_LEVEL")) {
    level = std::atoi(env);
  }
  std::printf("== Memory table (paper §3.2): uniform 3D octree of level %d "
              "built by repeated Morton calls ==\n",
              level);
  std::printf("paper reference (level 10, VTune): standard 25.8 GB, "
              "avx 17.2 GB, morton 8.6 GB -> ratio 3:2:1\n\n");

  const MemResult rs = build_uniform_tracked<StandardRep<3>>(level);
  const MemResult ra = build_uniform_tracked<AvxRep<3>>(level);
  const MemResult rm = build_uniform_tracked<MortonRep<3>>(level);
  const MemResult rw = build_uniform_tracked<WideMortonRep<3>>(level);

  Table t({"representation", "quadrants", "bytes", "bytes/quad",
           "ratio vs morton", "build [s]"});
  for (const MemResult& r : {rs, ra, rm, rw}) {
    t.add_row({r.name, Table::fmt(static_cast<long long>(r.quads)),
               Table::fmt_bytes(r.bytes), Table::fmt(r.per_quad, 2),
               Table::fmt(static_cast<double>(r.bytes) /
                              static_cast<double>(rm.bytes),
                          3),
               Table::fmt(r.build_seconds, 3)});
  }
  t.print();

  const double r_std = static_cast<double>(rs.bytes) /
                       static_cast<double>(rm.bytes);
  const double r_avx = static_cast<double>(ra.bytes) /
                       static_cast<double>(rm.bytes);
  std::printf("\nmeasured ratio standard : avx : morton = %.2f : %.2f : 1"
              " (paper: 3 : 2 : 1)\n",
              r_std, r_avx);
  const bool ok = r_std > 2.9 && r_std < 3.1 && r_avx > 1.9 && r_avx < 2.1;
  std::printf("ratio check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

#pragma once
/// \file workload.hpp
/// \brief The paper's synthetic benchmark workload (§3.1): an array of
/// 2,396,745 3D quadrants of mixed refinement levels limited by a maximum
/// of 7, plus pre-drawn random operation arguments. The kernel under test
/// is called in a loop over the quadrants and its output is folded into a
/// local sink variable "to prevent subsequent memory access".

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/random.hpp"

namespace qforest::bench {

/// Paper §3.1 workload size.
inline constexpr std::size_t kPaperQuadrantCount = 2396745;
/// Paper §3.1 maximum refinement level of the workload.
inline constexpr int kPaperMaxLevel = 7;

/// Compiler barrier: force the value to be materialized (same contract as
/// benchmark::DoNotOptimize, local so the figure harness needs no
/// google-benchmark dependency).
template <class T>
inline void do_not_optimize(T& value) {
#if defined(__GNUC__)
  asm volatile("" : "+m"(value) : : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

/// Representation-independent description of one workload element.
struct WorkItem {
  morton_t level_index;   ///< index relative to the item's level
  std::uint8_t level;     ///< in [0, kPaperMaxLevel]
  std::uint8_t child;     ///< random child/sibling id in [0, 2^d)
  std::uint8_t face;      ///< random face id in [0, 2d)
  std::uint8_t interior_face;  ///< face whose neighbor stays in the tree
};

/// Draw the paper workload: levels uniform in [0, max_level], positions
/// uniform per level, fixed seed for reproducibility.
std::vector<WorkItem> make_work_items(std::size_t n, int max_level, int dim,
                                      std::uint64_t seed = 20240229);

/// Materialize the workload as quadrants of representation \p R.
template <class R>
struct Workload {
  std::vector<typename R::quad_t> quads;
  std::vector<WorkItem> items;  ///< parallel to quads

  static Workload build(const std::vector<WorkItem>& items) {
    Workload w;
    w.items = items;
    w.quads.reserve(items.size());
    for (const WorkItem& it : items) {
      w.quads.push_back(R::morton_quadrant(it.level_index, it.level));
    }
    return w;
  }
};

}  // namespace qforest::bench

#pragma once
/// \file workload.hpp
/// \brief The paper's synthetic benchmark workload (§3.1): an array of
/// 2,396,745 3D quadrants of mixed refinement levels limited by a maximum
/// of 7, plus pre-drawn random operation arguments. The kernel under test
/// is called in a loop over the quadrants and its output is folded into a
/// local sink variable "to prevent subsequent memory access".

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/batch_ops.hpp"
#include "core/canonical.hpp"
#include "core/types.hpp"
#include "util/random.hpp"

namespace qforest::bench {

/// Paper §3.1 workload size.
inline constexpr std::size_t kPaperQuadrantCount = 2396745;
/// Paper §3.1 maximum refinement level of the workload.
inline constexpr int kPaperMaxLevel = 7;

/// Compiler barrier: force the value to be materialized (same contract as
/// benchmark::DoNotOptimize, local so the figure harness needs no
/// google-benchmark dependency).
template <class T>
inline void do_not_optimize(T& value) {
#if defined(__GNUC__)
  asm volatile("" : "+m"(value) : : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

/// Representation-independent description of one workload element.
struct WorkItem {
  morton_t level_index;   ///< index relative to the item's level
  std::uint8_t level;     ///< in [0, kPaperMaxLevel]
  std::uint8_t child;     ///< random child/sibling id in [0, 2^d)
  std::uint8_t face;      ///< random face id in [0, 2d)
  std::uint8_t interior_face;  ///< face whose neighbor stays in the tree
};

/// Draw the paper workload: levels uniform in [0, max_level], positions
/// uniform per level, fixed seed for reproducibility.
std::vector<WorkItem> make_work_items(std::size_t n, int max_level, int dim,
                                      std::uint64_t seed = 20240229);

/// Materialize the workload as quadrants of representation \p R.
template <class R>
struct Workload {
  std::vector<typename R::quad_t> quads;
  std::vector<WorkItem> items;  ///< parallel to quads

  /// Built through the bulk de-interleave kernel: items are grouped per
  /// level (morton_quadrant_n takes level-uniform runs), converted in
  /// bulk, and scattered back to their original slots.
  static Workload build(const std::vector<WorkItem>& items) {
    Workload w;
    w.items = items;
    w.quads.resize(items.size());
    int max_level = 0;
    for (const WorkItem& it : items) {
      max_level = std::max<int>(max_level, it.level);
    }
    std::vector<morton_t> il;
    std::vector<std::size_t> slots;
    std::vector<typename R::quad_t> quads;
    for (int lvl = 0; lvl <= max_level; ++lvl) {
      il.clear();
      slots.clear();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].level == lvl) {
          il.push_back(items[i].level_index);
          slots.push_back(i);
        }
      }
      if (il.empty()) {
        continue;
      }
      quads.resize(il.size());
      BatchOps<R>::morton_quadrant_n(il.data(), quads.data(), il.size(), lvl);
      for (std::size_t k = 0; k < slots.size(); ++k) {
        w.quads[slots[k]] = quads[k];
      }
    }
    return w;
  }
};

/// Shared refinement criterion of the forest benches: a distance band
/// around a sphere through the domain (a proxy for a shock front /
/// interface an application tracks). Canonical coordinates are exact for
/// every representation (the wide-morton grid exceeds 32-bit coordinates).
/// Keep this the single definition — the e2e and batch ablations must
/// measure the same mesh for their BENCH_*.json files to be comparable.
template <class R>
bool near_sphere(const typename R::quad_t& q) {
  const CanonicalQuadrant c = to_canonical<R>(q);
  const double scale = std::ldexp(1.0, kCanonicalLevel);
  const double h = std::ldexp(1.0, kCanonicalLevel - c.level) / scale;
  const double cx = static_cast<double>(c.x) / scale + h / 2;
  const double cy = static_cast<double>(c.y) / scale + h / 2;
  const double cz = static_cast<double>(c.z) / scale + h / 2;
  const double dx = cx - 0.5, dy = cy - 0.5, dz = cz - 0.5;
  const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
  return std::abs(r - 0.35) < h;
}

}  // namespace qforest::bench

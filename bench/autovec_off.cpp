/// \file autovec_off.cpp
/// \brief Child loop compiled with -fno-tree-vectorize: the pure scalar
/// baseline of the vectorization ablation.

#include "autovec_kernels.hpp"

namespace qforest::bench {

struct AutoVecOffTag {};

std::uint32_t child_loop_novec(const SoAQuads& q, const std::uint8_t* c,
                               std::size_t n) {
  return child_loop_impl<AutoVecOffTag>(q, c, n);
}

}  // namespace qforest::bench

/// \file bench_strong_scaling.cpp
/// \brief Strong scaling of the sharded asynchronous ghost exchange: a
/// mixed adapt + ghost-exchange workload at 8/16/32/64 simulated ranks,
/// each rank a worker thread with an MPSC mailbox (message_queue.hpp).
///
/// Workload per rank count p: the shared sphere-band mesh (2x2x1 brick,
/// balanced, payload channel on) is re-sharded with set_num_ranks(p) and
/// lightly adapted (one refine+coarsen+balance churn — the adapt share of
/// the mix, timed separately); then the timed exchange rounds run
/// exchange_ghost_payloads with the rank_work_split compute hooks: the
/// interior pass (leaves touching no remote leaf) overlaps with the
/// in-flight exchange, the boundary pass consumes the drained ghost
/// buffer. A configurable simulated interconnect latency per message
/// (QFOREST_SS_LATENCY_US, default 100) models the network the overlap is
/// supposed to hide — in-process delivery is otherwise instantaneous.
///
/// Reported per p: wall time with overlap, wall time under the
/// QFOREST_NO_OVERLAP order (post, wait, then compute), speedup and
/// scaling efficiency against the single-rank serial reference, the
/// overlap-vs-no-overlap boost and per-rank worker times. Every round's
/// exchanged payloads are compared against the shared-memory
/// Forest::ghost_exchange reference; the binary exits nonzero on any
/// mismatch. With QFOREST_SS_ENFORCE=1 (default) on a host with >= 4
/// cores and a mesh >= 1M leaves, the run fails unless efficiency at 16
/// ranks reaches 60% and some rank count shows an overlap boost.
/// Results land on stdout and in BENCH_strong_scaling.json.
///
/// Env knobs: QFOREST_SS_DEPTH (refine depth, default 8 -> ~2.2M leaves),
/// QFOREST_SS_SWEEPS (best-of repetitions, default 3), QFOREST_SS_ROUNDS
/// (exchange rounds per sweep, default 2), QFOREST_SS_WORK (compute
/// iterations per leaf, default 32), QFOREST_SS_LATENCY_US,
/// QFOREST_SS_MAX_RANKS (default 64), QFOREST_SS_ENFORCE.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/quadrant_morton.hpp"
#include "forest/forest.hpp"
#include "forest/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/strong_scaling.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

using R3 = MortonRep<3>;

constexpr double kEnforceMinEfficiency = 0.60;  // at 16 ranks
constexpr gidx_t kEnforceMinLeaves = 1000000;
constexpr unsigned kEnforceMinCores = 4;

struct Knobs {
  int base_level = 3;
  int max_depth = 8;
  int sweeps = 3;
  int rounds = 2;
  int work_iters = 32;
  int latency_us = 100;
  int max_ranks = 64;
  bool enforce = true;
};

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : fallback;
}

Forest<R3> make_mesh(const Knobs& k) {
  auto f = Forest<R3>::new_uniform(Connectivity::brick3d(2, 2, 1),
                                   k.base_level, 1);
  f.refine(true, [&](tree_id_t, const R3::quad_t& q) {
    return R3::level(q) < k.max_depth && near_sphere<R3>(q);
  });
  f.balance(BalanceKind::kFull);
  f.partition();
  f.enable_payload();
  for (tree_id_t t = 0; t < f.num_trees(); ++t) {
    for (std::size_t i = 0; i < f.tree_quadrants(t).size(); ++i) {
      f.payload(t, i) = 0x9E3779B97F4A7C15ull *
                        static_cast<std::uint64_t>(f.global_index(t, i) + 1);
    }
  }
  return f;
}

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

/// The per-leaf compute kernel of both passes: \p iters rounds of mixing
/// seeded by the leaf's payload.
inline std::uint64_t leaf_work(std::uint64_t payload, int iters) {
  std::uint64_t x = payload;
  for (int k = 0; k < iters; ++k) {
    x = mix(x + static_cast<std::uint64_t>(k));
  }
  return x;
}

/// One adapt churn: refine a deterministic scatter one level, coarsen it
/// back, rebalance — the "adapt" share of the mixed workload.
double adapt_churn(Forest<R3>& f, int max_depth) {
  WallTimer t;
  f.refine(false, [&](tree_id_t tr, const R3::quad_t& q) {
    return R3::level(q) < max_depth + 1 &&
           (R3::level_index(q) + static_cast<morton_t>(tr)) % 97 == 0;
  });
  f.coarsen(false, [&](tree_id_t, const R3::quad_t* fam) {
    return R3::level(fam[0]) > max_depth;
  });
  f.balance(BalanceKind::kFull);
  f.partition();
  return t.elapsed_s();
}

/// Everything precomputed per rank count, outside the timed region.
struct ShardSetup {
  std::vector<GhostLayer<R3>> ghosts;
  std::vector<RankWorkSplit> splits;
  std::vector<std::vector<std::uint64_t>> reference;
  std::vector<std::uint64_t> sinks;  ///< one compute sink per rank
};

ShardSetup prepare_shards(const Forest<R3>& f) {
  ShardSetup s;
  const int p = f.num_ranks();
  s.ghosts.reserve(static_cast<std::size_t>(p));
  s.splits.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    s.ghosts.push_back(f.ghost_layer(r));
    s.splits.push_back(f.rank_work_split(r));
    s.reference.push_back(f.ghost_exchange(r, s.ghosts.back()));
  }
  s.sinks.assign(static_cast<std::size_t>(p), 0);
  return s;
}

/// One timed exchange+compute round over every rank; returns the wall
/// time and fills per-rank worker times. Exits on payload mismatch.
double timed_round(const Forest<R3>& f, ShardSetup& s, bool overlap,
                   const Knobs& k, std::vector<double>* rank_seconds) {
  GhostExchangeOptions opt;
  opt.overlap = overlap;
  opt.delivery_delay = std::chrono::microseconds(k.latency_us);
  // Walk a global-index run with a (tree, index) cursor instead of a
  // per-leaf locate.
  const auto run_work = [&](gidx_t a, gidx_t b, int iters) {
    auto [t, i] = f.locate(a);
    std::uint64_t acc = 0;
    const std::vector<std::uint64_t>* pay = &f.tree_payloads(t);
    std::size_t sz = pay->size();
    for (gidx_t g = a; g < b; ++g) {
      while (i >= sz) {
        ++t;
        i = 0;
        pay = &f.tree_payloads(t);
        sz = pay->size();
      }
      acc += leaf_work((*pay)[i], iters);
      ++i;
    }
    return acc;
  };
  WallTimer wall;
  const GhostExchangeResult res = exchange_ghost_payloads(
      f, s.ghosts, opt,
      [&](int rank) {
        // Interior pass: ghost-independent, overlaps the exchange.
        std::uint64_t acc = 0;
        for (const auto& [a, b] :
             s.splits[static_cast<std::size_t>(rank)].interior) {
          acc += run_work(a, b, k.work_iters);
        }
        s.sinks[static_cast<std::size_t>(rank)] += acc;
      },
      [&](int rank, const std::vector<std::uint64_t>& ghost_payloads) {
        // Boundary pass: folds the drained ghost buffer into the
        // rank's mirror leaves.
        std::uint64_t acc = 0;
        for (const gidx_t g :
             s.splits[static_cast<std::size_t>(rank)].boundary) {
          acc += run_work(g, g + 1, k.work_iters);
        }
        for (const std::uint64_t v : ghost_payloads) {
          acc += leaf_work(v, k.work_iters);
        }
        s.sinks[static_cast<std::size_t>(rank)] += acc;
      });
  const double seconds = wall.elapsed_s();
  if (res.payloads != s.reference) {
    std::fprintf(stderr,
                 "FAIL: sharded exchange diverges from the single-rank "
                 "reference at %d ranks (overlap=%d)\n",
                 f.num_ranks(), overlap ? 1 : 0);
    std::exit(1);
  }
  if (rank_seconds != nullptr) {
    *rank_seconds = res.rank_seconds;
  }
  do_not_optimize(s.sinks[0]);
  return seconds;
}

/// Best-of-sweeps timing of \p rounds exchange rounds.
double timed_series(const Forest<R3>& f, ShardSetup& s, bool overlap,
                    const Knobs& k, std::vector<double>* rank_seconds) {
  double best = 0;
  for (int sweep = 0; sweep < k.sweeps; ++sweep) {
    double total = 0;
    for (int round = 0; round < k.rounds; ++round) {
      total += timed_round(f, s, overlap, k,
                           round == 0 ? rank_seconds : nullptr);
    }
    if (sweep == 0 || total < best) {
      best = total;
    }
  }
  return best;
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  Knobs k;
  k.max_depth = env_int("QFOREST_SS_DEPTH", k.max_depth);
  k.sweeps = env_int("QFOREST_SS_SWEEPS", k.sweeps);
  k.rounds = env_int("QFOREST_SS_ROUNDS", k.rounds);
  k.work_iters = env_int("QFOREST_SS_WORK", k.work_iters);
  k.latency_us = env_int("QFOREST_SS_LATENCY_US", k.latency_us);
  k.max_ranks = env_int("QFOREST_SS_MAX_RANKS", k.max_ranks);
  k.enforce = env_int("QFOREST_SS_ENFORCE", 1) != 0;

  const unsigned cores = std::thread::hardware_concurrency();
  Forest<R3> mesh = make_mesh(k);
  const gidx_t leaves = mesh.num_quadrants();
  std::printf("== strong scaling: sharded async ghost exchange + overlap, "
              "2x2x1 brick sphere band L%d, %lld leaves, %u hw cores, "
              "%dus simulated latency, best of %d x %d rounds ==\n",
              k.max_depth, static_cast<long long>(leaves), cores,
              k.latency_us, k.sweeps, k.rounds);

  BenchJson json;

  // Serial reference: the same churn + compute at 1 rank — no peers, no
  // messages, the whole range is interior. Every rank count below runs
  // on its own copy of the pristine mesh, so the deterministic churn
  // produces the identical mesh everywhere and the timings compare
  // like with like.
  double serial_s = 0;
  {
    Forest<R3> f = mesh;
    f.set_num_ranks(1);
    (void)adapt_churn(f, k.max_depth);
    ShardSetup serial_setup = prepare_shards(f);
    serial_s = timed_series(f, serial_setup, true, k, nullptr);
  }
  std::printf("serial reference (1 rank): %.4fs\n", serial_s);

  Table table({"ranks", "overlap [s]", "no-overlap [s]", "speedup",
               "efficiency %", "overlap boost %", "adapt [s]",
               "rank max/min [s]"});
  bool any_overlap_boost = false;
  double efficiency_at_16 = -1.0;

  for (const int p : par::shard_rank_counts(k.max_ranks)) {
    Forest<R3> f = mesh;
    f.set_num_ranks(p);
    const double adapt_s = adapt_churn(f, k.max_depth);
    ShardSetup setup = prepare_shards(f);
    std::vector<double> rank_seconds;
    const double overlap_s = timed_series(f, setup, true, k, &rank_seconds);
    const double no_overlap_s = timed_series(f, setup, false, k, nullptr);
    const double speedup = overlap_s > 0 ? serial_s / overlap_s : 0.0;
    const double efficiency =
        par::scaling_efficiency(serial_s, overlap_s, p, cores);
    const double boost =
        overlap_s > 0 ? (no_overlap_s / overlap_s - 1.0) * 100.0 : 0.0;
    if (p == 16) {
      efficiency_at_16 = efficiency;
    }
    if (boost > 0) {
      any_overlap_boost = true;
    }
    double rmin = rank_seconds.empty() ? 0 : rank_seconds[0];
    double rmax = rmin;
    for (const double s : rank_seconds) {
      rmin = s < rmin ? s : rmin;
      rmax = s > rmax ? s : rmax;
    }
    table.add_row({Table::fmt(static_cast<long long>(p)),
                   Table::fmt(overlap_s, 4), Table::fmt(no_overlap_s, 4),
                   Table::fmt(speedup, 2), Table::fmt(efficiency * 100, 1),
                   Table::fmt(boost, 1), Table::fmt(adapt_s, 4),
                   Table::fmt(rmax, 4) + "/" + Table::fmt(rmin, 4)});

    json.begin_record();
    json.field("bench", "strong_scaling");
    json.field("rep", R3::name);
    json.field("phase", std::string("exchange_p") + std::to_string(p));
    json.field("ranks", static_cast<long long>(p));
    json.field("serial_seconds", serial_s);
    json.field("overlap_seconds", overlap_s);
    json.field("no_overlap_seconds", no_overlap_s);
    json.field("adapt_seconds", adapt_s);
    json.field("boost_percent", (speedup - 1.0) * 100.0);
    json.field("efficiency_percent", efficiency * 100.0);
    json.field("overlap_boost_percent", boost);
    json.field("leaves", static_cast<long long>(leaves));
    json.field("hw_cores", static_cast<long long>(cores));
    json.field("latency_us", static_cast<long long>(k.latency_us));
    // The regression gate only scores this record on hosts where the
    // measurement is meaningful (>= 2 cores: threads actually overlap).
    json.field("gate", cores >= 2);
    for (std::size_t r = 0; r < rank_seconds.size(); ++r) {
      json.begin_record();
      json.field("bench", "strong_scaling");
      json.field("rep", R3::name);
      json.field("phase",
                 std::string("rank_time_p") + std::to_string(p) + "_r" +
                     std::to_string(r));
      json.field("ranks", static_cast<long long>(p));
      json.field("rank", static_cast<long long>(r));
      json.field("seconds", rank_seconds[r]);
    }
  }

  table.print();
  std::printf("\n(every round's exchanged payloads are verified against "
              "the shared-memory single-rank reference.)\n");

  // Metrics snapshot: one untimed exchange round (both overlap orders) at
  // a modest rank count with the obs registry enabled — the message/round
  // counters land in the JSON artifact next to the timings. The timed
  // series above ran with metrics off, so the gated records are
  // unaffected.
  {
    const int p = std::min(8, k.max_ranks);
    Forest<R3> f = mesh;
    f.set_num_ranks(p);
    ShardSetup setup = prepare_shards(f);
    obs::reset_metrics();
    obs::set_metrics(true);
    (void)timed_round(f, setup, true, k, nullptr);
    (void)timed_round(f, setup, false, k, nullptr);
    obs::set_metrics(false);
    json.begin_record();
    json.field("bench", "strong_scaling");
    json.field("rep", R3::name);
    json.field("phase", "metrics_snapshot");
    json.field("ranks", static_cast<long long>(p));
    json.field_raw("metrics", obs::metrics_json());
    std::printf("\n== obs metrics (one enabled exchange round per overlap "
                "order, %d ranks) ==\n%s",
                p, obs::metrics_summary().c_str());
  }

  json.write("BENCH_strong_scaling.json");
  // Under QFOREST_TRACE=1 every span from the run above (including the
  // metrics-snapshot rounds) lands in the Perfetto-loadable trace; the
  // overlap ablation is visible as ghost.interior spans inside (overlap)
  // or after (no-overlap) the ghost.inflight spans.
  obs::write_trace_if_enabled("TRACE_strong_scaling.json");

  const bool enforceable = k.enforce && cores >= kEnforceMinCores &&
                           leaves >= kEnforceMinLeaves;
  if (enforceable) {
    if (efficiency_at_16 >= 0.0 && efficiency_at_16 < kEnforceMinEfficiency) {
      std::fprintf(stderr,
                   "FAIL: scaling efficiency at 16 ranks %.1f%% below the "
                   "%.0f%% floor on a %u-core host\n",
                   efficiency_at_16 * 100.0, kEnforceMinEfficiency * 100.0,
                   cores);
      return 1;
    }
    if (!any_overlap_boost) {
      std::fprintf(stderr,
                   "FAIL: no rank count showed an overlap-vs-no-overlap "
                   "boost at %lld leaves\n",
                   static_cast<long long>(leaves));
      return 1;
    }
  } else if (k.enforce) {
    std::printf("(enforcement skipped: needs >= %u cores and >= %lld "
                "leaves; host has %u cores, mesh %lld leaves)\n",
                kEnforceMinCores,
                static_cast<long long>(kEnforceMinLeaves), cores,
                static_cast<long long>(leaves));
  }
  return 0;
}

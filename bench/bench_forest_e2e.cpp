/// \file bench_forest_e2e.cpp
/// \brief End-to-end ablation: effect of the quadrant representation on a
/// complete high-level AMR workflow (uniform creation, geometric
/// refinement, 2:1 balance, partition, ghost construction) — the setting
/// where the paper's low-level improvements have to pay off in practice.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "core/canonical.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "forest/forest.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

struct E2EResult {
  const char* name;
  double create_s;
  double refine_s;
  double balance_s;
  double partition_s;
  double ghost_s;
  gidx_t leaves;
};

template <class R>
E2EResult run_e2e(int base_level, int max_depth, int ranks) {
  E2EResult res{R::name, 0, 0, 0, 0, 0, 0};
  WallTimer t;
  auto f = Forest<R>::new_uniform(Connectivity::unit(3), base_level, ranks);
  res.create_s = t.elapsed_s();

  t.reset();
  f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
    return R::level(q) < max_depth && near_sphere<R>(q);
  });
  res.refine_s = t.elapsed_s();

  t.reset();
  f.balance(BalanceKind::kFull);
  res.balance_s = t.elapsed_s();

  t.reset();
  f.partition_weighted([](tree_id_t, const typename R::quad_t& q) {
    return 1 + R::level(q);
  });
  res.partition_s = t.elapsed_s();

  t.reset();
  std::size_t ghost_total = 0;
  for (int r = 0; r < ranks; ++r) {
    ghost_total += f.ghost_layer(r).entries.size();
  }
  res.ghost_s = t.elapsed_s();
  res.leaves = f.num_quadrants();
  std::printf("  [%s] leaves=%lld ghosts(all ranks)=%zu\n", R::name,
              static_cast<long long>(res.leaves), ghost_total);
  return res;
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest;
  using namespace qforest::bench;

  int base_level = 3, max_depth = 6, ranks = 8;
  if (const char* env = std::getenv("QFOREST_E2E_DEPTH")) {
    max_depth = std::atoi(env);
  }

  std::printf("== End-to-end AMR workflow: uniform L%d -> refine sphere band "
              "to L%d -> balance -> weighted partition (%d ranks) -> ghost "
              "==\n",
              base_level, max_depth, ranks);

  const E2EResult results[] = {
      run_e2e<StandardRep<3>>(base_level, max_depth, ranks),
      run_e2e<MortonRep<3>>(base_level, max_depth, ranks),
      run_e2e<AvxRep<3>>(base_level, max_depth, ranks),
      run_e2e<WideMortonRep<3>>(base_level, max_depth, ranks),
  };

  Table t({"representation", "create [s]", "refine [s]", "balance [s]",
           "partition [s]", "ghost [s]", "leaves"});
  for (const auto& r : results) {
    t.add_row({r.name, Table::fmt(r.create_s, 4), Table::fmt(r.refine_s, 4),
               Table::fmt(r.balance_s, 4), Table::fmt(r.partition_s, 4),
               Table::fmt(r.ghost_s, 4),
               Table::fmt(static_cast<long long>(r.leaves))});
  }
  t.print();

  BenchJson json;
  for (const auto& r : results) {
    const char* phases[] = {"create", "refine", "balance", "partition",
                            "ghost"};
    const double seconds[] = {r.create_s, r.refine_s, r.balance_s,
                              r.partition_s, r.ghost_s};
    for (int p = 0; p < 5; ++p) {
      json.begin_record();
      json.field("bench", "forest_e2e");
      json.field("rep", r.name);
      json.field("phase", phases[p]);
      json.field("seconds", seconds[p]);
      json.field("leaves", static_cast<long long>(r.leaves));
    }
  }
  json.write("BENCH_forest_e2e.json");

  // All representations must agree on the refined mesh size: the
  // workflow is representation-independent by construction.
  bool agree = true;
  for (const auto& r : results) {
    agree = agree && r.leaves == results[0].leaves;
  }
  std::printf("\nmesh sizes agree across representations: %s\n",
              agree ? "PASS" : "FAIL");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return agree ? 0 : 1;
}

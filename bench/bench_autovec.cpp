/// \file bench_autovec.cpp
/// \brief Paper contribution 5: "demonstrate the impact of our manual
/// vectorization on performance in comparison to the builtin compiler
/// vectorization". Four variants of the Child kernel:
///   1. scalar        — standard rep, -fno-tree-vectorize
///   2. autovec       — standard rep SoA loop, -O3 auto-vectorization
///   3. intrinsics    — AVX2 representation (paper Algorithm 9)
///   4. batch256      — two quadrants per 256-bit register (future work)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "autovec_kernels.hpp"
#include "core/batch_avx.hpp"
#include "core/quadrant_avx.hpp"
#include "simd/feature_detect.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using A = AvxRep<3>;

struct Setup {
  SoAQuads soa;
  std::vector<std::uint8_t> child;
  std::vector<A::quad_t> avx;
  std::vector<A::quad_t> avx_out;
  std::size_t n = 0;
};

Setup make_setup(std::size_t n) {
  Setup s;
  s.n = n;
  // Uniform level so the batch kernels apply; level 6 ~ mid-depth.
  const int lvl = 6;
  const auto items = make_work_items(n, lvl, 3, 777);
  s.soa.x.reserve(n);
  s.soa.y.reserve(n);
  s.soa.z.reserve(n);
  s.soa.level.reserve(n);
  s.avx.reserve(n);
  s.avx_out.resize(n);
  s.child.reserve(n);
  for (const auto& it : items) {
    const auto q = S::morton_quadrant(it.level_index, lvl);
    s.soa.x.push_back(q.x);
    s.soa.y.push_back(q.y);
    s.soa.z.push_back(q.z);
    s.soa.level.push_back(q.level);
    s.avx.push_back(A::morton_quadrant(it.level_index, lvl));
    s.child.push_back(it.child);
  }
  return s;
}

std::uint32_t intrinsics_loop(const Setup& s) {
  simd::Vec128 sink;
  for (std::size_t i = 0; i < s.n; ++i) {
    sink = sink ^ A::child(s.avx[i], s.child[i]);
  }
  std::uint32_t out = sink.lane32<0>() ^ sink.lane32<1>() ^
                      sink.lane32<2>() ^ sink.lane32<3>();
  return out;
}

std::uint32_t batch256_loop(Setup& s) {
  // Uniform child id per pass, as in a refine sweep over one level.
  AvxBatch<3>::child_uniform(s.avx.data(), s.avx_out.data(), s.n, 5, 6);
  simd::Vec128 sink;
  for (std::size_t i = 0; i < s.n; i += 97) {
    sink = sink ^ s.avx_out[i];
  }
  return sink.lane32<0>();
}

double time_best_of(int reps, const std::function<double()>& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, run());
  }
  return best;
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest;
  using namespace qforest::bench;

  std::size_t n = kPaperQuadrantCount;
  if (const char* env = std::getenv("QFOREST_BENCH_N")) {
    n = std::strtoull(env, nullptr, 10);
  }
  auto s = make_setup(n);

  std::printf("== Vectorization ablation (paper contribution 5): Child over "
              "%zu uniform level-6 octants ==\n",
              n);
  std::printf("cpu: %s; intrinsics %s\n", simd::feature_string().c_str(),
              QFOREST_HAVE_AVX2 ? "compiled in" : "NOT compiled (fallback)");

  std::uint32_t guard = 0;
  const int reps = 5;
  const double t_novec = time_best_of(reps, [&] {
    WallTimer t;
    guard ^= child_loop_novec(s.soa, s.child.data(), s.n);
    return t.elapsed_s();
  });
  const double t_auto = time_best_of(reps, [&] {
    WallTimer t;
    guard ^= child_loop_autovec(s.soa, s.child.data(), s.n);
    return t.elapsed_s();
  });
  const double t_intr = time_best_of(reps, [&] {
    WallTimer t;
    guard ^= intrinsics_loop(s);
    return t.elapsed_s();
  });
  const double t_batch = time_best_of(reps, [&] {
    WallTimer t;
    guard ^= batch256_loop(s);
    return t.elapsed_s();
  });
  do_not_optimize(guard);

  Table t({"variant", "time [s]", "vs scalar %"});
  t.add_row({"scalar (-fno-tree-vectorize)", Table::fmt(t_novec, 6),
             Table::fmt(0.0, 1)});
  t.add_row({"compiler autovec (-O3)", Table::fmt(t_auto, 6),
             Table::fmt(speedup_percent(t_novec, t_auto), 1)});
  t.add_row({"manual AVX2 intrinsics (Alg. 9)", Table::fmt(t_intr, 6),
             Table::fmt(speedup_percent(t_novec, t_intr), 1)});
  t.add_row({"batch 256-bit (2 quads/op)", Table::fmt(t_batch, 6),
             Table::fmt(speedup_percent(t_novec, t_batch), 1)});
  t.print();
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("autovec/scalar", [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = child_loop_novec(s.soa, s.child.data(), s.n);
      benchmark::DoNotOptimize(v);
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.n));
  });
  benchmark::RegisterBenchmark("autovec/compiler", [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = child_loop_autovec(s.soa, s.child.data(), s.n);
      benchmark::DoNotOptimize(v);
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.n));
  });
  benchmark::RegisterBenchmark("autovec/intrinsics",
                               [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = intrinsics_loop(s);
      benchmark::DoNotOptimize(v);
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.n));
  });
  benchmark::RegisterBenchmark("autovec/batch256", [&](benchmark::State& st) {
    for (auto _ : st) {
      auto v = batch256_loop(s);
      benchmark::DoNotOptimize(v);
    }
    st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                         static_cast<std::int64_t>(s.n));
  });
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#pragma once
/// \file autovec_kernels.hpp
/// \brief Kernels for the manual-vs-compiler-vectorization ablation
/// (paper contribution 5). The same standard-representation Child loop is
/// compiled in two translation units: one at the paper's -O3 (compiler
/// auto-vectorization enabled) and one with -fno-tree-vectorize
/// (-fno-slp-vectorize equivalent), to isolate what GCC's auto-vectorizer
/// achieves on the AoS quadrant layout versus our hand-written AVX2
/// intrinsics.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/quadrant_std.hpp"

namespace qforest::bench {

/// Child over a plain coordinate SoA (the auto-vectorizer's best case).
struct SoAQuads {
  std::vector<std::int32_t> x, y, z;
  std::vector<std::int8_t> level;
};

/// Compiled with -O3 auto-vectorization (autovec_on.cpp).
std::uint32_t child_loop_autovec(const SoAQuads& q, const std::uint8_t* c,
                                 std::size_t n);

/// Same source compiled with -fno-tree-vectorize (autovec_off.cpp).
std::uint32_t child_loop_novec(const SoAQuads& q, const std::uint8_t* c,
                               std::size_t n);

/// Shared loop body included by both TUs.
template <class Tag>
std::uint32_t child_loop_impl(const SoAQuads& q, const std::uint8_t* c,
                              std::size_t n) {
  using S = StandardRep<3>;
  std::uint32_t sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t shift =
        S::length_at(static_cast<int>(q.level[i]) + 1);
    const std::int32_t cx = (c[i] & 1) ? q.x[i] | shift : q.x[i];
    const std::int32_t cy = (c[i] & 2) ? q.y[i] | shift : q.y[i];
    const std::int32_t cz = (c[i] & 4) ? q.z[i] | shift : q.z[i];
    sink ^= static_cast<std::uint32_t>(cx) ^ static_cast<std::uint32_t>(cy) ^
            static_cast<std::uint32_t>(cz) ^
            static_cast<std::uint32_t>(q.level[i] + 1);
  }
  return sink;
}

}  // namespace qforest::bench

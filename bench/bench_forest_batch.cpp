/// \file bench_forest_batch.cpp
/// \brief forest_batched vs forest_scalar: the payoff of routing the
/// forest's hot loops (refine waves, coarsen family sweeps, balance
/// splitting) through the BatchOps<R> dispatch seam instead of scalar
/// per-quadrant ops. Both runs execute the *same* staged code path — only
/// the kernel bodies differ (batch::set_enabled toggles the SIMD gate), so
/// the delta isolates the 256-bit kernels, exactly the ablation the paper
/// asks of high-level consumers of vectorized primitives.
///
/// Results land on stdout as a table and in BENCH_forest.json.

#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "core/batch_ops.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "simd/feature_detect.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload.hpp"

namespace qforest::bench {
namespace {

struct PhaseTimes {
  double refine_s = 0;
  double coarsen_s = 0;
  double balance_s = 0;
  gidx_t leaves = 0;            ///< after refine + balance
  gidx_t leaves_coarsened = 0;  ///< after the final coarsen pass
};

template <class R>
PhaseTimes run_workflow(int base_level, int max_depth, int sweeps) {
  PhaseTimes best;
  for (int s = 0; s < sweeps; ++s) {
    auto f = Forest<R>::new_uniform(Connectivity::unit(3), base_level);
    WallTimer t;
    f.refine(true, [&](tree_id_t, const typename R::quad_t& q) {
      return R::level(q) < max_depth && near_sphere<R>(q);
    });
    const double refine_s = t.elapsed_s();

    t.reset();
    f.balance(BalanceKind::kFull);
    const double balance_s = t.elapsed_s();
    const gidx_t leaves = f.num_quadrants();

    t.reset();
    f.coarsen(true, [&](tree_id_t, const typename R::quad_t* fam) {
      return R::level(fam[0]) > base_level && !near_sphere<R>(fam[0]);
    });
    const double coarsen_s = t.elapsed_s();

    if (s == 0 || refine_s < best.refine_s) {
      best.refine_s = refine_s;
    }
    if (s == 0 || balance_s < best.balance_s) {
      best.balance_s = balance_s;
    }
    if (s == 0 || coarsen_s < best.coarsen_s) {
      best.coarsen_s = coarsen_s;
    }
    best.leaves = leaves;
    best.leaves_coarsened = f.num_quadrants();
  }
  return best;
}

double pct(double scalar_s, double batched_s) {
  return batched_s > 0 ? (scalar_s / batched_s - 1.0) * 100.0 : 0.0;
}

template <class R>
void bench_rep(Table& table, BenchJson& json, int base_level, int max_depth,
               int sweeps) {
  batch::set_enabled(false);
  const PhaseTimes scalar = run_workflow<R>(base_level, max_depth, sweeps);
  batch::set_enabled(true);
  const PhaseTimes batched = run_workflow<R>(base_level, max_depth, sweeps);

  // CI runs this binary as the dispatch smoke test: the two paths must
  // produce the same mesh, not just claim to — both after refine+balance
  // and after coarsen (the consumer of the batched family detection).
  if (scalar.leaves != batched.leaves ||
      scalar.leaves_coarsened != batched.leaves_coarsened) {
    std::fprintf(stderr,
                 "FAIL: %s mesh diverges between dispatch paths "
                 "(balanced %lld vs %lld leaves, coarsened %lld vs %lld)\n",
                 R::name, static_cast<long long>(scalar.leaves),
                 static_cast<long long>(batched.leaves),
                 static_cast<long long>(scalar.leaves_coarsened),
                 static_cast<long long>(batched.leaves_coarsened));
    std::exit(1);
  }

  table.add_row({R::name, Table::fmt(scalar.refine_s, 4),
                 Table::fmt(batched.refine_s, 4),
                 Table::fmt(pct(scalar.refine_s, batched.refine_s), 1),
                 Table::fmt(scalar.balance_s, 4),
                 Table::fmt(batched.balance_s, 4),
                 Table::fmt(pct(scalar.balance_s, batched.balance_s), 1),
                 Table::fmt(scalar.coarsen_s, 4),
                 Table::fmt(batched.coarsen_s, 4),
                 Table::fmt(static_cast<long long>(batched.leaves))});

  const char* phases[] = {"refine", "balance", "coarsen"};
  const double scalar_s[] = {scalar.refine_s, scalar.balance_s,
                             scalar.coarsen_s};
  const double batched_s[] = {batched.refine_s, batched.balance_s,
                              batched.coarsen_s};
  const gidx_t leaves_after[] = {batched.leaves, batched.leaves,
                                 batched.leaves_coarsened};
  for (int p = 0; p < 3; ++p) {
    json.begin_record();
    json.field("bench", "forest_batch");
    json.field("rep", R::name);
    json.field("phase", phases[p]);
    json.field("scalar_seconds", scalar_s[p]);
    json.field("batched_seconds", batched_s[p]);
    json.field("boost_percent", pct(scalar_s[p], batched_s[p]));
    json.field("leaves", static_cast<long long>(leaves_after[p]));
    json.field("simd_active", BatchOps<R>::simd_active());
  }
}

}  // namespace
}  // namespace qforest::bench

int main() {
  using namespace qforest;
  using namespace qforest::bench;

  int base_level = 3, max_depth = 7, sweeps = 3;
  if (const char* env = std::getenv("QFOREST_FB_DEPTH")) {
    max_depth = std::atoi(env);
  }
  if (const char* env = std::getenv("QFOREST_FB_SWEEPS")) {
    sweeps = std::atoi(env);
  }

  std::printf("== forest_batched vs forest_scalar: adaptation workflow "
              "(uniform L%d -> refine sphere band to L%d -> balance -> "
              "coarsen), best of %d ==\n",
              base_level, max_depth, sweeps);
  std::printf("cpu features: %s; avx batch kernels %s\n",
              simd::feature_string().c_str(),
              BatchOps<AvxRep<3>>::has_simd_kernels &&
                      simd::avx2_usable()
                  ? "active for avx rep"
                  : "unavailable (scalar dispatch everywhere)");

  Table table({"representation", "refine scalar [s]", "refine batch [s]",
               "boost %", "balance scalar [s]", "balance batch [s]",
               "boost %", "coarsen scalar [s]", "coarsen batch [s]",
               "leaves"});
  BenchJson json;
  bench_rep<StandardRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<MortonRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<AvxRep<3>>(table, json, base_level, max_depth, sweeps);
  bench_rep<WideMortonRep<3>>(table, json, base_level, max_depth, sweeps);
  table.print();
  std::printf("\n(scalar and batched dispatch must agree on the mesh; the "
              "non-avx representations measure staging overhead alone.)\n");

  // Metrics snapshot: one untimed workflow pass with the obs registry
  // enabled, embedded in the JSON artifact so CI archives the adaptation
  // counters (waves, splice sizes, coarsen accept/reject) alongside the
  // timings. The timed phases above ran with metrics off, so the gated
  // regression records are unaffected.
  obs::reset_metrics();
  obs::set_metrics(true);
  batch::set_enabled(true);
  run_workflow<MortonRep<3>>(base_level, max_depth, 1);
  obs::set_metrics(false);
  json.begin_record();
  json.field("bench", "forest_batch");
  json.field("phase", "metrics_snapshot");
  json.field("rep", MortonRep<3>::name);
  json.field_raw("metrics", obs::metrics_json());
  std::printf("\n== obs metrics (one enabled workflow pass, morton rep) "
              "==\n%s", obs::metrics_summary().c_str());

  json.write("BENCH_forest.json");
  return 0;
}

/// \file bench_fig4_fneigh.cpp
/// \brief Figure 4: strong scaling of FNeigh (face neighbor; paper
/// Algorithm 8 for the raw Morton index). Paper: morton-id +26%,
/// avx +27% average boost vs standard.

#include "figure.hpp"

namespace qforest::bench {
namespace {

using S = StandardRep<3>;
using M = MortonRep<3>;
using A = AvxRep<3>;

void kernel_std(const Workload<S>& w, std::size_t b, std::size_t e) {
  std::uint32_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    const auto r = S::face_neighbor(w.quads[i], w.items[i].interior_face);
    sink ^= static_cast<std::uint32_t>(r.x) ^
            static_cast<std::uint32_t>(r.y) ^
            static_cast<std::uint32_t>(r.z) ^
            static_cast<std::uint32_t>(r.level);
  }
  do_not_optimize(sink);
}

void kernel_morton(const Workload<M>& w, std::size_t b, std::size_t e) {
  std::uint64_t sink = 0;
  for (std::size_t i = b; i < e; ++i) {
    sink ^= M::face_neighbor(w.quads[i], w.items[i].interior_face);
  }
  do_not_optimize(sink);
}

void kernel_avx(const Workload<A>& w, std::size_t b, std::size_t e) {
  simd::Vec128 sink;
  for (std::size_t i = b; i < e; ++i) {
    sink = sink ^ A::face_neighbor(w.quads[i], w.items[i].interior_face);
  }
  do_not_optimize(sink);
}

}  // namespace
}  // namespace qforest::bench

int main(int argc, char** argv) {
  using namespace qforest::bench;
  const auto cfg = FigureConfig::from_env();
  run_figure("Figure 4", "FNeigh (face neighbor)",
             "morton-id +26% avg, avx +27% avg vs standard", kernel_std,
             kernel_morton, kernel_avx, cfg);
  register_micro_benchmarks("fig4_fneigh", kernel_std, kernel_morton,
                            kernel_avx, cfg);
  return figure_main(argc, argv);
}

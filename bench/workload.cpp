#include "workload.hpp"

#include "core/quadrant_std.hpp"

namespace qforest::bench {

std::vector<WorkItem> make_work_items(std::size_t n, int max_level, int dim,
                                      std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<WorkItem> items;
  items.reserve(n);
  const int num_children = 1 << dim;
  const int num_faces = 2 * dim;
  for (std::size_t i = 0; i < n; ++i) {
    WorkItem it{};
    it.level = static_cast<std::uint8_t>(
        rng.next_below(static_cast<std::uint64_t>(max_level) + 1));
    it.level_index =
        rng.next_below(morton_t{1} << (dim * it.level));
    it.child = static_cast<std::uint8_t>(rng.next_below(num_children));
    it.face = static_cast<std::uint8_t>(rng.next_below(num_faces));
    // Choose a face whose neighbor stays inside the unit tree so the
    // FNeigh kernel output is meaningful in every representation. The
    // root (level 0) has no such face; it keeps face 1 (wrap/exterior).
    it.interior_face = 1;
    if (it.level > 0) {
      if (dim == 3) {
        const auto q = StandardRep<3>::morton_quadrant(it.level_index,
                                                       it.level);
        int tb[3];
        StandardRep<3>::tree_boundaries(q, tb);
        for (int f = static_cast<int>(rng.next_below(num_faces)), k = 0;
             k < num_faces; ++k, f = (f + 1) % num_faces) {
          if (tb[f >> 1] != f) {
            it.interior_face = static_cast<std::uint8_t>(f);
            break;
          }
        }
      } else {
        const auto q = StandardRep<2>::morton_quadrant(it.level_index,
                                                       it.level);
        int tb[2];
        StandardRep<2>::tree_boundaries(q, tb);
        for (int f = static_cast<int>(rng.next_below(num_faces)), k = 0;
             k < num_faces; ++k, f = (f + 1) % num_faces) {
          if (tb[f >> 1] != f) {
            it.interior_face = static_cast<std::uint8_t>(f);
            break;
          }
        }
      }
    }
    items.push_back(it);
  }
  return items;
}

}  // namespace qforest::bench

#pragma once
/// \file figure.hpp
/// \brief Shared harness regenerating the paper's Figures 2-7: one
/// strong-scaling series per quadrant representation for a single
/// low-level kernel, printed as the table of runtimes the paper plots,
/// followed by the paper-style "average performance boost" summary and a
/// google-benchmark micro section for per-op throughput.
///
/// Usage: each bench_figN binary instantiates run_figure() with three
/// kernel functors (standard / raw Morton / AVX). A kernel receives the
/// workload and an index range and folds its outputs into a local sink
/// (paper §3.1 methodology).

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "par/strong_scaling.hpp"
#include "simd/feature_detect.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload.hpp"

namespace qforest::bench {

/// Configuration of a figure run; defaults follow the paper. Override via
/// environment variables QFOREST_BENCH_N / _MAX_TASKS / _SWEEPS for quick
/// experimentation.
struct FigureConfig {
  std::size_t n = kPaperQuadrantCount;
  int max_level = kPaperMaxLevel;
  int max_tasks = 512;
  int sweeps = 3;  ///< repetitions per task count (min is kept)

  static FigureConfig from_env();
};

/// One representation's measured series plus the paper-style speedup
/// relative to the standard baseline.
struct FigureSeries {
  std::string label;
  std::vector<double> seconds;  ///< per task count
};

/// Run the harness for one kernel. KernelS/KernelM/KernelA are callables
/// (const Workload<R>&, begin, end) -> void for the respective reps.
template <class KernelS, class KernelM, class KernelA>
void run_figure(const char* figure_id, const char* kernel_name,
                const char* paper_claim, KernelS&& ks, KernelM&& km,
                KernelA&& ka, const FigureConfig& cfg = FigureConfig::from_env()) {
  std::printf("== %s: strong scaling of %s over %zu 3D quadrants"
              " (levels <= %d) ==\n",
              figure_id, kernel_name, cfg.n, cfg.max_level);
  std::printf("paper: %s\n", paper_claim);
  std::printf("cpu features: %s%s\n", simd::feature_string().c_str(),
              QFOREST_HAVE_AVX2 ? " (intrinsics path compiled in)"
                                : " (scalar fallback for AVX rep)");

  const auto items = make_work_items(cfg.n, cfg.max_level, 3);
  const auto ws = Workload<StandardRep<3>>::build(items);
  const auto wm = Workload<MortonRep<3>>::build(items);
  const auto wa = Workload<AvxRep<3>>::build(items);

  const auto tasks = par::paper_task_counts(cfg.max_tasks);
  Table table({"tasks", "standard [s]", "morton-id [s]", "avx [s]",
               "morton-id boost %", "avx boost %"});
  RunningStats boost_m, boost_a;
  BenchJson json;
  for (const int t : tasks) {
    const auto ps = par::run_strong_scaling(
        cfg.n, t, [&](std::size_t b, std::size_t e) { ks(ws, b, e); },
        cfg.sweeps);
    const auto pm = par::run_strong_scaling(
        cfg.n, t, [&](std::size_t b, std::size_t e) { km(wm, b, e); },
        cfg.sweeps);
    const auto pa = par::run_strong_scaling(
        cfg.n, t, [&](std::size_t b, std::size_t e) { ka(wa, b, e); },
        cfg.sweeps);
    const double bm =
        speedup_percent(ps.max_task_seconds, pm.max_task_seconds);
    const double ba =
        speedup_percent(ps.max_task_seconds, pa.max_task_seconds);
    boost_m.add(bm);
    boost_a.add(ba);
    table.add_row({Table::fmt(static_cast<long long>(t)),
                   Table::fmt(ps.max_task_seconds, 6),
                   Table::fmt(pm.max_task_seconds, 6),
                   Table::fmt(pa.max_task_seconds, 6), Table::fmt(bm, 1),
                   Table::fmt(ba, 1)});
    json.begin_record();
    json.field("bench", figure_id);
    json.field("kernel", kernel_name);
    json.field("tasks", static_cast<long long>(t));
    json.field("standard_seconds", ps.max_task_seconds);
    json.field("morton_seconds", pm.max_task_seconds);
    json.field("avx_seconds", pa.max_task_seconds);
    json.field("morton_boost_percent", bm);
    json.field("avx_boost_percent", ba);
  }
  table.print();
  std::printf("measured average boost vs standard: morton-id %+.1f%%, "
              "avx %+.1f%%\n\n",
              boost_m.mean(), boost_a.mean());
  // "Figure 3" -> BENCH_figure_3.json
  std::string fname = "BENCH_";
  for (const char* p = figure_id; *p != '\0'; ++p) {
    fname += *p == ' ' ? '_'
                       : static_cast<char>(
                             std::tolower(static_cast<unsigned char>(*p)));
  }
  fname += ".json";
  json.write(fname.c_str());
}

/// Register the per-op micro benchmarks for one kernel with
/// google-benchmark (items/sec throughput, single task).
template <class KernelS, class KernelM, class KernelA>
void register_micro_benchmarks(const char* kernel_name, KernelS ks,
                               KernelM km, KernelA ka,
                               const FigureConfig& cfg) {
  static auto items =
      make_work_items(cfg.n, cfg.max_level, 3);
  static auto ws = Workload<StandardRep<3>>::build(items);
  static auto wm = Workload<MortonRep<3>>::build(items);
  static auto wa = Workload<AvxRep<3>>::build(items);
  const std::size_t n = items.size();

  benchmark::RegisterBenchmark(
      (std::string(kernel_name) + "/standard").c_str(),
      [n, ks](benchmark::State& state) {
        for (auto _ : state) {
          ks(ws, 0, n);
        }
        state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                                static_cast<std::int64_t>(n));
      });
  benchmark::RegisterBenchmark(
      (std::string(kernel_name) + "/morton-id").c_str(),
      [n, km](benchmark::State& state) {
        for (auto _ : state) {
          km(wm, 0, n);
        }
        state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                                static_cast<std::int64_t>(n));
      });
  benchmark::RegisterBenchmark(
      (std::string(kernel_name) + "/avx").c_str(),
      [n, ka](benchmark::State& state) {
        for (auto _ : state) {
          ka(wa, 0, n);
        }
        state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                                static_cast<std::int64_t>(n));
      });
}

/// Standard main() body for a figure binary: figure table first, then the
/// google-benchmark micro section.
int figure_main(int argc, char** argv);

}  // namespace qforest::bench

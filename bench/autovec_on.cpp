/// \file autovec_on.cpp
/// \brief Child loop compiled with the paper's flags (-O3, compiler
/// auto-vectorization enabled); see CMakeLists for the per-file options.

#include "autovec_kernels.hpp"

namespace qforest::bench {

struct AutoVecOnTag {};

std::uint32_t child_loop_autovec(const SoAQuads& q, const std::uint8_t* c,
                                 std::size_t n) {
  return child_loop_impl<AutoVecOnTag>(q, c, n);
}

}  // namespace qforest::bench

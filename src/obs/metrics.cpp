#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>

#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace qforest::obs {
namespace {

/// Name -> metric maps. Values are unique_ptrs so registered metrics keep
/// a stable address while the map rehashes/rebalances; the mutex guards
/// registration only — recording goes straight to the atomic shards.
struct Registry {
  /// Guards registration only — recording goes straight to the atomic
  /// shards. Top tier of the lock hierarchy (pool < mailbox <
  /// registry): nothing may be acquired while this is held.
  Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters
      QF_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      QF_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;  // lint-allow(mutable-static): mutex-protected registry; metric cells are atomic
  return r;
}

/// Load-time gate init: QFOREST_METRICS=<non-empty, non-"0"> enables
/// metric recording from the first instruction of main().
const bool g_env_init = [] {
  const char* e = std::getenv("QFOREST_METRICS");  // NOLINT(concurrency-mt-unsafe)
  if (e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0')) {
    // mo: relaxed — gate flag set before main(); readers only branch.
    detail::g_metrics_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

namespace detail {

std::uint32_t metric_thread_slot() {
  static std::atomic<std::uint32_t> next{0};
  // mo: relaxed — unique-slot allocation; only atomicity is needed.
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

void set_metrics(bool on) {
  // mo: relaxed — gate flag; readers only branch on it.
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  std::uint64_t min_seen = ~std::uint64_t{0};
  // mo: relaxed (all shard reads) — statistics merge; exact once
  // writers are quiescent, approximate while they race — by design.
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.min = out.count == 0 ? 0 : min_seen;
  return out;
}

void Histogram::reset() {
  // mo: relaxed (all shard writes) — statistics reset; callers ensure
  // writer quiescence when an exact zero matters.
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
}

Counter& counter(const char* name) {
  Registry& r = registry();
  const LockGuard lock(r.mutex);
  auto& slot = r.counters[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Histogram& histogram(const char* name) {
  Registry& r = registry();
  const LockGuard lock(r.mutex);
  auto& slot = r.histograms[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  Registry& r = registry();
  const LockGuard lock(r.mutex);
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

std::string metrics_json() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& row : snap.counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('"');
    append_json_escaped(out, row.name);
    out += "\":" + std::to_string(row.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& row : snap.histograms) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('"');
    append_json_escaped(out, row.name);
    out += "\":{\"count\":" + std::to_string(row.hist.count);
    out += ",\"sum\":" + std::to_string(row.hist.sum);
    out += ",\"min\":" + std::to_string(row.hist.min);
    out += ",\"max\":" + std::to_string(row.hist.max);
    char mean[48];
    std::snprintf(mean, sizeof(mean), "%.3f", row.hist.mean());
    out += ",\"mean\":";
    out += mean;
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (row.hist.buckets[b] == 0) {
        continue;
      }
      if (!first_bucket) {
        out.push_back(',');
      }
      first_bucket = false;
      out += "[" + std::to_string(Histogram::bucket_floor(b)) + "," +
             std::to_string(row.hist.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string metrics_summary() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::string out;
  Table counters({"counter", "value"});
  for (const auto& row : snap.counters) {
    if (row.value == 0) {
      continue;
    }
    counters.add_row({row.name,
                      Table::fmt(static_cast<long long>(row.value))});
  }
  if (counters.row_count() > 0) {
    out += counters.to_string();
  }
  Table hists({"histogram", "count", "sum", "min", "mean", "max"});
  for (const auto& row : snap.histograms) {
    if (row.hist.count == 0) {
      continue;
    }
    hists.add_row({row.name,
                   Table::fmt(static_cast<long long>(row.hist.count)),
                   Table::fmt(static_cast<long long>(row.hist.sum)),
                   Table::fmt(static_cast<long long>(row.hist.min)),
                   Table::fmt(row.hist.mean(), 1),
                   Table::fmt(static_cast<long long>(row.hist.max))});
  }
  if (hists.row_count() > 0) {
    if (!out.empty()) {
      out.push_back('\n');
    }
    out += hists.to_string();
  }
  if (out.empty()) {
    out = "(no metrics recorded)\n";
  }
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  const LockGuard lock(r.mutex);
  for (auto& [name, c] : r.counters) {
    c->reset();
  }
  for (auto& [name, h] : r.histograms) {
    h->reset();
  }
}

}  // namespace qforest::obs

#pragma once
/// \file trace.hpp
/// \brief Scoped trace spans with Chrome trace-event (Perfetto) export.
///
/// Always-compiled, runtime-gated tracing. A `TraceSpan` is an RAII scope
/// marker: when tracing is off its constructor is one relaxed atomic load
/// and a predictable branch; when on, entry stamps a steady-clock tick and
/// exit appends one complete ("ph":"X") event to a thread-local lock-free
/// buffer. Buffers are chunked append-only lists — the owning thread
/// publishes each event with a release store of the chunk fill count, and
/// the drain (`trace_json` / `write_trace_json`) reads them with acquire
/// loads, so collection is safe while spans are still being emitted.
///
/// Events carry the simulated rank id as the Perfetto thread id when the
/// emitting thread runs inside a RankGroup worker (see ThreadRankScope in
/// util/log.hpp); other threads get stable synthetic ids >= 1000. The
/// export is standard Chrome trace-event JSON — load it in Perfetto or
/// chrome://tracing, or schema-check it with tools/validate_trace.py.
///
/// Gate: `QFOREST_TRACE=1` in the environment or `set_tracing(bool)`.
/// Category/name/arg-key strings must be string literals (the buffer
/// stores the pointers, not copies).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qforest::obs {

namespace detail {

/// Global tracing gate. Set at load time from QFOREST_TRACE (see
/// trace.cpp) and at runtime via set_tracing().
inline std::atomic<bool> g_tracing_enabled{false};

}  // namespace detail

/// True when span recording is on. One relaxed load.
inline bool tracing_enabled() {
  // mo: relaxed — gate flag; callers only branch, no data is published
  // through it.
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turn span recording on or off. Already-buffered events are kept; use
/// clear_trace() to drop them.
void set_tracing(bool on);

/// Nanoseconds on the steady clock since the process trace epoch.
[[nodiscard]] std::int64_t trace_clock_ns();

/// Append one complete event covering [start_ns, end_ns] directly (for
/// windows that do not map to one lexical scope, e.g. the in-flight
/// interval of an asynchronous exchange). No-op while tracing is off.
/// All strings must be literals; pass nullptr keys to omit args.
void trace_complete(const char* cat, const char* name, std::int64_t start_ns,
                    std::int64_t end_ns, const char* k1 = nullptr,
                    std::int64_t v1 = 0, const char* k2 = nullptr,
                    std::int64_t v2 = 0);

/// RAII scope span: construction stamps the start, destruction appends
/// the complete event. Up to two integer args may be attached any time
/// before destruction.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name)
      : cat_(cat), name_(name), armed_(tracing_enabled()) {
    if (armed_) {
      start_ns_ = trace_clock_ns();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an integer arg (max two; extra calls are dropped). \p key
  /// must be a string literal.
  void arg(const char* key, std::int64_t value) {
    if (!armed_) {
      return;
    }
    if (k1_ == nullptr) {
      k1_ = key;
      v1_ = value;
    } else if (k2_ == nullptr) {
      k2_ = key;
      v2_ = value;
    }
  }

  ~TraceSpan() {
    if (armed_) {
      trace_complete(cat_, name_, start_ns_, trace_clock_ns(), k1_, v1_, k2_,
                     v2_);
    }
  }

 private:
  const char* cat_;
  const char* name_;
  const char* k1_ = nullptr;
  const char* k2_ = nullptr;
  std::int64_t v1_ = 0;
  std::int64_t v2_ = 0;
  std::int64_t start_ns_ = 0;
  bool armed_;
};

/// Number of buffered events across all threads (drain-consistent).
[[nodiscard]] std::size_t trace_event_count();

/// Render every buffered event as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), time-sorted, with thread-name metadata
/// ("rank N" for rank workers, "thread N" otherwise).
[[nodiscard]] std::string trace_json();

/// Write trace_json() to \p path. Returns false (and logs) on I/O error.
bool write_trace_json(const char* path);

/// Write the trace to \p path if tracing is (or was) enabled and any
/// events were recorded; returns true when a file was written. The
/// convenience tail call for examples and benches.
bool write_trace_if_enabled(const char* path);

/// Drop all buffered events. Callers must ensure no span is concurrently
/// being emitted (quiescence) — buffers are reset in place, not freed.
void clear_trace();

}  // namespace qforest::obs

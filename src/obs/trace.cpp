#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace qforest::obs {
namespace {

/// One buffered event. Strings are literal pointers, never owned.
struct Event {
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  const char* cat;
  const char* name;
  const char* k1;
  std::int64_t v1;
  const char* k2;
  std::int64_t v2;
  std::uint32_t tid;
};

/// Append-only event chunk. The owning thread writes events[used] and
/// then publishes with a release store of `used`; drains acquire-load
/// `used` (and `next`) and read only the published prefix, so no event
/// is ever read while being written.
struct Chunk {
  static constexpr std::size_t kCapacity = 512;
  std::array<Event, kCapacity> events{};
  std::atomic<std::size_t> used{0};
  std::atomic<Chunk*> next{nullptr};
};

/// Per-thread chunk chain. `cur` (the chain tail) is touched only by the
/// owning thread; readers walk from `head` through the published links.
struct ThreadBuffer {
  Chunk head;
  Chunk* cur = &head;
};

struct TraceRegistry {
  /// Guards buffer registration/recycling only — event emission goes to
  /// the owning thread's buffer through the atomic chunk fields. Top
  /// tier of the lock hierarchy (pool < mailbox < registry): nothing
  /// may be acquired while this is held.
  Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers QF_GUARDED_BY(mutex);
  std::vector<ThreadBuffer*> free_list QF_GUARDED_BY(mutex);
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceRegistry& registry() {
  static TraceRegistry r;  // lint-allow(mutable-static): mutex-protected registry; chunk fields are atomic
  return r;
}

/// Load-time gate init: QFOREST_TRACE=<non-empty, non-"0"> enables span
/// recording from the first instruction of main().
const bool g_env_init = [] {
  const char* e = std::getenv("QFOREST_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0')) {
    // mo: relaxed — gate flag set before main(); readers only branch.
    detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

/// Synthetic Perfetto tids for threads outside any rank scope. Rank
/// workers use their rank id directly, so synthetic ids start high.
std::uint32_t synthetic_tid() {
  static std::atomic<std::uint32_t> next{1000};
  // mo: relaxed — unique-id allocation; only atomicity is needed.
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint32_t current_tid() {
  const int rank = thread_rank();
  return rank >= 0 ? static_cast<std::uint32_t>(rank) : synthetic_tid();
}

/// Returns a buffer from the free list (left behind by an exited thread;
/// its already-published events stay in place and the new owner appends
/// after them) or registers a fresh one.
ThreadBuffer* acquire_buffer() {
  TraceRegistry& reg = registry();
  const LockGuard lock(reg.mutex);
  if (!reg.free_list.empty()) {
    ThreadBuffer* b = reg.free_list.back();
    reg.free_list.pop_back();
    return b;
  }
  reg.buffers.push_back(std::make_unique<ThreadBuffer>());
  return reg.buffers.back().get();
}

/// Thread-exit hook: hand the buffer back so short-lived worker threads
/// (RankGroup spawns one per rank per collective call) reuse chunks
/// instead of growing the registry without bound.
struct BufferHandle {
  ThreadBuffer* buf = nullptr;
  ~BufferHandle() {
    if (buf != nullptr) {
      TraceRegistry& reg = registry();
      const LockGuard lock(reg.mutex);
      reg.free_list.push_back(buf);
    }
  }
};

ThreadBuffer& local_buffer() {
  thread_local BufferHandle handle;
  if (handle.buf == nullptr) {
    handle.buf = acquire_buffer();
  }
  return *handle.buf;
}

void append_event(const Event& e) {
  ThreadBuffer& buf = local_buffer();
  Chunk* c = buf.cur;
  // mo: relaxed — used/next are written only by this owning thread; its
  // own writes are always visible to itself.
  std::size_t i = c->used.load(std::memory_order_relaxed);
  while (i == Chunk::kCapacity) {
    // mo: relaxed — owner-only read; see above.
    Chunk* n = c->next.load(std::memory_order_relaxed);
    if (n == nullptr) {
      n = new Chunk;
      // mo: release — publishes the zero-initialized chunk to draining
      // readers' acquire loads.
      c->next.store(n, std::memory_order_release);
    }
    buf.cur = n;
    c = n;
    // mo: relaxed — owner-only read; see above.
    i = c->used.load(std::memory_order_relaxed);
  }
  c->events[i] = e;
  // mo: release — publishes events[i] to the drain's acquire load of
  // used; no event is read while being written.
  c->used.store(i + 1, std::memory_order_release);
}

std::vector<Event> collect_events() {
  TraceRegistry& reg = registry();
  const LockGuard lock(reg.mutex);
  std::vector<Event> out;
  for (const auto& buf : reg.buffers) {
    // mo: acquire (next, used) — pairs with the owner's release stores;
    // the published prefix of each chunk is fully written before reading.
    for (const Chunk* c = &buf->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const std::size_t used = c->used.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < used; ++i) {
        out.push_back(c->events[i]);
      }
    }
  }
  return out;
}

void append_args_json(std::string& out, const Event& e) {
  if (e.k1 == nullptr && e.k2 == nullptr) {
    return;
  }
  out += ",\"args\":{";
  if (e.k1 != nullptr) {
    out += "\"";
    out += e.k1;
    out += "\":" + std::to_string(e.v1);
  }
  if (e.k2 != nullptr) {
    if (e.k1 != nullptr) {
      out.push_back(',');
    }
    out += "\"";
    out += e.k2;
    out += "\":" + std::to_string(e.v2);
  }
  out.push_back('}');
}

}  // namespace

void set_tracing(bool on) {
  // mo: relaxed — gate flag; readers only branch on it.
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t trace_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

void trace_complete(const char* cat, const char* name, std::int64_t start_ns,
                    std::int64_t end_ns, const char* k1, std::int64_t v1,
                    const char* k2, std::int64_t v2) {
  if (!tracing_enabled()) {
    return;
  }
  Event e;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.cat = cat;
  e.name = name;
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  e.tid = current_tid();
  append_event(e);
}

std::size_t trace_event_count() {
  return collect_events().size();
}

std::string trace_json() {
  std::vector<Event> events = collect_events();
  // Time-sorted; on a start-time tie the longer (enclosing) span comes
  // first so viewers and the nesting validator see parents before
  // children.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    if (a.dur_ns != b.dur_ns) {
      return a.dur_ns > b.dur_ns;
    }
    return a.tid < b.tid;
  });

  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
      "\"args\":{\"name\":\"qforest\"}}";

  std::vector<std::uint32_t> tids;
  tids.reserve(16);
  for (const Event& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (std::uint32_t tid : tids) {
    char line[160];
    if (tid < 1000) {
      std::snprintf(line, sizeof(line),
                    ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                    "\"tid\":%u,\"args\":{\"name\":\"rank %u\"}}",
                    tid, tid);
    } else {
      std::snprintf(line, sizeof(line),
                    ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                    "\"tid\":%u,\"args\":{\"name\":\"thread %u\"}}",
                    tid, tid - 1000);
    }
    out += line;
  }

  const std::int64_t t0 = events.empty() ? 0 : events.front().ts_ns;
  for (const Event& e : events) {
    char head[256];
    std::snprintf(head, sizeof(head),
                  ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  e.name, e.cat, e.tid,
                  static_cast<double>(e.ts_ns - t0) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += head;
    append_args_json(out, e);
    out.push_back('}');
  }
  out += "\n]}\n";
  return out;
}

bool write_trace_json(const char* path) {
  const std::string json = trace_json();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    log_error("trace: cannot open %s for writing", path);
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    log_error("trace: short write to %s", path);
    return false;
  }
  return true;
}

bool write_trace_if_enabled(const char* path) {
  const std::size_t count = trace_event_count();
  if (count == 0) {
    return false;
  }
  if (!write_trace_json(path)) {
    return false;
  }
  log_info("trace: wrote %zu event(s) to %s", count, path);
  return true;
}

void clear_trace() {
  TraceRegistry& reg = registry();
  const LockGuard lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    // mo: acquire/release — clear walks the published chain and resets
    // each fill count with the same publish protocol the drains use
    // (callers guarantee emitter quiescence).
    for (Chunk* c = &buf->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      c->used.store(0, std::memory_order_release);
    }
  }
}

}  // namespace qforest::obs

#pragma once
/// \file metrics.hpp
/// \brief Named counters and histograms: the qforest metrics registry.
///
/// Always-compiled, runtime-gated production metrics. A disabled metric
/// costs one relaxed atomic load and a predictable branch; an enabled one
/// costs one relaxed fetch_add on a thread-sharded, cacheline-padded cell,
/// so hot loops (chunk workers, mailbox pushes) can keep their counters
/// inline. Shards are merged only at snapshot time, following the same
/// merge-at-the-end pattern as RunningStats::merge in util/stats.hpp.
///
/// Naming convention: `layer.component.event`, e.g.
/// `forest.refine.waves`, `par.msg.send_bytes`, `io.exchange.rounds`.
/// Metrics are registered on first use and live for the process lifetime:
///
/// \code
///   static obs::Counter& c = obs::counter("forest.refine.waves");
///   c.add(1);
/// \endcode
///
/// Gate: `QFOREST_METRICS=1` in the environment or `set_metrics(true)`.
/// Export: `metrics_json()` (embedded in BENCH_*.json records) and
/// `metrics_summary()` (human util/table rendering).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qforest::obs {

namespace detail {

/// Global metrics gate. Set at load time from QFOREST_METRICS (see
/// metrics.cpp) and at runtime via set_metrics().
inline std::atomic<bool> g_metrics_enabled{false};

/// Small dense per-thread index used to pick a shard; threads hash onto
/// shards modulo the shard count, so contention stays bounded without
/// per-thread registration.
std::uint32_t metric_thread_slot();

}  // namespace detail

/// True when metric recording is on. One relaxed load; safe to call from
/// any thread at any time.
inline bool metrics_enabled() {
  // mo: relaxed — gate flag; callers only branch, no data is published
  // through it.
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turn metric recording on or off. Counts accumulated so far are kept;
/// use reset_metrics() to zero them.
void set_metrics(bool on);

/// Monotonic counter, sharded over cacheline-padded atomic cells so
/// concurrent writers on different threads do not bounce one line.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  /// Add \p n to the counter. No-op while metrics are disabled.
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) {
      return;
    }
    // mo: relaxed — sharded statistic; merged only at snapshot time.
    shards_[detail::metric_thread_slot() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (relaxed; exact once writers are quiescent).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    // mo: relaxed — statistics merge; exact once writers are quiescent.
    for (const Cell& c : shards_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zero every shard.
  void reset() {
    // mo: relaxed — statistics reset; callers ensure writer quiescence.
    for (Cell& c : shards_) {
      c.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kShards> shards_{};
};

/// Merged view of one histogram: count/sum/min/max plus power-of-two
/// buckets (bucket 0 holds the value 0, bucket b >= 1 holds values in
/// [2^(b-1), 2^b)).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Bucketed histogram of non-negative integer samples (sizes, depths,
/// nanoseconds). Same sharding scheme as Counter; shard data is merged
/// into a HistogramSnapshot only when read.
class Histogram {
 public:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Record one sample. No-op while metrics are disabled.
  void record(std::uint64_t v) {
    if (!metrics_enabled()) {
      return;
    }
    Shard& s = shards_[detail::metric_thread_slot() % kShards];
    // mo: relaxed — sharded statistics; merged only at snapshot time.
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    fold_min(s.min, v);
    fold_max(s.max, v);
  }

  /// Merge every shard into one snapshot (relaxed; exact once writers
  /// are quiescent).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zero every shard.
  void reset();

  /// Bucket index for a sample: 0 for v == 0, floor(log2(v)) + 1 else.
  static std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) {
      return 0;
    }
    std::size_t b = 0;
    while (v >>= 1) {
      ++b;
    }
    return b + 1;
  }

  /// Inclusive lower bound of values landing in \p bucket.
  static std::uint64_t bucket_floor(std::size_t bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };

  // mo: relaxed (fold_min/fold_max) — monotone min/max fold via CAS;
  // the loop re-reads on failure, so no ordering is required.
  static void fold_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void fold_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    // mo: relaxed — monotone max fold; see fold_min.
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<Shard, kShards> shards_{};
};

/// Look up (registering on first use) the counter named \p name. The
/// returned reference is stable for the process lifetime; cache it in a
/// function-local static at the call site. \p name must outlive the
/// registry — pass a string literal.
Counter& counter(const char* name);

/// Look up (registering on first use) the histogram named \p name. Same
/// lifetime contract as counter().
Histogram& histogram(const char* name);

/// Point-in-time view of every registered metric, name-sorted.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct HistogramRow {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterRow> counters;
  std::vector<HistogramRow> histograms;
};

/// Snapshot every registered metric (including zero-valued ones).
[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// The snapshot as one JSON object:
/// `{"counters":{name:value,...},"histograms":{name:{count,sum,min,max,
/// mean,buckets:[[floor,count],...]},...}}`. Suitable for embedding as a
/// raw value in a BENCH_*.json record.
[[nodiscard]] std::string metrics_json();

/// The snapshot rendered as human-readable util/table text (counters
/// table then histograms table). Zero-count metrics are omitted.
[[nodiscard]] std::string metrics_summary();

/// Zero every registered metric (registration itself is permanent).
void reset_metrics();

}  // namespace qforest::obs

#include "par/strong_scaling.hpp"

namespace qforest::par {

std::vector<int> paper_task_counts(int max_tasks) {
  std::vector<int> counts;
  for (int t = 2; t <= max_tasks; t *= 2) {
    counts.push_back(t);
  }
  return counts;
}

}  // namespace qforest::par

#include "par/strong_scaling.hpp"

namespace qforest::par {

std::vector<int> paper_task_counts(int max_tasks) {
  std::vector<int> counts;
  for (int t = 2; t <= max_tasks; t *= 2) {
    counts.push_back(t);
  }
  return counts;
}

std::vector<int> shard_rank_counts(int max_ranks) {
  std::vector<int> counts;
  for (int t = 8; t <= max_ranks; t *= 2) {
    counts.push_back(t);
  }
  return counts;
}

double scaling_efficiency(double serial_seconds, double wall_seconds,
                          int ranks, unsigned hw_cores) {
  if (wall_seconds <= 0.0 || ranks < 1) {
    return 0.0;
  }
  const int cores = static_cast<int>(hw_cores > 0 ? hw_cores : 1);
  const int ideal = ranks < cores ? ranks : cores;
  return serial_seconds / (wall_seconds * ideal);
}

}  // namespace qforest::par

#include "par/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <latch>
#include <memory>

#include "core/debug_check.hpp"
#include "obs/metrics.hpp"

namespace qforest::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const LockGuard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (in_flight_ != 0) {
    cv_idle_.wait(lock);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(size(), n);
  parallel_for_grain(n, (n + chunks - 1) / chunks, fn);
}

void ThreadPool::parallel_for_grain(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t tasks = (n + grain - 1) / grain;
  if (tasks == 1) {
    fn(0, n);
    return;
  }
  // Per-call completion latch: waiting for global pool quiescence
  // (wait_idle) would couple concurrent parallel_for callers — one
  // caller's fast loop would block for another's slow one. The error slot
  // lives next to it so a throwing block is reported to the caller that
  // *owns* the region, not to whichever thread happened to execute it
  // (the helping wait runs blocks of other callers).
  struct CallState {
    std::latch latch;
    Mutex mutex;
    std::exception_ptr error QF_GUARDED_BY(mutex);
    std::size_t error_begin QF_GUARDED_BY(mutex) = 0;
#if QFOREST_DEBUG_CHECKS_ENABLED
    debug::ChunkCoverage coverage;
    CallState(std::ptrdiff_t t, std::size_t n, std::size_t grain)
        : latch(t), coverage(n, grain) {}
#else
    CallState(std::ptrdiff_t t, std::size_t, std::size_t) : latch(t) {}
#endif
  };
  const auto state = std::make_shared<CallState>(
      static_cast<std::ptrdiff_t>(tasks), n, grain);
  for (std::size_t c = 0; c < tasks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    submit([fn, begin, end, state] {
      // Count down even when fn throws: an abandoned latch would hang
      // this call's waiter forever.
      struct CountDown {
        std::latch* l;
        ~CountDown() { l->count_down(); }
      } guard{&state->latch};
#if QFOREST_DEBUG_CHECKS_ENABLED
      state->coverage.claim(begin, end);
#endif
      try {
        fn(begin, end);
      } catch (...) {
        // Deterministic winner: the lowest-index block's exception is the
        // one rethrown to the owning waiter; later ones are dropped.
        const LockGuard lock(state->mutex);
        if (!state->error || begin < state->error_begin) {
          state->error = std::current_exception();
          state->error_begin = begin;
        }
      }
    });
  }
  // Helping wait: executing queued tasks (ours or another caller's) keeps
  // the pool deadlock-free under nesting — every open latch has its
  // remaining blocks either queued (some helper will pop them) or already
  // executing, and the spawn graph is acyclic, so progress is guaranteed.
  // parallel_for_grain blocks never throw out of try_run_one (they store
  // into their own CallState above); an escaping exception can only come
  // from a task enqueued via raw submit(). It must not unwind past our
  // own latch (our blocks may still be running and reference fn's
  // captures), so the first one is held back and rethrown once every
  // block finished.
  std::exception_ptr helped_error;
  while (!state->latch.try_wait()) {
    bool ran = false;
    try {
      ran = try_run_one();
    } catch (...) {
      if (!helped_error) {
        helped_error = std::current_exception();
      }
      continue;
    }
    if (!ran) {
      state->latch.wait();
      break;
    }
  }
#if QFOREST_DEBUG_CHECKS_ENABLED
  // All blocks have finished (latch closed): the geometry must add up.
  state->coverage.finish();
#endif
  // All blocks counted the latch down, so no writer remains — but the
  // error slot is guarded, and an uncontended lock here is cheaper than
  // an analysis exemption.
  std::exception_ptr block_error;
  {
    const LockGuard lock(state->mutex);
    block_error = state->error;
  }
  if (block_error) {
    std::rethrow_exception(block_error);
  }
  if (helped_error) {
    std::rethrow_exception(helped_error);
  }
}

bool ThreadPool::pop_task_locked(std::function<void()>& out) {
  if (queue_.empty()) {
    return false;
  }
  out = std::move(queue_.front());
  queue_.pop();
  return true;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const LockGuard lock(mutex_);
    if (!pop_task_locked(task)) {
      return false;
    }
  }
  static obs::Counter& c_helped = obs::counter("par.pool.helped_tasks");
  c_helped.add(1);
  run_accounted(task);
  return true;
}

void ThreadPool::run_accounted(std::function<void()>& task) {
  // Keep the in-flight accounting exception-safe: a throwing task must
  // not wedge wait_idle (and the helping wait) forever. On a worker
  // thread an uncaught throw still terminates (no one to rethrow to),
  // but never with the in-flight count wedged.
  struct Account {
    ThreadPool* pool;
    ~Account() {
      const LockGuard lock(pool->mutex_);
      --pool->in_flight_;
      if (pool->in_flight_ == 0) {
        pool->cv_idle_.notify_all();
      }
    }
  } guard{this};
  static obs::Counter& c_tasks = obs::counter("par.pool.tasks");
  c_tasks.add(1);
  task();
}

void ThreadPool::worker_loop() {
  // Looked up before any lock acquisition: registering a metric takes
  // the obs registry lock, and the first worker to block used to take it
  // under mutex_ (a pool -> registry nesting qf_check's lock-order graph
  // would carry forever for one cold-path static init).
  static obs::Counter& c_idle = obs::counter("par.pool.idle_wait_ns");
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      if (obs::metrics_enabled() && queue_.empty() && !stop_) {
        const auto wait_start = std::chrono::steady_clock::now();
        while (!stop_ && queue_.empty()) {
          cv_task_.wait(lock);
        }
        c_idle.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_start)
                .count()));
      } else {
        while (!stop_ && queue_.empty()) {
          cv_task_.wait(lock);
        }
      }
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      (void)pop_task_locked(task);
    }
    run_accounted(task);
  }
}

}  // namespace qforest::par

#include "par/thread_pool.hpp"

#include <algorithm>
#include <latch>
#include <memory>

namespace qforest::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Per-call completion latch: waiting for global pool quiescence
  // (wait_idle) would couple concurrent parallel_for callers — one
  // caller's fast loop would block for another's slow one.
  const std::size_t chunks = std::min<std::size_t>(size(), n);
  const std::size_t per = (n + chunks - 1) / chunks;
  const std::size_t tasks = (n + per - 1) / per;
  const auto latch =
      std::make_shared<std::latch>(static_cast<std::ptrdiff_t>(tasks));
  for (std::size_t c = 0; c < tasks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    submit([fn, begin, end, latch] {
      fn(begin, end);
      latch->count_down();
    });
  }
  latch->wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) {
          return;
        }
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace qforest::par

#include "par/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qforest::par {

Communicator::Communicator(int size) : size_(size) {
  if (size < 1) {
    throw std::invalid_argument("Communicator size must be positive");
  }
}

std::vector<std::int64_t> Communicator::exscan(
    const std::vector<std::int64_t>& values) const {
  assert(static_cast<int>(values.size()) == size_);
  std::vector<std::int64_t> out(values.size() + 1, 0);
  if (size_ == 1) {
    out[1] = values[0];
    return out;
  }
  // Each rank computes its own prefix through the message queue and
  // writes its private slot; the last rank also closes the total.
  run_ranks([&](RankCtx& ctx) {
    const auto r = static_cast<std::size_t>(ctx.rank());
    const std::int64_t prefix = ctx.exscan(values[r]);
    out[r] = prefix;
    if (ctx.rank() == size_ - 1) {
      out[r + 1] = prefix + values[r];
    }
  });
  return out;
}

std::vector<std::int64_t> Communicator::block_distribution(
    std::int64_t n) const {
  std::vector<std::int64_t> offsets(size_ + 1);
  for (int r = 0; r <= size_; ++r) {
    offsets[r] = n * r / size_;
  }
  return offsets;
}

int Communicator::owner_of(const std::vector<std::int64_t>& offsets,
                           std::int64_t g) {
  assert(!offsets.empty());
  assert(g >= offsets.front() && g < offsets.back());
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), g);
  return static_cast<int>(it - offsets.begin()) - 1;
}

}  // namespace qforest::par

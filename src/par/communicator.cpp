#include "par/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qforest::par {

Communicator::Communicator(int size) : size_(size) {
  if (size < 1) {
    throw std::invalid_argument("Communicator size must be positive");
  }
}

std::vector<std::int64_t> Communicator::exscan(
    const std::vector<std::int64_t>& values) const {
  assert(static_cast<int>(values.size()) == size_);
  std::vector<std::int64_t> out(values.size() + 1, 0);
  for (std::size_t r = 0; r < values.size(); ++r) {
    out[r + 1] = out[r] + values[r];
  }
  return out;
}

std::vector<std::int64_t> Communicator::block_distribution(
    std::int64_t n) const {
  std::vector<std::int64_t> offsets(size_ + 1);
  for (int r = 0; r <= size_; ++r) {
    offsets[r] = n * r / size_;
  }
  return offsets;
}

int Communicator::owner_of(const std::vector<std::int64_t>& offsets,
                           std::int64_t g) {
  assert(!offsets.empty());
  assert(g >= offsets.front() && g < offsets.back());
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), g);
  return static_cast<int>(it - offsets.begin()) - 1;
}

}  // namespace qforest::par

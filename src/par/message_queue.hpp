#pragma once
/// \file message_queue.hpp
/// \brief In-process rank shards with MPI-shaped message passing.
///
/// The sharded runtime under the simulated Communicator: every rank is a
/// worker thread owning one Mailbox (a lock-minimal MPSC queue), and ranks
/// talk exclusively through tagged byte-buffer messages — the same
/// source/tag matching, nonblocking request and collective semantics the
/// AMR algorithms would drive through MPI. Layers:
///
///   Mailbox   unbounded multi-producer/single-consumer queue. The push
///             path is lock-free (one exchange + one store, the classic
///             Vyukov intrusive MPSC); the only lock is the sleep/wake
///             handshake of the blocking pop, entered when the queue runs
///             dry. An optional delivery delay models interconnect
///             latency so communication/computation overlap is measurable
///             in-process (there is no real network to hide otherwise).
///   RankGroup the fabric: one Mailbox per rank plus the abort flag that
///             unblocks every rank when one worker throws. run(fn) spawns
///             one thread per rank, joins all of them, and rethrows the
///             lowest-rank exception deterministically.
///   RankCtx   what \p fn receives: isend / irecv / wait_all / recv with
///             (source, tag) matching — messages arriving ahead of their
///             recv park on an unexpected-message list, exactly MPI's
///             matching rule — and the collectives exscan, allgather,
///             alltoallv and barrier built on them.
///
/// Threading contract: a Mailbox's pop side and a RankCtx belong to the
/// one thread run() created them on; push (via isend) is safe from any
/// rank thread. Collectives must be called by every rank in the same
/// order — each call burns one internal tag (>= kInternalTagBase) so
/// adjacent collectives can never cross-match. User tags must stay below
/// kInternalTagBase.

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace qforest::par {

/// Wildcards accepted by the matching receives.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for the collectives (each
/// collective call consumes one tag from this space).
inline constexpr int kInternalTagBase = 1 << 30;

/// One tagged byte-buffer message between ranks.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> bytes;
};

/// Thrown out of blocking receives when another rank's worker failed and
/// the group was aborted; run() reports the original exception instead.
class RankAborted : public std::runtime_error {
 public:
  RankAborted() : std::runtime_error("qforest::par: rank group aborted") {}
};

/// Unbounded MPSC mailbox; see the file comment for the design.
class Mailbox {
 public:
  using clock = std::chrono::steady_clock;

  // mo: relaxed — single-threaded construction; no other thread can see
  // the mailbox before the constructor returns.
  Mailbox() : head_(new Node), tail_(head_.load(std::memory_order_relaxed)) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    Node* n = tail_;
    while (n != nullptr) {
      // mo: relaxed — destruction requires producer quiescence (RankGroup
      // joins every worker first), so there is nothing to synchronize with.
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Lock-free push (any thread): link the node, then take the (empty)
  /// wake lock so a consumer between its last emptiness check and its
  /// wait cannot miss the notify.
  void push(Message m, clock::time_point ready) {
    Node* node = new Node;
    node->msg = std::move(m);
    node->ready = ready;
    // mo: acq_rel — the exchange serializes concurrent producers on the
    // list head (each must see the true previous node to link after).
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    // mo: release — publishes the fully written node (msg, ready) to the
    // consumer's acquire load in advance().
    prev->next.store(node, std::memory_order_release);
    // Queue-depth tracking: the histogram max is the mailbox high-water
    // mark. The depth counter itself stays on (one relaxed RMW next to
    // the exchange above); the histogram is gated.
    // mo: relaxed — metrics-only depth estimate; carries no payload.
    const std::int64_t depth = depth_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (obs::metrics_enabled() && depth >= 0) {
      static obs::Histogram& h_depth =
          obs::histogram("par.msg.mailbox_depth");
      h_depth.record(static_cast<std::uint64_t>(depth));
    }
    { const LockGuard lock(wake_mutex_); }
    wake_cv_.notify_one();
  }

  /// Consumer-only nonblocking pop; ignores delivery delay (used by the
  /// destructor drain and by tests).
  bool try_pop(Message& out) { return advance(out) != nullptr; }

  /// Consumer-only blocking pop. Honors the message's delivery-ready
  /// time by sleeping after dequeue (the queue is FIFO, so the head is
  /// always the earliest-ready message of this mailbox). Throws
  /// RankAborted when \p aborted is set while the queue is dry.
  Message pop_blocking(const std::atomic<bool>& aborted) {
    Message m;
    if (!try_pop(m)) {
      UniqueLock lock(wake_mutex_);
      while (!try_pop(m)) {
        // mo: acquire — pairs with the release store in abort_all so the
        // unblocked consumer sees the group state that caused the abort.
        if (aborted.load(std::memory_order_acquire)) {
          throw RankAborted();
        }
        wake_cv_.wait(lock);
      }
    }
    if (pending_ready_ > clock::time_point::min()) {
      std::this_thread::sleep_until(pending_ready_);
      pending_ready_ = clock::time_point::min();
    }
    return m;
  }

  /// Wake a consumer blocked in pop_blocking (used by the group abort).
  void interrupt() {
    { const LockGuard lock(wake_mutex_); }
    wake_cv_.notify_all();
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    Message msg;
    clock::time_point ready = clock::time_point::min();
  };

  /// Vyukov consumer step: the payload lives in the *next* node, which
  /// becomes the new stub. Returns the dequeued node's address (already
  /// consumed) or nullptr when empty / a producer is mid-push.
  Node* advance(Message& out) {
    Node* tail = tail_;
    // mo: acquire — pairs with the producer's release store of next; the
    // dequeued node's payload writes become visible before it is read.
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return nullptr;
    }
    out = std::move(next->msg);
    pending_ready_ = next->ready;
    tail_ = next;
    delete tail;
    // mo: relaxed — metrics-only depth estimate; carries no payload.
    depth_.fetch_sub(1, std::memory_order_relaxed);
    return next;
  }

  std::atomic<Node*> head_;  ///< producers append here
  Node* tail_;               ///< consumer-owned: current stub node
  std::atomic<std::int64_t> depth_{0};  ///< queued messages (metrics)
  clock::time_point pending_ready_ = clock::time_point::min();
  /// Sleep/wake handshake only — the queue itself is lock-free, so no
  /// field is guarded by it; middle tier of the lock hierarchy (pool <
  /// mailbox < registry). Producers take it empty-scoped before
  /// notifying so a consumer between its last emptiness check and its
  /// wait cannot miss the wakeup.
  Mutex wake_mutex_;
  CondVar wake_cv_;
};

class RankCtx;

/// The fabric connecting \p size rank shards; see the file comment.
class RankGroup {
 public:
  explicit RankGroup(int size) : boxes_(static_cast<std::size_t>(size)) {
    if (size < 1) {
      throw std::invalid_argument("RankGroup size must be positive");
    }
  }

  RankGroup(const RankGroup&) = delete;
  RankGroup& operator=(const RankGroup&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(boxes_.size()); }

  /// Simulated interconnect latency added to every message posted after
  /// the call: a message becomes receivable \p delay after its isend.
  void set_delivery_delay(std::chrono::microseconds delay) {
    // mo: relaxed — tuning knob; a racing isend may use either delay.
    delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

  /// Post a message into \p to's mailbox (safe from any thread).
  void post(int from, int to, int tag, std::vector<std::uint8_t> bytes) {
    assert(from >= 0 && from < size() && to >= 0 && to < size());
    static obs::Counter& c_sends = obs::counter("par.msg.sends");
    static obs::Counter& c_send_bytes = obs::counter("par.msg.send_bytes");
    c_sends.add(1);
    c_send_bytes.add(bytes.size());
    // mo: relaxed — tuning knob; a racing isend may use either delay.
    const std::int64_t d = delay_us_.load(std::memory_order_relaxed);
    const auto ready = d > 0 ? Mailbox::clock::now() +
                                   std::chrono::microseconds(d)
                             : Mailbox::clock::time_point::min();
    boxes_[static_cast<std::size_t>(to)].push(
        Message{from, tag, std::move(bytes)}, ready);
  }

  [[nodiscard]] Mailbox& mailbox(int rank) {
    return boxes_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] const std::atomic<bool>& aborted() const { return aborted_; }

  /// Unblock every rank after a worker failure; their pending blocking
  /// receives throw RankAborted.
  void abort_all() {
    // mo: release — pairs with the acquire load in pop_blocking; the
    // failing rank's writes are visible to every unblocked consumer.
    aborted_.store(true, std::memory_order_release);
    for (auto& box : boxes_) {
      box.interrupt();
    }
  }

  /// Run \p fn(RankCtx&) once per rank. Size 1 runs inline on the
  /// calling thread (the fast path every single-rank caller hits);
  /// otherwise one std::thread per rank, all joined before returning.
  /// When workers throw, the lowest-rank non-abort exception is rethrown
  /// deterministically.
  template <class Fn>
  void run(Fn&& fn);

 private:
  std::vector<Mailbox> boxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> delay_us_{0};
};

/// A nonblocking operation handle: sends complete immediately (in-process
/// post), receives complete in wait_all, which fills \p message.
struct Request {
  bool done = false;
  bool is_recv = false;
  int peer = kAnySource;  ///< send target / receive source filter
  int tag = kAnyTag;
  Message message;  ///< delivered payload once a receive completes
};

/// Per-rank endpoint handed to RankGroup::run's worker function.
class RankCtx {
 public:
  RankCtx(RankGroup& group, int rank) : group_(group), rank_(rank) {}

  RankCtx(const RankCtx&) = delete;
  RankCtx& operator=(const RankCtx&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return group_.size(); }

  // ------------------------------------------------------------ point to point

  /// Nonblocking tagged send; completes immediately.
  Request isend(int to, int tag, std::vector<std::uint8_t> bytes) {
    group_.post(rank_, to, tag, std::move(bytes));
    Request r;
    r.done = true;
    r.peer = to;
    r.tag = tag;
    return r;
  }

  /// Post a matching receive for (\p from, \p tag); completes in
  /// wait_all. Both arguments accept the kAny* wildcards.
  Request irecv(int from = kAnySource, int tag = kAnyTag) {
    Request r;
    r.is_recv = true;
    r.peer = from;
    r.tag = tag;
    return r;
  }

  /// Block until every request completed; received messages land in
  /// their request's \p message. Messages matching no pending request
  /// park on the unexpected list for later receives (MPI matching).
  void wait_all(std::vector<Request>& requests) {
    for (;;) {
      bool all_done = true;
      for (auto& r : requests) {
        if (!r.done && r.is_recv && take_unexpected(r.peer, r.tag, r.message)) {
          r.done = true;
        }
        all_done = all_done && r.done;
      }
      if (all_done) {
        return;
      }
      Message m = pop_counted(true);
      bool matched = false;
      for (auto& r : requests) {
        if (!r.done && r.is_recv && matches(m, r.peer, r.tag)) {
          r.message = std::move(m);
          r.done = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        unexpected_.push_back(std::move(m));
      }
    }
  }

  /// Blocking matching receive.
  Message recv(int from = kAnySource, int tag = kAnyTag) {
    Message m;
    if (take_unexpected(from, tag, m)) {
      return m;
    }
    for (;;) {
      m = pop_counted(false);
      if (matches(m, from, tag)) {
        return m;
      }
      unexpected_.push_back(std::move(m));
    }
  }

  // -------------------------------------------------------------- collectives

  /// Gather one trivially copyable value per rank; result[r] is rank r's
  /// contribution on every rank.
  template <class T>
  [[nodiscard]] std::vector<T> allgather(const T& mine) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "allgather element must be trivially copyable");
    const int tag = next_collective_tag();
    const int p = size();
    std::vector<std::uint8_t> bytes(sizeof(T));
    std::memcpy(bytes.data(), &mine, sizeof(T));
    for (int s = 0; s < p; ++s) {
      if (s != rank_) {
        (void)isend(s, tag, bytes);
      }
    }
    std::vector<T> out(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(rank_)] = mine;
    for (int k = 0; k + 1 < p; ++k) {
      Message m = recv(kAnySource, tag);
      assert(m.bytes.size() == sizeof(T));
      std::memcpy(&out[static_cast<std::size_t>(m.source)], m.bytes.data(),
                  sizeof(T));
    }
    return out;
  }

  /// Exclusive prefix sum across ranks (MPI_Exscan; rank 0 gets 0).
  [[nodiscard]] std::int64_t exscan(std::int64_t value) {
    const std::vector<std::int64_t> all = allgather(value);
    std::int64_t sum = 0;
    for (int r = 0; r < rank_; ++r) {
      sum += all[static_cast<std::size_t>(r)];
    }
    return sum;
  }

  /// Personalized all-to-all over variable-size byte buffers: \p to_each
  /// holds one buffer per target rank (own slot passes through); the
  /// result holds one buffer per source rank.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> alltoallv(
      std::vector<std::vector<std::uint8_t>> to_each) {
    assert(static_cast<int>(to_each.size()) == size());
    const int tag = next_collective_tag();
    const int p = size();
    for (int s = 0; s < p; ++s) {
      if (s != rank_) {
        (void)isend(s, tag, std::move(to_each[static_cast<std::size_t>(s)]));
      }
    }
    std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(p));
    out[static_cast<std::size_t>(rank_)] =
        std::move(to_each[static_cast<std::size_t>(rank_)]);
    for (int k = 0; k + 1 < p; ++k) {
      Message m = recv(kAnySource, tag);
      out[static_cast<std::size_t>(m.source)] = std::move(m.bytes);
    }
    return out;
  }

  /// All ranks entered before any rank leaves.
  void barrier() { (void)allgather<std::uint8_t>(0); }

 private:
  static bool matches(const Message& m, int from, int tag) {
    return (from == kAnySource || m.source == from) &&
           (tag == kAnyTag || m.tag == tag);
  }

  bool take_unexpected(int from, int tag, Message& out) {
    for (std::size_t i = 0; i < unexpected_.size(); ++i) {
      if (matches(unexpected_[i], from, tag)) {
        out = std::move(unexpected_[i]);
        unexpected_.erase(unexpected_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        static obs::Counter& c_hits = obs::counter("par.msg.unexpected_hits");
        c_hits.add(1);
        return true;
      }
    }
    return false;
  }

  /// Mailbox pop with arrival-side metrics: every dequeued message counts
  /// as one receive (matched or parked); \p in_wait_all additionally
  /// charges the block time to par.msg.wait_block_ns.
  Message pop_counted(bool in_wait_all) {
    static obs::Counter& c_recvs = obs::counter("par.msg.recvs");
    static obs::Counter& c_recv_bytes = obs::counter("par.msg.recv_bytes");
    Message m;
    if (obs::metrics_enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      m = group_.mailbox(rank_).pop_blocking(group_.aborted());
      if (in_wait_all) {
        static obs::Counter& c_block = obs::counter("par.msg.wait_block_ns");
        c_block.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      }
    } else {
      m = group_.mailbox(rank_).pop_blocking(group_.aborted());
    }
    c_recvs.add(1);
    c_recv_bytes.add(m.bytes.size());
    return m;
  }

  int next_collective_tag() { return collective_tag_++; }

  RankGroup& group_;
  int rank_;
  int collective_tag_ = kInternalTagBase;
  std::vector<Message> unexpected_;  ///< arrived ahead of their receive
};

template <class Fn>
void RankGroup::run(Fn&& fn) {
  const int p = size();
  if (p == 1) {
    const ThreadRankScope rank_scope(0);
    RankCtx ctx(*this, 0);
    fn(ctx);
    return;
  }
  Mutex error_mutex;
  std::exception_ptr first_error;
  int error_rank = p;  // lowest failing rank wins, aborts rank at worst
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([this, &fn, &error_mutex, &first_error, &error_rank,
                          r] {
      try {
        const ThreadRankScope rank_scope(r);
        RankCtx ctx(*this, r);
        fn(ctx);
      } catch (const RankAborted&) {
        // Secondary failure: this rank was unblocked by abort_all after
        // another rank already threw; keep the original exception.
      } catch (...) {
        {
          const LockGuard lock(error_mutex);
          if (r < error_rank) {
            error_rank = r;
            first_error = std::current_exception();
          }
        }
        abort_all();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace qforest::par

#pragma once
/// \file strong_scaling.hpp
/// \brief Simulated MPI strong-scaling driver for the figure benchmarks.
///
/// The paper's Figures 2-7 plot kernel runtime against 2..512 MPI tasks.
/// The kernels are embarrassingly parallel per-quadrant loops with no
/// communication, so an MPI strong-scaling run at T tasks executes N/T
/// loop iterations per rank and reports the slowest rank's time. We
/// reproduce those semantics exactly on one node: split the index range
/// into T contiguous chunks, run each chunk's loop serially, time each
/// chunk with the per-thread CPU clock, and report the maximum — what
/// MPI_Wtime around an MPI_Barrier'ed loop would measure, minus noise.
/// See DESIGN.md §4 for why this substitution preserves the figures'
/// scientific content (relative representation speedups per task count).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace qforest::par {

/// One measured point of a scaling series.
struct ScalingPoint {
  int tasks = 0;
  double max_task_seconds = 0.0;  ///< what the paper's y-axis shows
  double sum_task_seconds = 0.0;  ///< total CPU work, for sanity checks
};

/// A named runtime-vs-tasks series (one line in a paper figure).
struct ScalingSeries {
  std::string label;
  std::vector<ScalingPoint> points;
};

/// Run \p kernel(begin, end) over [0, n) split into \p tasks chunks and
/// return the simulated strong-scaling time (max over chunk times).
///
/// \p repetitions repeats the whole sweep and keeps the minimum per chunk,
/// suppressing scheduler noise. The kernel must be pure over disjoint
/// chunks (no shared mutable state).
template <class Kernel>
ScalingPoint run_strong_scaling(std::size_t n, int tasks, Kernel&& kernel,
                                int repetitions = 3) {
  ScalingPoint point;
  point.tasks = tasks;
  std::vector<double> best(static_cast<std::size_t>(tasks), 1.0e300);
  for (int rep = 0; rep < repetitions; ++rep) {
    for (int t = 0; t < tasks; ++t) {
      const std::size_t begin = n * static_cast<std::size_t>(t) /
                                static_cast<std::size_t>(tasks);
      const std::size_t end = n * (static_cast<std::size_t>(t) + 1) /
                              static_cast<std::size_t>(tasks);
      const double t0 = thread_cpu_time_s();
      kernel(begin, end);
      const double dt = thread_cpu_time_s() - t0;
      if (dt < best[static_cast<std::size_t>(t)]) {
        best[static_cast<std::size_t>(t)] = dt;
      }
    }
  }
  for (double b : best) {
    point.sum_task_seconds += b;
    if (b > point.max_task_seconds) {
      point.max_task_seconds = b;
    }
  }
  return point;
}

/// The task counts of the paper's x-axes: powers of two from 2 to 512.
std::vector<int> paper_task_counts(int max_tasks = 512);

/// The simulated rank counts of the sharded-exchange strong-scaling
/// bench: powers of two from 8 to \p max_ranks.
std::vector<int> shard_rank_counts(int max_ranks = 64);

/// Parallel efficiency of a \p ranks-shard wall time against the serial
/// reference on a host with \p hw_cores: speedup / ideal speedup, where
/// the ideal is min(ranks, hw_cores) — more shards than cores cannot beat
/// the core count, and fewer shards than cores cannot use them all.
double scaling_efficiency(double serial_seconds, double wall_seconds,
                          int ranks, unsigned hw_cores);

}  // namespace qforest::par

#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size worker pool for data-parallel loops.
///
/// Used by the examples and by the strong-scaling driver when the machine
/// offers more than one hardware thread; all benchmark *measurements* use
/// serial per-task timing (see strong_scaling.hpp) so results do not depend
/// on the container's core count.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace qforest::par {

/// Fixed-size thread pool with a blocking wait for quiescence.
class ThreadPool {
 public:
  /// Create \p threads workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run fn(i) for i in [0, n) split into roughly size() blocks and wait
  /// for *these* blocks only (per-call latch, not pool quiescence), so
  /// concurrent parallel_for callers never block on each other's work.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Chunked submit: run fn(begin, end) over [0, n) in blocks of exactly
  /// \p grain elements (the last block may be shorter) and wait for these
  /// blocks only. The waiting thread *helps*: while its latch is open it
  /// executes queued tasks instead of blocking, so nested parallel_for /
  /// parallel_for_grain calls from inside a pool task are safe — a fixed
  /// pool whose workers all wait on inner latches would otherwise
  /// deadlock with the inner blocks still queued. When fn throws, the
  /// lowest-index block's exception is rethrown on the calling thread
  /// once every block finished — to *this* call's caller even when the
  /// block actually ran on another caller's helping thread; further
  /// exceptions of the same call are dropped.
  void parallel_for_grain(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  /// Pop and execute one queued task on the calling thread; false when the
  /// queue is empty.
  bool try_run_one();

  /// Execute \p task with exception-safe in-flight accounting (shared by
  /// worker_loop and try_run_one).
  void run_accounted(std::function<void()>& task);

  /// Move the next queued task into \p out; false when the queue is
  /// empty. Callers own the dequeue ordering, hence the held lock.
  bool pop_task_locked(std::function<void()>& out) QF_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  /// Guards the task queue and the lifecycle/quiescence state below;
  /// lowest tier of the documented lock hierarchy (pool < mailbox <
  /// registry) — the obs registry lock may be taken while this is held,
  /// never the reverse.
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ QF_GUARDED_BY(mutex_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ QF_GUARDED_BY(mutex_) = 0;
  bool stop_ QF_GUARDED_BY(mutex_) = false;
};

}  // namespace qforest::par

#pragma once
/// \file communicator.hpp
/// \brief Simulated MPI communicator (substitution substrate, DESIGN.md §4).
///
/// The paper benchmarks on up to 512 MPI cores. This container has no MPI;
/// we reproduce the *semantics* the AMR algorithms rely on — rank counts,
/// contiguous rank ranges over the global quadrant sequence, prefix sums,
/// allgather — with deterministic in-process execution. The forest's
/// partition and ghost algorithms exercise exactly the same offset and
/// ownership logic they would drive through MPI collectives.

#include <cstdint>
#include <numeric>
#include <vector>

namespace qforest::par {

/// A communicator of \p size simulated ranks.
class Communicator {
 public:
  explicit Communicator(int size = 1);

  [[nodiscard]] int size() const { return size_; }

  /// Exclusive prefix sum over one value per rank (MPI_Exscan + final sum):
  /// result has size()+1 entries, result[r] = sum of values[0..r).
  [[nodiscard]] std::vector<std::int64_t> exscan(
      const std::vector<std::int64_t>& values) const;

  /// Allgather is the identity in shared memory; provided for symmetry so
  /// algorithm code reads like its MPI counterpart.
  template <class T>
  [[nodiscard]] const std::vector<T>& allgather(
      const std::vector<T>& values) const {
    return values;
  }

  /// Split \p n items into size() contiguous chunks as evenly as possible
  /// (the classical block distribution). Returns size()+1 offsets.
  [[nodiscard]] std::vector<std::int64_t> block_distribution(
      std::int64_t n) const;

  /// Rank owning global index \p g under offsets from block_distribution /
  /// weighted partitioning: the unique r with offsets[r] <= g < offsets[r+1].
  static int owner_of(const std::vector<std::int64_t>& offsets,
                      std::int64_t g);

 private:
  int size_;
};

}  // namespace qforest::par

#pragma once
/// \file communicator.hpp
/// \brief Simulated MPI communicator (substitution substrate, DESIGN.md §4).
///
/// The paper benchmarks on up to 512 MPI cores. This container has no MPI;
/// we reproduce the *semantics* the AMR algorithms rely on — rank counts,
/// contiguous rank ranges over the global quadrant sequence, prefix sums,
/// gathers — with deterministic in-process execution. Since PR 8 the
/// substrate is a real sharded runtime (message_queue.hpp): run_ranks
/// spawns one worker thread per rank, wired to per-rank MPSC mailboxes,
/// and the collectives here are thin synchronous wrappers over the
/// message-passing versions on RankCtx. The Communicator itself stays a
/// cheap copyable value (Forest stores one by value); mailboxes live only
/// for the duration of a run_ranks call.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/message_queue.hpp"

namespace qforest::par {

/// A communicator of \p size simulated ranks.
class Communicator {
 public:
  explicit Communicator(int size = 1);

  [[nodiscard]] int size() const { return size_; }

  /// Run \p fn(RankCtx&) once per rank, each rank on its own worker
  /// thread with a mailbox in a fresh RankGroup (size 1 runs inline).
  /// The ctx offers isend/irecv/wait_all/recv plus the message-passing
  /// collectives; see message_queue.hpp for the threading contract.
  template <class Fn>
  void run_ranks(Fn&& fn) const {
    RankGroup group(size_);
    group.run(std::forward<Fn>(fn));
  }

  /// Exclusive prefix sum over one value per rank (MPI_Exscan + final sum):
  /// result has size()+1 entries, result[r] = sum of values[0..r).
  /// Synchronous wrapper over RankCtx::exscan — each rank contributes
  /// values[r] through the message queue; single-rank calls stay serial.
  [[nodiscard]] std::vector<std::int64_t> exscan(
      const std::vector<std::int64_t>& values) const;

  /// Real per-rank gather: rank r contributes values[r], every rank
  /// gathers the full vector through the message queue, and all gathered
  /// copies are verified byte-identical before one is returned. The
  /// single-rank fast path returns the input unchanged.
  template <class T>
  [[nodiscard]] std::vector<T> allgather(const std::vector<T>& values) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "allgather element must be trivially copyable");
    assert(static_cast<int>(values.size()) == size_);
    if (size_ == 1) {
      return values;
    }
    std::vector<T> out(values.size());
    std::atomic<int> mismatches{0};
    run_ranks([&](RankCtx& ctx) {
      const std::vector<T> gathered =
          ctx.allgather(values[static_cast<std::size_t>(ctx.rank())]);
      if (gathered.size() != values.size() ||
          std::memcmp(gathered.data(), values.data(),
                      values.size() * sizeof(T)) != 0) {
        // mo: relaxed — error tally; read only after run_ranks joined.
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      if (ctx.rank() == 0) {
        out = gathered;
      }
    });
    // mo: relaxed — writers joined in run_ranks; the join orders them.
    assert(mismatches.load(std::memory_order_relaxed) == 0 &&
           "allgather: ranks disagree");
    (void)mismatches;
    return out;
  }

  /// Split \p n items into size() contiguous chunks as evenly as possible
  /// (the classical block distribution). Returns size()+1 offsets.
  [[nodiscard]] std::vector<std::int64_t> block_distribution(
      std::int64_t n) const;

  /// Rank owning global index \p g under offsets from block_distribution /
  /// weighted partitioning: the unique r with offsets[r] <= g < offsets[r+1].
  static int owner_of(const std::vector<std::int64_t>& offsets,
                      std::int64_t g);

 private:
  int size_;
};

}  // namespace qforest::par

#pragma once
/// \file vec128.hpp
/// \brief 128-bit SIMD wrapper: AVX2/SSE2 intrinsics with scalar fallback.
///
/// The paper's second representation stores a quadrant in an `__m128i`
/// register (Figure 1) and rewrites low-level algorithms with intrinsics
/// (Algorithms 9-12). This header wraps exactly the subset of SSE2/AVX2
/// used by those algorithms behind a type `Vec128` that degrades to a
/// scalar 4x32-bit struct when the build lacks AVX2, keeping every user of
/// the AVX representation portable and testable everywhere.
///
/// Lane convention: lane 0 is the lowest 32 bits (Intel element 0, i.e. the
/// last argument of _mm_set_epi32).

#include <cstdint>

#include "simd/feature_detect.hpp"

#if QFOREST_HAVE_AVX2
#include <immintrin.h>
#endif

namespace qforest::simd {

#if QFOREST_HAVE_AVX2

/// Hardware-backed 128-bit vector of four 32-bit (or two 64-bit) integers.
struct Vec128 {
  __m128i v;

  Vec128() : v(_mm_setzero_si128()) {}
  explicit Vec128(__m128i raw) : v(raw) {}

  /// Build from four 32-bit lanes; lane0 is the lowest.
  static Vec128 set32(std::uint32_t lane3, std::uint32_t lane2,
                      std::uint32_t lane1, std::uint32_t lane0) {
    return Vec128(_mm_set_epi32(static_cast<int>(lane3),
                                static_cast<int>(lane2),
                                static_cast<int>(lane1),
                                static_cast<int>(lane0)));
  }

  /// Build from two 64-bit lanes; lane0 is the lowest.
  static Vec128 set64(std::uint64_t lane1, std::uint64_t lane0) {
    return Vec128(_mm_set_epi64x(static_cast<long long>(lane1),
                                 static_cast<long long>(lane0)));
  }

  /// All four lanes equal to \p x.
  static Vec128 broadcast32(std::uint32_t x) {
    return Vec128(_mm_set1_epi32(static_cast<int>(x)));
  }

  /// Both 64-bit lanes equal to \p x.
  static Vec128 broadcast64(std::uint64_t x) {
    return Vec128(_mm_set1_epi64x(static_cast<long long>(x)));
  }

  static Vec128 zero() { return Vec128(_mm_setzero_si128()); }
  static Vec128 ones() { return Vec128(_mm_set1_epi32(-1)); }

  /// Extract 32-bit lane \p i (compile-time index).
  template <int I>
  [[nodiscard]] std::uint32_t lane32() const {
    return static_cast<std::uint32_t>(_mm_extract_epi32(v, I));
  }

  /// Extract 64-bit lane \p i (compile-time index).
  template <int I>
  [[nodiscard]] std::uint64_t lane64() const {
    return static_cast<std::uint64_t>(_mm_extract_epi64(v, I));
  }

  /// Replace 32-bit lane \p I, returning the new vector.
  template <int I>
  [[nodiscard]] Vec128 with_lane32(std::uint32_t x) const {
    return Vec128(_mm_insert_epi32(v, static_cast<int>(x), I));
  }

  friend Vec128 operator&(Vec128 a, Vec128 b) {
    return Vec128(_mm_and_si128(a.v, b.v));
  }
  friend Vec128 operator|(Vec128 a, Vec128 b) {
    return Vec128(_mm_or_si128(a.v, b.v));
  }
  friend Vec128 operator^(Vec128 a, Vec128 b) {
    return Vec128(_mm_xor_si128(a.v, b.v));
  }
  /// ~a & b (note the SSE andnot argument order).
  static Vec128 andnot(Vec128 a, Vec128 b) {
    return Vec128(_mm_andnot_si128(a.v, b.v));
  }
  [[nodiscard]] Vec128 operator~() const {
    return Vec128(_mm_xor_si128(v, _mm_set1_epi32(-1)));
  }

  /// Lane-wise 32-bit addition.
  static Vec128 add32(Vec128 a, Vec128 b) {
    return Vec128(_mm_add_epi32(a.v, b.v));
  }
  /// Lane-wise 32-bit subtraction.
  static Vec128 sub32(Vec128 a, Vec128 b) {
    return Vec128(_mm_sub_epi32(a.v, b.v));
  }

  /// Shift all 32-bit lanes left by the runtime scalar \p count.
  static Vec128 shl32(Vec128 a, unsigned count) {
    return Vec128(_mm_sll_epi32(a.v, _mm_cvtsi32_si128(static_cast<int>(count))));
  }
  /// Shift all 32-bit lanes right (logical) by the runtime scalar \p count.
  static Vec128 shr32(Vec128 a, unsigned count) {
    return Vec128(_mm_srl_epi32(a.v, _mm_cvtsi32_si128(static_cast<int>(count))));
  }
  /// Per-lane variable left shift (AVX2 _mm_sllv_epi32).
  static Vec128 shlv32(Vec128 a, Vec128 counts) {
    return Vec128(_mm_sllv_epi32(a.v, counts.v));
  }
  /// Per-lane variable right shift (AVX2 _mm_srlv_epi32).
  static Vec128 shrv32(Vec128 a, Vec128 counts) {
    return Vec128(_mm_srlv_epi32(a.v, counts.v));
  }
  /// Per-lane variable left shift on 64-bit lanes (AVX2 _mm_sllv_epi64).
  static Vec128 shlv64(Vec128 a, Vec128 counts) {
    return Vec128(_mm_sllv_epi64(a.v, counts.v));
  }
  /// Per-lane variable right shift on 64-bit lanes (AVX2 _mm_srlv_epi64).
  static Vec128 shrv64(Vec128 a, Vec128 counts) {
    return Vec128(_mm_srlv_epi64(a.v, counts.v));
  }

  /// Lane-wise 32-bit equality; true lanes become 0xFFFFFFFF.
  static Vec128 cmpeq32(Vec128 a, Vec128 b) {
    return Vec128(_mm_cmpeq_epi32(a.v, b.v));
  }
  /// Lane-wise 32-bit signed greater-than; true lanes become 0xFFFFFFFF.
  static Vec128 cmpgt32(Vec128 a, Vec128 b) {
    return Vec128(_mm_cmpgt_epi32(a.v, b.v));
  }

  /// Per-lane select: lane from \p yes where mask lane is all-ones.
  static Vec128 blend(Vec128 mask, Vec128 yes, Vec128 no) {
    return Vec128(_mm_blendv_epi8(no.v, yes.v, mask.v));
  }

  /// Broadcast 32-bit lane 3 (the level lane) to all four lanes without
  /// leaving the SIMD domain (one pshufd).
  [[nodiscard]] Vec128 broadcast_lane3() const {
    return Vec128(_mm_shuffle_epi32(v, 0xFF));
  }

  /// Load four 32-bit lanes from 16-byte-aligned memory.
  static Vec128 load_aligned(const std::uint32_t* p) {
    return Vec128(_mm_load_si128(reinterpret_cast<const __m128i*>(p)));
  }

  /// One bit per byte of the vector (SSE2 movemask).
  [[nodiscard]] int movemask8() const { return _mm_movemask_epi8(v); }

  /// True when every bit is zero.
  [[nodiscard]] bool all_zero() const { return _mm_testz_si128(v, v) != 0; }

  /// Bitwise equality of two vectors.
  static bool equal(Vec128 a, Vec128 b) {
    return Vec128(_mm_xor_si128(a.v, b.v)).all_zero();
  }
};

#else  // scalar fallback --------------------------------------------------

/// Scalar stand-in for the 128-bit vector; semantics match the AVX2 path
/// lane for lane so tests written against Vec128 run unchanged.
struct Vec128 {
  std::uint32_t lanes[4] = {0, 0, 0, 0};

  Vec128() = default;

  static Vec128 set32(std::uint32_t lane3, std::uint32_t lane2,
                      std::uint32_t lane1, std::uint32_t lane0) {
    Vec128 r;
    r.lanes[0] = lane0;
    r.lanes[1] = lane1;
    r.lanes[2] = lane2;
    r.lanes[3] = lane3;
    return r;
  }

  static Vec128 set64(std::uint64_t lane1, std::uint64_t lane0) {
    Vec128 r;
    r.lanes[0] = static_cast<std::uint32_t>(lane0);
    r.lanes[1] = static_cast<std::uint32_t>(lane0 >> 32);
    r.lanes[2] = static_cast<std::uint32_t>(lane1);
    r.lanes[3] = static_cast<std::uint32_t>(lane1 >> 32);
    return r;
  }

  static Vec128 broadcast32(std::uint32_t x) { return set32(x, x, x, x); }
  static Vec128 broadcast64(std::uint64_t x) { return set64(x, x); }
  static Vec128 zero() { return Vec128{}; }
  static Vec128 ones() { return broadcast32(0xFFFFFFFFu); }

  template <int I>
  [[nodiscard]] std::uint32_t lane32() const {
    return lanes[I];
  }

  template <int I>
  [[nodiscard]] std::uint64_t lane64() const {
    return static_cast<std::uint64_t>(lanes[2 * I]) |
           (static_cast<std::uint64_t>(lanes[2 * I + 1]) << 32);
  }

  template <int I>
  [[nodiscard]] Vec128 with_lane32(std::uint32_t x) const {
    Vec128 r = *this;
    r.lanes[I] = x;
    return r;
  }

  friend Vec128 operator&(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = a.lanes[i] & b.lanes[i];
    return r;
  }
  friend Vec128 operator|(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = a.lanes[i] | b.lanes[i];
    return r;
  }
  friend Vec128 operator^(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = a.lanes[i] ^ b.lanes[i];
    return r;
  }
  static Vec128 andnot(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = ~a.lanes[i] & b.lanes[i];
    return r;
  }
  [[nodiscard]] Vec128 operator~() const {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = ~lanes[i];
    return r;
  }

  static Vec128 add32(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = a.lanes[i] + b.lanes[i];
    return r;
  }
  static Vec128 sub32(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) r.lanes[i] = a.lanes[i] - b.lanes[i];
    return r;
  }

  static Vec128 shl32(Vec128 a, unsigned count) {
    Vec128 r;
    for (int i = 0; i < 4; ++i)
      r.lanes[i] = count < 32 ? a.lanes[i] << count : 0;
    return r;
  }
  static Vec128 shr32(Vec128 a, unsigned count) {
    Vec128 r;
    for (int i = 0; i < 4; ++i)
      r.lanes[i] = count < 32 ? a.lanes[i] >> count : 0;
    return r;
  }
  static Vec128 shlv32(Vec128 a, Vec128 counts) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t c = counts.lanes[i];
      r.lanes[i] = c < 32 ? a.lanes[i] << c : 0;
    }
    return r;
  }
  static Vec128 shrv32(Vec128 a, Vec128 counts) {
    Vec128 r;
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t c = counts.lanes[i];
      r.lanes[i] = c < 32 ? a.lanes[i] >> c : 0;
    }
    return r;
  }
  static Vec128 shlv64(Vec128 a, Vec128 counts) {
    const std::uint64_t c0 = counts.lane64<0>(), c1 = counts.lane64<1>();
    return set64(c1 < 64 ? a.lane64<1>() << c1 : 0,
                 c0 < 64 ? a.lane64<0>() << c0 : 0);
  }
  static Vec128 shrv64(Vec128 a, Vec128 counts) {
    const std::uint64_t c0 = counts.lane64<0>(), c1 = counts.lane64<1>();
    return set64(c1 < 64 ? a.lane64<1>() >> c1 : 0,
                 c0 < 64 ? a.lane64<0>() >> c0 : 0);
  }

  static Vec128 cmpeq32(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i)
      r.lanes[i] = a.lanes[i] == b.lanes[i] ? 0xFFFFFFFFu : 0u;
    return r;
  }
  static Vec128 cmpgt32(Vec128 a, Vec128 b) {
    Vec128 r;
    for (int i = 0; i < 4; ++i)
      r.lanes[i] = static_cast<std::int32_t>(a.lanes[i]) >
                           static_cast<std::int32_t>(b.lanes[i])
                       ? 0xFFFFFFFFu
                       : 0u;
    return r;
  }

  static Vec128 blend(Vec128 mask, Vec128 yes, Vec128 no) {
    Vec128 r;
    for (int i = 0; i < 4; ++i)
      r.lanes[i] =
          (yes.lanes[i] & mask.lanes[i]) | (no.lanes[i] & ~mask.lanes[i]);
    return r;
  }

  [[nodiscard]] int movemask8() const {
    int m = 0;
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t byte = (lanes[i / 4] >> (8 * (i % 4))) & 0xFFu;
      if (byte & 0x80u) m |= 1 << i;
    }
    return m;
  }

  [[nodiscard]] Vec128 broadcast_lane3() const {
    return broadcast32(lanes[3]);
  }

  static Vec128 load_aligned(const std::uint32_t* p) {
    return set32(p[3], p[2], p[1], p[0]);
  }

  [[nodiscard]] bool all_zero() const {
    return (lanes[0] | lanes[1] | lanes[2] | lanes[3]) == 0;
  }

  static bool equal(Vec128 a, Vec128 b) { return (a ^ b).all_zero(); }
};

#endif  // QFOREST_HAVE_AVX2

}  // namespace qforest::simd

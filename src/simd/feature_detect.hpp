#pragma once
/// \file feature_detect.hpp
/// \brief Compile-time and runtime CPU feature detection for the SIMD paths.
///
/// The AVX quadrant representation compiles to intrinsics only when the
/// translation unit is built with -mavx2; otherwise a semantically identical
/// scalar fallback is used so the full test suite runs on any hardware.
/// Runtime detection (cpuid) is reported by the benchmarks so a reader of
/// bench_output.txt knows which path was measured.

#include <string>

// Compile-time capability of this build.
#if defined(__AVX2__)
#define QFOREST_HAVE_AVX2 1
#else
#define QFOREST_HAVE_AVX2 0
#endif

#if defined(__SSE2__) || defined(__x86_64__)
#define QFOREST_HAVE_SSE2 1
#else
#define QFOREST_HAVE_SSE2 0
#endif

#if defined(__BMI2__)
#define QFOREST_HAVE_BMI2 1
#else
#define QFOREST_HAVE_BMI2 0
#endif

namespace qforest::simd {

/// Features the executing CPU advertises via cpuid.
struct CpuFeatures {
  bool sse2 = false;
  bool sse41 = false;
  bool avx = false;
  bool avx2 = false;
  bool bmi2 = false;
};

/// Query cpuid once and cache the result.
const CpuFeatures& cpu_features();

/// Human-readable summary, e.g. "sse2 sse4.1 avx avx2 bmi2".
std::string feature_string();

/// True when both this build and the CPU support AVX2.
bool avx2_usable();

/// True when both this build and the CPU support BMI2 pdep/pext.
bool bmi2_usable();

}  // namespace qforest::simd

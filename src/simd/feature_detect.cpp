#include "simd/feature_detect.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace qforest::simd {

namespace {
CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1u;
    f.sse41 = (ecx >> 19) & 1u;
    f.avx = (ecx >> 28) & 1u;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1u;
    f.bmi2 = (ebx >> 8) & 1u;
  }
#endif
  return f;
}
}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  if (f.sse2) s += "sse2 ";
  if (f.sse41) s += "sse4.1 ";
  if (f.avx) s += "avx ";
  if (f.avx2) s += "avx2 ";
  if (f.bmi2) s += "bmi2 ";
  if (!s.empty()) s.pop_back();
  return s;
}

bool avx2_usable() { return QFOREST_HAVE_AVX2 != 0 && cpu_features().avx2; }

bool bmi2_usable() { return QFOREST_HAVE_BMI2 != 0 && cpu_features().bmi2; }

}  // namespace qforest::simd

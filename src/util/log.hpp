#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger for the qforest library.
///
/// Mirrors the SC_LP_* log priorities of the sc library that underlies
/// p4est: a process-global threshold filters messages, and all output is
/// line-buffered to a single stream so interleaving from simulated ranks
/// stays readable.

#include <cstdarg>
#include <cstdio>
#include <string>

namespace qforest {

/// Log priority levels, lowest is most verbose.
enum class LogLevel : int {
  kTrace = 0,   ///< per-quadrant chatter, disabled in benchmarks
  kDebug = 1,   ///< per-algorithm internal state
  kInfo = 2,    ///< one-line progress per high-level call
  kProduction = 3,  ///< results and summaries
  kError = 4,   ///< unrecoverable problems
  kSilent = 5   ///< suppress everything
};

/// Set the process-global log threshold. Messages below it are dropped.
void set_log_level(LogLevel level);

/// Current process-global log threshold.
LogLevel log_level();

/// printf-style logging at an explicit level.
void log(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Convenience wrappers.
void log_trace(const char* fmt, ...);
void log_debug(const char* fmt, ...);
void log_info(const char* fmt, ...);
void log_prod(const char* fmt, ...);
void log_error(const char* fmt, ...);

/// Redirect log output (default: stderr). Pass nullptr to restore stderr.
void set_log_stream(std::FILE* stream);

}  // namespace qforest

#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger for the qforest library.
///
/// Mirrors the SC_LP_* log priorities of the sc library that underlies
/// p4est: a process-global threshold filters messages, and all output is
/// line-buffered to a single stream so interleaving from simulated ranks
/// stays readable.

#include <cstdarg>
#include <cstdio>
#include <string>

namespace qforest {

/// Log priority levels, lowest is most verbose.
enum class LogLevel : int {
  kTrace = 0,   ///< per-quadrant chatter, disabled in benchmarks
  kDebug = 1,   ///< per-algorithm internal state
  kInfo = 2,    ///< one-line progress per high-level call
  kProduction = 3,  ///< results and summaries
  kError = 4,   ///< unrecoverable problems
  kSilent = 5   ///< suppress everything
};

/// Set the process-global log threshold. Messages below it are dropped.
void set_log_level(LogLevel level);

/// Current process-global log threshold.
LogLevel log_level();

/// printf-style logging at an explicit level.
void log(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

/// Convenience wrappers.
void log_trace(const char* fmt, ...);
void log_debug(const char* fmt, ...);
void log_info(const char* fmt, ...);
void log_prod(const char* fmt, ...);
void log_error(const char* fmt, ...);

/// Redirect log output (default: stderr). Pass nullptr to restore stderr.
void set_log_stream(std::FILE* stream);

/// Bind the calling thread to a simulated rank id (or -1 for none). Log
/// lines emitted while bound carry an `rN` tag so interleaved multi-rank
/// output stays attributable, and trace events from the thread use the
/// rank as their Perfetto thread id. Prefer ThreadRankScope over calling
/// this directly.
void set_thread_rank(int rank);

/// The simulated rank the calling thread is bound to, or -1.
[[nodiscard]] int thread_rank();

/// RAII rank binding for the calling thread; restores the previous
/// binding on destruction. The rank runtime (par::RankGroup) installs one
/// around every worker body.
class ThreadRankScope {
 public:
  explicit ThreadRankScope(int rank) : prev_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ThreadRankScope() { set_thread_rank(prev_); }

  ThreadRankScope(const ThreadRankScope&) = delete;
  ThreadRankScope& operator=(const ThreadRankScope&) = delete;

 private:
  int prev_;
};

}  // namespace qforest

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qforest {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  mean_ += delta * nb / nab;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SampleSummary summarize(const std::vector<double>& samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  RunningStats rs;
  for (double x : samples) {
    rs.add(x);
  }
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile(samples, 50.0);
  return s;
}

double percentile(const std::vector<double>& samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double speedup_percent(double baseline_seconds, double candidate_seconds) {
  if (candidate_seconds <= 0.0) {
    return 0.0;
  }
  return 100.0 * (baseline_seconds - candidate_seconds) / candidate_seconds;
}

}  // namespace qforest

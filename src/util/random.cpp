#include "util/random.hpp"

namespace qforest {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's method: multiply-shift with rejection in the biased zone.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::next_in_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Xoshiro256::next_bool(double p) { return next_double() < p; }

}  // namespace qforest

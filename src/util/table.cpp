#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace qforest {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

std::string Table::fmt_bytes(unsigned long long bytes) {
  static constexpr const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", bytes);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) {
        line += "  ";
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < widths.size()) {
      sep += "  ";
    }
  }
  out += sep + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void Table::print(std::FILE* stream) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stream);
  std::fflush(stream);
}

}  // namespace qforest

#include "util/memory_tracker.hpp"

namespace qforest {

std::atomic<std::size_t> MemoryTracker::current_{0};
std::atomic<std::size_t> MemoryTracker::peak_{0};
std::atomic<std::size_t> MemoryTracker::total_{0};
std::atomic<std::size_t> MemoryTracker::count_{0};

void MemoryTracker::reset() {
  // mo: relaxed (all stores) — statistics reset between experiment
  // phases; callers ensure allocator quiescence.
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

void MemoryTracker::on_allocate(std::size_t bytes) {
  // mo: relaxed — independent counters on the allocation hot path; only
  // atomicity matters, readers snapshot after quiescence.
  total_.fetch_add(bytes, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // mo: relaxed — monotone max fold via CAS; the loop re-reads on
  // failure, so no ordering is required for correctness.
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::on_deallocate(std::size_t bytes) {
  // mo: relaxed — counter decrement; see on_allocate.
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace qforest

#include "util/timer.hpp"

#include <ctime>
#include <utility>

#include "util/log.hpp"

namespace qforest {

namespace {
double clock_gettime_s(clockid_t id) {
  timespec ts{};
  ::clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         1.0e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

double thread_cpu_time_s() { return clock_gettime_s(CLOCK_THREAD_CPUTIME_ID); }

double process_cpu_time_s() {
  return clock_gettime_s(CLOCK_PROCESS_CPUTIME_ID);
}

ScopedTimer::ScopedTimer(std::string label) : label_(std::move(label)) {}

ScopedTimer::~ScopedTimer() {
  log_debug("%s: %.6f s", label_.c_str(), timer_.elapsed_s());
}

}  // namespace qforest

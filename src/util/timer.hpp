#pragma once
/// \file timer.hpp
/// \brief Wall-clock and CPU timers used by the benchmark harness.

#include <chrono>
#include <cstdint>
#include <string>

namespace qforest {

/// High-resolution wall-clock stopwatch.
///
/// Typical use in the figure harnesses:
/// \code
///   WallTimer t;
///   kernel_loop(...);
///   double seconds = t.elapsed_s();
/// \endcode
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restart the stopwatch at the current instant.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU time in seconds (CLOCK_THREAD_CPUTIME_ID).
///
/// The simulated strong-scaling driver measures each task's work with CPU
/// time so that results are stable even when the container is oversubscribed.
double thread_cpu_time_s();

/// Process CPU time in seconds (CLOCK_PROCESS_CPUTIME_ID).
double process_cpu_time_s();

/// RAII timer that logs its scope's duration at debug level on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  WallTimer timer_;
};

}  // namespace qforest

#include "util/log.hpp"

#include <atomic>
#include <cstdarg>

#include "util/thread_annotations.hpp"

namespace qforest {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::FILE*> g_stream{nullptr};
/// Serializes line assembly only (no state below it) — top tier of the
/// lock hierarchy (pool < mailbox < registry/log): nothing may be
/// acquired while this is held.
Mutex g_mutex;
thread_local int t_rank = -1;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kProduction: return "PROD ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  // mo: relaxed — level/stream are independent tuning knobs; a racing
  // setter at worst reroutes or drops one line.
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::FILE* stream = g_stream.load(std::memory_order_relaxed);
  if (stream == nullptr) {
    stream = stderr;
  }
  const LockGuard lock(g_mutex);
  if (t_rank >= 0) {
    std::fprintf(stream, "[qforest %s r%d] ", level_tag(level), t_rank);
  } else {
    std::fprintf(stream, "[qforest %s] ", level_tag(level));
  }
  std::vfprintf(stream, fmt, args);
  std::fputc('\n', stream);
  std::fflush(stream);
}

}  // namespace

void set_log_level(LogLevel level) {
  // mo: relaxed — tuning knob; see vlog.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  // mo: relaxed — tuning knob; see vlog.
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_stream(std::FILE* stream) {
  // mo: relaxed — tuning knob; see vlog.
  g_stream.store(stream, std::memory_order_relaxed);
}

void set_thread_rank(int rank) {
  t_rank = rank;
}

int thread_rank() {
  return t_rank;
}

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define QFOREST_DEFINE_LOG_FN(name, level)      \
  void name(const char* fmt, ...) {             \
    std::va_list args;                          \
    va_start(args, fmt);                        \
    vlog(level, fmt, args);                     \
    va_end(args);                               \
  }

QFOREST_DEFINE_LOG_FN(log_trace, LogLevel::kTrace)
QFOREST_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
QFOREST_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
QFOREST_DEFINE_LOG_FN(log_prod, LogLevel::kProduction)
QFOREST_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef QFOREST_DEFINE_LOG_FN

}  // namespace qforest

#pragma once
/// \file thread_annotations.hpp
/// \brief Clang Thread Safety Analysis macros + annotated lock drop-ins.
///
/// Moves the repo's lock discipline into the type system: fields carry
/// QF_GUARDED_BY(mutex), helpers that assume a held lock carry
/// QF_REQUIRES(mutex), and the lock types below are capability-annotated
/// so `clang -Wthread-safety` proves at compile time that every guarded
/// access happens under its lock. On GCC (and any compiler without the
/// attributes) every macro expands to nothing and qf::Mutex degrades to a
/// plain std::mutex wrapper — zero cost, identical semantics.
///
/// Conventions (see ARCHITECTURE.md "Static analysis"):
///  - every mutex member is a qf::Mutex, every scope lock a qf::LockGuard
///    (or qf::UniqueLock when a CondVar wait needs to drop it);
///  - condition-variable waits are written as explicit while-loops around
///    CondVar::wait so the predicate reads of guarded fields stay inside
///    the analyzed, lock-holding function body (a wait(lock, pred) lambda
///    would be analyzed as a separate unannotated function and warn);
///  - the documented lock hierarchy is pool < mailbox < registry
///    (ThreadPool::mutex_ < Mailbox::wake_mutex_ < the obs/log registry
///    mutexes): a later-tier lock may be acquired while an earlier-tier
///    lock is held, never the reverse. tools/qf_check extracts the actual
///    nesting graph and fails on cycles.
///
/// The macro set mirrors the canonical names from the Clang documentation
/// (capability, scoped_lockable, guarded_by, ...), prefixed QF_.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(QFOREST_NO_THREAD_SAFETY_ANALYSIS)
#define QF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define QF_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define QF_CAPABILITY(x) QF_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define QF_SCOPED_CAPABILITY QF_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be read or written while \p x is held.
#define QF_GUARDED_BY(x) QF_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer) is protected by \p x.
#define QF_PT_GUARDED_BY(x) QF_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while the listed capabilities are held.
#define QF_REQUIRES(...) QF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define QF_ACQUIRE(...) QF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no longer held on return).
#define QF_RELEASE(...) QF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define QF_TRY_ACQUIRE(...) \
  QF_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (non-reentrant locks; prevents self-deadlock).
#define QF_EXCLUDES(...) QF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares lock-ordering edges for the analysis (beta in Clang).
#define QF_ACQUIRED_BEFORE(...) \
  QF_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define QF_ACQUIRED_AFTER(...) \
  QF_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability protecting its result.
#define QF_RETURN_CAPABILITY(x) QF_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by analysis).
#define QF_ASSERT_CAPABILITY(x) QF_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disable the analysis for one function. Use only with a
/// comment explaining why the discipline cannot be expressed.
#define QF_NO_THREAD_SAFETY_ANALYSIS \
  QF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace qforest {

/// std::mutex with the capability annotation: lockable by the analysis,
/// byte-identical behavior. native() exposes the wrapped mutex for the
/// CondVar adopt/release dance only — never lock through it directly.
class QF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QF_ACQUIRE() { m_.lock(); }
  void unlock() QF_RELEASE() { m_.unlock(); }
  bool try_lock() QF_TRY_ACQUIRE(true) { return m_.try_lock(); }

  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard drop-in over qf::Mutex. Scoped capability: the
/// analysis knows the mutex is held between construction and the end of
/// the enclosing scope.
class QF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) QF_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~LockGuard() QF_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock drop-in over qf::Mutex: relockable scoped capability,
/// the lock type CondVar waits on. Only the locked-on-construction mode
/// is provided — deferred/adopted construction would make the capability
/// state ambiguous to the analysis.
class QF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) QF_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~UniqueLock() QF_RELEASE() {
    if (held_) {
      mu_.unlock();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() QF_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() QF_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  [[nodiscard]] Mutex& mutex() { return mu_; }
  [[nodiscard]] bool owns_lock() const { return held_; }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// std::condition_variable over qf::UniqueLock. wait() carries no
/// acquire/release annotation: the lock is held on entry and on return
/// (released only inside the wait), so the caller's capability state is
/// unchanged — guarded predicate reads around the wait stay provable.
/// Write waits as explicit loops:
///
/// \code
///   UniqueLock lock(mutex_);
///   while (!ready_) {        // ready_ is QF_GUARDED_BY(mutex_)
///     cv_.wait(lock);
///   }
/// \endcode
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release \p lk, sleep, reacquire. \p lk must be locked.
  void wait(UniqueLock& lk) {
    std::unique_lock<std::mutex> native(lk.mutex().native(), std::adopt_lock);
    cv_.wait(native);
    // The std::unique_lock was a borrowed view of a lock qf::UniqueLock
    // still owns; releasing the view keeps it from double-unlocking.
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qforest

/// The ISSUE-10 spelling: qf::Mutex, qf::LockGuard, qf::UniqueLock,
/// qf::CondVar name the same types.
namespace qf = qforest;  // NOLINT(misc-unused-alias-decls)

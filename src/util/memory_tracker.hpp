#pragma once
/// \file memory_tracker.hpp
/// \brief Byte-exact allocation accounting for the memory experiment.
///
/// The paper measures RAM for a uniform octree with Intel VTune (25.8 /
/// 17.2 / 8.6 GB for standard / AVX / Morton). We substitute a counting
/// allocator so the same quantity — bytes allocated for quadrant storage —
/// is measured exactly and portably.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace qforest {

/// Process-global allocation counters, updated by TrackingAllocator.
class MemoryTracker {
 public:
  // mo: relaxed (all four readers) — statistics snapshot; experiments
  // read after the allocating phase joined, so no ordering is needed.
  /// Currently outstanding bytes.
  static std::size_t current_bytes() {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark of outstanding bytes since the last reset().
  static std::size_t peak_bytes() {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Total bytes ever allocated since the last reset().
  static std::size_t total_bytes() {
    // mo: relaxed — statistics snapshot; see current_bytes.
    return total_.load(std::memory_order_relaxed);
  }
  /// Number of allocations since the last reset().
  static std::size_t allocation_count() {
    // mo: relaxed — statistics snapshot; see current_bytes.
    return count_.load(std::memory_order_relaxed);
  }

  /// Zero all counters (outstanding allocations keep their real size;
  /// only the statistics restart).
  static void reset();

  /// Internal: record an allocation of \p bytes.
  static void on_allocate(std::size_t bytes);
  /// Internal: record a deallocation of \p bytes.
  static void on_deallocate(std::size_t bytes);

 private:
  static std::atomic<std::size_t> current_;
  static std::atomic<std::size_t> peak_;
  static std::atomic<std::size_t> total_;
  static std::atomic<std::size_t> count_;
};

/// STL-compatible allocator that reports every byte to MemoryTracker.
/// Respects over-aligned types (the AVX representation requires 16-byte
/// alignment), which std::allocator already guarantees via operator new.
template <class T>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <class U>
  explicit TrackingAllocator(const TrackingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    MemoryTracker::on_allocate(bytes);
    if (alignof(T) > alignof(std::max_align_t)) {
      return static_cast<T*>(
          ::operator new(bytes, std::align_val_t(alignof(T))));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    MemoryTracker::on_deallocate(n * sizeof(T));
    if (alignof(T) > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      ::operator delete(p);
    }
  }

  template <class U>
  bool operator==(const TrackingAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const TrackingAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace qforest

#pragma once
/// \file table.hpp
/// \brief ASCII table printer for benchmark and experiment output.
///
/// The figure harnesses print the same series the paper plots (runtime vs.
/// task count per representation); this helper renders them as aligned
/// monospace tables that are easy to diff and to paste into EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

namespace qforest {

/// Column-aligned ASCII table builder.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a fully formatted row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with \p precision digits.
  static std::string fmt(double value, int precision = 4);
  /// Convenience: format an integer.
  static std::string fmt(long long value);
  /// Convenience: format bytes with a binary-unit suffix (KiB/MiB/GiB).
  static std::string fmt_bytes(unsigned long long bytes);

  /// Render to a string with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Render to \p stream (default stdout).
  void print(std::FILE* stream = stdout) const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qforest

#pragma once
/// \file random.hpp
/// \brief Deterministic fast RNG (xoshiro256**) for workload generation.
///
/// All synthetic workloads in tests and benchmarks derive from this engine
/// with fixed seeds, so runs are reproducible bit-for-bit.

#include <cstdint>

namespace qforest {

/// xoshiro256** by Blackman & Vigna; fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  /// Seed via splitmix64 expansion of a single 64-bit value.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability \p p.
  bool next_bool(double p = 0.5);

  // UniformRandomBitGenerator interface for <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace qforest

#pragma once
/// \file stats.hpp
/// \brief Streaming and batch statistics for benchmark measurements.

#include <cstddef>
#include <vector>

namespace qforest {

/// Welford-style streaming accumulator: mean/variance/min/max in O(1) space.
class RunningStats {
 public:
  /// Insert one sample.
  void add(double x);

  /// Number of samples inserted so far.
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Square root of variance().
  [[nodiscard]] double stddev() const;
  /// Smallest sample; +inf when empty.
  [[nodiscard]] double min() const { return min_; }
  /// Largest sample; -inf when empty.
  [[nodiscard]] double max() const { return max_; }
  /// Sum of all samples.
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1.0e300;
  double max_ = -1.0e300;
};

/// Batch summary of a sample vector used by the figure harnesses.
struct SampleSummary {
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Compute a SampleSummary; the input is copied, not reordered.
SampleSummary summarize(const std::vector<double>& samples);

/// Percentile in [0,100] by linear interpolation; input copied.
double percentile(const std::vector<double>& samples, double p);

/// Relative speedup of \p candidate over \p baseline in percent, i.e.
/// 100 * (baseline - candidate) / candidate, matching the paper's
/// "X% average performance boost" phrasing (how much more work per second
/// the candidate does than the baseline).
double speedup_percent(double baseline_seconds, double candidate_seconds);

}  // namespace qforest

#pragma once
/// \file algorithms.hpp
/// \brief Representation-generic quadrant algorithms composed from the
/// low-level operation set (the layer p4est implements in p4est_bits.c on
/// top of the primitive encodings).
///
/// Everything here is written once against the QuadrantRepresentation
/// concept and therefore works for all four encodings — the "write the
/// octree algorithms just once" goal of the paper's abstraction (§2).

#include <array>
#include <cassert>
#include <vector>

#include "core/canonical.hpp"
#include "core/rep_traits.hpp"
#include "core/types.hpp"

namespace qforest {

/// True when \p a and \p b are distinct children of the same parent.
template <class R>
bool is_sibling(const typename R::quad_t& a, const typename R::quad_t& b) {
  if (R::level(a) == 0 || R::level(a) != R::level(b) || R::equal(a, b)) {
    return false;
  }
  return R::equal(R::parent(a), R::parent(b));
}

/// True when \p p is exactly the parent of \p q.
template <class R>
bool is_parent_of(const typename R::quad_t& p, const typename R::quad_t& q) {
  return R::level(q) > 0 && R::level(p) == R::level(q) - 1 &&
         R::equal(R::parent(q), p);
}

/// True when the 2^d quadrants beginning at \p family form a complete
/// sibling family in Morton order (p4est_quadrant_is_familyv).
template <class R>
bool is_family(const typename R::quad_t* family) {
  constexpr int nc = DimConstants<R::dim>::num_children;
  if (R::level(family[0]) == 0 || R::child_id(family[0]) != 0) {
    return false;
  }
  const typename R::quad_t p = R::parent(family[0]);
  for (int c = 1; c < nc; ++c) {
    if (R::level(family[c]) != R::level(family[0]) ||
        R::child_id(family[c]) != c || !R::equal(R::parent(family[c]), p)) {
      return false;
    }
  }
  return true;
}

/// All 2^d children of \p q in Morton order.
template <class R>
std::array<typename R::quad_t, DimConstants<R::dim>::num_children> children(
    const typename R::quad_t& q) {
  std::array<typename R::quad_t, DimConstants<R::dim>::num_children> out;
  for (int c = 0; c < DimConstants<R::dim>::num_children; ++c) {
    out[static_cast<std::size_t>(c)] = R::child(q, c);
  }
  return out;
}

/// The face neighbor one level coarser: the parent-sized quadrant across
/// face \p f that contains the equal-size neighbor
/// (p4est_quadrant_face_neighbor at level l-1).
template <class R>
typename R::quad_t coarse_face_neighbor(const typename R::quad_t& q, int f) {
  assert(R::level(q) > 0);
  return R::ancestor(R::face_neighbor(q, f), R::level(q) - 1);
}

/// The 2^(d-1) half-size neighbors across face \p f, i.e. the children of
/// the equal-size neighbor that touch the shared face, in Morton order
/// (p4est_quadrant_half_face_neighbors).
template <class R>
std::vector<typename R::quad_t> half_face_neighbors(
    const typename R::quad_t& q, int f) {
  assert(R::level(q) < R::max_level);
  const typename R::quad_t n = R::face_neighbor(q, f);
  std::vector<typename R::quad_t> out;
  out.reserve(DimConstants<R::dim>::num_children / 2);
  // Children of n touching the face back toward q: their direction bit
  // along the face axis equals the *opposite* face side.
  const int axis = f >> 1;
  const int touching_bit = (f & 1) ? 0 : 1;  // +f neighbor touches via its -side
  for (int c = 0; c < DimConstants<R::dim>::num_children; ++c) {
    if (((c >> axis) & 1) == touching_bit) {
      out.push_back(R::child(n, c));
    }
  }
  return out;
}

/// Number of same-level quadrants strictly between \p a and \p b along
/// the curve at the (common) level of both; 0 when adjacent or equal.
/// Requires level_index validity (dim*level < 64).
template <class R>
morton_t curve_distance(const typename R::quad_t& a,
                        const typename R::quad_t& b) {
  assert(R::level(a) == R::level(b));
  const morton_t ia = R::level_index(a);
  const morton_t ib = R::level_index(b);
  return ia < ib ? ib - ia : ia - ib;
}

/// Enumerate the same-level quadrants from \p first to \p last inclusive
/// along the Morton curve (successor chain). Both ends must share the
/// level and first <= last in curve order.
template <class R>
std::vector<typename R::quad_t> curve_range(const typename R::quad_t& first,
                                            const typename R::quad_t& last) {
  assert(R::level(first) == R::level(last));
  assert(!R::less(last, first));
  std::vector<typename R::quad_t> out;
  typename R::quad_t cur = first;
  out.push_back(cur);
  while (!R::equal(cur, last)) {
    cur = R::successor(cur);
    out.push_back(cur);
  }
  return out;
}

/// Build the minimal complete linear octree between two quadrants: the
/// coarsest sorted set of quadrants covering the gap (a, b) exclusively
/// (p4est complete_region, the core of top-down forest construction).
/// \p a and \p b must satisfy a < b in Morton order and not overlap.
template <class R>
std::vector<typename R::quad_t> complete_region(const typename R::quad_t& a,
                                                const typename R::quad_t& b) {
  assert(R::less(a, b));
  assert(!R::overlaps(a, b));
  std::vector<typename R::quad_t> out;
  // Classic algorithm: walk from the NCA downward; emit maximal quadrants
  // strictly between a and b.
  const typename R::quad_t nca = R::nearest_common_ancestor(a, b);
  // Recursive lambda over the children of the current node.
  auto emit = [&](auto&& self, const typename R::quad_t& node) -> void {
    if (!R::overlaps(node, a) && !R::overlaps(node, b)) {
      if (R::less(a, node) && R::less(node, b)) {
        out.push_back(node);
      }
      return;
    }
    if (R::equal(node, a) || R::equal(node, b)) {
      return;
    }
    for (int c = 0; c < DimConstants<R::dim>::num_children; ++c) {
      self(self, R::child(node, c));
    }
  };
  emit(emit, nca);
  return out;
}

/// The deepest quadrant at \p level containing the unit-coordinate point
/// (px, py, pz) in [0, 1)^d; exact for dyadic rationals.
template <class R>
typename R::quad_t containing_quadrant(double px, double py, double pz,
                                       int level) {
  assert(level >= 0 && level <= R::max_level);
  assert(px >= 0 && px < 1 && py >= 0 && py < 1);
  // Build via the canonical form: exact for every representation
  // including 64-bit-coordinate ones.
  const auto grid = static_cast<double>(std::int64_t{1} << level);
  CanonicalQuadrant c;
  c.level = level;
  c.x = static_cast<std::int64_t>(px * grid) << (kCanonicalLevel - level);
  c.y = static_cast<std::int64_t>(py * grid) << (kCanonicalLevel - level);
  c.z = R::dim == 3 ? static_cast<std::int64_t>(pz * grid)
                          << (kCanonicalLevel - level)
                    : 0;
  return from_canonical<R>(c);
}

}  // namespace qforest

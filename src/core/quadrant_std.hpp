#pragma once
/// \file quadrant_std.hpp
/// \brief Standard (baseline) quadrant representation: explicit xyz + level.
///
/// This is the classical p4est encoding (paper §2.1): the coordinates of
/// the lower front left corner on the 2^L integer grid plus the refinement
/// level, padded and extended by 8 bytes of user payload, for 24 bytes per
/// octant in 3D. All low-level algorithms operate directly on coordinate
/// bits; Algorithms 1 (Morton), 2 (Child) and 3 (Sibling) of the paper are
/// implemented verbatim here, the remaining operations follow
/// p4est's p4est_bits.c.

#include <cassert>
#include <cstdint>

#include "core/bits.hpp"
#include "core/types.hpp"

namespace qforest {

/// Plain-struct storage for the standard representation.
template <int Dim>
struct StandardQuadrant;

template <>
struct StandardQuadrant<2> {
  coord_t x = 0;      ///< lower-left corner, x
  coord_t y = 0;      ///< lower-left corner, y
  level_t level = 0;  ///< refinement level, root = 0
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
  std::uint64_t payload = 0;  ///< 8 bytes of user data (historic p4est ABI)
};

template <>
struct StandardQuadrant<3> {
  coord_t x = 0;      ///< lower front left corner, x
  coord_t y = 0;      ///< lower front left corner, y
  coord_t z = 0;      ///< lower front left corner, z
  level_t level = 0;  ///< refinement level, root = 0
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
  std::uint64_t payload = 0;  ///< 8 bytes of user data (historic p4est ABI)
};

static_assert(sizeof(StandardQuadrant<3>) == 24,
              "paper: standard 3D octant occupies 24 bytes");

/// Low-level operations on the standard representation.
///
/// The class is stateless; every method is static and O(1). `quad_t` is
/// cheap to copy. Coordinates are signed so face neighbors may lie outside
/// the unit tree (p4est uses such exterior quadrants during ghost layer
/// construction); use inside_root() to test.
template <int Dim>
class StandardRep {
 public:
  using quad_t = StandardQuadrant<Dim>;
  using dims = DimConstants<Dim>;

  static constexpr int dim = Dim;
  /// p4est's maximum refinement level for explicit coordinates.
  static constexpr int max_level = 29;
  static constexpr const char* name = "standard";

  /// Integer side length of a quadrant at \p level.
  static constexpr coord_t length_at(int level) {
    return static_cast<coord_t>(1) << (max_level - level);
  }

  /// Root quadrant covering the unit tree.
  static quad_t root() { return quad_t{}; }

  // --- accessors -----------------------------------------------------------

  static int level(const quad_t& q) { return q.level; }

  /// Integer side length h = 2^(L-l).
  static coord_t length(const quad_t& q) { return length_at(q.level); }

  /// Coordinate along \p axis (0=x, 1=y, 2=z).
  static coord_t coord(const quad_t& q, int axis) {
    if (axis == 0) return q.x;
    if (axis == 1) return q.y;
    if constexpr (Dim == 3) {
      if (axis == 2) return q.z;
    }
    assert(false && "axis out of range");
    return 0;
  }

  /// Construct from explicit coordinates and level (grid of 2^max_level).
  static quad_t from_coords(coord_t x, coord_t y, coord_t z, int lvl) {
    quad_t q{};
    q.x = x;
    q.y = y;
    if constexpr (Dim == 3) {
      q.z = z;
    } else {
      (void)z;
    }
    q.level = static_cast<level_t>(lvl);
    return q;
  }

  /// Extract coordinates and level; z is 0 in 2D.
  static void to_coords(const quad_t& q, coord_t& x, coord_t& y, coord_t& z,
                        int& lvl) {
    x = q.x;
    y = q.y;
    z = Dim == 3 ? zcoord(q) : 0;
    lvl = q.level;
  }

  /// True when the quadrant lies fully inside the unit tree.
  static bool inside_root(const quad_t& q) {
    const coord_t last = (static_cast<coord_t>(1) << max_level) - length(q);
    bool ok = q.x >= 0 && q.x <= last && q.y >= 0 && q.y <= last;
    if constexpr (Dim == 3) {
      ok = ok && q.z >= 0 && q.z <= last;
    }
    return ok;
  }

  /// Structural validity: level in range, coordinates aligned to length.
  static bool is_valid(const quad_t& q) {
    if (q.level < 0 || q.level > max_level) {
      return false;
    }
    const coord_t h = length(q);
    bool ok = (q.x & (h - 1)) == 0 && (q.y & (h - 1)) == 0;
    if constexpr (Dim == 3) {
      ok = ok && (zcoord(q) & (h - 1)) == 0;
    }
    return ok && inside_root(q);
  }

  // --- Morton index transformations (paper Algorithm 1 and inverse) --------

  /// Paper Algorithm 1 (verbatim bit loop): build the quadrant with
  /// level-relative Morton index \p il on the uniform mesh of level
  /// \p lvl. Requires Dim*lvl <= 63. This is the kernel benchmarked in
  /// the paper's Figure 2; see morton_quadrant_pdep for the BMI2 variant.
  static quad_t morton_quadrant(morton_t il, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    assert(Dim * lvl < 64);
    morton_t x = 0, y = 0, z = 0;
    for (int i = 0; i < lvl; ++i) {
      const morton_t extractid = morton_t{1} << (Dim * i);
      const int shiftcrd = (Dim - 1) * i;
      x |= (il & (extractid << 0)) >> (shiftcrd + 0);
      y |= (il & (extractid << 1)) >> (shiftcrd + 1);
      if constexpr (Dim == 3) {
        z |= (il & (extractid << 2)) >> (shiftcrd + 2);
      }
    }
    quad_t q{};
    // Set x, y, z according to L (paper Alg. 1 line 8).
    q.x = static_cast<coord_t>(x) << (max_level - lvl);
    q.y = static_cast<coord_t>(y) << (max_level - lvl);
    if constexpr (Dim == 3) {
      q.z = static_cast<coord_t>(z) << (max_level - lvl);
    }
    q.level = static_cast<level_t>(lvl);
    return q;
  }

  /// BMI2/pdep variant of Algorithm 1 (ablation: bench_interleave shows
  /// how hardware bit-deposit changes Figure 2's ranking).
  static quad_t morton_quadrant_pdep(morton_t il, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    assert(Dim * lvl < 64);
    quad_t q{};
    std::uint32_t cx = 0, cy = 0, cz = 0;
    if constexpr (Dim == 2) {
      bits::deinterleave2(il, cx, cy);
    } else {
      bits::deinterleave3(il, cx, cy, cz);
    }
    q.x = static_cast<coord_t>(cx) << (max_level - lvl);
    q.y = static_cast<coord_t>(cy) << (max_level - lvl);
    if constexpr (Dim == 3) {
      q.z = static_cast<coord_t>(cz) << (max_level - lvl);
    }
    q.level = static_cast<level_t>(lvl);
    return q;
  }

  /// Morton index relative to the quadrant's own level (inverse of
  /// morton_quadrant). Requires Dim*level <= 63.
  static morton_t level_index(const quad_t& q) {
    assert(Dim * q.level < 64);
    const int down = max_level - q.level;
    const auto ux = static_cast<std::uint32_t>(q.x) >> down;
    const auto uy = static_cast<std::uint32_t>(q.y) >> down;
    if constexpr (Dim == 2) {
      return bits::interleave2(ux, uy);
    } else {
      const auto uz = static_cast<std::uint32_t>(zcoord(q)) >> down;
      return bits::interleave3(ux, uy, uz);
    }
  }

  /// Morton index relative to max_level, in 128 bits (3D needs 87 bits).
  static unsigned __int128 full_index(const quad_t& q) {
    const auto ux = static_cast<std::uint32_t>(q.x);
    const auto uy = static_cast<std::uint32_t>(q.y);
    unsigned __int128 idx;
    if constexpr (Dim == 2) {
      idx = bits::interleave2(ux, uy);
    } else {
      const auto uz = static_cast<std::uint32_t>(zcoord(q));
      // Interleave the low 21 bits in 64-bit space and the remaining high
      // bits separately, then stitch the two pieces together.
      const std::uint64_t lo =
          bits::interleave3(ux & bits::low_mask(21), uy & bits::low_mask(21),
                            uz & bits::low_mask(21));
      const std::uint64_t hi = bits::interleave3(ux >> 21, uy >> 21, uz >> 21);
      idx = (static_cast<unsigned __int128>(hi) << 63) | lo;
    }
    return idx;
  }

  // --- family operations (paper Algorithms 2, 3 + p4est_bits) --------------

  /// Child id of the quadrant relative to its parent: one direction bit
  /// per dimension taken at the quadrant's own level.
  static int child_id(const quad_t& q) {
    assert(q.level > 0);
    const coord_t h = length(q);
    int id = (q.x & h) ? 1 : 0;
    id |= (q.y & h) ? 2 : 0;
    if constexpr (Dim == 3) {
      id |= (zcoord(q) & h) ? 4 : 0;
    }
    return id;
  }

  /// Child id of the ancestor of \p q at \p lvl relative to its parent.
  static int ancestor_id(const quad_t& q, int lvl) {
    assert(lvl > 0 && lvl <= q.level);
    const coord_t h = length_at(lvl);
    int id = (q.x & h) ? 1 : 0;
    id |= (q.y & h) ? 2 : 0;
    if constexpr (Dim == 3) {
      id |= (zcoord(q) & h) ? 4 : 0;
    }
    return id;
  }

  /// Paper Algorithm 2: the c-th child, setting up to d coordinate bits.
  static quad_t child(const quad_t& q, int c) {
    assert(q.level < max_level);
    assert(c >= 0 && c < dims::num_children);
    const coord_t shift = length_at(q.level + 1);
    quad_t r = q;
    r.x = (c & 1) ? q.x | shift : q.x;
    r.y = (c & 2) ? q.y | shift : q.y;
    if constexpr (Dim == 3) {
      r.z = (c & 4) ? q.z | shift : q.z;
    }
    r.level = static_cast<level_t>(q.level + 1);
    return r;
  }

  /// Paper Algorithm 3: the s-th sibling (same parent, child id s).
  static quad_t sibling(const quad_t& q, int s) {
    assert(q.level > 0);
    assert(s >= 0 && s < dims::num_children);
    const coord_t shift = length(q);
    quad_t r = q;
    r.x = (s & 1) ? q.x | shift : q.x & ~shift;
    r.y = (s & 2) ? q.y | shift : q.y & ~shift;
    if constexpr (Dim == 3) {
      r.z = (s & 4) ? q.z | shift : q.z & ~shift;
    }
    return r;
  }

  /// The unique parent (Definition 2.5, standard encoding).
  static quad_t parent(const quad_t& q) {
    assert(q.level > 0);
    const coord_t h = length(q);
    quad_t r = q;
    r.x = q.x & ~h;
    r.y = q.y & ~h;
    if constexpr (Dim == 3) {
      r.z = q.z & ~h;
    }
    r.level = static_cast<level_t>(q.level - 1);
    return r;
  }

  /// Ancestor at level \p lvl <= level(q): blank all finer coordinate bits.
  static quad_t ancestor(const quad_t& q, int lvl) {
    assert(lvl >= 0 && lvl <= q.level);
    const coord_t mask = ~(length_at(lvl) - 1);
    quad_t r = q;
    r.x = q.x & mask;
    r.y = q.y & mask;
    if constexpr (Dim == 3) {
      r.z = q.z & mask;
    }
    r.level = static_cast<level_t>(lvl);
    return r;
  }

  /// First descendant (same corner) at level \p lvl >= level(q).
  static quad_t first_descendant(const quad_t& q, int lvl) {
    assert(lvl >= q.level && lvl <= max_level);
    quad_t r = q;
    r.level = static_cast<level_t>(lvl);
    return r;
  }

  /// Last descendant (opposite corner) at level \p lvl >= level(q).
  static quad_t last_descendant(const quad_t& q, int lvl) {
    assert(lvl >= q.level && lvl <= max_level);
    const coord_t delta = length(q) - length_at(lvl);
    quad_t r = q;
    r.x = q.x + delta;
    r.y = q.y + delta;
    if constexpr (Dim == 3) {
      r.z = q.z + delta;
    }
    r.level = static_cast<level_t>(lvl);
    return r;
  }

  /// Next quadrant of the same level along the Morton curve.
  /// Standard encoding: increment the level-relative index via carry
  /// propagation over coordinate bits.
  static quad_t successor(const quad_t& q) {
    assert(q.level > 0 || !"root has no successor");
    // Increment by flipping trailing 1-direction-bits, exactly a +1 on the
    // interleaved index but performed on the separate coordinates.
    quad_t r = q;
    const coord_t h = length(q);
    for (int lvl = q.level; lvl > 0; --lvl) {
      const coord_t bit = length_at(lvl);
      // Child id bits at this level; +1 with carry.
      int id = 0;
      id |= (r.x & bit) ? 1 : 0;
      id |= (r.y & bit) ? 2 : 0;
      if constexpr (Dim == 3) {
        id |= (r.z & bit) ? 4 : 0;
      }
      const int next = (id + 1) & (dims::num_children - 1);
      r.x = next & 1 ? r.x | bit : r.x & ~bit;
      r.y = next & 2 ? r.y | bit : r.y & ~bit;
      if constexpr (Dim == 3) {
        r.z = next & 4 ? r.z | bit : r.z & ~bit;
      }
      if (next != 0) {
        return r;  // no carry out of this level
      }
    }
    (void)h;
    return r;  // wrapped around past the last quadrant
  }

  /// Previous quadrant of the same level along the Morton curve.
  static quad_t predecessor(const quad_t& q) {
    quad_t r = q;
    for (int lvl = q.level; lvl > 0; --lvl) {
      const coord_t bit = length_at(lvl);
      int id = 0;
      id |= (r.x & bit) ? 1 : 0;
      id |= (r.y & bit) ? 2 : 0;
      if constexpr (Dim == 3) {
        id |= (r.z & bit) ? 4 : 0;
      }
      const int prev = (id + dims::num_children - 1) & (dims::num_children - 1);
      r.x = prev & 1 ? r.x | bit : r.x & ~bit;
      r.y = prev & 2 ? r.y | bit : r.y & ~bit;
      if constexpr (Dim == 3) {
        r.z = prev & 4 ? r.z | bit : r.z & ~bit;
      }
      if (prev != dims::num_children - 1) {
        return r;  // no borrow out of this level
      }
    }
    return r;
  }

  // --- neighborhood ---------------------------------------------------------

  /// Face neighbor across face \p f (p4est order -x,+x,-y,+y,-z,+z).
  /// The result may lie outside the unit tree (signed coordinates).
  static quad_t face_neighbor(const quad_t& q, int f) {
    assert(f >= 0 && f < dims::num_faces);
    const coord_t h = length(q);
    quad_t r = q;
    const coord_t delta = (f & 1) ? h : -h;
    switch (f >> 1) {
      case 0: r.x = q.x + delta; break;
      case 1: r.y = q.y + delta; break;
      default:
        if constexpr (Dim == 3) {
          r.z = q.z + delta;
        }
        break;
    }
    return r;
  }

  /// Corner neighbor across corner \p c (diagonal touch), may be exterior.
  static quad_t corner_neighbor(const quad_t& q, int c) {
    assert(c >= 0 && c < dims::num_corners);
    const coord_t h = length(q);
    quad_t r = q;
    r.x = q.x + ((c & 1) ? h : -h);
    r.y = q.y + ((c & 2) ? h : -h);
    if constexpr (Dim == 3) {
      r.z = q.z + ((c & 4) ? h : -h);
    }
    return r;
  }

  /// Which unit-tree faces does the quadrant touch, per direction
  /// (paper Algorithm 12 semantics: -2 all, -1 none, 2i or 2i+1).
  static void tree_boundaries(const quad_t& q, int out[Dim]) {
    if (q.level == 0) {
      for (int i = 0; i < Dim; ++i) {
        out[i] = kBoundaryAll;
      }
      return;
    }
    const coord_t up =
        (static_cast<coord_t>(1) << max_level) - length(q);
    for (int i = 0; i < Dim; ++i) {
      const coord_t c = coord(q, i);
      out[i] = c == 0 ? 2 * i : (c == up ? 2 * i + 1 : kBoundaryNone);
    }
  }

  // --- ordering and containment ----------------------------------------------

  static bool equal(const quad_t& a, const quad_t& b) {
    bool e = a.x == b.x && a.y == b.y && a.level == b.level;
    if constexpr (Dim == 3) {
      e = e && a.z == b.z;
    }
    return e;
  }

  /// Strict Morton order: compare space-filling-curve position; an
  /// ancestor precedes its descendants (p4est_quadrant_compare).
  static bool less(const quad_t& a, const quad_t& b) {
    const std::uint32_t dx = static_cast<std::uint32_t>(a.x) ^
                             static_cast<std::uint32_t>(b.x);
    const std::uint32_t dy = static_cast<std::uint32_t>(a.y) ^
                             static_cast<std::uint32_t>(b.y);
    std::uint32_t dz = 0;
    if constexpr (Dim == 3) {
      dz = static_cast<std::uint32_t>(zcoord(a)) ^
           static_cast<std::uint32_t>(zcoord(b));
    }
    if ((dx | dy | dz) == 0) {
      return a.level < b.level;
    }
    // Dimension owning the most significant differing interleaved bit:
    // at equal coordinate-bit position the higher dimension's bit is more
    // significant in the interleaving (z over y over x).
    const int hx = bits::highest_bit(dx);
    const int hy = bits::highest_bit(dy);
    const int hz = bits::highest_bit(dz);
    if (dz != 0 && hz >= hy && hz >= hx) {
      return zcoord(a) < zcoord(b);
    }
    if (dy != 0 && hy >= hx) {
      return a.y < b.y;
    }
    return a.x < b.x;
  }

  /// True when \p a is a strict ancestor of \p b (or equal if levels match
  /// and ancestor_or_self).
  static bool is_ancestor(const quad_t& a, const quad_t& b) {
    if (a.level >= b.level) {
      return false;
    }
    const coord_t mask = ~(length(a) - 1);
    bool inside = (b.x & mask) == a.x && (b.y & mask) == a.y;
    if constexpr (Dim == 3) {
      inside = inside && (zcoord(b) & mask) == zcoord(a);
    }
    return inside;
  }

  /// True when the domains of \p a and \p b intersect in a full d-cube
  /// (one contains the other or they are equal).
  static bool overlaps(const quad_t& a, const quad_t& b) {
    return equal(a, b) || is_ancestor(a, b) || is_ancestor(b, a);
  }

  /// Nearest common ancestor of two quadrants.
  static quad_t nearest_common_ancestor(const quad_t& a, const quad_t& b) {
    const std::uint32_t dx = static_cast<std::uint32_t>(a.x) ^
                             static_cast<std::uint32_t>(b.x);
    const std::uint32_t dy = static_cast<std::uint32_t>(a.y) ^
                             static_cast<std::uint32_t>(b.y);
    std::uint32_t dz = 0;
    if constexpr (Dim == 3) {
      dz = static_cast<std::uint32_t>(zcoord(a)) ^
           static_cast<std::uint32_t>(zcoord(b));
    }
    const int hbit = bits::highest_bit(dx | dy | dz);
    // The NCA level is bounded by the highest differing coordinate bit and
    // by both input levels.
    int lvl = max_level - (hbit + 1);
    lvl = lvl < a.level ? lvl : a.level;
    lvl = lvl < b.level ? lvl : b.level;
    return ancestor(a, lvl);
  }

 private:
  static coord_t zcoord(const quad_t& q) {
    if constexpr (Dim == 3) {
      return q.z;
    } else {
      return 0;
    }
  }
};

}  // namespace qforest

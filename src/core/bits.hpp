#pragma once
/// \file bits.hpp
/// \brief Bit-interleaving kernels underlying every Morton-index operation.
///
/// The Morton (Z-order) index of a quadrant is the bitwise interleaving of
/// its coordinates (paper §2.1). Three implementations are provided and
/// dispatched at compile time, all exactly equivalent:
///   1. BMI2 pdep/pext single-instruction deposit/extract (fastest),
///   2. magic-number shift-mask cascades (portable, branch-free),
///   3. byte-wise lookup tables (ablation baseline; see bench_interleave).

#include <bit>
#include <cstdint>

#include "simd/feature_detect.hpp"

#if QFOREST_HAVE_BMI2
#include <immintrin.h>
#endif

namespace qforest::bits {

/// Bits 0,3,6,... set: pdep mask for the x component in 3D.
inline constexpr std::uint64_t kMask3X = 0x9249249249249249ull;
/// Bits 1,4,7,... set: pdep mask for the y component in 3D.
inline constexpr std::uint64_t kMask3Y = 0x2492492492492492ull;
/// Bits 2,5,8,... set: pdep mask for the z component in 3D.
inline constexpr std::uint64_t kMask3Z = 0x4924924924924924ull;
/// Even bits set: pdep mask for the x component in 2D.
inline constexpr std::uint64_t kMask2X = 0x5555555555555555ull;
/// Odd bits set: pdep mask for the y component in 2D.
inline constexpr std::uint64_t kMask2Y = 0xAAAAAAAAAAAAAAAAull;

// --- magic-number cascades (portable) ------------------------------------

/// Spread the low 32 bits of \p x so bit i lands at bit 2i.
constexpr std::uint64_t spread2_magic(std::uint64_t x) {
  x &= 0x00000000FFFFFFFFull;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & kMask2X;
  return x;
}

/// Inverse of spread2_magic: gather bits 0,2,4,... into the low half.
constexpr std::uint64_t compact2_magic(std::uint64_t x) {
  x &= kMask2X;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return x;
}

/// Spread the low 21 bits of \p x so bit i lands at bit 3i.
constexpr std::uint64_t spread3_magic(std::uint64_t x) {
  x &= 0x00000000001FFFFFull;
  x = (x | (x << 32)) & 0x001F00000000FFFFull;
  x = (x | (x << 16)) & 0x001F0000FF0000FFull;
  x = (x | (x << 8)) & 0x100F00F00F00F00Full;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

/// Inverse of spread3_magic: gather bits 0,3,6,... into the low 21 bits.
constexpr std::uint64_t compact3_magic(std::uint64_t x) {
  x &= 0x1249249249249249ull;
  x = (x | (x >> 2)) & 0x10C30C30C30C30C3ull;
  x = (x | (x >> 4)) & 0x100F00F00F00F00Full;
  x = (x | (x >> 8)) & 0x001F0000FF0000FFull;
  x = (x | (x >> 16)) & 0x001F00000000FFFFull;
  x = (x | (x >> 32)) & 0x00000000001FFFFFull;
  return x;
}

// --- lookup-table variants (ablation baseline) ----------------------------

/// Byte-wise LUT implementation of spread2_magic.
std::uint64_t spread2_lut(std::uint64_t x);
/// Byte-wise LUT implementation of spread3_magic.
std::uint64_t spread3_lut(std::uint64_t x);

// --- dispatching entry points ---------------------------------------------

/// Bit i of x -> bit 2i. Uses BMI2 pdep when the build enables it.
inline std::uint64_t spread2(std::uint64_t x) {
#if QFOREST_HAVE_BMI2
  return _pdep_u64(x, kMask2X);
#else
  return spread2_magic(x);
#endif
}

/// Bit 2i -> bit i.
inline std::uint64_t compact2(std::uint64_t x) {
#if QFOREST_HAVE_BMI2
  return _pext_u64(x, kMask2X);
#else
  return compact2_magic(x);
#endif
}

/// Bit i of x -> bit 3i.
inline std::uint64_t spread3(std::uint64_t x) {
#if QFOREST_HAVE_BMI2
  return _pdep_u64(x, kMask3X);
#else
  return spread3_magic(x);
#endif
}

/// Bit 3i -> bit i.
inline std::uint64_t compact3(std::uint64_t x) {
#if QFOREST_HAVE_BMI2
  return _pext_u64(x, kMask3X);
#else
  return compact3_magic(x);
#endif
}

/// Morton-interleave two coordinates: x occupies even bits, y odd bits.
inline std::uint64_t interleave2(std::uint32_t x, std::uint32_t y) {
  return spread2(x) | (spread2(y) << 1);
}

/// Morton-interleave three coordinates: x -> bit 3i, y -> 3i+1, z -> 3i+2.
inline std::uint64_t interleave3(std::uint32_t x, std::uint32_t y,
                                 std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

/// Inverse of interleave2.
inline void deinterleave2(std::uint64_t m, std::uint32_t& x,
                          std::uint32_t& y) {
  x = static_cast<std::uint32_t>(compact2(m));
  y = static_cast<std::uint32_t>(compact2(m >> 1));
}

/// Inverse of interleave3.
inline void deinterleave3(std::uint64_t m, std::uint32_t& x, std::uint32_t& y,
                          std::uint32_t& z) {
  x = static_cast<std::uint32_t>(compact3(m));
  y = static_cast<std::uint32_t>(compact3(m >> 1));
  z = static_cast<std::uint32_t>(compact3(m >> 2));
}

// --- misc bit helpers ------------------------------------------------------

/// Position of the highest set bit (0-based); -1 for zero input.
constexpr int highest_bit(std::uint64_t x) {
  return x == 0 ? -1 : 63 - std::countl_zero(x);
}

/// True when \p x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// 2^e as uint64; e must be < 64.
constexpr std::uint64_t pow2(unsigned e) { return 1ull << e; }

/// A contiguous mask of \p n low bits; n may be 0..64.
constexpr std::uint64_t low_mask(unsigned n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1ull;
}

}  // namespace qforest::bits

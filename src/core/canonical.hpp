#pragma once
/// \file canonical.hpp
/// \brief Representation-independent canonical quadrant form + conversions.
///
/// Each representation scales coordinates to its own maximum level L (29,
/// 18/28, 30, 40/60 — see DESIGN.md §5). The canonical form rescales all
/// of them to one fixed 2^60 grid so quadrants from different encodings can
/// be compared, converted, and property-tested for logical equivalence:
/// two quadrants are *the same* mesh primitive iff their canonical forms
/// are equal.

#include <cassert>
#include <cstdint>

#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"
#include "core/rep_traits.hpp"

namespace qforest {

/// Grid exponent of the canonical coordinate space; 60 = max over all
/// shipped representations (WideMortonRep 2D).
inline constexpr int kCanonicalLevel = 60;

/// Representation-independent quadrant: coordinates on the 2^60 grid.
struct CanonicalQuadrant {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
  int level = 0;

  friend bool operator==(const CanonicalQuadrant&,
                         const CanonicalQuadrant&) = default;
};

namespace detail {

/// Wide-coordinate extraction: representations whose coordinates exceed
/// 32 bits provide to_wide_coords; the rest use the 32-bit interface.
template <class R>
concept HasWideCoords = requires(const typename R::quad_t q,
                                 typename R::wide_coord_t& w, int& l) {
  { R::to_wide_coords(q, w, w, w, l) };
};

}  // namespace detail

/// Convert any representation's quadrant to canonical form.
template <class R>
CanonicalQuadrant to_canonical(const typename R::quad_t& q) {
  CanonicalQuadrant c;
  const int up = kCanonicalLevel - R::max_level;
  if constexpr (detail::HasWideCoords<R>) {
    typename R::wide_coord_t x, y, z;
    R::to_wide_coords(q, x, y, z, c.level);
    c.x = static_cast<std::int64_t>(x) << up;
    c.y = static_cast<std::int64_t>(y) << up;
    c.z = static_cast<std::int64_t>(z) << up;
  } else {
    coord_t x, y, z;
    R::to_coords(q, x, y, z, c.level);
    c.x = static_cast<std::int64_t>(x) << up;
    c.y = static_cast<std::int64_t>(y) << up;
    c.z = static_cast<std::int64_t>(z) << up;
  }
  return c;
}

/// Convert a canonical quadrant into representation \p R.
/// Precondition: the canonical coordinates are representable, i.e. aligned
/// to R's grid (level <= R::max_level and low bits zero).
template <class R>
typename R::quad_t from_canonical(const CanonicalQuadrant& c) {
  assert(c.level <= R::max_level);
  const int down = kCanonicalLevel - R::max_level;
  assert((c.x & ((std::int64_t{1} << down) - 1)) == 0);
  if constexpr (detail::HasWideCoords<R>) {
    return R::from_wide_coords(c.x >> down, c.y >> down, c.z >> down,
                               c.level);
  } else {
    return R::from_coords(static_cast<coord_t>(c.x >> down),
                          static_cast<coord_t>(c.y >> down),
                          static_cast<coord_t>(c.z >> down), c.level);
  }
}

/// Re-encode a quadrant from representation \p From to representation
/// \p To. Precondition: level(q) <= To::max_level.
template <class From, class To>
typename To::quad_t convert(const typename From::quad_t& q) {
  return from_canonical<To>(to_canonical<From>(q));
}

}  // namespace qforest

#pragma once
/// \file quadrant_avx.hpp
/// \brief 128-bit SIMD/AVX2 quadrant representation (paper §2.3).
///
/// A quadrant lives in one 128-bit register of four 32-bit lanes
/// (paper Figure 1): lane 0 = x, lane 1 = y, lane 2 = z, lane 3 = level.
/// Low-level algorithms are rewritten so a single SIMD instruction
/// manipulates all coordinates at once (Algorithms 9-12); the level lane
/// is carried along and adjusted with one lane-wise add/sub, which removes
/// the per-coordinate conditionals of the standard representation.
///
/// Storage is 16 bytes per quadrant (paper: 2/3 of standard) and the
/// attainable maximum level rises to 30 (31 lanes bits minus one guard bit
/// so exterior neighbors keep a signed representation).
///
/// When the build lacks AVX2, simd::Vec128 degrades to a scalar struct
/// with identical lane semantics, so this representation works — without
/// the speedup — on any hardware.

#include <cassert>
#include <cstdint>

#include "core/bits.hpp"
#include "core/types.hpp"
#include "simd/vec128.hpp"

namespace qforest {

/// Low-level operations on the 128-bit SIMD representation.
template <int Dim>
class AvxRep {
 public:
  using quad_t = simd::Vec128;
  using dims = DimConstants<Dim>;

  static constexpr int dim = Dim;
  /// 32-bit lanes minus one guard bit for signed exterior coordinates.
  static constexpr int max_level = 30;
  static constexpr const char* name = "avx";

  static constexpr coord_t length_at(int level) {
    return static_cast<coord_t>(1) << (max_level - level);
  }

  static quad_t root() { return quad_t::zero(); }

  // --- accessors -------------------------------------------------------------

  static int level(const quad_t& q) {
    return static_cast<int>(q.template lane32<3>());
  }

  static coord_t length(const quad_t& q) { return length_at(level(q)); }

  static coord_t coord(const quad_t& q, int axis) {
    switch (axis) {
      case 0: return static_cast<coord_t>(q.template lane32<0>());
      case 1: return static_cast<coord_t>(q.template lane32<1>());
      default: return static_cast<coord_t>(q.template lane32<2>());
    }
  }

  static quad_t from_coords(coord_t x, coord_t y, coord_t z, int lvl) {
    return quad_t::set32(static_cast<std::uint32_t>(lvl),
                         Dim == 3 ? static_cast<std::uint32_t>(z) : 0u,
                         static_cast<std::uint32_t>(y),
                         static_cast<std::uint32_t>(x));
  }

  static void to_coords(const quad_t& q, coord_t& x, coord_t& y, coord_t& z,
                        int& lvl) {
    x = static_cast<coord_t>(q.template lane32<0>());
    y = static_cast<coord_t>(q.template lane32<1>());
    z = static_cast<coord_t>(q.template lane32<2>());
    lvl = level(q);
  }

  static bool inside_root(const quad_t& q) {
    const coord_t last =
        (static_cast<coord_t>(1) << max_level) - length(q);
    // Signed lane-wise range check on the coordinate lanes only.
    const quad_t lo_bad = quad_t::cmpgt32(quad_t::zero(), q);
    const quad_t hi_bad = quad_t::cmpgt32(
        q, from_coords(last, last, last, 0x7FFFFFFF));
    const int bad = (lo_bad | hi_bad).movemask8();
    constexpr int coord_lane_bytes = Dim == 3 ? 0x0FFF : 0x00FF;
    return (bad & coord_lane_bytes) == 0;
  }

  static bool is_valid(const quad_t& q) {
    const int lvl = level(q);
    if (lvl < 0 || lvl > max_level) {
      return false;
    }
    const std::uint32_t low = static_cast<std::uint32_t>(length_at(lvl)) - 1;
    const quad_t misaligned =
        q & quad_t::set32(0, Dim == 3 ? low : 0, low, low);
    return misaligned.all_zero() && inside_root(q);
  }

  // --- Morton index transformations (paper Algorithm 11) ----------------------

  /// Paper Algorithm 11: de-interleave the Morton index bit by bit, two
  /// coordinates at a time in the 64-bit lanes of the 128-bit register and
  /// the third separately (mixing in 256-bit registers measured slower in
  /// the paper's experiments).
  static quad_t morton_quadrant(morton_t il, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    assert(Dim * lvl < 64);
    quad_t accxy = quad_t::zero();  // 64-bit lanes: [y-bits, x-bits]
    std::uint64_t accz = 0;
    const quad_t ilvec = quad_t::broadcast64(il);
    for (int i = 0; i < lvl; ++i) {
      const int xid = Dim * i;          // index bit of x at this level
      const int xcrd = (Dim - 1) * i;   // shift placing the bit at position i
      const quad_t extid = quad_t::set64(std::uint64_t{1} << (xid + 1),
                                         std::uint64_t{1} << xid);
      quad_t crdid = ilvec & extid;
      crdid = quad_t::shrv64(
          crdid, quad_t::set64(static_cast<std::uint64_t>(xcrd + 1),
                               static_cast<std::uint64_t>(xcrd)));
      accxy = accxy | crdid;
      if constexpr (Dim == 3) {
        accz |= (il & (std::uint64_t{1} << (xid + 2))) >> (xcrd + 2);
      }
    }
    const auto x = static_cast<std::uint32_t>(accxy.template lane64<0>());
    const auto y = static_cast<std::uint32_t>(accxy.template lane64<1>());
    const auto z = static_cast<std::uint32_t>(accz);
    // Shift each coordinate left to relate it to max_level (Alg. 11 line 9),
    // then insert the level into lane 3.
    quad_t q = quad_t::set32(0, z, y, x);
    q = quad_t::shl32(q, static_cast<unsigned>(max_level - lvl));
    return q | quad_t::set32(static_cast<std::uint32_t>(lvl), 0, 0, 0);
  }

  /// Morton index relative to the quadrant's own level.
  static morton_t level_index(const quad_t& q) {
    assert(Dim * level(q) < 64);
    const int down = max_level - level(q);
    const std::uint32_t ux = q.template lane32<0>() >> down;
    const std::uint32_t uy = q.template lane32<1>() >> down;
    if constexpr (Dim == 2) {
      return bits::interleave2(ux, uy);
    } else {
      return bits::interleave3(ux, uy, q.template lane32<2>() >> down);
    }
  }

  // --- family operations (paper Algorithms 9, 10) -------------------------------

  static int child_id(const quad_t& q) {
    assert(level(q) > 0);
    const auto h = static_cast<std::uint32_t>(length(q));
    // One lane-wise AND plus a byte movemask extracts all direction bits.
    const quad_t hit = quad_t::cmpeq32(q & quad_t::set32(0, h, h, h),
                                       quad_t::set32(0, h, h, h));
    const int m = hit.movemask8();
    int id = (m & 0x1) ? 1 : 0;
    id |= (m & 0x10) ? 2 : 0;
    if constexpr (Dim == 3) {
      id |= (m & 0x100) ? 4 : 0;
    }
    return id;
  }

  static int ancestor_id(const quad_t& q, int lvl) {
    assert(lvl > 0 && lvl <= level(q));
    const auto h = static_cast<std::uint32_t>(length_at(lvl));
    const quad_t hit = quad_t::cmpeq32(q & quad_t::set32(0, h, h, h),
                                       quad_t::set32(0, h, h, h));
    const int m = hit.movemask8();
    int id = (m & 0x1) ? 1 : 0;
    id |= (m & 0x10) ? 2 : 0;
    if constexpr (Dim == 3) {
      id |= (m & 0x100) ? 4 : 0;
    }
    return id;
  }

  /// Paper Algorithm 9: extract the child's direction bits from c with one
  /// masked variable shift, OR them into the coordinates, and bump the
  /// level lane — no per-coordinate conditionals.
  static quad_t child(const quad_t& q, int c) {
    assert(level(q) < max_level);
    assert(c >= 0 && c < dims::num_children);
    quad_t extid = quad_t::set32(0, 4, 2, 1);
    extid = extid & quad_t::broadcast32(static_cast<std::uint32_t>(c));
    const quad_t insid = quad_t::shrv32(extid, quad_t::set32(0, 2, 1, 0));
    // Shift counts L - (l+1) computed in-register from the level lane:
    // no scalar extraction leaves the SIMD domain.
    const quad_t counts = quad_t::sub32(quad_t::broadcast32(max_level - 1),
                                        q.broadcast_lane3());
    const quad_t r = q | quad_t::shlv32(insid, counts);
    return quad_t::add32(r, quad_t::set32(1, 0, 0, 0));
  }

  /// Paper Algorithm 10: blank the child's coordinate bits, decrement the
  /// level lane.
  static quad_t parent(const quad_t& q) {
    assert(level(q) > 0);
    // len = 1 << (L - l) per coordinate lane, derived in-register.
    const quad_t counts = quad_t::sub32(quad_t::broadcast32(max_level),
                                        q.broadcast_lane3());
    const quad_t len = quad_t::shlv32(quad_t::set32(0, 1, 1, 1), counts);
    const quad_t r = quad_t::andnot(len, q);
    return quad_t::sub32(r, quad_t::set32(1, 0, 0, 0));
  }

  /// Vectorized Algorithm 3: lane-wise blend between "set shift bit" and
  /// "clear shift bit" selected by the sibling id's direction bits.
  static quad_t sibling(const quad_t& q, int s) {
    assert(level(q) > 0);
    assert(s >= 0 && s < dims::num_children);
    const quad_t counts = quad_t::sub32(quad_t::broadcast32(max_level),
                                        q.broadcast_lane3());
    const quad_t m = quad_t::shlv32(quad_t::set32(0, 1, 1, 1), counts);
    const quad_t dirbits = quad_t::set32(0, 4, 2, 1);
    const quad_t cond = quad_t::cmpeq32(
        quad_t::broadcast32(static_cast<std::uint32_t>(s)) & dirbits, dirbits);
    return quad_t::blend(cond, q | m, quad_t::andnot(m, q));
  }

  static quad_t ancestor(const quad_t& q, int lvl) {
    assert(lvl >= 0 && lvl <= level(q));
    const std::uint32_t keep =
        ~(static_cast<std::uint32_t>(length_at(lvl)) - 1);
    const quad_t r = q & quad_t::set32(0, keep, keep, keep);
    return r | quad_t::set32(static_cast<std::uint32_t>(lvl), 0, 0, 0);
  }

  static quad_t first_descendant(const quad_t& q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    return q.template with_lane32<3>(static_cast<std::uint32_t>(lvl));
  }

  static quad_t last_descendant(const quad_t& q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    const auto delta =
        static_cast<std::uint32_t>(length(q) - length_at(lvl));
    const quad_t r = quad_t::add32(q, quad_t::set32(0, delta, delta, delta));
    return r.template with_lane32<3>(static_cast<std::uint32_t>(lvl));
  }

  /// Same-level successor along the Morton curve (coordinate carry loop;
  /// not part of the paper's kernels, required by the forest layer).
  static quad_t successor(const quad_t& q) {
    coord_t c[3] = {coord(q, 0), coord(q, 1), coord(q, 2)};
    const int lvl = level(q);
    for (int l = lvl; l > 0; --l) {
      const coord_t bit = length_at(l);
      int id = 0;
      for (int i = 0; i < Dim; ++i) {
        id |= (c[i] & bit) ? (1 << i) : 0;
      }
      const int next = (id + 1) & (dims::num_children - 1);
      for (int i = 0; i < Dim; ++i) {
        c[i] = (next & (1 << i)) ? (c[i] | bit) : (c[i] & ~bit);
      }
      if (next != 0) {
        break;
      }
    }
    return from_coords(c[0], c[1], c[2], lvl);
  }

  /// Same-level predecessor along the Morton curve.
  static quad_t predecessor(const quad_t& q) {
    coord_t c[3] = {coord(q, 0), coord(q, 1), coord(q, 2)};
    const int lvl = level(q);
    for (int l = lvl; l > 0; --l) {
      const coord_t bit = length_at(l);
      int id = 0;
      for (int i = 0; i < Dim; ++i) {
        id |= (c[i] & bit) ? (1 << i) : 0;
      }
      const int prev = (id + dims::num_children - 1) & (dims::num_children - 1);
      for (int i = 0; i < Dim; ++i) {
        c[i] = (prev & (1 << i)) ? (c[i] | bit) : (c[i] & ~bit);
      }
      if (prev != dims::num_children - 1) {
        break;
      }
    }
    return from_coords(c[0], c[1], c[2], lvl);
  }

  // --- neighborhood --------------------------------------------------------------

  /// Face neighbor as a single lane-wise add/sub of the quadrant length in
  /// the face's coordinate lane. Exterior results use signed lanes.
  static quad_t face_neighbor(const quad_t& q, int f) {
    assert(f >= 0 && f < dims::num_faces);
    // Fully branchless: delta = h in the face's coordinate lane (axis unit
    // indexed from a table, shifted in-register by L - l), negated via the
    // two's-complement mask trick when f is a lower face.
    const quad_t counts = quad_t::sub32(quad_t::broadcast32(max_level),
                                        q.broadcast_lane3());
    const quad_t delta = quad_t::shlv32(axis_unit(f >> 1), counts);
    const quad_t m = quad_t::broadcast32(
        static_cast<std::uint32_t>(f & 1) - 1u);  // 0 for +face, ~0 for -face
    return quad_t::add32(q, quad_t::sub32(delta ^ m, m));
  }

  /// Corner neighbor: lane-wise blended +/- h on every coordinate lane.
  static quad_t corner_neighbor(const quad_t& q, int c) {
    assert(c >= 0 && c < dims::num_corners);
    const auto h = static_cast<std::uint32_t>(length(q));
    const quad_t dirbits = quad_t::set32(0, 4, 2, 1);
    const quad_t cond = quad_t::cmpeq32(
        quad_t::broadcast32(static_cast<std::uint32_t>(c)) & dirbits, dirbits);
    quad_t delta = quad_t::blend(cond, quad_t::broadcast32(h),
                                 quad_t::broadcast32(~h + 1));  // (+h | -h)
    const std::uint32_t keep = ~0u;
    delta = delta & quad_t::set32(0, Dim == 3 ? keep : 0, keep, keep);
    return quad_t::add32(q, delta);
  }

  /// Paper Algorithm 12: which unit-tree faces does the quadrant touch,
  /// computed with two lane-wise compares and one lane-wise subtraction.
  static void tree_boundaries(const quad_t& q, int out[Dim]) {
    const int lvl = level(q);
    if (lvl == 0) {
      for (int i = 0; i < Dim; ++i) {
        out[i] = kBoundaryAll;
      }
      return;
    }
    const auto up = static_cast<std::uint32_t>(
        (static_cast<coord_t>(1) << max_level) - length_at(lvl));
    const quad_t cmp0 = quad_t::cmpeq32(q, quad_t::zero());
    const quad_t cmpup = quad_t::cmpeq32(q, quad_t::broadcast32(up));
    const quad_t test0 = cmp0 & quad_t::set32(0, 5, 3, 1);
    const quad_t testup = cmpup & quad_t::set32(0, 6, 4, 2);
    const quad_t r =
        quad_t::sub32(test0 | testup, quad_t::broadcast32(1));
    out[0] = static_cast<int>(r.template lane32<0>());
    out[1] = static_cast<int>(r.template lane32<1>());
    if constexpr (Dim == 3) {
      out[2] = static_cast<int>(r.template lane32<2>());
    }
  }

  // --- ordering and containment -----------------------------------------------------

  static bool equal(const quad_t& a, const quad_t& b) {
    return quad_t::equal(a, b);
  }

  /// Morton order via the most-significant-differing-bit rule on the
  /// XORed coordinate lanes (Tropf-Herzog), computed with one lane XOR.
  static bool less(const quad_t& a, const quad_t& b) {
    const quad_t d = a ^ b;
    const auto dx = d.template lane32<0>();
    const auto dy = d.template lane32<1>();
    const auto dz = Dim == 3 ? d.template lane32<2>() : 0u;
    if ((dx | dy | dz) == 0) {
      return level(a) < level(b);
    }
    // z over y over x at equal bit position (interleaving significance).
    const int hx = bits::highest_bit(dx);
    const int hy = bits::highest_bit(dy);
    const int hz = bits::highest_bit(dz);
    if (dz != 0 && hz >= hy && hz >= hx) {
      return coord(a, 2) < coord(b, 2);
    }
    if (dy != 0 && hy >= hx) {
      return coord(a, 1) < coord(b, 1);
    }
    return coord(a, 0) < coord(b, 0);
  }

  static bool is_ancestor(const quad_t& a, const quad_t& b) {
    const int la = level(a);
    if (la >= level(b)) {
      return false;
    }
    const std::uint32_t keep =
        ~(static_cast<std::uint32_t>(length_at(la)) - 1);
    const quad_t m = quad_t::set32(0, keep, keep, keep);
    return quad_t::equal(b & m, a & m);
  }

  static bool overlaps(const quad_t& a, const quad_t& b) {
    return equal(a, b) || is_ancestor(a, b) || is_ancestor(b, a);
  }

  static quad_t nearest_common_ancestor(const quad_t& a, const quad_t& b) {
    const quad_t d = a ^ b;
    const auto dx = d.template lane32<0>();
    const auto dy = d.template lane32<1>();
    const auto dz = Dim == 3 ? d.template lane32<2>() : 0u;
    const int hbit = bits::highest_bit(dx | dy | dz);
    int lvl = max_level - (hbit + 1);
    lvl = lvl < level(a) ? lvl : level(a);
    lvl = lvl < level(b) ? lvl : level(b);
    return ancestor(a, lvl);
  }

 private:
  /// Unit vector with a 1 in the coordinate lane of \p axis; table lookup
  /// instead of a branch so kernels over random faces stay predictable.
  static quad_t axis_unit(int axis) {
    alignas(16) static constexpr std::uint32_t kUnits[3][4] = {
        {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}};
    return quad_t::load_aligned(kUnits[axis]);
  }
};

}  // namespace qforest

#include "core/sfc/hilbert.hpp"

#include <cassert>

namespace qforest::sfc {

// Both dimensions use John Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004): the
// Hilbert index is carried as n coordinate words whose bits, read across
// words from the top bit down, spell the index ("transposed" form).
// AxesToTranspose/TransposeToAxes convert in O(n * level) with no state
// tables; adjacency of consecutive indices is verified by property tests.

namespace {

constexpr int kMaxDims = 3;

void axes_to_transpose(std::uint32_t* x, int bits, int n) {
  if (bits == 0) {
    return;
  }
  std::uint32_t m = std::uint32_t{1} << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) {
    x[i] ^= x[i - 1];
  }
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) {
      t ^= q - 1;
    }
  }
  for (int i = 0; i < n; ++i) {
    x[i] ^= t;
  }
}

void transpose_to_axes(std::uint32_t* x, int bits, int n) {
  if (bits == 0) {
    return;
  }
  const std::uint32_t m = std::uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) {
    x[i] ^= x[i - 1];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

/// Pack the transposed form into one linear index: bit b of word j maps to
/// index bit n*b + (n-1-j), i.e. word 0 holds the most significant bit of
/// each n-bit group.
std::uint64_t pack_transpose(const std::uint32_t* x, int bits, int n) {
  std::uint64_t idx = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int j = 0; j < n; ++j) {
      idx = (idx << 1) | ((x[j] >> b) & 1u);
    }
  }
  return idx;
}

void unpack_transpose(std::uint64_t idx, std::uint32_t* x, int bits, int n) {
  for (int j = 0; j < n; ++j) {
    x[j] = 0;
  }
  for (int b = 0; b < bits; ++b) {
    for (int j = n - 1; j >= 0; --j) {
      x[j] |= static_cast<std::uint32_t>(idx & 1u) << b;
      idx >>= 1;
    }
  }
}

}  // namespace

std::uint64_t HilbertCurve::index2(std::uint32_t x, std::uint32_t y,
                                   int level) {
  assert(level >= 0 && level <= 31);
  std::uint32_t ax[kMaxDims] = {x, y, 0};
  axes_to_transpose(ax, level, 2);
  return pack_transpose(ax, level, 2);
}

void HilbertCurve::coords2(std::uint64_t idx, int level, std::uint32_t& x,
                           std::uint32_t& y) {
  assert(level >= 0 && level <= 31);
  std::uint32_t ax[kMaxDims] = {0, 0, 0};
  unpack_transpose(idx, ax, level, 2);
  transpose_to_axes(ax, level, 2);
  x = ax[0];
  y = ax[1];
}

std::uint64_t HilbertCurve::index3(std::uint32_t x, std::uint32_t y,
                                   std::uint32_t z, int level) {
  assert(level >= 0 && level <= 21);
  std::uint32_t ax[kMaxDims] = {x, y, z};
  axes_to_transpose(ax, level, 3);
  return pack_transpose(ax, level, 3);
}

void HilbertCurve::coords3(std::uint64_t idx, int level, std::uint32_t& x,
                           std::uint32_t& y, std::uint32_t& z) {
  assert(level >= 0 && level <= 21);
  std::uint32_t ax[kMaxDims] = {0, 0, 0};
  unpack_transpose(idx, ax, level, 3);
  transpose_to_axes(ax, level, 3);
  x = ax[0];
  y = ax[1];
  z = ax[2];
}

}  // namespace qforest::sfc

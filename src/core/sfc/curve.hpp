#pragma once
/// \file curve.hpp
/// \brief Space-filling-curve abstraction (paper §2 / future work).
///
/// The paper's first stated abstraction goal is "to allow for different
/// space filling curves and orderings while writing the octree algorithms
/// just once". This header defines that seam: a curve maps between
/// per-level grid coordinates and a linear index. The Morton curve is the
/// identity-cost default (it *is* the bit interleaving the representations
/// store); the Hilbert curve (hilbert.hpp) is the alternative, matching
/// the Cornerstone comparison the paper cites [16].

#include <cstdint>

#include "core/bits.hpp"
#include "core/types.hpp"

namespace qforest::sfc {

/// Z-order / Morton curve: index = bit interleaving of coordinates.
struct MortonCurve {
  static constexpr const char* name = "morton";

  /// Index of cell (x, y) on the 2^level x 2^level grid.
  static std::uint64_t index2(std::uint32_t x, std::uint32_t y, int level) {
    (void)level;
    return bits::interleave2(x, y);
  }

  /// Index of cell (x, y, z) on the cubic level grid.
  static std::uint64_t index3(std::uint32_t x, std::uint32_t y,
                              std::uint32_t z, int level) {
    (void)level;
    return bits::interleave3(x, y, z);
  }

  static void coords2(std::uint64_t idx, int level, std::uint32_t& x,
                      std::uint32_t& y) {
    (void)level;
    bits::deinterleave2(idx, x, y);
  }

  static void coords3(std::uint64_t idx, int level, std::uint32_t& x,
                      std::uint32_t& y, std::uint32_t& z) {
    (void)level;
    bits::deinterleave3(idx, x, y, z);
  }
};

}  // namespace qforest::sfc

#pragma once
/// \file hilbert.hpp
/// \brief Hilbert space-filling curve (alternative ordering; paper future
/// work, cf. Cornerstone [16] which chose Hilbert over Morton).
///
/// Implements the classical Butz/Lawder iterative algorithm in 2D and 3D:
/// per refinement level the child octant is rotated/reflected according to
/// a state table so consecutive indices are always face-adjacent — the
/// locality property Morton lacks. Used by tests to demonstrate the curve
/// abstraction and by bench_interleave to compare transformation costs.

#include <cstdint>

namespace qforest::sfc {

/// Hilbert curve index transformations.
struct HilbertCurve {
  static constexpr const char* name = "hilbert";

  /// Index of cell (x, y) on the 2^level grid along the Hilbert curve.
  static std::uint64_t index2(std::uint32_t x, std::uint32_t y, int level);

  /// Inverse of index2.
  static void coords2(std::uint64_t idx, int level, std::uint32_t& x,
                      std::uint32_t& y);

  /// Index of cell (x, y, z) on the cubic 2^level grid.
  static std::uint64_t index3(std::uint32_t x, std::uint32_t y,
                              std::uint32_t z, int level);

  /// Inverse of index3.
  static void coords3(std::uint64_t idx, int level, std::uint32_t& x,
                      std::uint32_t& y, std::uint32_t& z);
};

}  // namespace qforest::sfc

#pragma once
/// \file batch_ops.hpp
/// \brief BatchOps<R>: the batched counterpart of the QuadrantRepresentation
/// concept — the dispatch seam between high-level AMR loops and SIMD batch
/// kernels.
///
/// The paper's observation is that vectorized quadrant primitives pay off
/// when high-level loops consume them in bulk: refine produces all children
/// of a level-uniform span, coarsen takes all parents, balance splits whole
/// marked sets. BatchOps<R> is the customization point those loops are
/// written against, exactly once:
///
///   - the primary template is a generic scalar loop over the scalar
///     R::child / R::parent / ... ops and works for every representation
///     satisfying QuadrantRepresentation (Standard, Morton, Wide, ...);
///   - the AvxRep specialization forwards to the 256-bit AVX2 kernels of
///     AvxBatch (core/batch_avx.hpp) when the build compiled them in AND
///     the executing CPU advertises AVX2 (simd/feature_detect) — non-AVX
///     hosts transparently take the scalar path;
///   - future backends (AVX-512, NEON, GPU staging buffers) plug in as
///     further specializations without touching the forest layer.
///
/// All *_uniform/_n entry points require the inputs of one call to share a
/// single refinement level (stated per op); level-uniform spans arise
/// naturally when the forest stages its per-level work lists. in == out
/// aliasing is allowed (pure load-compute-store loops); a == b aliasing of
/// the comparator inputs likewise, including the off-by-one overlap of
/// adjacent-pair sweeps (each element is read before any store).
///
/// The runtime kill switch (QFOREST_NO_BATCH / batch::set_enabled) exists
/// so benches can measure batched against scalar dispatch in one binary.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/batch_avx.hpp"
#include "core/canonical.hpp"
#include "core/quadrant_avx.hpp"
#include "core/rep_traits.hpp"
#include "simd/feature_detect.hpp"

namespace qforest {

namespace batch {

/// Process-wide batch-kernel switch: defaults to on, disabled by setting
/// the environment variable QFOREST_NO_BATCH or calling set_enabled(false).
/// Affects only which kernel body runs — results are bit-identical.
/// Atomic with relaxed ordering: the flag may be toggled while a parallel
/// region is running (benches flip it between timed phases) and workers
/// only need *a* consistent value per load, not a synchronized view.
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{
      std::getenv("QFOREST_NO_BATCH") == nullptr};  // NOLINT(concurrency-mt-unsafe)
  return flag;
}
inline bool enabled() {
  // mo: relaxed — kernel-dispatch switch; both kernel bodies compute
  // identical results, so no ordering is needed (see flag doc above).
  return enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  // mo: relaxed — kernel-dispatch switch; see enabled().
  enabled_flag().store(on, std::memory_order_relaxed);
}

/// Number of blocks when [0, n) is cut into chunks of exactly \p grain
/// elements (the last block may be shorter). Shared by the forest's
/// intra-tree chunk scheduling and its serial fallback so both sides
/// agree on chunk ids and boundaries.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return grain == 0 ? (n != 0) : (n + grain - 1) / grain;
}

}  // namespace batch

/// Span-chunk staging helper: collects the quadrants of one contiguous
/// leaf chunk into level-uniform spans — the bridging step between the
/// forest's intra-tree chunk scheduling and the level-uniform input
/// precondition of every BatchOps entry point.
template <class R>
class SpanStage {
 public:
  using quad_t = typename R::quad_t;

  SpanStage() : spans_(static_cast<std::size_t>(R::max_level) + 1) {}

  void add(const quad_t& q) {
    spans_[static_cast<std::size_t>(R::level(q))].push_back(q);
  }

  [[nodiscard]] std::size_t num_levels() const { return spans_.size(); }
  [[nodiscard]] std::size_t count(std::size_t level) const {
    return spans_[level].size();
  }
  [[nodiscard]] const std::vector<quad_t>& span(std::size_t level) const {
    return spans_[level];
  }

 private:
  std::vector<std::vector<quad_t>> spans_;
};

/// SpanStage variant that also records each staged quadrant's source index
/// (its position in the originating leaf array), so span consumers can
/// refer back to the source leaf — the read-path sweeps (ghost layer, face
/// iteration) emit results keyed by leaf index, not by quadrant value.
template <class R>
class IndexedSpanStage {
 public:
  using quad_t = typename R::quad_t;

  IndexedSpanStage()
      : spans_(static_cast<std::size_t>(R::max_level) + 1),
        sources_(static_cast<std::size_t>(R::max_level) + 1) {}

  void add(const quad_t& q, std::size_t source) {
    const auto l = static_cast<std::size_t>(R::level(q));
    spans_[l].push_back(q);
    sources_[l].push_back(source);
  }

  [[nodiscard]] std::size_t num_levels() const { return spans_.size(); }
  [[nodiscard]] std::size_t count(std::size_t level) const {
    return spans_[level].size();
  }
  [[nodiscard]] const std::vector<quad_t>& span(std::size_t level) const {
    return spans_[level];
  }
  [[nodiscard]] const std::vector<std::size_t>& sources(
      std::size_t level) const {
    return sources_[level];
  }

 private:
  std::vector<std::vector<quad_t>> spans_;
  std::vector<std::vector<std::size_t>> sources_;
};

/// Generic scalar bodies, shared by the primary template and by the SIMD
/// specializations as their portable fallback path.
template <class R>
struct ScalarBatch {
  using quad_t = typename R::quad_t;

  static void child_uniform(const quad_t* in, quad_t* out, std::size_t n,
                            int c, int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::child(in[i], c);
    }
  }

  static void parent_uniform(const quad_t* in, quad_t* out, std::size_t n,
                             int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::parent(in[i]);
    }
  }

  static void sibling_uniform(const quad_t* in, quad_t* out, std::size_t n,
                              int s, int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::sibling(in[i], s);
    }
  }

  static void face_neighbor_uniform(const quad_t* in, quad_t* out,
                                    std::size_t n, int f, int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::face_neighbor(in[i], f);
    }
  }

  static void successor_n(const quad_t* in, quad_t* out, std::size_t n,
                          int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::successor(in[i]);
    }
  }

  static void first_descendant_n(const quad_t* in, quad_t* out,
                                 std::size_t n, int to_level) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::first_descendant(in[i], to_level);
    }
  }

  static void last_descendant_n(const quad_t* in, quad_t* out,
                                std::size_t n, int /*level*/, int to_level) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::last_descendant(in[i], to_level);
    }
  }

  static void child_id_n(const quad_t* in, int* out, std::size_t n,
                         int /*level*/) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::child_id(in[i]);
    }
  }

  static void equal_mask(const quad_t* a, const quad_t* b,
                         std::uint8_t* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::equal(a[i], b[i]) ? 1 : 0;
    }
  }

  static void less_mask(const quad_t* a, const quad_t* b, std::uint8_t* out,
                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::less(a[i], b[i]) ? 1 : 0;
    }
  }

  static void neighbor_at_offset_n(const quad_t* in, std::int64_t* ox,
                                   std::int64_t* oy, std::int64_t* oz,
                                   std::size_t n, int dx, int dy, int dz,
                                   int level) {
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - level);
    for (std::size_t i = 0; i < n; ++i) {
      const CanonicalQuadrant c = to_canonical<R>(in[i]);
      ox[i] = c.x + dx * h;
      oy[i] = c.y + dy * h;
      oz[i] = c.z + dz * h;
    }
  }

  static void morton_quadrant_n(const morton_t* il, quad_t* out,
                                std::size_t n, int level) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = R::morton_quadrant(il[i], level);
    }
  }
};

/// Primary template: every representation gets the scalar-loop bodies.
/// Operation contract (shared by all specializations):
///   child_uniform(in, out, n, c, level)       out[i] = child(in[i], c)
///   parent_uniform(in, out, n, level)         out[i] = parent(in[i])
///   sibling_uniform(in, out, n, s, level)     out[i] = sibling(in[i], s)
///   face_neighbor_uniform(in, out, n, f, l)   out[i] = face_neighbor(in[i], f)
///   successor_n(in, out, n, level)            out[i] = successor(in[i])
///   first_descendant_n(in, out, n, to)        out[i] = first_descendant(in[i], to)
///   last_descendant_n(in, out, n, level, to)  out[i] = last_descendant(in[i], to)
///   child_id_n(in, out, n, level)             out[i] = child_id(in[i])
///   equal_mask(a, b, out, n)                  out[i] = equal(a[i], b[i])
///   less_mask(a, b, out, n)                   out[i] = less(a[i], b[i])
///   neighbor_at_offset_n(in, ox, oy, oz, n, dx, dy, dz, level)
///       (ox,oy,oz)[i] = canonical(in[i]) + (dx,dy,dz) * h_canonical(level)
///   morton_quadrant_n(il, out, n, level)      out[i] = morton_quadrant(il[i], level)
/// `level` is the uniform level of every element of `in` (callers stage
/// level-uniform spans); first_descendant_n, equal_mask and less_mask
/// accept mixed levels. morton_quadrant_n takes level-relative Morton
/// *indices* instead of quadrants (the bulk producer of new_uniform and
/// workload builders) and requires dim * level < 64.
///
/// neighbor_at_offset_n is the bulk producer of the balance mark phase: it
/// emits the *canonical-grid* (2^60, core/canonical.hpp) lower corner of
/// every same-level neighbor displaced by (dx,dy,dz) quadrant lengths.
/// Coordinates may fall outside [0, 2^60) when the neighbor crosses the
/// tree boundary — the caller wraps them, resolves the neighbor tree via
/// the connectivity, and re-encodes with from_canonical (the wrapped
/// coordinates stay aligned to R's grid, so the precondition holds).
template <class R>
  requires QuadrantRepresentation<R>
struct BatchOps : ScalarBatch<R> {
  /// True when this instantiation can route to real SIMD batch kernels.
  static constexpr bool has_simd_kernels = false;
  /// True when calls will actually take the SIMD path right now.
  static bool simd_active() { return false; }
};

/// AvxRep routes to the 256-bit kernels, gated at runtime by cpuid and the
/// batch kill switch. The gate decides per call, so one binary can compare
/// both paths and a build running on a weaker CPU degrades safely.
template <int Dim>
struct BatchOps<AvxRep<Dim>> {
  using R = AvxRep<Dim>;
  using quad_t = typename R::quad_t;
  using simd_kernels = AvxBatch<Dim>;
  using scalar_kernels = ScalarBatch<R>;

  static constexpr bool has_simd_kernels = simd_kernels::vectorized();

  static bool simd_active() {
    return has_simd_kernels && batch::enabled() && simd::avx2_usable();
  }

  static void child_uniform(const quad_t* in, quad_t* out, std::size_t n,
                            int c, int level) {
    if (simd_active()) {
      simd_kernels::child_uniform(in, out, n, c, level);
    } else {
      scalar_kernels::child_uniform(in, out, n, c, level);
    }
  }

  static void parent_uniform(const quad_t* in, quad_t* out, std::size_t n,
                             int level) {
    if (simd_active()) {
      simd_kernels::parent_uniform(in, out, n, level);
    } else {
      scalar_kernels::parent_uniform(in, out, n, level);
    }
  }

  static void sibling_uniform(const quad_t* in, quad_t* out, std::size_t n,
                              int s, int level) {
    if (simd_active()) {
      simd_kernels::sibling_uniform(in, out, n, s, level);
    } else {
      scalar_kernels::sibling_uniform(in, out, n, s, level);
    }
  }

  static void face_neighbor_uniform(const quad_t* in, quad_t* out,
                                    std::size_t n, int f, int level) {
    if (simd_active()) {
      simd_kernels::face_neighbor_uniform(in, out, n, f, level);
    } else {
      scalar_kernels::face_neighbor_uniform(in, out, n, f, level);
    }
  }

  static void successor_n(const quad_t* in, quad_t* out, std::size_t n,
                          int level) {
    // Carry chain: scalar on every path (no lane-parallel form).
    scalar_kernels::successor_n(in, out, n, level);
  }

  static void first_descendant_n(const quad_t* in, quad_t* out,
                                 std::size_t n, int to_level) {
    if (simd_active()) {
      simd_kernels::first_descendant_n(in, out, n, to_level);
    } else {
      scalar_kernels::first_descendant_n(in, out, n, to_level);
    }
  }

  static void last_descendant_n(const quad_t* in, quad_t* out,
                                std::size_t n, int level, int to_level) {
    if (simd_active()) {
      simd_kernels::last_descendant_n(in, out, n, level, to_level);
    } else {
      scalar_kernels::last_descendant_n(in, out, n, level, to_level);
    }
  }

  static void child_id_n(const quad_t* in, int* out, std::size_t n,
                         int level) {
    if (simd_active()) {
      simd_kernels::child_id_n(in, out, n, level);
    } else {
      scalar_kernels::child_id_n(in, out, n, level);
    }
  }

  static void equal_mask(const quad_t* a, const quad_t* b,
                         std::uint8_t* out, std::size_t n) {
    if (simd_active()) {
      simd_kernels::equal_mask(a, b, out, n);
    } else {
      scalar_kernels::equal_mask(a, b, out, n);
    }
  }

  static void less_mask(const quad_t* a, const quad_t* b, std::uint8_t* out,
                        std::size_t n) {
    // Branchy MSB rule: scalar on every path (no lane-parallel form).
    scalar_kernels::less_mask(a, b, out, n);
  }

  static void neighbor_at_offset_n(const quad_t* in, std::int64_t* ox,
                                   std::int64_t* oy, std::int64_t* oz,
                                   std::size_t n, int dx, int dy, int dz,
                                   int level) {
    if (simd_active()) {
      simd_kernels::neighbor_at_offset_n(in, ox, oy, oz, n, dx, dy, dz,
                                         level);
    } else {
      scalar_kernels::neighbor_at_offset_n(in, ox, oy, oz, n, dx, dy, dz,
                                           level);
    }
  }

  static void morton_quadrant_n(const morton_t* il, quad_t* out,
                                std::size_t n, int level) {
    if (simd_active()) {
      simd_kernels::morton_quadrant_n(il, out, n, level);
    } else {
      scalar_kernels::morton_quadrant_n(il, out, n, level);
    }
  }
};

}  // namespace qforest

#pragma once
/// \file types.hpp
/// \brief Shared scalar types and dimension constants for quadrant code.
///
/// Terminology follows the paper (and p4est): "quadrant" is used in both
/// 2D and 3D; the template parameter `Dim` selects quadtrees (2) or
/// octrees (3). Coordinates are integers on the 2^L grid of the enclosing
/// unit tree, where L is the representation's maximum refinement level;
/// a quadrant of level l has integer side length h = 2^(L-l) (paper §2.1).

#include <cstdint>

namespace qforest {

/// Integer coordinate within the unit tree, relative to a 2^L grid.
using coord_t = std::int32_t;

/// Refinement level; root is 0.
using level_t = std::int8_t;

/// Morton / space-filling-curve index.
using morton_t = std::uint64_t;

/// Global quadrant counts (paper: N up to 10^6 MPI ranks scale).
using gidx_t = std::int64_t;

/// Compile-time constants that depend only on the spatial dimension.
template <int Dim>
struct DimConstants {
  static_assert(Dim == 2 || Dim == 3, "qforest supports 2D and 3D");

  static constexpr int dim = Dim;
  /// 2^d children per refinement (4 quadrants / 8 octants).
  static constexpr int num_children = 1 << Dim;
  /// 2d axis faces, ordered -x,+x,-y,+y[,-z,+z] (p4est convention).
  static constexpr int num_faces = 2 * Dim;
  /// 2^d corners in z-order.
  static constexpr int num_corners = 1 << Dim;
  /// 12 edges in 3D, none in 2D.
  static constexpr int num_edges = Dim == 3 ? 12 : 0;
};

/// Values returned by tree_boundaries (paper Algorithm 12): per direction
/// i, the face index of the unit tree touched by the quadrant.
enum TreeBoundary : int {
  /// Quadrant touches all boundaries (it is the root, level 0).
  kBoundaryAll = -2,
  /// Quadrant does not touch the tree boundary in this direction.
  kBoundaryNone = -1
  // Otherwise the value is the face index 2*i or 2*i+1.
};

}  // namespace qforest

#include "core/bits.hpp"

#include <array>

namespace qforest::bits {

namespace {

constexpr std::array<std::uint16_t, 256> make_spread2_lut() {
  std::array<std::uint16_t, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint16_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      if (b & (1u << i)) {
        v = static_cast<std::uint16_t>(v | (1u << (2 * i)));
      }
    }
    lut[b] = v;
  }
  return lut;
}

constexpr std::array<std::uint32_t, 256> make_spread3_lut() {
  std::array<std::uint32_t, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
      if (b & (1u << i)) {
        v |= 1u << (3 * i);
      }
    }
    lut[b] = v;
  }
  return lut;
}

constexpr auto kSpread2 = make_spread2_lut();
constexpr auto kSpread3 = make_spread3_lut();

}  // namespace

std::uint64_t spread2_lut(std::uint64_t x) {
  std::uint64_t r = 0;
  for (unsigned byte = 0; byte < 4; ++byte) {
    const auto b = static_cast<std::uint8_t>(x >> (8 * byte));
    r |= static_cast<std::uint64_t>(kSpread2[b]) << (16 * byte);
  }
  return r;
}

std::uint64_t spread3_lut(std::uint64_t x) {
  std::uint64_t r = 0;
  // 21 significant input bits -> three bytes cover 24 >= 21.
  for (unsigned byte = 0; byte < 3; ++byte) {
    const auto b = static_cast<std::uint8_t>(x >> (8 * byte));
    r |= static_cast<std::uint64_t>(kSpread3[b]) << (24 * byte);
  }
  return r;
}

}  // namespace qforest::bits

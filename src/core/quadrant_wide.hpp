#pragma once
/// \file quadrant_wide.hpp
/// \brief 128-bit raw Morton representation (paper future-work item).
///
/// The paper's conclusion proposes "the integration of a raw Morton index
/// implementation with extended 128-bit CPU registers", combining the
/// algorithmic simplicity of §2.2 with a higher maximum refinement level.
/// This representation realizes that idea with a 128-bit integer word:
/// level in the top 8 bits, Morton index relative to L in the low 120
/// bits, giving L = 40 in 3D and L = 60 in 2D — beyond the level-30 limit
/// of explicit 32-bit coordinates — at the 16-byte footprint of the AVX
/// representation.
///
/// All algorithms are the direct 128-bit generalizations of Algorithms
/// 4-8; on x86-64 GCC lowers __uint128_t arithmetic to two-register
/// operations (add/adc, shld), which is the "portable compiler support of
/// 128 bit CPU registers" the paper's closing paragraph anticipates.

#include <cassert>
#include <cstdint>

#include "core/bits.hpp"
#include "core/types.hpp"

namespace qforest {

/// Low-level operations on the 128-bit raw-Morton representation.
template <int Dim>
class WideMortonRep {
 public:
  using quad_t = unsigned __int128;
  using dims = DimConstants<Dim>;

  static constexpr int dim = Dim;
  /// ⌊120 / d⌋ levels beneath the 8-bit level field.
  static constexpr int max_level = Dim == 3 ? 40 : 60;
  static constexpr const char* name = "wide-morton";

  static constexpr int index_bits = Dim * max_level;
  static constexpr int level_shift = 120;

  /// Coordinates require up to 60 bits here, hence 64-bit coordinate I/O.
  using wide_coord_t = std::int64_t;

  static constexpr quad_t low_mask128(int n) {
    return n >= 128 ? ~quad_t{0}
                    : ((quad_t{1} << n) - 1);
  }

  static constexpr quad_t index_mask = low_mask128(level_shift);
  static constexpr quad_t level_one = quad_t{1} << level_shift;

  /// Base interleave pattern for the x direction over 128 bits.
  static constexpr quad_t dir_base = []() constexpr {
    quad_t m = 0;
    for (int i = 0; i < max_level; ++i) {
      m |= quad_t{1} << (Dim * i);
    }
    return m;
  }();

  static constexpr std::int64_t length_at(int level) {
    return std::int64_t{1} << (max_level - level);
  }

  static quad_t root() { return 0; }

  // --- accessors -------------------------------------------------------------

  static int level(quad_t q) { return static_cast<int>(q >> level_shift); }

  static std::int64_t length(quad_t q) { return length_at(level(q)); }

  static quad_t full_index(quad_t q) { return q & index_mask; }

  static quad_t from_wide_coords(wide_coord_t x, wide_coord_t y,
                                 wide_coord_t z, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    quad_t idx = 0;
    // Interleave 64-bit coordinates in two 32-bit halves through the
    // 64-bit kernels of bits.hpp.
    if constexpr (Dim == 2) {
      const std::uint64_t lo = bits::interleave2(
          static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y));
      const std::uint64_t hi = bits::interleave2(
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(x) >> 32),
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(y) >> 32));
      idx = (static_cast<quad_t>(hi) << 64) | lo;
      (void)z;
    } else {
      const auto spread_wide = [](std::uint64_t v) {
        const quad_t lo = bits::spread3(v & bits::low_mask(21));
        const quad_t mid = bits::spread3((v >> 21) & bits::low_mask(21));
        const quad_t hi = bits::spread3(v >> 42);
        return lo | (mid << 63) | (hi << 126);
      };
      idx = spread_wide(static_cast<std::uint64_t>(x)) |
            (spread_wide(static_cast<std::uint64_t>(y)) << 1) |
            (spread_wide(static_cast<std::uint64_t>(z)) << 2);
    }
    return (static_cast<quad_t>(lvl) << level_shift) | idx;
  }

  static void to_wide_coords(quad_t q, wide_coord_t& x, wide_coord_t& y,
                             wide_coord_t& z, int& lvl) {
    const quad_t idx = full_index(q);
    if constexpr (Dim == 2) {
      const auto lo = static_cast<std::uint64_t>(idx);
      const auto hi = static_cast<std::uint64_t>(idx >> 64);
      std::uint32_t xl, yl, xh, yh;
      bits::deinterleave2(lo, xl, yl);
      bits::deinterleave2(hi, xh, yh);
      x = static_cast<wide_coord_t>(
          (static_cast<std::uint64_t>(xh) << 32) | xl);
      y = static_cast<wide_coord_t>(
          (static_cast<std::uint64_t>(yh) << 32) | yl);
      z = 0;
    } else {
      const auto compact_wide = [&](int shift) {
        const quad_t s = idx >> shift;
        const std::uint64_t lo =
            bits::compact3(static_cast<std::uint64_t>(s) &
                           bits::low_mask(63));
        const std::uint64_t mid = bits::compact3(
            static_cast<std::uint64_t>(s >> 63) & bits::low_mask(63));
        const std::uint64_t hi =
            bits::compact3(static_cast<std::uint64_t>(s >> 126));
        return lo | (mid << 21) | (hi << 42);
      };
      x = static_cast<wide_coord_t>(compact_wide(0));
      y = static_cast<wide_coord_t>(compact_wide(1));
      z = static_cast<wide_coord_t>(compact_wide(2));
    }
    lvl = level(q);
  }

  /// 32-bit coordinate interface of the common representation concept;
  /// valid while coordinates fit 31 bits (levels <= 30 in 2D usage).
  static quad_t from_coords(coord_t x, coord_t y, coord_t z, int lvl) {
    return from_wide_coords(x, y, z, lvl);
  }

  static void to_coords(quad_t q, coord_t& x, coord_t& y, coord_t& z,
                        int& lvl) {
    wide_coord_t wx, wy, wz;
    to_wide_coords(q, wx, wy, wz, lvl);
    x = static_cast<coord_t>(wx);
    y = static_cast<coord_t>(wy);
    z = static_cast<coord_t>(wz);
  }

  static coord_t coord(quad_t q, int axis) {
    coord_t x, y, z;
    int lvl;
    to_coords(q, x, y, z, lvl);
    return axis == 0 ? x : axis == 1 ? y : z;
  }

  static bool inside_root(quad_t) { return true; }

  static bool is_valid(quad_t q) {
    const int lvl = level(q);
    if (lvl < 0 || lvl > max_level) {
      return false;
    }
    const quad_t idx = full_index(q);
    if (idx >> index_bits) {
      return false;
    }
    return (idx & low_mask128(Dim * (max_level - lvl))) == 0;
  }

  // --- Morton index transformations ---------------------------------------------

  static quad_t morton_quadrant(morton_t il, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    quad_t q = static_cast<quad_t>(lvl) << level_shift;
    q |= static_cast<quad_t>(il) << (Dim * (max_level - lvl));
    return q;
  }

  static morton_t level_index(quad_t q) {
    assert(Dim * level(q) < 64);
    return static_cast<morton_t>(full_index(q) >>
                                 (Dim * (max_level - level(q))));
  }

  // --- family operations -----------------------------------------------------------

  static int child_id(quad_t q) {
    assert(level(q) > 0);
    return static_cast<int>(
        static_cast<unsigned>(full_index(q) >>
                              (Dim * (max_level - level(q)))) &
        (dims::num_children - 1));
  }

  static int ancestor_id(quad_t q, int lvl) {
    assert(lvl > 0 && lvl <= level(q));
    return static_cast<int>(
        static_cast<unsigned>(full_index(q) >> (Dim * (max_level - lvl))) &
        (dims::num_children - 1));
  }

  static quad_t child(quad_t q, int c) {
    assert(level(q) < max_level);
    const quad_t shift = static_cast<quad_t>(c)
                         << (Dim * (max_level - (level(q) + 1)));
    return (q | shift) + level_one;
  }

  static quad_t parent(quad_t q) {
    assert(level(q) > 0);
    const quad_t mask = static_cast<quad_t>(dims::num_children - 1)
                        << (Dim * (max_level - level(q)));
    return (q & ~mask) - level_one;
  }

  static quad_t sibling(quad_t q, int s) {
    assert(level(q) > 0);
    const int pos = Dim * (max_level - level(q));
    const quad_t mask = static_cast<quad_t>(dims::num_children - 1) << pos;
    return (q & ~mask) | (static_cast<quad_t>(s) << pos);
  }

  static quad_t successor(quad_t q) {
    return q + (quad_t{1} << (Dim * (max_level - level(q))));
  }

  static quad_t predecessor(quad_t q) {
    return q - (quad_t{1} << (Dim * (max_level - level(q))));
  }

  static quad_t ancestor(quad_t q, int lvl) {
    assert(lvl >= 0 && lvl <= level(q));
    const quad_t keep = ~low_mask128(Dim * (max_level - lvl));
    return (full_index(q) & keep & index_mask) |
           (static_cast<quad_t>(lvl) << level_shift);
  }

  static quad_t first_descendant(quad_t q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    return full_index(q) | (static_cast<quad_t>(lvl) << level_shift);
  }

  static quad_t last_descendant(quad_t q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    const quad_t fill = low_mask128(Dim * (max_level - level(q))) &
                        ~low_mask128(Dim * (max_level - lvl));
    return (full_index(q) | fill) |
           (static_cast<quad_t>(lvl) << level_shift);
  }

  // --- neighborhood ------------------------------------------------------------------

  static quad_t face_neighbor(quad_t q, int f) {
    assert(f >= 0 && f < dims::num_faces);
    const int lvl = level(q);
    const quad_t maskl = ~low_mask128(Dim * (max_level - lvl));
    const quad_t maskdir = (dir_base & maskl & index_mask) << (f >> 1);
    quad_t r;
    if (f & 1) {
      r = (q | ~maskdir) + 1;
    } else {
      r = (q & maskdir) - 1;
    }
    return (r & maskdir) | (q & ~maskdir);
  }

  static quad_t corner_neighbor(quad_t q, int c) {
    assert(c >= 0 && c < dims::num_corners);
    quad_t r = q;
    for (int i = 0; i < Dim; ++i) {
      r = face_neighbor(r, 2 * i + ((c >> i) & 1));
    }
    return r;
  }

  static void tree_boundaries(quad_t q, int out[Dim]) {
    const int lvl = level(q);
    if (lvl == 0) {
      for (int i = 0; i < Dim; ++i) {
        out[i] = kBoundaryAll;
      }
      return;
    }
    const quad_t maskl = ~low_mask128(Dim * (max_level - lvl));
    for (int i = 0; i < Dim; ++i) {
      const quad_t dirmask = (dir_base & maskl & index_mask) << i;
      const quad_t bitsdir = q & dirmask;
      out[i] = bitsdir == 0 ? 2 * i
                            : (bitsdir == dirmask ? 2 * i + 1 : kBoundaryNone);
    }
  }

  // --- ordering and containment ---------------------------------------------------------

  static bool equal(quad_t a, quad_t b) { return a == b; }

  static bool less(quad_t a, quad_t b) {
    const quad_t ia = full_index(a), ib = full_index(b);
    if (ia != ib) {
      return ia < ib;
    }
    return level(a) < level(b);
  }

  static bool is_ancestor(quad_t a, quad_t b) {
    const int la = level(a), lb = level(b);
    if (la >= lb) {
      return false;
    }
    const int down = Dim * (max_level - la);
    return (full_index(a) >> down) == (full_index(b) >> down);
  }

  static bool overlaps(quad_t a, quad_t b) {
    return a == b || is_ancestor(a, b) || is_ancestor(b, a);
  }

  static quad_t nearest_common_ancestor(quad_t a, quad_t b) {
    const quad_t diff = full_index(a) ^ full_index(b);
    int lvl;
    if (diff == 0) {
      lvl = level(a) < level(b) ? level(a) : level(b);
    } else {
      const auto hi = static_cast<std::uint64_t>(diff >> 64);
      const int hbit = hi ? 64 + bits::highest_bit(hi)
                          : bits::highest_bit(static_cast<std::uint64_t>(diff));
      lvl = max_level - hbit / Dim - 1;
      lvl = lvl < level(a) ? lvl : level(a);
      lvl = lvl < level(b) ? lvl : level(b);
    }
    return ancestor(a, lvl);
  }
};

}  // namespace qforest

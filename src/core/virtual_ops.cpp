#include "core/virtual_ops.hpp"

#include <stdexcept>

#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"

namespace qforest {

RepKind rep_kind_from_string(const std::string& s) {
  if (s == "standard") return RepKind::kStandard;
  if (s == "morton") return RepKind::kMorton;
  if (s == "avx") return RepKind::kAvx;
  if (s == "wide-morton" || s == "wide") return RepKind::kWideMorton;
  throw std::invalid_argument("unknown quadrant representation: " + s);
}

const char* rep_kind_name(RepKind kind) {
  switch (kind) {
    case RepKind::kStandard: return "standard";
    case RepKind::kMorton: return "morton";
    case RepKind::kAvx: return "avx";
    case RepKind::kWideMorton: return "wide-morton";
  }
  return "?";
}

const VirtualQuadrantOps& virtual_ops(RepKind kind, int dim) {
  static const VirtualOpsAdapter<StandardRep<2>> std2;
  static const VirtualOpsAdapter<StandardRep<3>> std3;
  static const VirtualOpsAdapter<MortonRep<2>> mor2;
  static const VirtualOpsAdapter<MortonRep<3>> mor3;
  static const VirtualOpsAdapter<AvxRep<2>> avx2;
  static const VirtualOpsAdapter<AvxRep<3>> avx3;
  static const VirtualOpsAdapter<WideMortonRep<2>> wide2;
  static const VirtualOpsAdapter<WideMortonRep<3>> wide3;

  if (dim != 2 && dim != 3) {
    throw std::invalid_argument("virtual_ops: dim must be 2 or 3");
  }
  const bool d3 = dim == 3;
  switch (kind) {
    case RepKind::kStandard:
      return d3 ? static_cast<const VirtualQuadrantOps&>(std3) : std2;
    case RepKind::kMorton:
      return d3 ? static_cast<const VirtualQuadrantOps&>(mor3) : mor2;
    case RepKind::kAvx:
      return d3 ? static_cast<const VirtualQuadrantOps&>(avx3) : avx2;
    case RepKind::kWideMorton:
      return d3 ? static_cast<const VirtualQuadrantOps&>(wide3) : wide2;
  }
  throw std::invalid_argument("virtual_ops: unknown representation kind");
}

}  // namespace qforest

#pragma once
/// \file quadrant_morton.hpp
/// \brief Raw Morton index quadrant representation (paper §2.2).
///
/// A quadrant is one 64-bit integer: the refinement level in the 8 high
/// bits and the Morton index relative to the maximum level L in the low 56
/// bits (Definition layout of §2.2). This gives L = 18 in 3D (⌊56/3⌋, same
/// as original p4est) and L = 28 in 2D, and shrinks storage to 8 bytes per
/// quadrant — one third of the standard representation.
///
/// The big wins (paper): the Morton transformation is (almost) the
/// identity (Algorithm 4) and Successor is a single addition (Algorithm 5).
/// Parent / Child / FNeigh become bit-mask manipulations on the interleaved
/// index (Algorithms 6-8).

#include <cassert>
#include <cstdint>

#include "core/bits.hpp"
#include "core/types.hpp"

namespace qforest {

/// Low-level operations on the raw-Morton-index representation.
///
/// Bit layout of quad_t (64 bits), with d = Dim and L = max_level:
///   bits 63..56 : level
///   bits 55..0  : Morton index I relative to L (d*L significant bits,
///                 remaining low-field bits are zero)
template <int Dim>
class MortonRep {
 public:
  using quad_t = std::uint64_t;
  using dims = DimConstants<Dim>;

  static constexpr int dim = Dim;
  /// ⌊56 / d⌋ levels fit beneath the 8-bit level field.
  static constexpr int max_level = Dim == 3 ? 18 : 28;
  static constexpr const char* name = "morton";

  /// Number of index bits actually used.
  static constexpr int index_bits = Dim * max_level;
  /// Bit position of the level byte.
  static constexpr int level_shift = 56;

  static constexpr quad_t index_mask = bits::low_mask(level_shift);
  /// One unit of level in the packed word.
  static constexpr quad_t level_one = quad_t{1} << level_shift;

  /// Base interleave pattern for the x direction restricted to index bits
  /// (paper Algorithm 8 line 3: 0...0 001001...001).
  static constexpr quad_t dir_base =
      (Dim == 3 ? bits::kMask3X : bits::kMask2X) & bits::low_mask(index_bits);

  static constexpr coord_t length_at(int level) {
    return static_cast<coord_t>(1) << (max_level - level);
  }

  static quad_t root() { return 0; }

  // --- accessors -------------------------------------------------------------

  /// The current level is accessed by right shifting by 56 (paper §2.2).
  static int level(quad_t q) { return static_cast<int>(q >> level_shift); }

  static coord_t length(quad_t q) { return length_at(level(q)); }

  /// Morton index relative to max_level.
  static quad_t full_index(quad_t q) { return q & index_mask; }

  static coord_t coord(quad_t q, int axis) {
    coord_t x, y, z;
    int lvl;
    to_coords(q, x, y, z, lvl);
    return axis == 0 ? x : axis == 1 ? y : z;
  }

  static quad_t from_coords(coord_t x, coord_t y, coord_t z, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    quad_t idx;
    if constexpr (Dim == 2) {
      idx = bits::interleave2(static_cast<std::uint32_t>(x),
                              static_cast<std::uint32_t>(y));
      (void)z;
    } else {
      idx = bits::interleave3(static_cast<std::uint32_t>(x),
                              static_cast<std::uint32_t>(y),
                              static_cast<std::uint32_t>(z));
    }
    return (static_cast<quad_t>(lvl) << level_shift) | idx;
  }

  static void to_coords(quad_t q, coord_t& x, coord_t& y, coord_t& z,
                        int& lvl) {
    std::uint32_t ux = 0, uy = 0, uz = 0;
    if constexpr (Dim == 2) {
      bits::deinterleave2(full_index(q), ux, uy);
    } else {
      bits::deinterleave3(full_index(q), ux, uy, uz);
    }
    x = static_cast<coord_t>(ux);
    y = static_cast<coord_t>(uy);
    z = static_cast<coord_t>(uz);
    lvl = level(q);
  }

  /// The raw Morton representation cannot express exterior quadrants;
  /// every representable quadrant is inside the unit tree.
  static bool inside_root(quad_t) { return true; }

  static bool is_valid(quad_t q) {
    const int lvl = level(q);
    if (lvl < 0 || lvl > max_level) {
      return false;
    }
    const quad_t idx = full_index(q);
    if (idx >> index_bits) {
      return false;  // bits beyond d*L must be clear
    }
    // Index must be aligned to the quadrant's own level.
    return (idx & bits::low_mask(Dim * (max_level - lvl))) == 0;
  }

  // --- Morton index transformations (paper Algorithm 4) -----------------------

  /// Paper Algorithm 4: the transformation is the identity up to relating
  /// the level-specific index to max_level.
  static quad_t morton_quadrant(morton_t il, int lvl) {
    assert(lvl >= 0 && lvl <= max_level);
    quad_t q = static_cast<quad_t>(lvl) << level_shift;
    q |= static_cast<quad_t>(il) << (Dim * (max_level - lvl));
    return q;
  }

  /// Index relative to the quadrant's own level.
  static morton_t level_index(quad_t q) {
    return full_index(q) >> (Dim * (max_level - level(q)));
  }

  // --- family operations (paper Algorithms 5-7) --------------------------------

  static int child_id(quad_t q) {
    assert(level(q) > 0);
    return static_cast<int>(level_index(q) & (dims::num_children - 1));
  }

  static int ancestor_id(quad_t q, int lvl) {
    assert(lvl > 0 && lvl <= level(q));
    return static_cast<int>(
        (full_index(q) >> (Dim * (max_level - lvl))) &
        (dims::num_children - 1));
  }

  /// Paper Algorithm 6: set the child's direction bits, bump the level.
  static quad_t child(quad_t q, int c) {
    assert(level(q) < max_level);
    assert(c >= 0 && c < dims::num_children);
    const quad_t shift = static_cast<quad_t>(c)
                         << (Dim * (max_level - (level(q) + 1)));
    return (q | shift) + level_one;
  }

  /// Paper Algorithm 7: blank the level's direction bits, drop the level.
  static quad_t parent(quad_t q) {
    assert(level(q) > 0);
    const quad_t mask = static_cast<quad_t>(dims::num_children - 1)
                        << (Dim * (max_level - level(q)));
    return (q & ~mask) - level_one;
  }

  /// Definition 2.3: replace the direction bits at the own level by s.
  static quad_t sibling(quad_t q, int s) {
    assert(level(q) > 0);
    assert(s >= 0 && s < dims::num_children);
    const int pos = Dim * (max_level - level(q));
    const quad_t mask = static_cast<quad_t>(dims::num_children - 1) << pos;
    return (q & ~mask) | (static_cast<quad_t>(s) << pos);
  }

  /// Paper Algorithm 5: successor along the curve is one addition.
  /// Precondition: q is not the last quadrant of its level.
  static quad_t successor(quad_t q) {
    return q + (quad_t{1} << (Dim * (max_level - level(q))));
  }

  /// Inverse of successor; precondition: q is not the first quadrant.
  static quad_t predecessor(quad_t q) {
    return q - (quad_t{1} << (Dim * (max_level - level(q))));
  }

  /// True when the quadrant is the last of its level along the curve.
  static bool is_last_of_level(quad_t q) {
    return level_index(q) == bits::low_mask(Dim * level(q));
  }

  static quad_t ancestor(quad_t q, int lvl) {
    assert(lvl >= 0 && lvl <= level(q));
    const quad_t keep = ~bits::low_mask(Dim * (max_level - lvl));
    return (full_index(q) & keep & index_mask) |
           (static_cast<quad_t>(lvl) << level_shift);
  }

  static quad_t first_descendant(quad_t q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    return full_index(q) | (static_cast<quad_t>(lvl) << level_shift);
  }

  static quad_t last_descendant(quad_t q, int lvl) {
    assert(lvl >= level(q) && lvl <= max_level);
    const quad_t fill = bits::low_mask(Dim * (max_level - level(q))) &
                        ~bits::low_mask(Dim * (max_level - lvl));
    return (full_index(q) | fill) |
           (static_cast<quad_t>(lvl) << level_shift);
  }

  // --- neighborhood (paper Algorithm 8 and derived) -----------------------------

  /// Paper Algorithm 8: face neighbor via carry/borrow propagation confined
  /// to one direction's interleaved bits. Precondition: the neighbor exists
  /// inside the unit tree (check tree_boundaries first); crossing the
  /// boundary wraps around periodically.
  static quad_t face_neighbor(quad_t q, int f) {
    assert(f >= 0 && f < dims::num_faces);
    const int lvl = level(q);
    const quad_t maskl = ~bits::low_mask(Dim * (max_level - lvl));
    const quad_t maskdir = (dir_base & maskl) << (f >> 1);
    quad_t r;
    if (f & 1) {
      r = (q | ~maskdir) + 1;  // move along the axis direction
    } else {
      r = (q & maskdir) - 1;  // move against the axis direction
    }
    return (r & maskdir) | (q & ~maskdir);  // restore untouched bits
  }

  /// Diagonal (corner) neighbor: apply the face step in every direction.
  /// Same precondition as face_neighbor.
  static quad_t corner_neighbor(quad_t q, int c) {
    assert(c >= 0 && c < dims::num_corners);
    quad_t r = q;
    for (int i = 0; i < Dim; ++i) {
      r = face_neighbor(r, 2 * i + ((c >> i) & 1));
    }
    return r;
  }

  /// Paper Algorithm 12 semantics on the interleaved index: a direction's
  /// coordinate is zero iff its interleaved bits are all zero, and maximal
  /// iff all bits down to the quadrant's level are one.
  static void tree_boundaries(quad_t q, int out[Dim]) {
    const int lvl = level(q);
    if (lvl == 0) {
      for (int i = 0; i < Dim; ++i) {
        out[i] = kBoundaryAll;
      }
      return;
    }
    const quad_t maskl = ~bits::low_mask(Dim * (max_level - lvl));
    for (int i = 0; i < Dim; ++i) {
      const quad_t dirmask = (dir_base & maskl) << i;
      const quad_t bitsdir = q & dirmask;
      out[i] = bitsdir == 0 ? 2 * i
                            : (bitsdir == dirmask ? 2 * i + 1 : kBoundaryNone);
    }
  }

  // --- ordering and containment ---------------------------------------------------

  static bool equal(quad_t a, quad_t b) { return a == b; }

  /// Morton order: compare the index; an ancestor (same index, coarser
  /// level) precedes its first descendant.
  static bool less(quad_t a, quad_t b) {
    const quad_t ia = full_index(a), ib = full_index(b);
    if (ia != ib) {
      return ia < ib;
    }
    return level(a) < level(b);
  }

  static bool is_ancestor(quad_t a, quad_t b) {
    const int la = level(a), lb = level(b);
    if (la >= lb) {
      return false;
    }
    const int down = Dim * (max_level - la);
    return (full_index(a) >> down) == (full_index(b) >> down);
  }

  static bool overlaps(quad_t a, quad_t b) {
    return a == b || is_ancestor(a, b) || is_ancestor(b, a);
  }

  static quad_t nearest_common_ancestor(quad_t a, quad_t b) {
    const quad_t diff = full_index(a) ^ full_index(b);
    int lvl;
    if (diff == 0) {
      lvl = level(a) < level(b) ? level(a) : level(b);
    } else {
      const int hbit = bits::highest_bit(diff);
      lvl = max_level - hbit / Dim - 1;
      lvl = lvl < level(a) ? lvl : level(a);
      lvl = lvl < level(b) ? lvl : level(b);
    }
    return ancestor(a, lvl);
  }
};

}  // namespace qforest

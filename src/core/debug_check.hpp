#pragma once
/// \file debug_check.hpp
/// \brief Compiled-in runtime contract detectors (QFOREST_DEBUG_CHECKS).
///
/// The two-level parallel forest (PR 5/6) places a *contractual*
/// thread-safety requirement on user callbacks and strict geometric /
/// nesting invariants on the internal schedulers. This layer turns those
/// conventions into runtime detectors that are compiled in only when the
/// build defines QFOREST_DEBUG_CHECKS (CMake option of the same name; the
/// test suite always builds against a checks-enabled library copy, see
/// tests/CMakeLists.txt) and cost literally nothing otherwise — every
/// hook below compiles to no tokens when the macro is off.
///
/// Detectors:
///  - ConcurrencyDetector: wraps every user-callback invocation of
///    refine / coarsen / iterate_faces. It *proves* when callbacks are
///    entered concurrently (an observable statistic), and reports a
///    violation when concurrency occurs after the process declared its
///    callbacks serial-only (expect_serial) — i.e. when a non-thread-safe
///    callback actually raced instead of opting out via
///    set_tree_parallelism(false).
///  - ChunkCoverage: validates the block geometry of
///    ThreadPool::parallel_for_grain — grain-aligned begins, exact block
///    lengths, no block executed twice, and full [0, n) coverage.
///  - check_depth_transition: the scheduling-depth invariant of
///    forest.hpp's dispatch decisions (tree-level pool dispatch only
///    from depth 0, chunk-level from depth 0 or 1 — chunk workers never
///    submit nested pool tasks).
///  - check_structural: post-throw structural-consistency assertions of
///    the adaptation algorithms (forest stays is_valid() after a
///    throwing callback).
///
/// Violations are counted per Check kind and logged at error level; a
/// gtest environment in tests/helpers.hpp fails any test binary whose
/// suite ends with a nonzero count (tests that deliberately seed a
/// violation consume it with reset_violations). Set QFOREST_DEBUG_ABORT=1
/// to abort at the first violation instead (useful to get a stack trace
/// under a sanitizer or debugger).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/log.hpp"

#if defined(QFOREST_DEBUG_CHECKS) && QFOREST_DEBUG_CHECKS
#define QFOREST_DEBUG_CHECKS_ENABLED 1
#else
#define QFOREST_DEBUG_CHECKS_ENABLED 0
#endif

namespace qforest::debug {

/// Detector identity; indexes the per-kind violation counters.
enum class Check : int {
  kCallbackConcurrency = 0,  ///< serial-declared callback entered concurrently
  kChunkGeometry,            ///< malformed parallel_for_grain block
  kChunkOverlap,             ///< chunk executed more than once
  kChunkCoverage,            ///< blocks did not cover [0, n) completely
  kDepthInvariant,           ///< illegal scheduling-depth transition
  kStructural,               ///< forest structurally inconsistent
  kCount
};

inline const char* check_name(Check c) {
  switch (c) {
    case Check::kCallbackConcurrency: return "callback-concurrency";
    case Check::kChunkGeometry: return "chunk-geometry";
    case Check::kChunkOverlap: return "chunk-overlap";
    case Check::kChunkCoverage: return "chunk-coverage";
    case Check::kDepthInvariant: return "depth-invariant";
    case Check::kStructural: return "structural";
    default: return "?";
  }
}

namespace detail {
inline std::atomic<std::uint64_t>& counter(Check c) {
  static std::atomic<std::uint64_t> counters[static_cast<int>(Check::kCount)];
  return counters[static_cast<int>(c)];
}

inline bool abort_on_violation() {
  static const bool value =
      std::getenv("QFOREST_DEBUG_ABORT") != nullptr;  // NOLINT(concurrency-mt-unsafe)
  return value;
}
}  // namespace detail

/// Number of violations of one kind recorded since the last reset.
inline std::uint64_t violations(Check c) {
  // mo: relaxed — statistics read; tests assert after regions joined.
  return detail::counter(c).load(std::memory_order_relaxed);
}

/// Total violations across every kind since the last reset.
inline std::uint64_t total_violations() {
  std::uint64_t sum = 0;
  for (int i = 0; i < static_cast<int>(Check::kCount); ++i) {
    sum += violations(static_cast<Check>(i));
  }
  return sum;
}

/// Zero every per-kind counter (a test that seeds a violation consumes it
/// here so the suite-level silence assertion stays meaningful).
inline void reset_violations() {
  // mo: relaxed — statistics reset between tests; callers ensure
  // checker quiescence.
  for (int i = 0; i < static_cast<int>(Check::kCount); ++i) {
    detail::counter(static_cast<Check>(i)).store(0, std::memory_order_relaxed);
  }
}

/// One line per nonzero counter, for assertion messages.
inline std::string violation_summary() {
  std::string out;
  for (int i = 0; i < static_cast<int>(Check::kCount); ++i) {
    const auto c = static_cast<Check>(i);
    if (const std::uint64_t n = violations(c)) {
      out += std::string(check_name(c)) + ": " + std::to_string(n) + "  ";
    }
  }
  return out.empty() ? std::string("no violations") : out;
}

/// Record one violation: bump the kind's counter, log at error level, and
/// abort when QFOREST_DEBUG_ABORT is set.
inline void report_violation(Check c, const char* what) {
  // mo: relaxed — violation tally; only atomicity matters.
  detail::counter(c).fetch_add(1, std::memory_order_relaxed);
  log_error("debug-check violation [%s]: %s", check_name(c), what);
  if (detail::abort_on_violation()) {
    std::abort();
  }
}

#if QFOREST_DEBUG_CHECKS_ENABLED

/// Detects concurrent entry into user callbacks. The forest wraps every
/// refine / coarsen / iterate_faces callback invocation in a Scope; the
/// in-flight count proves when two invocations actually overlapped in
/// time. Overlap alone is the documented contract and only recorded as a
/// statistic (concurrency_observed); it becomes a reported violation when
/// the process declared its callbacks serial-only via expect_serial(true)
/// — the runtime proof that a non-contract-aware callback raced.
class ConcurrencyDetector {
 public:
  class Scope {
   public:
    explicit Scope(ConcurrencyDetector& d) : d_(&d) {
      // mo: relaxed — invocation tally; only atomicity matters.
      d_->entries_.fetch_add(1, std::memory_order_relaxed);
      // mo: acq_rel — the in-flight count is the overlap proof: the RMW
      // must order against other Scopes' increments/decrements so a
      // nonzero previous value really means a concurrently open Scope.
      if (d_->in_flight_.fetch_add(1, std::memory_order_acq_rel) > 0) {
        // mo: relaxed — overlap tally; only atomicity matters.
        d_->concurrent_.fetch_add(1, std::memory_order_relaxed);
        // mo: relaxed — contract flag set before the region starts.
        if (d_->expect_serial_.load(std::memory_order_relaxed)) {
          report_violation(Check::kCallbackConcurrency,
                           "user callback entered concurrently while "
                           "declared serial-only (expect_serial); make the "
                           "callback thread-safe or call "
                           "set_tree_parallelism(false)");
        }
      }
    }
    // mo: acq_rel — pairs with the ctor's RMW; see above.
    ~Scope() { d_->in_flight_.fetch_sub(1, std::memory_order_acq_rel); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ConcurrencyDetector* d_;
  };

  /// Declare that the callbacks about to run are NOT thread-safe: any
  /// concurrent entry observed while this is set is a contract violation.
  void expect_serial(bool on) {
    // mo: relaxed — contract flag toggled outside parallel regions.
    expect_serial_.store(on, std::memory_order_relaxed);
  }

  /// True when any two callback invocations have overlapped in time
  /// since the last reset().
  [[nodiscard]] bool concurrency_observed() const {
    // mo: relaxed — statistics read after the region joined.
    return concurrent_.load(std::memory_order_relaxed) > 0;
  }

  /// Total callback invocations since the last reset().
  [[nodiscard]] std::uint64_t entries() const {
    // mo: relaxed — statistics read after the region joined.
    return entries_.load(std::memory_order_relaxed);
  }

  void reset() {
    // mo: relaxed — statistics reset; callers ensure quiescence.
    entries_.store(0, std::memory_order_relaxed);
    concurrent_.store(0, std::memory_order_relaxed);
    expect_serial_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> concurrent_{0};
  std::atomic<bool> expect_serial_{false};
};

/// Process-global detector shared by every Forest instantiation; the
/// callback contract is process-wide (one shared pool), so one detector
/// suffices.
inline ConcurrencyDetector& callback_detector() {
  static ConcurrencyDetector detector;  // lint-allow(mutable-static): all members are std::atomic
  return detector;
}

/// Wrap a user callback so every invocation opens a detector Scope.
/// Captures \p fn by reference: the wrapper never outlives the forest
/// call that created it.
template <class Fn>
auto wrap_callback(Fn& fn) {
  return [&fn](auto&&... args) -> decltype(auto) {
    const ConcurrencyDetector::Scope scope(callback_detector());
    return fn(std::forward<decltype(args)>(args)...);
  };
}

/// Validates the block geometry of one parallel_for_grain call: each
/// block must start at a grain multiple, span exactly the grain (the
/// final block may stop short at n), be executed exactly once, and the
/// blocks together must cover [0, n) completely. claim() is called
/// concurrently from the worker blocks; finish() once after the call's
/// latch closed.
class ChunkCoverage {
 public:
  ChunkCoverage(std::size_t n, std::size_t grain)
      : n_(n),
        grain_(grain == 0 ? 1 : grain),
        claimed_((n_ + grain_ - 1) / grain_) {}

  void claim(std::size_t begin, std::size_t end) {
    const bool aligned = begin % grain_ == 0;
    const bool ordered = begin < end && end <= n_;
    const bool exact =
        ordered && (end - begin == grain_ || (end == n_ && end - begin < grain_));
    if (!aligned || !ordered || !exact) {
      report_violation(Check::kChunkGeometry,
                       "parallel_for_grain block is not grain-aligned or "
                       "has the wrong length");
      return;
    }
    const std::size_t chunk = begin / grain_;
    // mo: acq_rel — the exchange is the exactly-once claim: it must
    // order against a racing claim of the same chunk so exactly one
    // caller sees 0.
    if (claimed_[chunk].exchange(1, std::memory_order_acq_rel) != 0) {
      report_violation(Check::kChunkOverlap,
                       "parallel_for_grain chunk executed more than once "
                       "(overlapping block writes)");
      return;
    }
    // mo: relaxed — coverage tally; finish() runs after the latch.
    covered_.fetch_add(end - begin, std::memory_order_relaxed);
  }

  void finish() const {
    // mo: relaxed — the call's latch closed before finish(); the latch
    // orders the claims.
    if (covered_.load(std::memory_order_relaxed) != n_) {
      report_violation(Check::kChunkCoverage,
                       "parallel_for_grain blocks did not cover [0, n) "
                       "exactly once");
    }
  }

 private:
  std::size_t n_;
  std::size_t grain_;
  std::vector<std::atomic<std::uint8_t>> claimed_;
  std::atomic<std::size_t> covered_{0};
};

/// Scheduling-depth invariant, asserted at the DISPATCH decisions of
/// forest.hpp's parallel_over / parallel_chunks (\p from is the
/// submitting thread's depth, \p to the level being dispatched): tree-
/// level pool dispatch (to == 1) only from application code (depth 0);
/// chunk-level pool dispatch (to == 2) from application code or a tree
/// task, never from a chunk worker — reentrant loops at depth >= 2 must
/// run inline. The *executing* thread's depth is deliberately not
/// checked: under the pool's helping wait, a thread waiting at depth 1
/// or 2 legitimately executes queued tasks of any level.
inline void check_depth_transition(int from, int to) {
  const bool legal = (to == 1 && from == 0) || (to == 2 && from <= 1);
  if (!legal) {
    report_violation(Check::kDepthInvariant,
                     "illegal scheduling dispatch: tree-level dispatch "
                     "only from application code, and chunk workers must "
                     "never submit nested pool tasks");
  }
}

/// Structural-consistency assertion (used by the adaptation algorithms
/// after a throwing callback: the forest must still be is_valid()).
inline void check_structural(bool ok, const char* what) {
  if (!ok) {
    report_violation(Check::kStructural, what);
  }
}

#endif  // QFOREST_DEBUG_CHECKS_ENABLED

}  // namespace qforest::debug

// ---- zero-cost call-site hooks ---------------------------------------------

#if QFOREST_DEBUG_CHECKS_ENABLED
/// Bind \p name to \p fn wrapped with the callback-concurrency detector.
#define QFOREST_DBG_WRAP_CALLBACK(name, fn) \
  auto name = ::qforest::debug::wrap_callback(fn)
/// Validate one scheduling dispatch (submitter depth -> task level).
#define QFOREST_DBG_DEPTH_TRANSITION(from, to) \
  ::qforest::debug::check_depth_transition((from), (to))
/// Assert a structural invariant (evaluates \p cond only when enabled).
#define QFOREST_DBG_STRUCTURAL(cond, what) \
  ::qforest::debug::check_structural((cond), (what))
#else
#define QFOREST_DBG_WRAP_CALLBACK(name, fn) auto& name = fn
#define QFOREST_DBG_DEPTH_TRANSITION(from, to) ((void)0)
#define QFOREST_DBG_STRUCTURAL(cond, what) ((void)0)
#endif

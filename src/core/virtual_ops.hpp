#pragma once
/// \file virtual_ops.hpp
/// \brief Runtime-polymorphic quadrant interface (the paper's virtualized
/// quadrant branch).
///
/// The paper closes: "we have been working on a new branch of high-level
/// algorithms that operate on virtualized quadrants". This header provides
/// that interface: an abstract class whose methods mirror the
/// QuadrantRepresentation concept but operate on an opaque fixed-size
/// value type, so the encoding can be chosen at run time (e.g. from a
/// configuration file). The cost of the indirection relative to
/// compile-time traits is quantified by bench/bench_virtual.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "core/canonical.hpp"
#include "core/types.hpp"

namespace qforest {

/// Opaque value storage large enough for every shipped representation
/// (StandardQuadrant<3> is the largest at 24 bytes) and aligned for SIMD.
struct VQuad {
  alignas(16) unsigned char bytes[24] = {};

  friend bool operator==(const VQuad& a, const VQuad& b) {
    return std::memcmp(a.bytes, b.bytes, sizeof a.bytes) == 0;
  }
};

/// Identifier of a shipped representation for runtime selection.
enum class RepKind { kStandard, kMorton, kAvx, kWideMorton };

/// Parse "standard" / "morton" / "avx" / "wide-morton".
RepKind rep_kind_from_string(const std::string& s);

/// Printable name of a RepKind.
const char* rep_kind_name(RepKind kind);

/// Abstract per-quadrant operation set; one virtual call per low-level
/// operation, mirroring the QuadrantRepresentation concept.
class VirtualQuadrantOps {
 public:
  virtual ~VirtualQuadrantOps() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual int dim() const = 0;
  [[nodiscard]] virtual int max_level() const = 0;
  /// Bytes of VQuad actually used by this encoding (8/16/24).
  [[nodiscard]] virtual std::size_t storage_bytes() const = 0;

  [[nodiscard]] virtual VQuad root() const = 0;
  [[nodiscard]] virtual int level(const VQuad& q) const = 0;
  [[nodiscard]] virtual VQuad from_coords(coord_t x, coord_t y, coord_t z,
                                          int lvl) const = 0;
  virtual void to_coords(const VQuad& q, coord_t& x, coord_t& y, coord_t& z,
                         int& lvl) const = 0;
  [[nodiscard]] virtual VQuad morton_quadrant(morton_t il, int lvl) const = 0;
  [[nodiscard]] virtual morton_t level_index(const VQuad& q) const = 0;

  /// Exact representation-independent form (valid for every level of
  /// every encoding, unlike the 32-bit to_coords interface).
  [[nodiscard]] virtual CanonicalQuadrant canonical(const VQuad& q) const = 0;
  /// Inverse of canonical(); the canonical coordinates must be aligned to
  /// this representation's grid.
  [[nodiscard]] virtual VQuad from_canonical_quad(
      const CanonicalQuadrant& c) const = 0;

  [[nodiscard]] virtual VQuad child(const VQuad& q, int c) const = 0;
  [[nodiscard]] virtual VQuad parent(const VQuad& q) const = 0;
  [[nodiscard]] virtual VQuad sibling(const VQuad& q, int s) const = 0;
  [[nodiscard]] virtual VQuad successor(const VQuad& q) const = 0;
  [[nodiscard]] virtual VQuad predecessor(const VQuad& q) const = 0;
  [[nodiscard]] virtual VQuad ancestor(const VQuad& q, int lvl) const = 0;
  [[nodiscard]] virtual int child_id(const VQuad& q) const = 0;

  [[nodiscard]] virtual VQuad face_neighbor(const VQuad& q, int f) const = 0;
  virtual void tree_boundaries(const VQuad& q, int* out) const = 0;

  [[nodiscard]] virtual bool equal(const VQuad& a, const VQuad& b) const = 0;
  [[nodiscard]] virtual bool less(const VQuad& a, const VQuad& b) const = 0;
  [[nodiscard]] virtual bool is_ancestor(const VQuad& a,
                                         const VQuad& b) const = 0;
  [[nodiscard]] virtual bool is_valid(const VQuad& q) const = 0;
};

/// Access the process-wide ops singleton for a representation + dimension.
/// \p dim is 2 or 3.
const VirtualQuadrantOps& virtual_ops(RepKind kind, int dim);

/// Concept-to-virtual adapter; header-only so user representations can be
/// wrapped too.
template <class R>
class VirtualOpsAdapter final : public VirtualQuadrantOps {
 public:
  using quad_t = typename R::quad_t;
  static_assert(sizeof(quad_t) <= sizeof(VQuad::bytes));

  static quad_t unbox(const VQuad& v) {
    quad_t q;
    std::memcpy(&q, v.bytes, sizeof q);
    return q;
  }

  static VQuad box(const quad_t& q) {
    VQuad v;
    std::memcpy(v.bytes, &q, sizeof q);
    return v;
  }

  [[nodiscard]] const char* name() const override { return R::name; }
  [[nodiscard]] int dim() const override { return R::dim; }
  [[nodiscard]] int max_level() const override { return R::max_level; }
  [[nodiscard]] std::size_t storage_bytes() const override {
    return sizeof(quad_t);
  }

  [[nodiscard]] VQuad root() const override { return box(R::root()); }
  [[nodiscard]] int level(const VQuad& q) const override {
    return R::level(unbox(q));
  }
  [[nodiscard]] VQuad from_coords(coord_t x, coord_t y, coord_t z,
                                  int lvl) const override {
    return box(R::from_coords(x, y, z, lvl));
  }
  void to_coords(const VQuad& q, coord_t& x, coord_t& y, coord_t& z,
                 int& lvl) const override {
    R::to_coords(unbox(q), x, y, z, lvl);
  }
  [[nodiscard]] VQuad morton_quadrant(morton_t il, int lvl) const override {
    return box(R::morton_quadrant(il, lvl));
  }
  [[nodiscard]] morton_t level_index(const VQuad& q) const override {
    return R::level_index(unbox(q));
  }

  [[nodiscard]] CanonicalQuadrant canonical(const VQuad& q) const override {
    return to_canonical<R>(unbox(q));
  }
  [[nodiscard]] VQuad from_canonical_quad(
      const CanonicalQuadrant& c) const override {
    return box(from_canonical<R>(c));
  }

  [[nodiscard]] VQuad child(const VQuad& q, int c) const override {
    return box(R::child(unbox(q), c));
  }
  [[nodiscard]] VQuad parent(const VQuad& q) const override {
    return box(R::parent(unbox(q)));
  }
  [[nodiscard]] VQuad sibling(const VQuad& q, int s) const override {
    return box(R::sibling(unbox(q), s));
  }
  [[nodiscard]] VQuad successor(const VQuad& q) const override {
    return box(R::successor(unbox(q)));
  }
  [[nodiscard]] VQuad predecessor(const VQuad& q) const override {
    return box(R::predecessor(unbox(q)));
  }
  [[nodiscard]] VQuad ancestor(const VQuad& q, int lvl) const override {
    return box(R::ancestor(unbox(q), lvl));
  }
  [[nodiscard]] int child_id(const VQuad& q) const override {
    return R::child_id(unbox(q));
  }

  [[nodiscard]] VQuad face_neighbor(const VQuad& q, int f) const override {
    return box(R::face_neighbor(unbox(q), f));
  }
  void tree_boundaries(const VQuad& q, int* out) const override {
    R::tree_boundaries(unbox(q), out);
  }

  [[nodiscard]] bool equal(const VQuad& a, const VQuad& b) const override {
    return R::equal(unbox(a), unbox(b));
  }
  [[nodiscard]] bool less(const VQuad& a, const VQuad& b) const override {
    return R::less(unbox(a), unbox(b));
  }
  [[nodiscard]] bool is_ancestor(const VQuad& a,
                                 const VQuad& b) const override {
    return R::is_ancestor(unbox(a), unbox(b));
  }
  [[nodiscard]] bool is_valid(const VQuad& q) const override {
    return R::is_valid(unbox(q));
  }
};

}  // namespace qforest

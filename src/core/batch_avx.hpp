#pragma once
/// \file batch_avx.hpp
/// \brief Batched quadrant operations in 256-bit AVX2 registers (paper
/// future-work item: "the straightforward use of a wider register
/// capacity, for example 256-bit registers from AVX2").
///
/// A __m256i holds two 128-bit quadrants side by side; the lane-parallel
/// algorithms of quadrant_avx.hpp extend unchanged because every operand
/// (masks, shifts, level increments) is simply broadcast to both halves.
/// The batch entry points process arrays, which is how high-level loops
/// (refine: all children of all leaves; balance: all parents) consume
/// them. A scalar tail and a full scalar fallback keep the API portable.

#include <cstddef>

#include "core/quadrant_avx.hpp"
#include "simd/vec128.hpp"

#if QFOREST_HAVE_AVX2
#include <immintrin.h>
#endif

namespace qforest {

/// Batched operations over arrays of AvxRep<Dim> quadrants.
template <int Dim>
class AvxBatch {
 public:
  using rep = AvxRep<Dim>;
  using quad_t = typename rep::quad_t;

  /// out[i] = child(in[i], c) for a uniform child index c — the shape of
  /// the inner loop of refine (children are created per fixed c).
  /// All inputs must share the refinement level \p level (uniform-level
  /// batches arise naturally per tree level in refine sweeps).
  static void child_uniform(const quad_t* in, quad_t* out, std::size_t n,
                            int c, int level) {
#if QFOREST_HAVE_AVX2
    const int shift = rep::max_level - (level + 1);
    // Direction bits of c expanded to one per coordinate lane, twice.
    const __m128i extid128 = _mm_and_si128(
        _mm_set_epi32(0, 4, 2, 1), _mm_set1_epi32(c));
    const __m128i insid128 =
        _mm_srlv_epi32(extid128, _mm_set_epi32(0, 2, 1, 0));
    const __m256i setbits = _mm256_slli_epi32(
        _mm256_broadcastsi128_si256(insid128), shift);
    const __m256i levelup = _mm256_broadcastsi128_si256(
        _mm_set_epi32(1, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r =
          _mm256_add_epi32(_mm256_or_si256(pair, setbits), levelup);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::child(in[i], c);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::child(in[i], c);
    }
#endif
  }

  /// out[i] = parent(in[i]); all inputs share the level \p level > 0.
  static void parent_uniform(const quad_t* in, quad_t* out, std::size_t n,
                             int level) {
#if QFOREST_HAVE_AVX2
    const auto len =
        static_cast<std::uint32_t>(rep::length_at(level));
    const __m256i clear = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, static_cast<int>(len), static_cast<int>(len),
                      static_cast<int>(len)));
    const __m256i leveldown = _mm256_broadcastsi128_si256(
        _mm_set_epi32(1, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r = _mm256_sub_epi32(
          _mm256_andnot_si256(clear, pair), leveldown);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::parent(in[i]);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::parent(in[i]);
    }
#endif
  }

  /// out[i] = face_neighbor(in[i], f); all inputs share \p level.
  static void face_neighbor_uniform(const quad_t* in, quad_t* out,
                                    std::size_t n, int f, int level) {
#if QFOREST_HAVE_AVX2
    const auto h = static_cast<int>(
        static_cast<std::uint32_t>(rep::length_at(level)));
    const int axis = f >> 1;
    const __m128i delta128 = axis == 0   ? _mm_set_epi32(0, 0, 0, h)
                             : axis == 1 ? _mm_set_epi32(0, 0, h, 0)
                                         : _mm_set_epi32(0, h, 0, 0);
    const __m256i delta = _mm256_broadcastsi128_si256(delta128);
    std::size_t i = 0;
    if (f & 1) {
      for (; i + 2 <= n; i += 2) {
        const __m256i pair = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(&in[i]));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]),
                            _mm256_add_epi32(pair, delta));
      }
    } else {
      for (; i + 2 <= n; i += 2) {
        const __m256i pair = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(&in[i]));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]),
                            _mm256_sub_epi32(pair, delta));
      }
    }
    for (; i < n; ++i) {
      out[i] = rep::face_neighbor(in[i], f);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::face_neighbor(in[i], f);
    }
#endif
  }

  /// True when this build uses real 256-bit registers.
  static constexpr bool vectorized() { return QFOREST_HAVE_AVX2 != 0; }
};

}  // namespace qforest

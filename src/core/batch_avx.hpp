#pragma once
/// \file batch_avx.hpp
/// \brief Batched quadrant operations in 256-bit AVX2 registers (paper
/// future-work item: "the straightforward use of a wider register
/// capacity, for example 256-bit registers from AVX2").
///
/// A __m256i holds two 128-bit quadrants side by side; the lane-parallel
/// algorithms of quadrant_avx.hpp extend unchanged because every operand
/// (masks, shifts, level increments) is simply broadcast to both halves.
/// The batch entry points process arrays, which is how high-level loops
/// (refine: all children of all leaves; balance: all parents) consume
/// them. A scalar tail and a full scalar fallback keep the API portable.

#include <cstddef>
#include <cstdint>

#include "core/canonical.hpp"
#include "core/quadrant_avx.hpp"
#include "simd/vec128.hpp"

#if QFOREST_HAVE_AVX2
#include <immintrin.h>
#endif

namespace qforest {

/// Batched operations over arrays of AvxRep<Dim> quadrants.
template <int Dim>
class AvxBatch {
 public:
  using rep = AvxRep<Dim>;
  using quad_t = typename rep::quad_t;

  /// out[i] = child(in[i], c) for a uniform child index c — the shape of
  /// the inner loop of refine (children are created per fixed c).
  /// All inputs must share the refinement level \p level (uniform-level
  /// batches arise naturally per tree level in refine sweeps).
  static void child_uniform(const quad_t* in, quad_t* out, std::size_t n,
                            int c, int level) {
#if QFOREST_HAVE_AVX2
    const int shift = rep::max_level - (level + 1);
    // Direction bits of c expanded to one per coordinate lane, twice.
    const __m128i extid128 = _mm_and_si128(
        _mm_set_epi32(0, 4, 2, 1), _mm_set1_epi32(c));
    const __m128i insid128 =
        _mm_srlv_epi32(extid128, _mm_set_epi32(0, 2, 1, 0));
    const __m256i setbits = _mm256_slli_epi32(
        _mm256_broadcastsi128_si256(insid128), shift);
    const __m256i levelup = _mm256_broadcastsi128_si256(
        _mm_set_epi32(1, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r =
          _mm256_add_epi32(_mm256_or_si256(pair, setbits), levelup);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::child(in[i], c);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::child(in[i], c);
    }
#endif
  }

  /// out[i] = parent(in[i]); all inputs share the level \p level > 0.
  static void parent_uniform(const quad_t* in, quad_t* out, std::size_t n,
                             int level) {
#if QFOREST_HAVE_AVX2
    const auto len =
        static_cast<std::uint32_t>(rep::length_at(level));
    const __m256i clear = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, static_cast<int>(len), static_cast<int>(len),
                      static_cast<int>(len)));
    const __m256i leveldown = _mm256_broadcastsi128_si256(
        _mm_set_epi32(1, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r = _mm256_sub_epi32(
          _mm256_andnot_si256(clear, pair), leveldown);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::parent(in[i]);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::parent(in[i]);
    }
#endif
  }

  /// out[i] = face_neighbor(in[i], f); all inputs share \p level.
  static void face_neighbor_uniform(const quad_t* in, quad_t* out,
                                    std::size_t n, int f, int level) {
#if QFOREST_HAVE_AVX2
    const auto h = static_cast<int>(
        static_cast<std::uint32_t>(rep::length_at(level)));
    const int axis = f >> 1;
    const __m128i delta128 = axis == 0   ? _mm_set_epi32(0, 0, 0, h)
                             : axis == 1 ? _mm_set_epi32(0, 0, h, 0)
                                         : _mm_set_epi32(0, h, 0, 0);
    const __m256i delta = _mm256_broadcastsi128_si256(delta128);
    std::size_t i = 0;
    if (f & 1) {
      for (; i + 2 <= n; i += 2) {
        const __m256i pair = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(&in[i]));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]),
                            _mm256_add_epi32(pair, delta));
      }
    } else {
      for (; i + 2 <= n; i += 2) {
        const __m256i pair = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(&in[i]));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]),
                            _mm256_sub_epi32(pair, delta));
      }
    }
    for (; i < n; ++i) {
      out[i] = rep::face_neighbor(in[i], f);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::face_neighbor(in[i], f);
    }
#endif
  }

  /// out[i] = sibling(in[i], s) for a uniform sibling id s; all inputs
  /// share \p level > 0. One andnot + or per pair: clear the direction
  /// bit in every coordinate lane, then OR in the sibling's bits.
  static void sibling_uniform(const quad_t* in, quad_t* out, std::size_t n,
                              int s, int level) {
#if QFOREST_HAVE_AVX2
    const int shift = rep::max_level - level;
    const auto h = static_cast<int>(
        static_cast<std::uint32_t>(rep::length_at(level)));
    const __m128i extid128 = _mm_and_si128(
        _mm_set_epi32(0, 4, 2, 1), _mm_set1_epi32(s));
    const __m128i insid128 =
        _mm_srlv_epi32(extid128, _mm_set_epi32(0, 2, 1, 0));
    const __m256i setbits = _mm256_slli_epi32(
        _mm256_broadcastsi128_si256(insid128), shift);
    const __m256i clear = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, h, h, h));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r =
          _mm256_or_si256(_mm256_andnot_si256(clear, pair), setbits);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::sibling(in[i], s);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::sibling(in[i], s);
    }
#endif
  }

  /// out[i] = first_descendant(in[i], to_level): replace the level lane,
  /// coordinates unchanged. Inputs may be of mixed levels <= to_level.
  static void first_descendant_n(const quad_t* in, quad_t* out,
                                 std::size_t n, int to_level) {
#if QFOREST_HAVE_AVX2
    const __m256i coord_keep = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, -1, -1, -1));
    const __m256i levelvec = _mm256_broadcastsi128_si256(
        _mm_set_epi32(to_level, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i r =
          _mm256_or_si256(_mm256_and_si256(pair, coord_keep), levelvec);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::first_descendant(in[i], to_level);
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::first_descendant(in[i], to_level);
    }
#endif
  }

  /// out[i] = last_descendant(in[i], to_level); all inputs share \p level.
  static void last_descendant_n(const quad_t* in, quad_t* out,
                                std::size_t n, int level, int to_level) {
#if QFOREST_HAVE_AVX2
    const auto delta = static_cast<int>(static_cast<std::uint32_t>(
        rep::length_at(level) - rep::length_at(to_level)));
    const __m256i add = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, delta, delta, delta));
    const __m256i coord_keep = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, -1, -1, -1));
    const __m256i levelvec = _mm256_broadcastsi128_si256(
        _mm_set_epi32(to_level, 0, 0, 0));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i sum = _mm256_add_epi32(pair, add);
      const __m256i r =
          _mm256_or_si256(_mm256_and_si256(sum, coord_keep), levelvec);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(&out[i]), r);
    }
    for (; i < n; ++i) {
      out[i] = rep::last_descendant(in[i], to_level);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::last_descendant(in[i], to_level);
    }
#endif
  }

  // Note: successor (data-dependent carry chain) and less (branchy
  // most-significant-differing-bit rule) have no lane-parallel form; the
  // dispatch layer (BatchOps<AvxRep>) routes successor_n and less_mask to
  // the shared scalar bodies directly, so AvxBatch has no entry points
  // for them.

  /// out[i] = child_id(in[i]); all inputs share \p level > 0. One AND +
  /// compare + byte movemask yields the direction bits of two quadrants.
  static void child_id_n(const quad_t* in, int* out, std::size_t n,
                         int level) {
#if QFOREST_HAVE_AVX2
    const auto h = static_cast<int>(
        static_cast<std::uint32_t>(rep::length_at(level)));
    const __m256i hvec = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, h, h, h));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      const __m256i hit =
          _mm256_cmpeq_epi32(_mm256_and_si256(pair, hvec), hvec);
      const auto m = static_cast<std::uint32_t>(_mm256_movemask_epi8(hit));
      for (int half = 0; half < 2; ++half) {
        const std::uint32_t mh = m >> (16 * half);
        int id = (mh & 0x1u) ? 1 : 0;
        id |= (mh & 0x10u) ? 2 : 0;
        if constexpr (Dim == 3) {
          id |= (mh & 0x100u) ? 4 : 0;
        }
        out[i + static_cast<std::size_t>(half)] = id;
      }
    }
    for (; i < n; ++i) {
      out[i] = rep::child_id(in[i]);
    }
#else
    (void)level;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::child_id(in[i]);
    }
#endif
  }

  /// out[i] = equal(a[i], b[i]) as 0/1 bytes; levels may be mixed (the
  /// comparator of dedup sweeps over sorted leaf arrays).
  static void equal_mask(const quad_t* a, const quad_t* b,
                         std::uint8_t* out, std::size_t n) {
#if QFOREST_HAVE_AVX2
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pa = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&a[i]));
      const __m256i pb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&b[i]));
      const auto m = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi32(pa, pb)));
      out[i] = (m & 0xFFFFu) == 0xFFFFu ? 1 : 0;
      out[i + 1] = (m >> 16) == 0xFFFFu ? 1 : 0;
    }
    for (; i < n; ++i) {
      out[i] = rep::equal(a[i], b[i]) ? 1 : 0;
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::equal(a[i], b[i]) ? 1 : 0;
    }
#endif
  }

  /// Canonical-grid lower corner of the same-level neighbor displaced by
  /// (dx,dy,dz) quadrant lengths; all inputs share \p level. The offset
  /// add runs vectorized on the rep-scale coordinate lanes of two
  /// quadrants per register, then each lane is widened and upshifted to
  /// the canonical 2^60 grid on the store (the add cannot overflow int32:
  /// |coord ± h| < 2^(max_level+1)). Out-of-root results are *not*
  /// wrapped — the caller owns tree-boundary resolution.
  static void neighbor_at_offset_n(const quad_t* in, std::int64_t* ox,
                                   std::int64_t* oy, std::int64_t* oz,
                                   std::size_t n, int dx, int dy, int dz,
                                   int level) {
#if QFOREST_HAVE_AVX2
    const auto h = static_cast<int>(
        static_cast<std::uint32_t>(rep::length_at(level)));
    const __m256i delta = _mm256_broadcastsi128_si256(
        _mm_set_epi32(0, dz * h, dy * h, dx * h));
    const int up = kCanonicalLevel - rep::max_level;
    alignas(32) std::int32_t lanes[8];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i pair = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&in[i]));
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                         _mm256_add_epi32(pair, delta));
      ox[i] = static_cast<std::int64_t>(lanes[0]) << up;
      oy[i] = static_cast<std::int64_t>(lanes[1]) << up;
      oz[i] = static_cast<std::int64_t>(lanes[2]) << up;
      ox[i + 1] = static_cast<std::int64_t>(lanes[4]) << up;
      oy[i + 1] = static_cast<std::int64_t>(lanes[5]) << up;
      oz[i + 1] = static_cast<std::int64_t>(lanes[6]) << up;
    }
    for (; i < n; ++i) {
      neighbor_at_offset_scalar(in[i], ox + i, oy + i, oz + i, dx, dy, dz,
                                level);
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
      neighbor_at_offset_scalar(in[i], ox + i, oy + i, oz + i, dx, dy, dz,
                                level);
    }
#endif
  }

  /// out[i] = morton_quadrant(il[i], lvl): bulk de-interleave of
  /// level-relative Morton indices (paper Algorithm 11). Unlike the other
  /// kernels this one works in 64-bit lanes — [y1, x1, y0, x0] for two
  /// indices per register — because the per-bit extract/shift runs on the
  /// full 64-bit index; z (3D) is accumulated scalar, matching the scalar
  /// algorithm's split. Requires 0 <= lvl <= max_level and Dim * lvl < 64.
  static void morton_quadrant_n(const morton_t* il, quad_t* out,
                                std::size_t n, int lvl) {
#if QFOREST_HAVE_AVX2
    const auto up = static_cast<unsigned>(rep::max_level - lvl);
    alignas(32) std::uint64_t lanes[4];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m256i ilvec = _mm256_set_epi64x(
          static_cast<long long>(il[i + 1]),
          static_cast<long long>(il[i + 1]),
          static_cast<long long>(il[i]), static_cast<long long>(il[i]));
      __m256i accxy = _mm256_setzero_si256();
      std::uint64_t accz0 = 0, accz1 = 0;
      for (int b = 0; b < lvl; ++b) {
        const int xid = Dim * b;
        const int xcrd = (Dim - 1) * b;
        const __m256i extid = _mm256_set_epi64x(
            static_cast<long long>(std::uint64_t{1} << (xid + 1)),
            static_cast<long long>(std::uint64_t{1} << xid),
            static_cast<long long>(std::uint64_t{1} << (xid + 1)),
            static_cast<long long>(std::uint64_t{1} << xid));
        const __m256i counts =
            _mm256_set_epi64x(xcrd + 1, xcrd, xcrd + 1, xcrd);
        accxy = _mm256_or_si256(
            accxy,
            _mm256_srlv_epi64(_mm256_and_si256(ilvec, extid), counts));
        if constexpr (Dim == 3) {
          accz0 |= (il[i] & (std::uint64_t{1} << (xid + 2))) >> (xcrd + 2);
          accz1 |=
              (il[i + 1] & (std::uint64_t{1} << (xid + 2))) >> (xcrd + 2);
        }
      }
      // Relate the coordinates to max_level while still packed, then
      // assemble each quadrant with its level lane.
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                         _mm256_slli_epi64(accxy, static_cast<int>(up)));
      out[i] = quad_t::set32(static_cast<std::uint32_t>(lvl),
                             static_cast<std::uint32_t>(accz0) << up,
                             static_cast<std::uint32_t>(lanes[1]),
                             static_cast<std::uint32_t>(lanes[0]));
      out[i + 1] = quad_t::set32(static_cast<std::uint32_t>(lvl),
                                 static_cast<std::uint32_t>(accz1) << up,
                                 static_cast<std::uint32_t>(lanes[3]),
                                 static_cast<std::uint32_t>(lanes[2]));
    }
    for (; i < n; ++i) {
      out[i] = rep::morton_quadrant(il[i], lvl);
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rep::morton_quadrant(il[i], lvl);
    }
#endif
  }

  /// True when this build uses real 256-bit registers.
  static constexpr bool vectorized() { return QFOREST_HAVE_AVX2 != 0; }

 private:
  static void neighbor_at_offset_scalar(const quad_t& q, std::int64_t* ox,
                                        std::int64_t* oy, std::int64_t* oz,
                                        int dx, int dy, int dz, int level) {
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - level);
    const CanonicalQuadrant c = to_canonical<rep>(q);
    *ox = c.x + dx * h;
    *oy = c.y + dy * h;
    *oz = c.z + dz * h;
  }
};

}  // namespace qforest

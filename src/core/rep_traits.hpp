#pragma once
/// \file rep_traits.hpp
/// \brief The representation concept: the contract every quadrant encoding
/// fulfills so high-level AMR algorithms are written exactly once.
///
/// This is the compile-time flavor of the paper's abstraction: "we abstract
/// the quadrants' implementation to be varied while their logical
/// information remains equivalent" (§2). Any class satisfying
/// QuadrantRepresentation can back the forest layer; the library ships
/// StandardRep, MortonRep, AvxRep and WideMortonRep.

#include <concepts>
#include <cstdint>

#include "core/types.hpp"

namespace qforest {

/// Compile-time contract for a quadrant representation.
///
/// Semantics (see paper §2 definitions):
///  - morton_quadrant(Il, l): quadrant with level-relative index Il
///    (Definition of I_l; Algorithms 1/4/11)
///  - child/parent/sibling per Definitions 2.1-2.5
///  - face_neighbor per Definitions 2.6-2.7 (paper Algorithm 8)
///  - tree_boundaries per Algorithm 12's {-2, -1, 2i, 2i+1} encoding
///  - less is the total order "ancestors before descendants along the
///    space-filling curve" used for linear octree storage
template <class R>
concept QuadrantRepresentation = requires(
    const typename R::quad_t q, typename R::quad_t& qm, morton_t il, int i,
    coord_t c, int out[3]) {
  typename R::quad_t;
  { R::dim } -> std::convertible_to<int>;
  { R::max_level } -> std::convertible_to<int>;
  { R::name } -> std::convertible_to<const char*>;

  { R::root() } -> std::same_as<typename R::quad_t>;
  { R::level(q) } -> std::convertible_to<int>;
  { R::from_coords(c, c, c, i) } -> std::same_as<typename R::quad_t>;
  { R::morton_quadrant(il, i) } -> std::same_as<typename R::quad_t>;
  { R::level_index(q) } -> std::convertible_to<morton_t>;

  { R::child(q, i) } -> std::same_as<typename R::quad_t>;
  { R::parent(q) } -> std::same_as<typename R::quad_t>;
  { R::sibling(q, i) } -> std::same_as<typename R::quad_t>;
  { R::successor(q) } -> std::same_as<typename R::quad_t>;
  { R::predecessor(q) } -> std::same_as<typename R::quad_t>;
  { R::ancestor(q, i) } -> std::same_as<typename R::quad_t>;
  { R::first_descendant(q, i) } -> std::same_as<typename R::quad_t>;
  { R::last_descendant(q, i) } -> std::same_as<typename R::quad_t>;
  { R::child_id(q) } -> std::convertible_to<int>;

  { R::face_neighbor(q, i) } -> std::same_as<typename R::quad_t>;
  { R::tree_boundaries(q, out) };

  { R::equal(q, q) } -> std::convertible_to<bool>;
  { R::less(q, q) } -> std::convertible_to<bool>;
  { R::is_ancestor(q, q) } -> std::convertible_to<bool>;
  { R::overlaps(q, q) } -> std::convertible_to<bool>;
  { R::nearest_common_ancestor(q, q) } -> std::same_as<typename R::quad_t>;
  { R::is_valid(q) } -> std::convertible_to<bool>;
  { R::inside_root(q) } -> std::convertible_to<bool>;
};

/// Comparator adapter for std::sort and friends.
template <class R>
struct RepLess {
  bool operator()(const typename R::quad_t& a,
                  const typename R::quad_t& b) const {
    return R::less(a, b);
  }
};

/// True when \p a and \p b are adjacent or identical in the family sense:
/// neither strictly precedes the other's first descendant ordering-wise.
template <class R>
bool rep_leq(const typename R::quad_t& a, const typename R::quad_t& b) {
  return !R::less(b, a);
}

}  // namespace qforest

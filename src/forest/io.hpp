#pragma once
/// \file io.hpp
/// \brief Forest serialization and representation-independent checksums
/// (the p4est_save / p4est_load / p4est_checksum trio).
///
/// The on-disk format encodes quadrants in *canonical* form (canonical.hpp),
/// which makes it independent of the in-memory representation: a forest
/// saved from MortonRep can be loaded into StandardRep bit-exactly. The
/// checksum hashes the same canonical stream, so equal meshes hash equally
/// regardless of encoding — the property regression suites rely on.
///
/// Format (little-endian):
///   magic   "QFOR"            4 bytes
///   version u32               currently 1
///   dim     u32
///   brick   extent[3] u32, periodic[3] u8, pad u8
///   ranks   u32
///   trees   u32 K
///   per tree: count u64, then count * (x i64, y i64, z i64, level u8)

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/canonical.hpp"
#include "forest/forest.hpp"

namespace qforest {

namespace io_detail {

inline constexpr char kMagic[4] = {'Q', 'F', 'O', 'R'};
inline constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) {
    throw std::runtime_error("qforest::load_forest: truncated stream");
  }
  return v;
}

/// FNV-1a, 64-bit; simple, stable, good avalanche for regression hashes.
class Fnv1a {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }

  template <class T>
  void update_pod(const T& v) {
    update(&v, sizeof v);
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

}  // namespace io_detail

/// Serialize a forest; see the format comment above.
template <class R>
void save_forest(std::ostream& out, const Forest<R>& forest) {
  using namespace io_detail;
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(R::dim));
  const Connectivity& conn = forest.connectivity();
  for (int a = 0; a < 3; ++a) {
    write_pod(out, static_cast<std::uint32_t>(conn.extent(a)));
  }
  for (int a = 0; a < 3; ++a) {
    write_pod(out, static_cast<std::uint8_t>(conn.periodic(a) ? 1 : 0));
  }
  write_pod(out, std::uint8_t{0});
  write_pod(out, static_cast<std::uint32_t>(forest.num_ranks()));
  write_pod(out, static_cast<std::uint32_t>(forest.num_trees()));
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    const auto& leaves = forest.tree_quadrants(t);
    write_pod(out, static_cast<std::uint64_t>(leaves.size()));
    for (const auto& q : leaves) {
      const CanonicalQuadrant c = to_canonical<R>(q);
      write_pod(out, c.x);
      write_pod(out, c.y);
      write_pod(out, c.z);
      write_pod(out, static_cast<std::uint8_t>(c.level));
    }
  }
  if (!out) {
    throw std::runtime_error("qforest::save_forest: write failure");
  }
}

/// Deserialize into representation \p R (not necessarily the one that
/// saved the stream). Throws std::runtime_error on malformed input and
/// std::invalid_argument when the stream's levels exceed R::max_level.
template <class R>
Forest<R> load_forest(std::istream& in) {
  using namespace io_detail;
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("qforest::load_forest: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("qforest::load_forest: unsupported version " +
                             std::to_string(version));
  }
  const auto dim = read_pod<std::uint32_t>(in);
  if (static_cast<int>(dim) != R::dim) {
    throw std::runtime_error("qforest::load_forest: dimension mismatch");
  }
  std::uint32_t extent[3];
  for (auto& e : extent) {
    e = read_pod<std::uint32_t>(in);
  }
  bool periodic[3];
  for (auto& p : periodic) {
    p = read_pod<std::uint8_t>(in) != 0;
  }
  (void)read_pod<std::uint8_t>(in);  // pad
  const auto ranks = read_pod<std::uint32_t>(in);
  const auto num_trees = read_pod<std::uint32_t>(in);

  Connectivity conn =
      R::dim == 2
          ? Connectivity::brick2d(static_cast<int>(extent[0]),
                                  static_cast<int>(extent[1]), periodic[0],
                                  periodic[1])
          : Connectivity::brick3d(static_cast<int>(extent[0]),
                                  static_cast<int>(extent[1]),
                                  static_cast<int>(extent[2]), periodic[0],
                                  periodic[1], periodic[2]);
  if (static_cast<std::uint32_t>(conn.num_trees()) != num_trees) {
    throw std::runtime_error("qforest::load_forest: tree count mismatch");
  }

  Forest<R> forest =
      Forest<R>::new_root(conn, static_cast<int>(ranks));
  // Rebuild each tree's leaf array from the canonical stream.
  std::vector<std::vector<typename R::quad_t>> trees(num_trees);
  for (std::uint32_t t = 0; t < num_trees; ++t) {
    const auto count = read_pod<std::uint64_t>(in);
    auto& tree = trees[t];
    tree.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      CanonicalQuadrant c;
      c.x = read_pod<std::int64_t>(in);
      c.y = read_pod<std::int64_t>(in);
      c.z = read_pod<std::int64_t>(in);
      c.level = read_pod<std::uint8_t>(in);
      if (c.level > R::max_level) {
        throw std::invalid_argument(
            "qforest::load_forest: level exceeds representation limit");
      }
      tree.push_back(from_canonical<R>(c));
    }
  }
  forest.replace_leaves(std::move(trees));
  if (!forest.is_valid()) {
    throw std::runtime_error("qforest::load_forest: stream does not encode "
                             "a valid forest");
  }
  return forest;
}

/// Representation-independent structural checksum: hashes dimension,
/// connectivity and every leaf in canonical form. Equal meshes give equal
/// checksums no matter the encoding (see tests/test_io.cpp).
template <class R>
std::uint64_t forest_checksum(const Forest<R>& forest) {
  io_detail::Fnv1a h;
  h.update_pod(static_cast<std::uint32_t>(R::dim));
  const Connectivity& conn = forest.connectivity();
  for (int a = 0; a < 3; ++a) {
    h.update_pod(static_cast<std::uint32_t>(conn.extent(a)));
    h.update_pod(static_cast<std::uint8_t>(conn.periodic(a) ? 1 : 0));
  }
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    for (const auto& q : forest.tree_quadrants(t)) {
      const CanonicalQuadrant c = to_canonical<R>(q);
      h.update_pod(c.x);
      h.update_pod(c.y);
      h.update_pod(c.z);
      h.update_pod(static_cast<std::uint8_t>(c.level));
    }
  }
  return h.digest();
}

}  // namespace qforest

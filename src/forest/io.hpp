#pragma once
/// \file io.hpp
/// \brief Forest serialization and representation-independent checksums
/// (the p4est_save / p4est_load / p4est_checksum trio).
///
/// The on-disk format encodes quadrants in *canonical* form (canonical.hpp),
/// which makes it independent of the in-memory representation: a forest
/// saved from MortonRep can be loaded into StandardRep bit-exactly. The
/// checksum hashes the same canonical stream, so equal meshes hash equally
/// regardless of encoding — the property regression suites rely on.
///
/// Format (little-endian):
///   magic   "QFOR"            4 bytes
///   version u32               currently 1
///   dim     u32
///   brick   extent[3] u32, periodic[3] u8, pad u8
///   ranks   u32
///   trees   u32 K
///   per tree: count u64, then count * (x i64, y i64, z i64, level u8)

#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/canonical.hpp"
#include "forest/forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/message_queue.hpp"
#include "util/timer.hpp"

namespace qforest {

namespace io_detail {

inline constexpr char kMagic[4] = {'Q', 'F', 'O', 'R'};
inline constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) {
    throw std::runtime_error("qforest::load_forest: truncated stream");
  }
  return v;
}

/// FNV-1a, 64-bit; simple, stable, good avalanche for regression hashes.
class Fnv1a {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }

  template <class T>
  void update_pod(const T& v) {
    update(&v, sizeof v);
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

/// Bulk byte-buffer framing for in-process rank messages: the memcpy
/// twin of write_pod/read_pod over a growable std::vector<uint8_t>
/// instead of a stream. Arrays are length-prefixed (u64 count) and
/// copied in one append, so serializing a rank's whole ghost payload
/// block is one allocation and two memcpys, not a per-entry loop.
class ByteWriter {
 public:
  template <class T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&v, sizeof v);
  }

  template <class T>
  void write_array(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(static_cast<std::uint64_t>(n));
    append(data, n * sizeof(T));
  }

  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() && {
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Read side of ByteWriter's framing; throws on truncated buffers.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  template <class T>
  [[nodiscard]] T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    copy_out(&v, sizeof v);
    return v;
  }

  template <class T>
  [[nodiscard]] std::vector<T> read_array() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = static_cast<std::size_t>(read<std::uint64_t>());
    std::vector<T> out(n);
    copy_out(out.data(), n * sizeof(T));
    return out;
  }

 private:
  void copy_out(void* dst, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      throw std::runtime_error("qforest::io: truncated message buffer");
    }
    std::memcpy(dst, p_, n);
    p_ += n;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace io_detail

/// Serialize a forest; see the format comment above.
template <class R>
void save_forest(std::ostream& out, const Forest<R>& forest) {
  using namespace io_detail;
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(R::dim));
  const Connectivity& conn = forest.connectivity();
  for (int a = 0; a < 3; ++a) {
    write_pod(out, static_cast<std::uint32_t>(conn.extent(a)));
  }
  for (int a = 0; a < 3; ++a) {
    write_pod(out, static_cast<std::uint8_t>(conn.periodic(a) ? 1 : 0));
  }
  write_pod(out, std::uint8_t{0});
  write_pod(out, static_cast<std::uint32_t>(forest.num_ranks()));
  write_pod(out, static_cast<std::uint32_t>(forest.num_trees()));
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    const auto& leaves = forest.tree_quadrants(t);
    write_pod(out, static_cast<std::uint64_t>(leaves.size()));
    for (const auto& q : leaves) {
      const CanonicalQuadrant c = to_canonical<R>(q);
      write_pod(out, c.x);
      write_pod(out, c.y);
      write_pod(out, c.z);
      write_pod(out, static_cast<std::uint8_t>(c.level));
    }
  }
  if (!out) {
    throw std::runtime_error("qforest::save_forest: write failure");
  }
}

/// Deserialize into representation \p R (not necessarily the one that
/// saved the stream). Throws std::runtime_error on malformed input and
/// std::invalid_argument when the stream's levels exceed R::max_level.
template <class R>
Forest<R> load_forest(std::istream& in) {
  using namespace io_detail;
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("qforest::load_forest: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("qforest::load_forest: unsupported version " +
                             std::to_string(version));
  }
  const auto dim = read_pod<std::uint32_t>(in);
  if (static_cast<int>(dim) != R::dim) {
    throw std::runtime_error("qforest::load_forest: dimension mismatch");
  }
  std::uint32_t extent[3];
  for (auto& e : extent) {
    e = read_pod<std::uint32_t>(in);
  }
  bool periodic[3];
  for (auto& p : periodic) {
    p = read_pod<std::uint8_t>(in) != 0;
  }
  (void)read_pod<std::uint8_t>(in);  // pad
  const auto ranks = read_pod<std::uint32_t>(in);
  const auto num_trees = read_pod<std::uint32_t>(in);

  Connectivity conn =
      R::dim == 2
          ? Connectivity::brick2d(static_cast<int>(extent[0]),
                                  static_cast<int>(extent[1]), periodic[0],
                                  periodic[1])
          : Connectivity::brick3d(static_cast<int>(extent[0]),
                                  static_cast<int>(extent[1]),
                                  static_cast<int>(extent[2]), periodic[0],
                                  periodic[1], periodic[2]);
  if (static_cast<std::uint32_t>(conn.num_trees()) != num_trees) {
    throw std::runtime_error("qforest::load_forest: tree count mismatch");
  }

  Forest<R> forest =
      Forest<R>::new_root(conn, static_cast<int>(ranks));
  // Rebuild each tree's leaf array from the canonical stream.
  std::vector<std::vector<typename R::quad_t>> trees(num_trees);
  for (std::uint32_t t = 0; t < num_trees; ++t) {
    const auto count = read_pod<std::uint64_t>(in);
    auto& tree = trees[t];
    tree.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      CanonicalQuadrant c;
      c.x = read_pod<std::int64_t>(in);
      c.y = read_pod<std::int64_t>(in);
      c.z = read_pod<std::int64_t>(in);
      c.level = read_pod<std::uint8_t>(in);
      if (c.level > R::max_level) {
        throw std::invalid_argument(
            "qforest::load_forest: level exceeds representation limit");
      }
      tree.push_back(from_canonical<R>(c));
    }
  }
  forest.replace_leaves(std::move(trees));
  if (!forest.is_valid()) {
    throw std::runtime_error("qforest::load_forest: stream does not encode "
                             "a valid forest");
  }
  return forest;
}

/// Representation-independent structural checksum: hashes dimension,
/// connectivity and every leaf in canonical form. Equal meshes give equal
/// checksums no matter the encoding (see tests/test_io.cpp).
template <class R>
std::uint64_t forest_checksum(const Forest<R>& forest) {
  io_detail::Fnv1a h;
  h.update_pod(static_cast<std::uint32_t>(R::dim));
  const Connectivity& conn = forest.connectivity();
  for (int a = 0; a < 3; ++a) {
    h.update_pod(static_cast<std::uint32_t>(conn.extent(a)));
    h.update_pod(static_cast<std::uint8_t>(conn.periodic(a) ? 1 : 0));
  }
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    for (const auto& q : forest.tree_quadrants(t)) {
      const CanonicalQuadrant c = to_canonical<R>(q);
      h.update_pod(c.x);
      h.update_pod(c.y);
      h.update_pod(c.z);
      h.update_pod(static_cast<std::uint8_t>(c.level));
    }
  }
  return h.digest();
}

// ------------------------------------------------- sharded ghost exchange

/// User-tag space of the exchange protocol (below par::kInternalTagBase).
inline constexpr int kTagGhostRequest = 101;  ///< round 1: wanted indices
inline constexpr int kTagGhostData = 102;     ///< round 2: payload blocks

/// Knobs of exchange_ghost_payloads.
struct GhostExchangeOptions {
  /// Overlap interior computation with the in-flight exchange (post
  /// sends, compute interior, then wait for ghost data). The default
  /// honors the QFOREST_NO_OVERLAP ablation switch, which forces the
  /// post-then-wait serial order instead.
  bool overlap = overlap_default();

  /// Simulated interconnect latency per message (see Mailbox); 0 = none.
  std::chrono::microseconds delivery_delay{0};

  [[nodiscard]] static bool overlap_default() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once before threads start
    return std::getenv("QFOREST_NO_OVERLAP") == nullptr;
  }
};

/// Result of one sharded exchange: payloads[r][e] is the payload of rank
/// r's ghost entry e (aligned with ghosts[r].entries — the same contract
/// as Forest::ghost_exchange), plus each rank's wall time inside its
/// worker for per-rank scaling reports.
struct GhostExchangeResult {
  std::vector<std::vector<std::uint64_t>> payloads;
  std::vector<double> rank_seconds;
};

/// Batched asynchronous ghost-payload exchange across every simulated
/// rank of \p forest (the message-passing counterpart of the shared-
/// memory Forest::ghost_exchange reference).
///
/// Each rank worker runs a two-round protocol over its mailbox:
///   1. one *request* message per peer (possibly empty) listing the
///      global indices this rank's ghost layer needs from that owner, in
///      ghost-entry order;
///   2. on receipt of a peer's request, the owner serializes the wanted
///      payloads in bulk (ByteWriter: index array + value array, two
///      memcpys) and posts one *data* message back — one message per
///      (source, target) pair in each direction.
/// Then the overlap seam: with opt.overlap the rank runs \p interior
/// (ghost-independent computation, e.g. the interior side of
/// Forest::rank_work_split) while its data messages are still in flight
/// and drains them afterwards; without it the rank waits for all data
/// first (the QFOREST_NO_OVERLAP ablation). Either way \p boundary runs
/// last with the filled flat ghost buffer.
///
/// \p ghosts must hold ghost_layer(r) for every rank r of the forest and
/// the payload channel must be enabled.
template <class R, class InteriorFn, class BoundaryFn>
GhostExchangeResult exchange_ghost_payloads(
    const Forest<R>& forest, const std::vector<GhostLayer<R>>& ghosts,
    const GhostExchangeOptions& opt, InteriorFn&& interior,
    BoundaryFn&& boundary) {
  assert(forest.payload_enabled());
  const int p = forest.num_ranks();
  assert(static_cast<int>(ghosts.size()) == p);
  GhostExchangeResult res;
  res.payloads.resize(static_cast<std::size_t>(p));
  res.rank_seconds.assign(static_cast<std::size_t>(p), 0.0);
  for (int r = 0; r < p; ++r) {
    res.payloads[static_cast<std::size_t>(r)].resize(
        ghosts[static_cast<std::size_t>(r)].entries.size());
  }
  par::RankGroup group(p);
  group.set_delivery_delay(opt.delivery_delay);
  group.run([&](par::RankCtx& ctx) {
    const int r = ctx.rank();
    const auto& entries = ghosts[static_cast<std::size_t>(r)].entries;
    obs::TraceSpan exchange_span("io", "ghost.exchange");
    exchange_span.arg("ranks", p);
    exchange_span.arg("ghost_entries",
                      static_cast<std::int64_t>(entries.size()));
    static obs::Counter& c_rounds = obs::counter("io.exchange.rounds");
    static obs::Counter& c_drain_ns = obs::counter("io.exchange.drain_wait_ns");
    static obs::Histogram& h_req = obs::histogram("io.exchange.request_bytes");
    static obs::Histogram& h_data = obs::histogram("io.exchange.data_bytes");
    c_rounds.add(1);
    WallTimer timer;
    // Round 1: request lists per owner, in ghost-entry order (entries
    // are sorted by global index, so each owner's sublist is too — the
    // data blocks come back aligned with a plain per-owner cursor).
    std::vector<std::vector<gidx_t>> need(static_cast<std::size_t>(p));
    for (const auto& e : entries) {
      assert(e.owner != r);
      need[static_cast<std::size_t>(e.owner)].push_back(e.global_index);
    }
    {
      obs::TraceSpan post_span("io", "ghost.post");
      for (int s = 0; s < p; ++s) {
        if (s != r) {
          io_detail::ByteWriter w;
          const auto& idx = need[static_cast<std::size_t>(s)];
          w.write_array(idx.data(), idx.size());
          std::vector<std::uint8_t> bytes = std::move(w).take();
          h_req.record(bytes.size());
          (void)ctx.isend(s, kTagGhostRequest, std::move(bytes));
        }
      }
    }
    // The in-flight window of this rank's exchange: from the last
    // request posted until the last data block drained. Emitted as its
    // own span so the overlap ablation is visible in the trace.
    const std::int64_t inflight_start_ns =
        obs::tracing_enabled() ? obs::trace_clock_ns() : 0;
    std::int64_t inflight_end_ns = 0;
    {
      obs::TraceSpan serve_span("io", "ghost.serve");
      // Round 2: serve the p-1 peer requests as they arrive.
      for (int k = 0; k + 1 < p; ++k) {
        par::Message m = ctx.recv(par::kAnySource, kTagGhostRequest);
        io_detail::ByteReader rd(m.bytes);
        const std::vector<gidx_t> wanted = rd.read_array<gidx_t>();
        std::vector<std::uint64_t> vals;
        vals.reserve(wanted.size());
        for (const gidx_t g : wanted) {
          const auto [t, i] = forest.locate(g);
          vals.push_back(forest.tree_payloads(t)[i]);
        }
        io_detail::ByteWriter w;
        w.write_array(wanted.data(), wanted.size());
        w.write_array(vals.data(), vals.size());
        std::vector<std::uint8_t> bytes = std::move(w).take();
        h_data.record(bytes.size());
        (void)ctx.isend(m.source, kTagGhostData, std::move(bytes));
      }
    }
    // Receive the p-1 data blocks and scatter them into the flat ghost
    // buffer in entry order (per-owner cursors; indices echo back for
    // the alignment check).
    auto drain = [&] {
      WallTimer drain_timer;
      {
        obs::TraceSpan drain_span("io", "ghost.drain");
        std::vector<std::vector<gidx_t>> got_idx(static_cast<std::size_t>(p));
        std::vector<std::vector<std::uint64_t>> got(
            static_cast<std::size_t>(p));
        for (int k = 0; k + 1 < p; ++k) {
          par::Message m = ctx.recv(par::kAnySource, kTagGhostData);
          io_detail::ByteReader rd(m.bytes);
          const auto s = static_cast<std::size_t>(m.source);
          got_idx[s] = rd.read_array<gidx_t>();
          got[s] = rd.read_array<std::uint64_t>();
        }
        auto& out = res.payloads[static_cast<std::size_t>(r)];
        std::vector<std::size_t> cur(static_cast<std::size_t>(p), 0);
        for (std::size_t e = 0; e < entries.size(); ++e) {
          const auto s = static_cast<std::size_t>(entries[e].owner);
          assert(cur[s] < got[s].size() &&
                 got_idx[s][cur[s]] == entries[e].global_index &&
                 "ghost data block misaligned with ghost layer");
          out[e] = got[s][cur[s]++];
        }
      }
      inflight_end_ns = obs::tracing_enabled() ? obs::trace_clock_ns() : 0;
      if (obs::metrics_enabled()) {
        c_drain_ns.add(static_cast<std::uint64_t>(drain_timer.elapsed_ns()));
      }
    };
    if (opt.overlap) {
      {
        obs::TraceSpan interior_span("io", "ghost.interior");
        interior_span.arg("overlap", 1);
        interior(r);
      }
      drain();
    } else {
      drain();
      {
        obs::TraceSpan interior_span("io", "ghost.interior");
        interior_span.arg("overlap", 0);
        interior(r);
      }
    }
    if (obs::tracing_enabled() && inflight_end_ns > inflight_start_ns) {
      obs::trace_complete("io", "ghost.inflight", inflight_start_ns,
                          inflight_end_ns, "overlap", opt.overlap ? 1 : 0);
    }
    {
      obs::TraceSpan boundary_span("io", "ghost.boundary");
      boundary(r, res.payloads[static_cast<std::size_t>(r)]);
    }
    res.rank_seconds[static_cast<std::size_t>(r)] = timer.elapsed_s();
  });
  return res;
}

/// Convenience overload without compute hooks: just the exchange.
template <class R>
GhostExchangeResult exchange_ghost_payloads(
    const Forest<R>& forest, const std::vector<GhostLayer<R>>& ghosts,
    const GhostExchangeOptions& opt = {}) {
  return exchange_ghost_payloads(
      forest, ghosts, opt, [](int) {},
      [](int, const std::vector<std::uint64_t>&) {});
}

}  // namespace qforest

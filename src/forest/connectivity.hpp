#pragma once
/// \file connectivity.hpp
/// \brief Inter-tree connectivity: how unit trees tile the domain.
///
/// p4est meshes general geometries by connecting many logically cubic
/// trees into a forest. This library implements the axis-aligned *brick*
/// family (an nx x ny [x nz] grid of trees with optional periodicity per
/// axis), which covers the unit cube, rectangular channels, periodic tori
/// and every workload used in the paper and in our examples. Face
/// connections carry no rotation: the neighbor across face f adjoins
/// through its face f^1 with identity orientation (p4est's general
/// corner/orientation codes are out of scope; see DESIGN.md §2).

#include <array>
#include <cstdint>
#include <vector>

namespace qforest {

/// Identifier of a tree within the forest.
using tree_id_t = std::int32_t;

/// Axis-aligned brick connectivity of unit trees.
class Connectivity {
 public:
  /// Result of crossing a tree face: the neighbor tree (or -1 at a
  /// physical boundary) and the neighbor's adjoining face.
  struct FaceLink {
    tree_id_t tree = -1;
    int face = -1;

    [[nodiscard]] bool is_boundary() const { return tree < 0; }
  };

  /// Single unit tree (the unit square / cube), no periodicity.
  static Connectivity unit(int dim);

  /// nx x ny grid of trees; \p periodic_x/y wrap the respective axis.
  static Connectivity brick2d(int nx, int ny, bool periodic_x = false,
                              bool periodic_y = false);

  /// nx x ny x nz grid of trees with optional periodicity per axis.
  static Connectivity brick3d(int nx, int ny, int nz, bool periodic_x = false,
                              bool periodic_y = false,
                              bool periodic_z = false);

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] tree_id_t num_trees() const {
    return static_cast<tree_id_t>(extent_[0]) * extent_[1] * extent_[2];
  }

  /// Brick extent along \p axis (number of trees).
  [[nodiscard]] int extent(int axis) const { return extent_[axis]; }

  /// Whether \p axis wraps periodically.
  [[nodiscard]] bool periodic(int axis) const { return periodic_[axis]; }

  /// Grid position of tree \p t within the brick.
  [[nodiscard]] std::array<int, 3> tree_coords(tree_id_t t) const;

  /// Tree at brick position (x,y,z); applies periodic wrap; -1 outside.
  [[nodiscard]] tree_id_t tree_at(int x, int y, int z) const;

  /// Neighbor tree across face \p f of tree \p t (p4est face order
  /// -x,+x,-y,+y,-z,+z).
  [[nodiscard]] FaceLink tree_face_neighbor(tree_id_t t, int f) const;

  /// Neighbor tree across a general axis offset (dx,dy,dz in {-1,0,1}),
  /// used for corner/edge ghost exchange. Returns -1 when any non-periodic
  /// axis leaves the brick.
  [[nodiscard]] tree_id_t tree_offset_neighbor(tree_id_t t, int dx, int dy,
                                               int dz) const;

  /// Structural soundness: extents positive, face links symmetric.
  [[nodiscard]] bool is_valid() const;

 private:
  Connectivity(int dim, std::array<int, 3> extent,
               std::array<bool, 3> periodic);

  int dim_ = 2;
  std::array<int, 3> extent_{1, 1, 1};
  std::array<bool, 3> periodic_{false, false, false};
};

}  // namespace qforest

#include "forest/vforest.hpp"

#include <algorithm>
#include <cassert>

#include "core/canonical.hpp"

namespace qforest {

VForest::VForest(RepKind kind, Connectivity conn)
    : kind_(kind),
      ops_(&virtual_ops(kind, conn.dim())),
      conn_(std::move(conn)),
      trees_(static_cast<std::size_t>(conn_.num_trees())) {}

VForest VForest::new_uniform(RepKind kind, Connectivity conn, int level) {
  VForest f(kind, std::move(conn));
  const VirtualQuadrantOps& ops = *f.ops_;
  if (level < 0 || level > ops.max_level() || ops.dim() * level >= 64) {
    throw std::invalid_argument("VForest: level out of range");
  }
  const auto n = std::uint64_t{1}
                 << (static_cast<unsigned>(ops.dim() * level));
  for (auto& tree : f.trees_) {
    tree.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      tree.push_back(ops.morton_quadrant(i, level));
    }
  }
  return f;
}

std::int64_t VForest::num_quadrants() const {
  std::int64_t n = 0;
  for (const auto& tree : trees_) {
    n += static_cast<std::int64_t>(tree.size());
  }
  return n;
}

int VForest::max_level_used() const {
  int m = 0;
  for (const auto& tree : trees_) {
    for (const VQuad& q : tree) {
      m = std::max(m, ops_->level(q));
    }
  }
  return m;
}

void VForest::refine(bool recursive, const refine_fn& should_refine) {
  const int dim = ops_->dim();
  const int nc = 1 << dim;
  const int max_level = ops_->max_level();
  for (tree_id_t t = 0; t < num_trees(); ++t) {
    auto& tree = trees_[static_cast<std::size_t>(t)];
    std::vector<VQuad> out;
    out.reserve(tree.size());
    std::vector<VQuad> stack;
    for (const VQuad& q : tree) {
      if (ops_->level(q) >= max_level || !should_refine(t, q)) {
        out.push_back(q);
        continue;
      }
      stack.clear();
      stack.push_back(q);
      while (!stack.empty()) {
        const VQuad cur = stack.back();
        stack.pop_back();
        const bool split =
            ops_->level(cur) < max_level &&
            (ops_->equal(cur, q) || (recursive && should_refine(t, cur)));
        if (!split) {
          out.push_back(cur);
          continue;
        }
        for (int c = nc - 1; c >= 0; --c) {
          stack.push_back(ops_->child(cur, c));
        }
      }
    }
    tree = std::move(out);
  }
}

void VForest::coarsen(bool recursive, const coarsen_fn& should_coarsen) {
  const int nc = 1 << ops_->dim();
  bool changed = true;
  while (changed) {
    changed = false;
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      auto& tree = trees_[static_cast<std::size_t>(t)];
      std::vector<VQuad> out;
      out.reserve(tree.size());
      std::size_t i = 0;
      while (i < tree.size()) {
        if (is_family_at(tree, i) && should_coarsen(t, tree.data() + i)) {
          out.push_back(ops_->parent(tree[i]));
          i += static_cast<std::size_t>(nc);
          changed = true;
        } else {
          out.push_back(tree[i]);
          ++i;
        }
      }
      tree = std::move(out);
    }
    if (!recursive) {
      break;
    }
  }
}

bool VForest::is_family_at(const std::vector<VQuad>& tree,
                           std::size_t i) const {
  const int nc = 1 << ops_->dim();
  if (i + static_cast<std::size_t>(nc) > tree.size()) {
    return false;
  }
  const VQuad& first = tree[i];
  if (ops_->level(first) == 0 || ops_->child_id(first) != 0) {
    return false;
  }
  const VQuad p = ops_->parent(first);
  for (int c = 1; c < nc; ++c) {
    const VQuad& sib = tree[i + static_cast<std::size_t>(c)];
    if (ops_->level(sib) != ops_->level(first) || ops_->child_id(sib) != c ||
        !ops_->equal(ops_->parent(sib), p)) {
      return false;
    }
  }
  return true;
}

std::optional<std::pair<tree_id_t, VQuad>> VForest::neighbor_at(
    tree_id_t t, const VQuad& q, int dx, int dy, int dz) const {
  CanonicalQuadrant c = ops_->canonical(q);
  const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
  std::int64_t pos[3] = {c.x + dx * h, c.y + dy * h, c.z + dz * h};
  int step[3] = {0, 0, 0};
  for (int a = 0; a < ops_->dim(); ++a) {
    if (pos[a] < 0) {
      step[a] = -1;
      pos[a] += root;
    } else if (pos[a] >= root) {
      step[a] = 1;
      pos[a] -= root;
    }
  }
  tree_id_t nt = t;
  if (step[0] != 0 || step[1] != 0 || step[2] != 0) {
    nt = conn_.tree_offset_neighbor(t, step[0], step[1], step[2]);
    if (nt < 0) {
      return std::nullopt;
    }
  }
  return std::make_pair(
      nt, ops_->from_canonical_quad({pos[0], pos[1], pos[2], c.level}));
}

std::optional<std::size_t> VForest::enclosing_leaf(tree_id_t t,
                                                   const VQuad& q) const {
  const auto& tree = trees_[static_cast<std::size_t>(t)];
  const auto it = std::upper_bound(
      tree.begin(), tree.end(), q,
      [this](const VQuad& a, const VQuad& b) { return ops_->less(a, b); });
  if (it == tree.begin()) {
    return std::nullopt;
  }
  const auto idx = static_cast<std::size_t>(it - tree.begin()) - 1;
  const VQuad& leaf = tree[idx];
  if (ops_->equal(leaf, q) || ops_->is_ancestor(leaf, q)) {
    return idx;
  }
  return std::nullopt;
}

void VForest::balance() {
  const int dim = ops_->dim();
  const int nc = 1 << dim;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::vector<std::uint8_t>> split(trees_.size());
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      split[t].assign(trees_[t].size(), 0);
    }
    const int zlo = dim == 3 ? -1 : 0, zhi = dim == 3 ? 1 : 0;
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      for (const VQuad& q : trees_[static_cast<std::size_t>(t)]) {
        const int lvl = ops_->level(q);
        if (lvl < 2) {
          continue;
        }
        for (int dz = zlo; dz <= zhi; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) {
                continue;
              }
              const auto nb = neighbor_at(t, q, dx, dy, dz);
              if (!nb.has_value()) {
                continue;
              }
              const auto idx = enclosing_leaf(nb->first, nb->second);
              if (idx.has_value()) {
                const VQuad& leaf =
                    trees_[static_cast<std::size_t>(nb->first)][*idx];
                if (ops_->level(leaf) < lvl - 1) {
                  split[static_cast<std::size_t>(nb->first)][*idx] = 1;
                }
              }
            }
          }
        }
      }
    }
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      if (std::find(split[t].begin(), split[t].end(), 1) == split[t].end()) {
        continue;
      }
      changed = true;
      std::vector<VQuad> out;
      out.reserve(trees_[t].size() + static_cast<std::size_t>(nc));
      for (std::size_t i = 0; i < trees_[t].size(); ++i) {
        if (!split[t][i]) {
          out.push_back(trees_[t][i]);
          continue;
        }
        for (int c = 0; c < nc; ++c) {
          out.push_back(ops_->child(trees_[t][i], c));
        }
      }
      trees_[t] = std::move(out);
    }
  }
}

bool VForest::is_balanced() const {
  const int dim = ops_->dim();
  const int zlo = dim == 3 ? -1 : 0, zhi = dim == 3 ? 1 : 0;
  for (tree_id_t t = 0; t < num_trees(); ++t) {
    for (const VQuad& q : trees_[static_cast<std::size_t>(t)]) {
      const int lvl = ops_->level(q);
      if (lvl < 2) {
        continue;
      }
      for (int dz = zlo; dz <= zhi; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) {
              continue;
            }
            const auto nb = neighbor_at(t, q, dx, dy, dz);
            if (!nb.has_value()) {
              continue;
            }
            const auto idx = enclosing_leaf(nb->first, nb->second);
            if (idx.has_value() &&
                ops_->level(trees_[static_cast<std::size_t>(nb->first)]
                                  [*idx]) < lvl - 1) {
              return false;
            }
          }
        }
      }
    }
  }
  return true;
}

std::vector<std::int64_t> VForest::search_points(
    const std::vector<PointQuery>& queries) const {
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
  const int dim = ops_->dim();
  for (const PointQuery& p : queries) {
    if (p.tree < 0 || p.tree >= num_trees() || p.x < 0 || p.x >= root ||
        p.y < 0 || p.y >= root || p.z < 0 || p.z >= root ||
        (dim == 2 && p.z != 0)) {
      throw std::invalid_argument(
          "VForest::search_points: query outside the domain");
    }
  }
  // Global index = leaf position + exclusive prefix of tree sizes.
  std::vector<std::int64_t> offsets(trees_.size() + 1, 0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    offsets[t + 1] = offsets[t] + static_cast<std::int64_t>(trees_[t].size());
  }
  // Group the query indices per tree without touching the input order.
  std::vector<std::size_t> count(trees_.size() + 1, 0);
  for (const PointQuery& p : queries) {
    ++count[static_cast<std::size_t>(p.tree) + 1];
  }
  for (std::size_t t = 1; t < count.size(); ++t) {
    count[t] += count[t - 1];
  }
  std::vector<std::size_t> order(queries.size());
  {
    std::vector<std::size_t> cursor(count.begin(), count.end() - 1);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      order[cursor[static_cast<std::size_t>(queries[qi].tree)]++] = qi;
    }
  }
  // The point's max_level key: mask the coordinates down to max_level
  // alignment (the containing leaf is the last leaf <= that key).
  const std::int64_t mask =
      ~((std::int64_t{1} << (kCanonicalLevel - ops_->max_level())) - 1);
  std::vector<std::int64_t> out(queries.size(), -1);
  std::vector<std::pair<VQuad, std::size_t>> pts;
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    const std::size_t b = count[ti];
    const std::size_t e = count[ti + 1];
    if (b == e) {
      continue;
    }
    pts.clear();
    pts.reserve(e - b);
    for (std::size_t k = b; k < e; ++k) {
      const PointQuery& p = queries[order[k]];
      pts.emplace_back(ops_->from_canonical_quad({p.x & mask, p.y & mask,
                                                  p.z & mask,
                                                  ops_->max_level()}),
                       order[k]);
    }
    std::sort(pts.begin(), pts.end(),
              [this](const auto& x, const auto& y) {
                return ops_->less(x.first, y.first);
              });
    const auto& tree = trees_[ti];
    const auto n = static_cast<std::ptrdiff_t>(tree.size());
    // Sorted-merge sweep: the last-leaf-<=-key cursor advances
    // monotonically with the sorted keys.
    std::ptrdiff_t j =
        std::upper_bound(tree.begin(), tree.end(), pts.front().first,
                         [this](const VQuad& a, const VQuad& b) {
                           return ops_->less(a, b);
                         }) -
        tree.begin() - 1;
    for (const auto& [key, qi] : pts) {
      while (j + 1 < n && !ops_->less(key, tree[static_cast<std::size_t>(j + 1)])) {
        ++j;
      }
      assert(j >= 0);
      out[qi] = offsets[ti] + static_cast<std::int64_t>(j);
    }
  }
  return out;
}

void VForest::search(const search_fn& cb) const {
  for (tree_id_t t = 0; t < num_trees(); ++t) {
    const auto& tree = trees_[static_cast<std::size_t>(t)];
    if (!tree.empty()) {
      search_recursion(t, ops_->root(), 0, tree.size(), cb);
    }
  }
}

void VForest::search_recursion(tree_id_t t, const VQuad& anc,
                               std::size_t begin, std::size_t end,
                               const search_fn& cb) const {
  const auto& tree = trees_[static_cast<std::size_t>(t)];
  const bool is_leaf = end - begin == 1 && ops_->equal(tree[begin], anc);
  if (!cb(t, anc, begin, end, is_leaf) || is_leaf) {
    return;
  }
  if (ops_->level(anc) >= ops_->max_level()) {
    return;
  }
  std::size_t pos = begin;
  for (int c = 0; c < (1 << ops_->dim()) && pos < end; ++c) {
    const VQuad ch = ops_->child(anc, c);
    const auto stop = static_cast<std::size_t>(
        std::partition_point(
            tree.begin() + static_cast<std::ptrdiff_t>(pos),
            tree.begin() + static_cast<std::ptrdiff_t>(end),
            [&](const VQuad& leaf) {
              return ops_->equal(leaf, ch) || ops_->is_ancestor(ch, leaf);
            }) -
        tree.begin());
    if (stop > pos) {
      search_recursion(t, ch, pos, stop, cb);
    }
    pos = stop;
  }
}

bool VForest::complete_range(const VQuad& anc, const VQuad* begin,
                             const VQuad* end) const {
  if (begin == end) {
    return false;
  }
  if (end - begin == 1 && ops_->equal(*begin, anc)) {
    return true;
  }
  if (ops_->level(anc) >= ops_->max_level()) {
    return false;
  }
  const VQuad* pos = begin;
  for (int c = 0; c < (1 << ops_->dim()); ++c) {
    const VQuad ch = ops_->child(anc, c);
    const VQuad* stop =
        std::partition_point(pos, end, [&](const VQuad& leaf) {
          return ops_->equal(leaf, ch) || ops_->is_ancestor(ch, leaf);
        });
    if (!complete_range(ch, pos, stop)) {
      return false;
    }
    pos = stop;
  }
  return pos == end;
}

bool VForest::is_valid() const {
  for (const auto& tree : trees_) {
    if (tree.empty()) {
      return false;
    }
    for (const VQuad& q : tree) {
      if (!ops_->is_valid(q)) {
        return false;
      }
    }
    for (std::size_t i = 0; i + 1 < tree.size(); ++i) {
      if (!ops_->less(tree[i], tree[i + 1])) {
        return false;
      }
    }
    if (!complete_range(ops_->root(), tree.data(),
                        tree.data() + tree.size())) {
      return false;
    }
  }
  return true;
}

}  // namespace qforest

#pragma once
/// \file forest.hpp
/// \brief Forest of octrees: linear leaf storage + high-level AMR algorithms.
///
/// This is the p4est substrate the paper's quadrant representations plug
/// into: trees store only their leaves, sorted along the space-filling
/// curve ("linear octree", paper §2), and the high-level algorithms —
/// new/refine/coarsen/balance/partition/ghost/search/iterate — are written
/// once against the QuadrantRepresentation concept, so switching the
/// low-level encoding never touches this file. That is precisely the
/// abstraction the paper proposes ("to change between multiple sets of
/// quadrant representations ... using the same high-level algorithm").
///
/// Parallel semantics: the forest holds the global leaf sequence in shared
/// memory and maintains a partition of the global Morton order into
/// contiguous rank ranges (DESIGN.md §4 explains this MPI substitution).
///
/// Bulk quadrant production (refine waves, coarsen family sweeps, balance
/// splitting) never calls the scalar per-quadrant ops directly: marked
/// leaves are staged into level-uniform spans and dispatched through
/// BatchOps<R> (core/batch_ops.hpp), so representations with SIMD batch
/// kernels consume them register-parallel while every other representation
/// takes the generic scalar loop.
///
/// Scheduling is two-level: the per-tree outer loops of the adaptation
/// algorithms run on the shared forest thread pool (level 1), and within
/// each tree the hot passes — refine mark waves, the coarsen family
/// decision sweep, the balance mark passes and the split apply — cut the
/// tree's leaf array into contiguous cache-sized chunks dispatched on the
/// same pool (level 2), so a single-tree forest (the common benchmark
/// shape) saturates every worker instead of leaving the pool idle. User
/// callbacks must therefore be safe to invoke concurrently — both for
/// different trees and for different leaf chunks of the same tree.
/// Callbacks that mutate shared state can opt out via
/// set_tree_parallelism(false) or the QFOREST_SERIAL_TREES environment
/// variable (disables BOTH levels); set_intra_tree_parallelism(false)
/// disables only the chunk level. Reentrant forest operations from inside
/// a chunk-level callback always run fully inline (chunk workers never
/// nest); reentrant operations from a tree-level callback run their tree
/// loop inline but may still chunk it — the pool's helping wait makes
/// nested dispatch deadlock-free.

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/batch_ops.hpp"
#include "core/bits.hpp"
#include "core/canonical.hpp"
#include "core/debug_check.hpp"
#include "core/rep_traits.hpp"
#include "core/types.hpp"
#include "forest/connectivity.hpp"
#include "forest/point_query.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/communicator.hpp"
#include "par/thread_pool.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace qforest {

namespace detail {
/// Worker pool shared by the per-tree and per-chunk loops of every Forest
/// instantiation; created on first use, sized to the hardware concurrency
/// unless QFOREST_THREADS overrides it.
inline par::ThreadPool& forest_pool() {
  static par::ThreadPool pool([] {
    if (const char* env =
            std::getenv("QFOREST_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      const long v = std::atol(env);
      if (v > 0) {
        return static_cast<unsigned>(v);
      }
    }
    return 0u;  // ThreadPool default: hardware concurrency
  }());
  return pool;
}

/// Scheduling depth of the code currently running on this thread: 0 off
/// the pool, 1 inside a per-tree task, 2 inside an intra-tree chunk task.
/// The depth is a property of the *task*, not the thread — the pool's
/// helping wait executes queued tasks on waiting threads, so every task
/// wrapper scopes the depth itself (DepthScope). Reentrant forest
/// operations (a callback that adapts another forest) consult it: at
/// depth >= 1 the tree loop runs inline, at depth >= 2 chunk loops run
/// inline too, so chunk workers never nest.
inline int& worker_depth() {
  thread_local int depth = 0;
  return depth;
}

/// RAII depth marker for one pool task. No depth check here: the
/// executing thread's prior depth is arbitrary under the helping wait
/// (a thread waiting at depth 1 or 2 legitimately picks up queued tasks
/// of any level) — the scheduling invariant is asserted at the dispatch
/// decisions in parallel_over / parallel_chunks instead.
class DepthScope {
 public:
  explicit DepthScope(int depth) : saved_(worker_depth()) {
    worker_depth() = depth;
  }
  ~DepthScope() { worker_depth() = saved_; }
  DepthScope(const DepthScope&) = delete;
  DepthScope& operator=(const DepthScope&) = delete;

 private:
  int saved_;
};

/// Atomic with relaxed ordering: the switches may be flipped while a
/// parallel region runs (benches toggle them between timed phases);
/// workers only need *a* consistent value per load.
inline std::atomic<bool>& tree_parallel_flag() {
  static std::atomic<bool> flag{
      std::getenv("QFOREST_SERIAL_TREES") ==  // NOLINT(concurrency-mt-unsafe)
      nullptr};
  return flag;
}

inline std::atomic<bool>& intra_tree_flag() {
  static std::atomic<bool> flag{
      std::getenv("QFOREST_SERIAL_CHUNKS") ==  // NOLINT(concurrency-mt-unsafe)
      nullptr};
  return flag;
}

/// Leaf count per intra-tree chunk task. The default is cache-sized:
/// large enough to amortize task submission over thousands of callback
/// evaluations, small enough that several chunks fit per worker for load
/// balancing.
inline constexpr std::size_t kDefaultChunkGrain = 4096;

inline std::atomic<std::size_t>& chunk_grain_value() {
  static std::atomic<std::size_t> value{[] {
    if (const char* env =
            std::getenv("QFOREST_CHUNK_GRAIN")) {  // NOLINT(concurrency-mt-unsafe)
      const long long v = std::atoll(env);
      if (v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return kDefaultChunkGrain;
  }()};
  return value;
}

/// Deterministic exception collector for one parallel region: the
/// lowest-index chunk's exception wins regardless of completion order;
/// every other one is counted and reported, never silently dropped.
/// ThreadPool::parallel_for_grain applies the same lowest-index-wins
/// policy for raw pool users (CallState in par/thread_pool.cpp), but
/// cannot count-and-log the losers — the pool layer has no logger — so
/// the forest catches here, before the pool-level slot ever sees the
/// exception; keep the two winner policies in sync.
class RegionErrors {
 public:
  void capture(std::size_t begin_index) {
    const LockGuard lock(mutex_);
    if (!error_ || begin_index < error_begin_) {
      if (error_) {
        ++suppressed_;
      }
      error_ = std::current_exception();
      error_begin_ = begin_index;
    } else {
      ++suppressed_;
    }
  }

  void rethrow_if_any() {
    // Copied out under the lock, logged and rethrown outside it: the
    // region's workers are done by now, but keeping the guarded fields
    // lock-accessed everywhere is what lets the compiler prove it — and
    // log_error takes the log mutex, which must not nest under this one.
    std::exception_ptr error;
    std::size_t suppressed = 0;
    {
      const LockGuard lock(mutex_);
      error = error_;
      suppressed = suppressed_;
    }
    if (!error) {
      return;
    }
    if (suppressed > 0) {
      log_error(
          "forest parallel region: %zu additional worker exception(s) "
          "suppressed; rethrowing the lowest-index chunk's",
          suppressed);
    }
    std::rethrow_exception(error);
  }

 private:
  Mutex mutex_;
  std::exception_ptr error_ QF_GUARDED_BY(mutex_);
  std::size_t error_begin_ QF_GUARDED_BY(mutex_) = 0;
  std::size_t suppressed_ QF_GUARDED_BY(mutex_) = 0;
};
}  // namespace detail

/// Process-wide switch for the parallelism of refine / coarsen / balance.
/// Defaults to on; disable (or set the QFOREST_SERIAL_TREES environment
/// variable) when adaptation callbacks mutate shared state without
/// synchronization. Disabling turns off BOTH scheduling levels — the
/// per-tree loops and the intra-tree chunk loops.
inline void set_tree_parallelism(bool on) {
  // mo: relaxed — independent on/off switch; readers only branch on it.
  detail::tree_parallel_flag().store(on, std::memory_order_relaxed);
}
inline bool tree_parallelism() {
  // mo: relaxed — independent on/off switch; readers only branch on it.
  return detail::tree_parallel_flag().load(std::memory_order_relaxed);
}

/// Switch for the intra-tree (chunk-level) parallelism only: when off,
/// trees still run concurrently but each tree's passes stay on one
/// thread — the pre-chunking scheduler, kept selectable for callbacks
/// that tolerate tree-level but not chunk-level concurrency and for the
/// bench_intra_tree ablation. Also off via QFOREST_SERIAL_CHUNKS.
inline void set_intra_tree_parallelism(bool on) {
  // mo: relaxed — independent on/off switch; readers only branch on it.
  detail::intra_tree_flag().store(on, std::memory_order_relaxed);
}
inline bool intra_tree_parallelism() {
  // mo: relaxed — independent on/off switch; readers only branch on it.
  return detail::intra_tree_flag().load(std::memory_order_relaxed);
}

/// Leaves per intra-tree chunk task (0 restores the default). Tests force
/// tiny grains to exercise chunk-boundary handling; QFOREST_CHUNK_GRAIN
/// sets the initial value.
inline void set_chunk_grain(std::size_t grain) {
  // mo: relaxed — scheduling hint; any grain value is correct.
  detail::chunk_grain_value().store(
      grain == 0 ? detail::kDefaultChunkGrain : grain,
      std::memory_order_relaxed);
}
inline std::size_t chunk_grain() {
  // mo: relaxed — scheduling hint; any grain value is correct.
  return detail::chunk_grain_value().load(std::memory_order_relaxed);
}

/// Which neighbor relations the 2:1 balance constraint covers.
enum class BalanceKind {
  kFace,   ///< across faces only
  kEdge,   ///< faces + edges (3D; equals kFace in 2D)
  kFull    ///< faces + edges + corners
};

/// Ghost layer of one simulated rank: remote leaves adjacent to the
/// rank's own leaves, sorted by (tree, Morton order).
template <class R>
struct GhostLayer {
  struct Entry {
    tree_id_t tree;
    typename R::quad_t quad;
    int owner;            ///< owning rank
    gidx_t global_index;  ///< position in the global leaf sequence
  };
  std::vector<Entry> entries;
};

/// Boundary/interior split of one rank's leaves for communication /
/// computation overlap (see exchange_ghost_payloads in io.hpp): boundary
/// holds the rank's mirror leaves — exactly those whose stencils need
/// ghost data and must wait for the exchange — and interior the
/// complementary contiguous runs of the rank range, computable while the
/// exchange is in flight.
struct RankWorkSplit {
  std::vector<gidx_t> boundary;  ///< sorted global indices (the mirrors)
  std::vector<std::pair<gidx_t, gidx_t>> interior;  ///< half-open runs
};

/// Information passed to the face iteration callback.
template <class R>
struct FaceInfo {
  /// side 0 is the emitting leaf; side 1 the neighbor (absent on boundary).
  tree_id_t tree[2] = {-1, -1};
  typename R::quad_t quad[2] = {};
  std::size_t leaf_index[2] = {0, 0};  ///< index within the owning tree
  int face[2] = {-1, -1};              ///< face id as seen from each side
  bool is_boundary = false;            ///< physical domain boundary
  bool is_hanging = false;             ///< side 0 finer than side 1
};

/// A forest of axis-aligned unit trees storing leaf quadrants of
/// representation \p R.
template <class R>
  requires QuadrantRepresentation<R>
class Forest {
 public:
  using rep = R;
  using quad_t = typename R::quad_t;
  static constexpr int dim = R::dim;
  using dims = DimConstants<dim>;

  // ---------------------------------------------------------------- creation

  /// Forest of root quadrants: one leaf per tree.
  static Forest new_root(Connectivity conn, int num_ranks = 1) {
    return new_uniform(std::move(conn), 0, num_ranks);
  }

  /// Uniformly refined forest at \p level, built by Morton construction
  /// (this is the workload of the paper's §3.2 memory experiment). The
  /// leaf production is batched: the first tree is built chunk-parallel
  /// through BatchOps<R>::morton_quadrant_n (bulk de-interleave of the
  /// consecutive level indices) and the remaining trees — identical at a
  /// uniform level — are copies.
  static Forest new_uniform(Connectivity conn, int level, int num_ranks = 1) {
    if (conn.dim() != dim) {
      throw std::invalid_argument("Forest: connectivity dimension mismatch");
    }
    if (level < 0 || level > R::max_level || dim * level >= 64) {
      throw std::invalid_argument("Forest: level out of range");
    }
    Forest f(std::move(conn), num_ranks);
    const auto n = static_cast<std::size_t>(std::uint64_t{1}
                   << (static_cast<unsigned>(dim * level)));
    if (!f.trees_.empty()) {
      auto& front = f.trees_.front();
      front.resize(n);
      parallel_chunks(n, chunk_grain(),
                      [&](std::size_t, std::size_t b, std::size_t e) {
        std::vector<morton_t> il(e - b);
        for (std::size_t i = b; i < e; ++i) {
          il[i - b] = static_cast<morton_t>(i);
        }
        BatchOps<R>::morton_quadrant_n(il.data(), front.data() + b, e - b,
                                       level);
      });
      for (std::size_t t = 1; t < f.trees_.size(); ++t) {
        f.trees_[t] = front;
      }
    }
    f.rebuild_offsets();
    f.partition();
    return f;
  }

  // ---------------------------------------------------------------- accessors

  [[nodiscard]] const Connectivity& connectivity() const { return conn_; }
  [[nodiscard]] tree_id_t num_trees() const {
    return static_cast<tree_id_t>(trees_.size());
  }
  [[nodiscard]] int num_ranks() const { return comm_.size(); }

  /// Global number of leaves over all trees.
  [[nodiscard]] gidx_t num_quadrants() const { return tree_offsets_.back(); }

  /// Leaves of tree \p t in Morton order.
  [[nodiscard]] const std::vector<quad_t>& tree_quadrants(tree_id_t t) const {
    return trees_[static_cast<std::size_t>(t)];
  }

  /// Position of leaf (t, i) in the global leaf sequence.
  [[nodiscard]] gidx_t global_index(tree_id_t t, std::size_t i) const {
    return tree_offsets_[static_cast<std::size_t>(t)] +
           static_cast<gidx_t>(i);
  }

  /// Rank owning global leaf index \p g under the current partition.
  [[nodiscard]] int owner_rank(gidx_t g) const {
    return par::Communicator::owner_of(rank_offsets_, g);
  }

  /// Global index range [first, last) owned by \p rank.
  [[nodiscard]] std::pair<gidx_t, gidx_t> rank_range(int rank) const {
    return {rank_offsets_[static_cast<std::size_t>(rank)],
            rank_offsets_[static_cast<std::size_t>(rank) + 1]};
  }

  /// Map a global leaf index to (tree, index-within-tree).
  [[nodiscard]] std::pair<tree_id_t, std::size_t> locate(gidx_t g) const {
    assert(g >= 0 && g < num_quadrants());
    const auto it =
        std::upper_bound(tree_offsets_.begin(), tree_offsets_.end(), g);
    const auto t = static_cast<tree_id_t>(it - tree_offsets_.begin()) - 1;
    return {t, static_cast<std::size_t>(g - tree_offsets_[
                   static_cast<std::size_t>(t)])};
  }

  /// Number of leaves at refinement level \p l.
  [[nodiscard]] gidx_t count_level(int l) const {
    gidx_t n = 0;
    for (const auto& tree : trees_) {
      for (const quad_t& q : tree) {
        n += R::level(q) == l ? 1 : 0;
      }
    }
    return n;
  }

  /// Finest level present in the forest.
  [[nodiscard]] int max_level_used() const {
    int m = 0;
    for (const auto& tree : trees_) {
      for (const quad_t& q : tree) {
        m = std::max(m, R::level(q));
      }
    }
    return m;
  }

  // ---------------------------------------------------------------- refine

  /// Refine leaves for which \p should_refine(tree, quad) returns true.
  /// With \p recursive, children are re-examined until the callback
  /// declines or max_level is reached (p4est refine semantics).
  ///
  /// Implementation: wave-based and two-level parallel. The first wave
  /// marks over the whole tree in leaf-span chunks and applies with a
  /// chunked full rebuild; every later wave is *incremental* — it visits
  /// only the previous wave's children (the same quadrants the recursive
  /// descent would visit, tracked as an index list instead of a
  /// tree-sized bitmap) and splices their children into the leaf array in
  /// place, so sparse waves never rescan or copy the unsplit majority.
  /// Children are produced in level-uniform batches through BatchOps<R>
  /// throughout. Trees run in parallel on the forest pool; chunks of one
  /// tree do too.
  template <class Fn>
  void refine(bool recursive, Fn&& should_refine) {
    obs::TraceSpan span("forest", "refine");
    QFOREST_DBG_WRAP_CALLBACK(checked_refine, should_refine);
    adapt_and_rebuild([&] {
      for_each_tree([&](std::size_t ti) {
        refine_tree(ti, recursive, checked_refine);
      });
    });
    span.arg("leaves", static_cast<std::int64_t>(num_quadrants()));
  }

  // ---------------------------------------------------------------- coarsen

  /// Replace complete sibling families accepted by
  /// \p should_coarsen(tree, family-pointer) with their parent. With
  /// \p recursive, passes repeat until no family is coarsened.
  ///
  /// Implementation: each pass precomputes every leaf's parent and child
  /// id in level-uniform batches through BatchOps<R> plus one batched
  /// adjacent-parent equality sweep, so the family-detection scan touches
  /// no scalar quadrant ops. Complete families never overlap, so the
  /// family detection and the callback decisions run over leaf-span
  /// chunks in parallel (the rebuild that consumes accepted families
  /// stays a single memory-bound sweep). Trees run in parallel on the
  /// forest pool (coarsening never crosses tree boundaries).
  template <class Fn>
  void coarsen(bool recursive, Fn&& should_coarsen) {
    obs::TraceSpan span("forest", "coarsen");
    QFOREST_DBG_WRAP_CALLBACK(checked_coarsen, should_coarsen);
    adapt_and_rebuild([&] {
      for_each_tree([&](std::size_t ti) {
        CoarsenScratch scratch;  // reused across recursive passes
        while (coarsen_tree_pass(ti, checked_coarsen, scratch) && recursive) {
        }
      });
    });
    span.arg("leaves", static_cast<std::int64_t>(num_quadrants()));
  }

  // ---------------------------------------------------------------- balance

  /// Enforce the 2:1 level condition across the chosen neighbor relations
  /// (including across tree faces) by iterated splitting until fixpoint.
  ///
  /// The mark phase is batched: each tree's leaves are staged into
  /// level-uniform spans and all candidate neighbor keys are produced in
  /// bulk through BatchOps<R>::neighbor_at_offset_n. Keys staying inside
  /// their source tree (the vast majority) resolve against a per-tree
  /// Morton-cell index (MarkGrid) with a range-local search of a handful
  /// of leaves; keys crossing a tree face are bucketed by target tree and
  /// resolved there with one sort + sorted-merge sweep over the target's
  /// leaf array. Every mark sub-phase and the split apply run per tree on
  /// the forest pool AND in leaf-span chunks within each tree (split-
  /// bitmap marks use relaxed atomic stores, everything else stays chunk-
  /// or tree-local). MarkGrids persist across fixpoint iterations and are
  /// rebuilt only for trees whose leaves changed in the previous apply.
  /// The scalar per-quadrant reference path is kept behind the batch kill
  /// switch (QFOREST_NO_BATCH / batch::set_enabled(false)) so one binary
  /// can measure and cross-check both, exactly like the kernel dispatch
  /// (see bench_balance_mark).
  ///
  /// An already-balanced forest is a no-op: no split, no leaf-array
  /// rebuild, no repartition.
  void balance(BalanceKind kind = BalanceKind::kFull) {
    obs::TraceSpan span("forest", "balance");
    static obs::Counter& c_iterations = obs::counter("forest.balance.iterations");
    std::int64_t iterations = 0;
    bool any_changed = false;
    bool changed = true;
    // Split bitmaps, grids and the dirty list are hoisted out of the
    // fixpoint loop so later iterations reuse the heap buffers (and the
    // grids of unchanged trees) instead of rebuilding them.
    std::vector<std::vector<std::uint8_t>> split(trees_.size());
    std::vector<std::size_t> dirty;
    std::vector<MarkGrid> grids(trees_.size());
    std::vector<std::uint8_t> grid_valid(trees_.size(), 0);
    adapt_guard([&] {
      while (changed) {
        c_iterations.add(1);
        ++iterations;
        for (std::size_t t = 0; t < trees_.size(); ++t) {
          split[t].assign(trees_[t].size(), 0);
        }
        if (batch::enabled()) {
          mark_splits_batched(kind, split, grids, grid_valid);
        } else {
          mark_splits_scalar(kind, split);
        }
        dirty.clear();
        for (std::size_t t = 0; t < trees_.size(); ++t) {
          if (std::find(split[t].begin(), split[t].end(), 1) !=
              split[t].end()) {
            dirty.push_back(t);
          }
        }
        changed = !dirty.empty();
        any_changed |= changed;
        parallel_over(dirty.size(), [&](std::size_t d) {
          const std::size_t t = dirty[d];
          apply_splits(trees_[t],
                       payload_enabled_ ? &payloads_[t] : nullptr, split[t]);
        });
        for (const std::size_t t : dirty) {
          grid_valid[t] = 0;  // leaves changed: the grid ranges are stale
        }
      }
    }, any_changed);
    if (any_changed) {
      rebuild_offsets();
      partition();
    }
    span.arg("iterations", iterations);
    span.arg("leaves", static_cast<std::int64_t>(num_quadrants()));
  }

  /// Check the 2:1 condition without modifying the forest.
  [[nodiscard]] bool is_balanced(BalanceKind kind = BalanceKind::kFull) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      for (const quad_t& q : trees_[static_cast<std::size_t>(t)]) {
        const int lvl = R::level(q);
        if (lvl < 2) {
          continue;
        }
        const bool ok =
            for_each_neighbor_offset(kind, [&](int dx, int dy, int dz) {
              const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
              if (!nb.has_value()) {
                return true;
              }
              const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
              if (enclosing.has_value()) {
                const quad_t& leaf =
                    trees_[static_cast<std::size_t>(nb->tree)][*enclosing];
                if (R::level(leaf) < lvl - 1) {
                  return false;  // violation: stop probing this leaf
                }
              }
              return true;
            });
        if (!ok) {
          return false;
        }
      }
    }
    return true;
  }

  // ---------------------------------------------------------------- partition

  /// Repartition the global Morton order into contiguous rank ranges with
  /// near-equal total weight; \p weight(tree, quad) must be positive.
  template <class Fn>
  void partition_weighted(Fn&& weight) {
    const gidx_t n = num_quadrants();
    const int p = comm_.size();
    std::vector<std::int64_t> prefix;
    prefix.reserve(static_cast<std::size_t>(n) + 1);
    prefix.push_back(0);
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      for (const quad_t& q : trees_[static_cast<std::size_t>(t)]) {
        const std::int64_t w = weight(t, q);
        assert(w > 0 && "partition weights must be positive");
        prefix.push_back(prefix.back() + w);
      }
    }
    const std::int64_t total = prefix.back();
    rank_offsets_.assign(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 1; r < p; ++r) {
      // First quadrant whose preceding cumulative weight reaches r/p of
      // the total (p4est_partition_cut_uint64 semantics).
      const auto target = static_cast<std::int64_t>(
          (static_cast<__int128>(total) * r + p - 1) / p);
      const auto it =
          std::lower_bound(prefix.begin(), prefix.end(), target);
      rank_offsets_[static_cast<std::size_t>(r)] =
          static_cast<gidx_t>(it - prefix.begin());
      if (rank_offsets_[static_cast<std::size_t>(r)] > n) {
        rank_offsets_[static_cast<std::size_t>(r)] = n;
      }
    }
    rank_offsets_.back() = n;
    for (int r = 1; r <= p; ++r) {
      rank_offsets_[static_cast<std::size_t>(r)] =
          std::max(rank_offsets_[static_cast<std::size_t>(r)],
                   rank_offsets_[static_cast<std::size_t>(r) - 1]);
    }
  }

  /// Uniform repartition (weight 1 per leaf).
  void partition() {
    rank_offsets_ = comm_.block_distribution(num_quadrants());
  }

  /// Re-shard the forest over a different simulated rank count and
  /// repartition uniformly (scaling experiments reuse one mesh across
  /// rank counts instead of rebuilding it per count).
  void set_num_ranks(int num_ranks) {
    comm_ = par::Communicator(num_ranks);
    partition();
  }

  // ---------------------------------------------------------------- ghost

  /// Remote leaves adjacent (faces, edges and corners) to \p rank's own.
  ///
  /// Batched (the default): the rank's leaf subrange of each involved
  /// tree is staged into level-uniform spans per leaf chunk, every
  /// neighbor key is produced in bulk through
  /// BatchOps<R>::neighbor_at_offset_n, keys staying in their source tree
  /// resolve against a per-tree Morton-cell grid (MarkGrid) and keys
  /// crossing a tree face are bucketed per target tree and resolved with
  /// one sort + sorted-merge sweep — the read-side twin of the balance
  /// mark phase. Trees and leaf chunks run in parallel on the forest
  /// pool. The pre-batching scalar path (one neighbor_at_offset + binary
  /// search per (leaf, offset) pair) is kept behind the batch kill switch
  /// (QFOREST_NO_BATCH / batch::set_enabled(false)) as the parity
  /// reference; both produce the identical ghost set.
  [[nodiscard]] GhostLayer<R> ghost_layer(int rank) const {
    GhostLayer<R> ghost;
    const auto [first, last] = rank_range(rank);
    const std::vector<gidx_t> seen = adjacency_scan(first, last, false);
    ghost.entries.reserve(seen.size());
    for (gidx_t g : seen) {
      const auto [t, i] = locate(g);
      ghost.entries.push_back({t, trees_[static_cast<std::size_t>(t)][i],
                               owner_rank(g), g});
    }
    return ghost;
  }

  /// Mirror leaves of \p rank: the rank's own leaves that appear in some
  /// other rank's ghost layer (the data it must send in an exchange).
  /// Returned as sorted global indices. One pass over the rank's own
  /// leaves: the touch relation underlying the ghost layer is symmetric,
  /// so "appears in some other rank's ghost layer" equals "touches at
  /// least one leaf outside the rank's range" — no per-rank ghost_layer
  /// recomputation (the old O(ranks x ghost-scan) shape).
  [[nodiscard]] std::vector<gidx_t> mirrors(int rank) const {
    const auto [first, last] = rank_range(rank);
    return adjacency_scan(first, last, true);
  }

  /// Boundary-first/interior-second split of \p rank's leaves for
  /// overlap scheduling: boundary = mirrors(rank), interior = the
  /// complementary runs of rank_range(rank).
  [[nodiscard]] RankWorkSplit rank_work_split(int rank) const {
    RankWorkSplit split;
    split.boundary = mirrors(rank);
    const auto [first, last] = rank_range(rank);
    gidx_t pos = first;
    for (const gidx_t b : split.boundary) {
      if (b > pos) {
        split.interior.emplace_back(pos, b);
      }
      pos = b + 1;
    }
    if (pos < last) {
      split.interior.emplace_back(pos, last);
    }
    return split;
  }

  /// Simulated ghost data exchange (p4est_ghost_exchange_data): fill each
  /// ghost entry of \p rank with the owner's payload, read directly from
  /// shared memory — the single-rank reference the message-passing
  /// exchange (exchange_ghost_payloads in io.hpp) is verified against.
  /// Requires the payload channel. Returns one value per ghost entry, in
  /// ghost order.
  [[nodiscard]] std::vector<std::uint64_t> ghost_exchange(
      int rank, const GhostLayer<R>& ghost) const {
    assert(payload_enabled_);
    std::vector<std::uint64_t> data;
    data.reserve(ghost.entries.size());
    for (const auto& e : ghost.entries) {
      const auto [t, i] = locate(e.global_index);
      data.push_back(payloads_[static_cast<std::size_t>(t)][i]);
    }
    (void)rank;
    return data;
  }

  // ---------------------------------------------------------------- search

  /// Top-down traversal per tree (p4est_search): \p cb(tree, ancestor,
  /// first, last, is_leaf) sees the leaf range [first, last) covered by
  /// the ancestor and prunes the descent by returning false.
  template <class Fn>
  void search(Fn&& cb) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      if (!tree.empty()) {
        search_recursion(t, R::root(), 0, tree.size(), cb);
      }
    }
  }

  /// Batched point location: the global index of the leaf containing each
  /// query point, in input order. Coordinates are canonical (2^60 grid;
  /// see point_query.hpp for the shared-boundary convention). Throws
  /// std::invalid_argument when a query lies outside its tree's domain.
  ///
  /// Batched (the default): queries are grouped per tree, each group is
  /// sorted in curve order and resolved with one chunked sorted-merge
  /// sweep over the tree's leaf array — the last-leaf-<=-key cursor
  /// advances monotonically with the keys, the same trick that resolves
  /// the cross-tree balance keys — so resolving m points costs one sort
  /// plus one sweep instead of m whole-tree binary searches. Trees and
  /// key chunks run in parallel on the forest pool. The per-point scalar
  /// path (one upper_bound per query) is kept behind the batch kill
  /// switch (QFOREST_NO_BATCH) as the parity reference. The pruning
  /// traversal search() remains the API for callback-driven descents.
  [[nodiscard]] std::vector<gidx_t> search_points(
      const std::vector<PointQuery>& queries) const {
    obs::TraceSpan span("forest", "search_points");
    span.arg("queries", static_cast<std::int64_t>(queries.size()));
    static obs::Histogram& h_sweep =
        obs::histogram("forest.search.sweep_size");
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    for (const PointQuery& p : queries) {
      if (p.tree < 0 || p.tree >= num_trees() || p.x < 0 || p.x >= root ||
          p.y < 0 || p.y >= root || p.z < 0 || p.z >= root ||
          (dim == 2 && p.z != 0)) {
        throw std::invalid_argument(
            "Forest::search_points: query outside the domain");
      }
    }
    std::vector<gidx_t> out(queries.size(), -1);
    if (!batch::enabled()) {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        out[qi] = search_point_scalar(queries[qi]);
      }
      return out;
    }
    // Counting sort groups the query indices per tree without touching
    // the input order (results land at each query's original slot).
    const std::size_t nt = trees_.size();
    std::vector<std::size_t> count(nt + 1, 0);
    for (const PointQuery& p : queries) {
      ++count[static_cast<std::size_t>(p.tree) + 1];
    }
    for (std::size_t t = 1; t <= nt; ++t) {
      count[t] += count[t - 1];
    }
    std::vector<std::size_t> order(queries.size());
    {
      std::vector<std::size_t> cursor(count.begin(), count.end() - 1);
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        order[cursor[static_cast<std::size_t>(queries[qi].tree)]++] = qi;
      }
    }
    parallel_over(nt, [&](std::size_t ti) {
      const std::size_t b = count[ti];
      const std::size_t e = count[ti + 1];
      if (b == e) {
        return;
      }
      h_sweep.record(e - b);
      std::vector<std::pair<quad_t, std::size_t>> pts;
      pts.reserve(e - b);
      for (std::size_t k = b; k < e; ++k) {
        pts.emplace_back(point_key(queries[order[k]]), order[k]);
      }
      std::sort(pts.begin(), pts.end(),
                [](const auto& x, const auto& y) {
                  return R::less(x.first, y.first);
                });
      const auto& tree = trees_[ti];
      const auto n = static_cast<std::ptrdiff_t>(tree.size());
      parallel_chunks(pts.size(), chunk_grain(),
                      [&](std::size_t, std::size_t pb, std::size_t pe) {
        // Last leaf <= the chunk's first key; a complete tree guarantees
        // one exists (the curve-minimal leaf precedes every in-root key).
        std::ptrdiff_t j =
            std::upper_bound(tree.begin(), tree.end(), pts[pb].first,
                             RepLess<R>{}) -
            tree.begin() - 1;
        for (std::size_t k = pb; k < pe; ++k) {
          while (j + 1 < n &&
                 !R::less(pts[k].first,
                          tree[static_cast<std::size_t>(j + 1)])) {
            ++j;
          }
          assert(j >= 0);
          out[pts[k].second] =
              global_index(static_cast<tree_id_t>(ti),
                           static_cast<std::size_t>(j));
        }
      });
    });
    return out;
  }

  // ---------------------------------------------------------------- iterate

  /// Visit every face between leaves exactly once, plus every physical
  /// boundary face. Works on non-2:1-balanced forests as well (the
  /// paper's future-work item 4): hanging pairs are emitted from the
  /// finer side, equal-size pairs from the globally lower leaf.
  ///
  /// Batched (the default): the leaf sweep runs per tree AND per leaf
  /// chunk on the forest pool, with every face-neighbor key of a
  /// level-uniform span produced in bulk through
  /// BatchOps<R>::neighbor_at_offset_n and resolved against the per-tree
  /// Morton-cell grid; keys crossing a tree face are bucketed per target
  /// tree and resolved with one sort + sorted-merge sweep. The emission
  /// set is identical to the scalar path but the ORDER is not, and \p cb
  /// is invoked concurrently — it must be thread-safe, with the same
  /// opt-outs as the adaptation callbacks (set_tree_parallelism /
  /// set_intra_tree_parallelism). The serial per-leaf scalar path is
  /// kept behind the batch kill switch (QFOREST_NO_BATCH /
  /// batch::set_enabled(false)) as the deterministic-order parity
  /// reference.
  template <class Fn>
  void iterate_faces(Fn&& cb) const {
    obs::TraceSpan span("forest", "iterate_faces");
    QFOREST_DBG_WRAP_CALLBACK(checked_cb, cb);
    if (batch::enabled()) {
      iterate_faces_batched(checked_cb);
      return;
    }
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < tree.size(); ++i) {
        const quad_t& q = tree[i];
        for (int f = 0; f < dims::num_faces; ++f) {
          emit_face(t, i, q, f, checked_cb);
        }
      }
    }
  }

  // ---------------------------------------------------------------- checks

  /// Full structural validation: every leaf valid and inside its tree,
  /// per-tree arrays sorted strictly, non-overlapping, and complete
  /// (leaves cover each tree exactly).
  [[nodiscard]] bool is_valid() const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      if (tree.empty()) {
        return false;
      }
      for (const quad_t& q : tree) {
        if (!R::is_valid(q) || !R::inside_root(q)) {
          return false;
        }
      }
      for (std::size_t i = 0; i + 1 < tree.size(); ++i) {
        if (!R::less(tree[i], tree[i + 1]) ||
            R::overlaps(tree[i], tree[i + 1])) {
          return false;
        }
      }
      if (!is_complete_range(R::root(), tree.data(),
                             tree.data() + tree.size())) {
        return false;
      }
    }
    if (rank_offsets_.front() != 0 || rank_offsets_.back() != num_quadrants()) {
      return false;
    }
    return std::is_sorted(rank_offsets_.begin(), rank_offsets_.end());
  }

  /// Replace the entire leaf storage (used by deserialization and by
  /// tests constructing meshes directly). The caller provides one sorted
  /// leaf vector per tree; offsets and the partition are rebuilt. Call
  /// is_valid() afterwards to verify structural soundness.
  void replace_leaves(std::vector<std::vector<quad_t>> trees) {
    if (trees.size() != trees_.size()) {
      throw std::invalid_argument(
          "Forest::replace_leaves: tree count mismatch");
    }
    trees_ = std::move(trees);
    if (payload_enabled_) {
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        payloads_[t].assign(trees_[t].size(), 0);
      }
    }
    rebuild_offsets();
    partition();
  }

  // ---------------------------------------------------------------- payload

  /// Enable the per-leaf payload channel (8 bytes per leaf, the standard
  /// representation's historic user data). The compact encodings carry no
  /// payload bits, so the forest stores payloads in a parallel side array
  /// (structure-of-arrays) and keeps it synchronized across refine (children
  /// inherit the parent's value), coarsen (the parent takes the first
  /// child's value) and balance.
  void enable_payload(std::uint64_t initial = 0) {
    payload_enabled_ = true;
    payloads_.resize(trees_.size());
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      payloads_[t].assign(trees_[t].size(), initial);
    }
  }

  [[nodiscard]] bool payload_enabled() const { return payload_enabled_; }

  /// Payload array of tree \p t, parallel to tree_quadrants(t).
  [[nodiscard]] const std::vector<std::uint64_t>& tree_payloads(
      tree_id_t t) const {
    assert(payload_enabled_);
    return payloads_[static_cast<std::size_t>(t)];
  }

  /// Mutable payload of leaf (t, i).
  std::uint64_t& payload(tree_id_t t, std::size_t i) {
    assert(payload_enabled_);
    return payloads_[static_cast<std::size_t>(t)][i];
  }

  // ------------------------------------------------------------ neighbor API

  /// Result of a neighbor lookup: the neighbor's tree and quadrant plus
  /// the tree-grid steps taken across tree faces (0 when staying inside).
  struct NeighborLookup {
    tree_id_t tree;
    quad_t quad;
    std::array<int, 3> tree_step;
  };

  /// Neighbor of \p q at its own level displaced by (dx,dy,dz) quadrant
  /// lengths, following brick connectivity across tree faces. Returns
  /// std::nullopt at a physical boundary.
  [[nodiscard]] std::optional<NeighborLookup> neighbor_at_offset(
      tree_id_t t, const quad_t& q, int dx, int dy, int dz) const {
    CanonicalQuadrant c = to_canonical<R>(q);
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    std::int64_t pos[3] = {c.x + dx * h, c.y + dy * h, c.z + dz * h};
    std::array<int, 3> tree_step = {0, 0, 0};
    for (int a = 0; a < dim; ++a) {
      if (pos[a] < 0) {
        tree_step[a] = -1;
        pos[a] += root;
      } else if (pos[a] >= root) {
        tree_step[a] = 1;
        pos[a] -= root;
      }
    }
    tree_id_t nt = t;
    if (tree_step[0] != 0 || tree_step[1] != 0 || tree_step[2] != 0) {
      nt = conn_.tree_offset_neighbor(t, tree_step[0], tree_step[1],
                                      tree_step[2]);
      if (nt < 0) {
        return std::nullopt;
      }
    }
    CanonicalQuadrant nc{pos[0], pos[1], pos[2], c.level};
    return NeighborLookup{nt, from_canonical<R>(nc), tree_step};
  }

  /// Index of the unique leaf in tree \p t that is an ancestor of or equal
  /// to \p q, or std::nullopt when the region of \p q is covered by finer
  /// leaves instead.
  [[nodiscard]] std::optional<std::size_t> find_enclosing_leaf(
      tree_id_t t, const quad_t& q) const {
    const auto& tree = trees_[static_cast<std::size_t>(t)];
    // First leaf strictly after q: the candidate enclosure sits before it.
    const auto it =
        std::upper_bound(tree.begin(), tree.end(), q, RepLess<R>{});
    if (it == tree.begin()) {
      return std::nullopt;
    }
    const auto idx = static_cast<std::size_t>(it - tree.begin()) - 1;
    const quad_t& leaf = tree[idx];
    if (R::equal(leaf, q) || R::is_ancestor(leaf, q)) {
      return idx;
    }
    return std::nullopt;
  }

 private:
  explicit Forest(Connectivity conn, int num_ranks)
      : conn_(std::move(conn)),
        comm_(num_ranks),
        trees_(static_cast<std::size_t>(conn_.num_trees())) {
    rebuild_offsets();
    partition();
  }

  // ------------------------------------------------- batched adaptation core

  /// Run fn(0..n-1) across the forest pool (tree-level scheduling); 0-
  /// and 1-item loops stay on the calling thread, as do loops issued from
  /// inside a pool task (reentrant forest operations). When a worker
  /// throws, the lowest-index block's exception is rethrown
  /// deterministically on the calling thread once every block finished
  /// and the suppressed count is logged (basic guarantee: other trees may
  /// already have been modified, as with any mid-loop throw).
  template <class Fn>
  static void parallel_over(std::size_t n, Fn&& fn) {
    if (n == 0) {
      return;
    }
    if (n == 1 || !tree_parallelism() || detail::worker_depth() > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        fn(i);
      }
      return;
    }
    QFOREST_DBG_DEPTH_TRANSITION(detail::worker_depth(), 1);
    detail::RegionErrors errors;
    detail::forest_pool().parallel_for(n, [&](std::size_t b, std::size_t e) {
      const detail::DepthScope scope(1);
      try {
        for (std::size_t i = b; i < e; ++i) {
          fn(i);
        }
      } catch (...) {
        errors.capture(b);
      }
    });
    errors.rethrow_if_any();
  }

  /// Run fn(chunk, begin, end) over the contiguous blocks of [0, n) cut
  /// at multiples of \p grain (intra-tree chunk scheduling). Dispatches
  /// on the forest pool from the calling thread or from a tree-level
  /// worker (the pool's helping wait makes the nested dispatch
  /// deadlock-free); runs inline — with identical chunk geometry — when
  /// parallelism is off or the caller already is a chunk worker, so chunk
  /// workers never nest. Exceptions follow the parallel_over contract
  /// (lowest-index chunk wins, suppressed count logged).
  template <class Fn>
  static void parallel_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
    if (n == 0) {
      return;
    }
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t chunks = batch::chunk_count(n, grain);
    if (chunks == 1 || !tree_parallelism() || !intra_tree_parallelism() ||
        detail::worker_depth() >= 2) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t b = c * grain;
        fn(c, b, std::min(n, b + grain));
      }
      return;
    }
    QFOREST_DBG_DEPTH_TRANSITION(detail::worker_depth(), 2);
    detail::RegionErrors errors;
    detail::forest_pool().parallel_for_grain(
        n, grain, [&](std::size_t b, std::size_t e) {
          const detail::DepthScope scope(2);
          try {
            fn(b / grain, b, e);
          } catch (...) {
            errors.capture(b);
          }
        });
    errors.rethrow_if_any();
  }

  /// Per-tree outer loop of the adaptation algorithms.
  template <class Fn>
  void for_each_tree(Fn&& fn) {
    parallel_over(trees_.size(), fn);
  }

  /// Shared exception-consistency wrapper of refine / coarsen / balance:
  /// when the tree loop throws (a callback raised, or allocation failed),
  /// some trees may already have been adapted — rebuild the offsets and
  /// the partition before rethrowing so the forest stays structurally
  /// consistent (is_valid() holds; the adaptation is simply partial).
  template <class Fn>
  void adapt_and_rebuild(Fn&& body) {
    try {
      body();
    } catch (...) {
      rebuild_offsets();
      partition();
      QFOREST_DBG_STRUCTURAL(is_valid(),
                             "forest structurally inconsistent after a "
                             "throwing adaptation callback");
      throw;
    }
    rebuild_offsets();
    partition();
  }

  /// Exception-consistency guard for balance, whose success path rebuilds
  /// conditionally (a no-op balance must not repartition): on throw,
  /// rebuild only when some tree was already modified.
  template <class Fn>
  void adapt_guard(Fn&& body, const bool& modified) {
    try {
      body();
    } catch (...) {
      if (modified) {
        rebuild_offsets();
        partition();
      }
      QFOREST_DBG_STRUCTURAL(is_valid(),
                             "forest structurally inconsistent after a "
                             "throwing balance");
      throw;
    }
  }

  /// One tree of refine(): wave 1 is a dense chunked mark over the whole
  /// tree followed by a chunked full-rebuild apply; recursive waves >= 2
  /// visit only the fresh-children index list of the previous wave and
  /// splice the new children in place (no tree-sized bitmaps, no copy of
  /// the unsplit majority). The non-recursive path never allocates any
  /// wave-tracking state at all.
  template <class Fn>
  void refine_tree(std::size_t ti, bool recursive, Fn& should_refine) {
    const auto t = static_cast<tree_id_t>(ti);
    auto& tree = trees_[ti];
    auto* pay = payload_enabled_ ? &payloads_[ti] : nullptr;
    const std::size_t grain = chunk_grain();

    // Wave 1: dense mark, chunk-parallel; the bitmap feeds the chunked
    // full rebuild of apply_splits.
    std::vector<std::uint8_t> split(tree.size(), 0);
    std::atomic<bool> any{false};
    parallel_chunks(tree.size(), grain,
                    [&](std::size_t, std::size_t b, std::size_t e) {
      bool local = false;
      for (std::size_t i = b; i < e; ++i) {
        const quad_t& q = tree[i];
        if (R::level(q) < R::max_level && should_refine(t, q)) {
          split[i] = 1;
          local = true;
        }
      }
      if (local) {
        // mo: relaxed — one-way flag folded after the parallel region;
        // the region join orders it before the load below.
        any.store(true, std::memory_order_relaxed);
      }
    });
    // mo: relaxed — read after the region join; no concurrent writers.
    if (!any.load(std::memory_order_relaxed)) {
      return;
    }
    static obs::Counter& c_waves = obs::counter("forest.refine.waves");
    static obs::Counter& c_rebuilds = obs::counter("forest.refine.wave_rebuilds");
    static obs::Counter& c_splices = obs::counter("forest.refine.wave_splices");
    c_waves.add(1);
    std::vector<std::size_t> fresh;  // new-children indices, ascending
    apply_splits(tree, pay, split, recursive ? &fresh : nullptr);

    // Waves >= 2: incremental. Mark only the fresh children; sparse
    // waves splice their children in place (the unsplit majority is
    // never touched), dense waves — where the new children would be a
    // sizable fraction of the tree anyway — take the chunk-parallel
    // full rebuild instead, whose counting pass a bitmap feeds.
    std::vector<std::size_t> positions;
    while (recursive && !fresh.empty()) {
      mark_fresh(ti, fresh, should_refine, positions);
      if (positions.empty()) {
        break;
      }
      constexpr int nc = dims::num_children;
      c_waves.add(1);
      if (positions.size() * static_cast<std::size_t>(nc) * 4 >=
          tree.size()) {
        c_rebuilds.add(1);
        split.assign(tree.size(), 0);
        for (const std::size_t p : positions) {
          split[p] = 1;
        }
        apply_splits(tree, pay, split, &fresh);
      } else {
        c_splices.add(1);
        splice_splits(tree, pay, positions, fresh);
      }
    }
  }

  /// Chunked mark over the fresh-children index list: collects the
  /// (ascending) leaf indices the callback wants split into \p positions.
  template <class Fn>
  void mark_fresh(std::size_t ti, const std::vector<std::size_t>& fresh,
                  Fn& should_refine, std::vector<std::size_t>& positions) {
    const auto t = static_cast<tree_id_t>(ti);
    const auto& tree = trees_[ti];
    const std::size_t grain = chunk_grain();
    std::vector<std::vector<std::size_t>> per_chunk(
        batch::chunk_count(fresh.size(), grain));
    parallel_chunks(fresh.size(), grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
      auto& mine = per_chunk[c];
      for (std::size_t j = b; j < e; ++j) {
        const std::size_t i = fresh[j];
        const quad_t& q = tree[i];
        if (R::level(q) < R::max_level && should_refine(t, q)) {
          mine.push_back(i);
        }
      }
    });
    positions.clear();
    for (const auto& mine : per_chunk) {
      positions.insert(positions.end(), mine.begin(), mine.end());
    }
  }

  /// Replace every leaf marked in \p split by its 2^d children, staged
  /// into level-uniform spans and produced through BatchOps<R> (one batch
  /// per (level, child-index) pair), then stitched back in Morton order.
  /// Children inherit the parent's payload. Chunk-parallel full rebuild:
  /// a counting pass sizes each chunk's contiguous output slice, then
  /// every chunk stages, produces and stitches its slice independently.
  /// When \p fresh is non-null it receives the ascending output indices
  /// of all newly created children (the set a recursive refine wave
  /// re-examines).
  static void apply_splits(std::vector<quad_t>& leaves,
                           std::vector<std::uint64_t>* pay,
                           const std::vector<std::uint8_t>& split,
                           std::vector<std::size_t>* fresh = nullptr) {
    constexpr int nc = dims::num_children;
    const std::size_t n = leaves.size();
    const std::size_t grain = chunk_grain();
    const std::size_t nchunks = batch::chunk_count(n, grain);
    std::vector<std::size_t> chunk_splits(nchunks, 0);
    parallel_chunks(n, grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
      std::size_t k = 0;
      for (std::size_t i = b; i < e; ++i) {
        k += split[i] ? 1 : 0;
      }
      chunk_splits[c] = k;
    });
    // Exclusive prefix: chunk c's output slice starts where the leaves
    // before it land — one extra (nc - 1)-wide gap per split before it.
    std::vector<std::size_t> out_base(nchunks, 0);
    std::vector<std::size_t> fresh_base(nchunks, 0);
    std::size_t total_split = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
      out_base[c] =
          c * grain + total_split * static_cast<std::size_t>(nc - 1);
      fresh_base[c] = total_split * static_cast<std::size_t>(nc);
      total_split += chunk_splits[c];
    }
    if (total_split == 0) {
      if (fresh) {
        fresh->clear();
      }
      return;
    }
    const std::size_t out_n =
        n + total_split * static_cast<std::size_t>(nc - 1);
    std::vector<quad_t> out(out_n);
    std::vector<std::uint64_t> outp(pay ? out_n : 0);
    if (fresh) {
      fresh->assign(total_split * static_cast<std::size_t>(nc), 0);
    }
    parallel_chunks(n, grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
      // Stage this chunk's marked leaves per level; children of staged
      // element j for child index c2 land at kids[l][c2 * count[l] + j].
      SpanStage<R> staged;
      for (std::size_t i = b; i < e; ++i) {
        if (split[i]) {
          staged.add(leaves[i]);
        }
      }
      std::vector<std::vector<quad_t>> kids(staged.num_levels());
      for (std::size_t l = 0; l < staged.num_levels(); ++l) {
        const std::size_t k = staged.count(l);
        if (k == 0) {
          continue;
        }
        kids[l].resize(k * static_cast<std::size_t>(nc));
        for (int c2 = 0; c2 < nc; ++c2) {
          BatchOps<R>::child_uniform(staged.span(l).data(),
                                     kids[l].data() +
                                         static_cast<std::size_t>(c2) * k,
                                     k, c2, static_cast<int>(l));
        }
      }
      std::size_t o = out_base[c];
      std::size_t f = fresh_base[c];
      std::vector<std::size_t> cursor(staged.num_levels(), 0);
      for (std::size_t i = b; i < e; ++i) {
        if (!split[i]) {
          out[o] = leaves[i];
          if (pay) {
            outp[o] = (*pay)[i];
          }
          ++o;
          continue;
        }
        const auto l = static_cast<std::size_t>(R::level(leaves[i]));
        const std::size_t j = cursor[l]++;
        const std::size_t k = staged.count(l);
        for (int c2 = 0; c2 < nc; ++c2) {
          out[o] = kids[l][static_cast<std::size_t>(c2) * k + j];
          if (pay) {
            outp[o] = (*pay)[i];
          }
          if (fresh) {
            (*fresh)[f++] = o;
          }
          ++o;
        }
      }
    });
    leaves = std::move(out);
    if (pay) {
      *pay = std::move(outp);
    }
  }

  /// Sparse-wave apply: split exactly the leaves at the ascending
  /// \p positions, splicing each one's 2^d children into the array in
  /// place — the leaves before the first split position are never
  /// touched, unlike the full rebuild. Children are still produced in
  /// level-uniform batches through BatchOps<R>. \p fresh is replaced by
  /// the ascending output indices of the new children.
  ///
  /// Small tails take a single serial backward shift. Large tails (>= 2
  /// chunk grains past the first split) run chunk-parallel instead: the
  /// moving tail is copied to a scratch buffer, then every chunk
  /// scatters its leaves to their final slots independently — old index
  /// i lands at i + S(i)*(2^d - 1), where S(i) (the number of split
  /// positions below i, one lower_bound per chunk) is the slots the
  /// splits below have grown the array by. Destination ranges of
  /// distinct chunks are disjoint, so the scatter needs no
  /// synchronization; the cost is one extra copy of the tail, which is
  /// why the serial shift is kept for short tails.
  static void splice_splits(std::vector<quad_t>& leaves,
                            std::vector<std::uint64_t>* pay,
                            const std::vector<std::size_t>& positions,
                            std::vector<std::size_t>& fresh) {
    constexpr int nc = dims::num_children;
    const std::size_t m = positions.size();
    const std::size_t n = leaves.size();
    // Stage the split leaves per level and record each one's (level,
    // rank-within-level) so its children can be addressed after the
    // array contents start moving.
    SpanStage<R> staged;
    std::vector<std::uint8_t> lev(m);
    std::vector<std::size_t> rank(m);
    for (std::size_t j = 0; j < m; ++j) {
      const quad_t& q = leaves[positions[j]];
      const auto l = static_cast<std::size_t>(R::level(q));
      lev[j] = static_cast<std::uint8_t>(l);
      rank[j] = staged.count(l);
      staged.add(q);
    }
    std::vector<std::vector<quad_t>> kids(staged.num_levels());
    for (std::size_t l = 0; l < staged.num_levels(); ++l) {
      const std::size_t k = staged.count(l);
      if (k == 0) {
        continue;
      }
      kids[l].resize(k * static_cast<std::size_t>(nc));
      for (int c = 0; c < nc; ++c) {
        BatchOps<R>::child_uniform(staged.span(l).data(),
                                   kids[l].data() +
                                       static_cast<std::size_t>(c) * k,
                                   k, c, static_cast<int>(l));
      }
    }
    const std::size_t out_n = n + m * static_cast<std::size_t>(nc - 1);
    leaves.resize(out_n);
    if (pay) {
      pay->resize(out_n);
    }
    fresh.assign(m * static_cast<std::size_t>(nc), 0);

    static obs::Counter& c_serial = obs::counter("forest.refine.splice_serial");
    static obs::Counter& c_parallel =
        obs::counter("forest.refine.splice_parallel");
    static obs::Histogram& h_splits =
        obs::histogram("forest.refine.splice_splits");
    static obs::Histogram& h_moved =
        obs::histogram("forest.refine.splice_moved");
    const std::size_t base = positions.front();
    const std::size_t tail = n - base;  // leaves at or past the first split
    h_splits.record(m);
    h_moved.record(tail);

    const std::size_t grain = chunk_grain();
    const bool parallel = tail >= 2 * grain && tree_parallelism() &&
                          intra_tree_parallelism() &&
                          detail::worker_depth() < 2;
    if (!parallel) {
      c_serial.add(1);
      // Backward shift: process split positions last to first, moving the
      // tail block after each one into its final place, then writing the
      // children over the gap (which covers the parent's old slot).
      std::size_t src = n;      // exclusive end of the next block to move
      std::size_t dst = out_n;  // exclusive end of its destination
      for (std::size_t j = m; j-- > 0;) {
        const std::size_t p = positions[j];
        const std::size_t len = src - (p + 1);
        std::move_backward(leaves.begin() + static_cast<std::ptrdiff_t>(p + 1),
                           leaves.begin() + static_cast<std::ptrdiff_t>(src),
                           leaves.begin() + static_cast<std::ptrdiff_t>(dst));
        if (pay) {
          std::move_backward(pay->begin() + static_cast<std::ptrdiff_t>(p + 1),
                             pay->begin() + static_cast<std::ptrdiff_t>(src),
                             pay->begin() + static_cast<std::ptrdiff_t>(dst));
        }
        dst -= len;
        const auto l = static_cast<std::size_t>(lev[j]);
        const std::size_t k = staged.count(l);
        const std::uint64_t parent_pay = pay ? (*pay)[p] : 0;
        for (int c = 0; c < nc; ++c) {
          const std::size_t o = dst - static_cast<std::size_t>(nc - c);
          leaves[o] = kids[l][static_cast<std::size_t>(c) * k + rank[j]];
          if (pay) {
            (*pay)[o] = parent_pay;
          }
          fresh[j * static_cast<std::size_t>(nc) +
                static_cast<std::size_t>(c)] = o;
        }
        dst -= static_cast<std::size_t>(nc);
        src = p;
      }
      assert(dst == src);
      return;
    }

    // Parallel scatter. Chunks partition the old tail [base, n); each
    // writes a disjoint destination range [b + S(b)*(nc-1), ...) of the
    // output (a split position's nc children are emitted where its one
    // old slot was, growing the cursor by nc-1), and fresh[j*nc..] is
    // owned by whichever chunk holds position j. Reads come only from
    // the scratch copy and the shared read-only staging arrays.
    std::vector<quad_t> scratch(leaves.begin() + static_cast<std::ptrdiff_t>(base),
                                leaves.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<std::uint64_t> pscratch;
    if (pay) {
      pscratch.assign(pay->begin() + static_cast<std::ptrdiff_t>(base),
                      pay->begin() + static_cast<std::ptrdiff_t>(n));
    }
    c_parallel.add(1);
    parallel_chunks(tail, grain,
                    [&](std::size_t, std::size_t cb, std::size_t ce) {
      // Splits below this chunk's first leaf: everything before it has
      // already grown the output by j * (nc - 1) slots.
      std::size_t j = static_cast<std::size_t>(
          std::lower_bound(positions.begin(), positions.end(), base + cb) -
          positions.begin());
      std::size_t o = base + cb + j * static_cast<std::size_t>(nc - 1);
      for (std::size_t i = cb; i < ce; ++i) {
        const std::size_t src_i = base + i;
        if (j < m && positions[j] == src_i) {
          const auto l = static_cast<std::size_t>(lev[j]);
          const std::size_t k = staged.count(l);
          const std::uint64_t parent_pay = pay ? pscratch[i] : 0;
          for (int c = 0; c < nc; ++c) {
            leaves[o] = kids[l][static_cast<std::size_t>(c) * k + rank[j]];
            if (pay) {
              (*pay)[o] = parent_pay;
            }
            fresh[j * static_cast<std::size_t>(nc) +
                  static_cast<std::size_t>(c)] = o;
            ++o;
          }
          ++j;
        } else {
          leaves[o] = scratch[i];
          if (pay) {
            (*pay)[o] = pscratch[i];
          }
          ++o;
        }
      }
    });
  }

  /// Reusable buffers of coarsen_tree_pass, so recursive coarsening does
  /// not reallocate the staging arrays on every pass.
  struct CoarsenScratch {
    std::vector<int> levels;
    std::vector<int> ids;
    std::vector<quad_t> parents;
    std::vector<std::vector<std::size_t>> at_level;
    std::vector<quad_t> in;
    std::vector<quad_t> batch_out;
    std::vector<int> idbuf;
    std::vector<std::uint8_t> eq;
    std::vector<std::uint8_t> accept;
  };

  /// One coarsen sweep over tree \p ti: batch-precompute parent, child id
  /// and adjacent-parent equality for every leaf, then scan for complete
  /// families and replace accepted ones by their (already computed)
  /// parent. Returns whether anything was coarsened.
  template <class Fn>
  bool coarsen_tree_pass(std::size_t ti, Fn& should_coarsen,
                         CoarsenScratch& s) {
    constexpr int nc = dims::num_children;
    auto& tree = trees_[ti];
    const std::size_t n = tree.size();
    if (n < static_cast<std::size_t>(nc)) {
      return false;
    }
    s.levels.resize(n);
    s.ids.assign(n, 0);
    // Level-0 leaves have no parent; they keep themselves so the batched
    // equality sweep below reads initialized data (their lanes are never
    // consulted by the family test, which requires level > 0).
    s.parents.assign(tree.begin(), tree.end());
    s.at_level.resize(static_cast<std::size_t>(R::max_level) + 1);
    for (auto& idx : s.at_level) {
      idx.clear();
    }
    for (std::size_t i = 0; i < n; ++i) {
      s.levels[i] = R::level(tree[i]);
      if (s.levels[i] > 0) {
        s.at_level[static_cast<std::size_t>(s.levels[i])].push_back(i);
      }
    }
    for (std::size_t l = 1; l < s.at_level.size(); ++l) {
      const auto& idx = s.at_level[l];
      if (idx.empty()) {
        continue;
      }
      s.in.clear();
      s.in.reserve(idx.size());
      for (const std::size_t i : idx) {
        s.in.push_back(tree[i]);
      }
      s.batch_out.resize(idx.size());
      s.idbuf.resize(idx.size());
      BatchOps<R>::parent_uniform(s.in.data(), s.batch_out.data(),
                                  idx.size(), static_cast<int>(l));
      BatchOps<R>::child_id_n(s.in.data(), s.idbuf.data(), idx.size(),
                              static_cast<int>(l));
      for (std::size_t j = 0; j < idx.size(); ++j) {
        s.parents[idx[j]] = s.batch_out[j];
        s.ids[idx[j]] = s.idbuf[j];
      }
    }
    // eq[i] <=> parents[i] == parents[i + 1]; chained over a run of
    // sibling candidates it implies one common parent.
    s.eq.resize(n - 1);
    BatchOps<R>::equal_mask(s.parents.data(), s.parents.data() + 1,
                            s.eq.data(), n - 1);

    const auto t = static_cast<tree_id_t>(ti);
    auto* pay = payload_enabled_ ? &payloads_[ti] : nullptr;
    // Family detection + callback decisions, chunk-parallel. Complete
    // sibling families can never overlap (a family start needs child id
    // 0, and every later member of a family has a nonzero id), so each
    // start's decision is independent of the scan order and chunk
    // boundaries are safe to cut anywhere: the fam test only *reads* up
    // to nc - 1 entries past the chunk end.
    s.accept.assign(n, 0);
    static obs::Counter& c_accepted =
        obs::counter("forest.coarsen.families_accepted");
    static obs::Counter& c_rejected =
        obs::counter("forest.coarsen.families_rejected");
    parallel_chunks(n, chunk_grain(),
                    [&](std::size_t, std::size_t b, std::size_t e) {
      std::size_t rejected = 0;
      for (std::size_t i = b; i < e; ++i) {
        bool fam = i + static_cast<std::size_t>(nc) <= n &&
                   s.levels[i] > 0 && s.ids[i] == 0;
        for (int c = 1; fam && c < nc; ++c) {
          const std::size_t j = i + static_cast<std::size_t>(c);
          fam = s.levels[j] == s.levels[i] && s.ids[j] == c &&
                s.eq[j - 1] != 0;
        }
        if (fam) {
          if (should_coarsen(t, tree.data() + i)) {
            s.accept[i] = 1;
          } else {
            ++rejected;
          }
        }
      }
      if (rejected > 0) {
        c_rejected.add(rejected);
      }
    });
    // Chunk-parallel rebuild consuming accepted families. Chunk
    // boundaries start at grain multiples and are pulled back to the
    // start of any accepted family they would cut (an accepted family
    // occupies [i, i + nc) and families never overlap, so at most one
    // start lies in the nc-1 slots before a nominal cut) — every chunk's
    // sweep is then independent of its neighbors. A counting pass turns
    // per-chunk accept totals into exclusive output offsets, and the
    // copy pass writes disjoint slices of the output arrays in parallel.
    const std::size_t grain = chunk_grain();
    const std::size_t nchunks = batch::chunk_count(n, grain);
    std::vector<std::size_t> bounds(nchunks + 1);
    bounds[0] = 0;
    bounds[nchunks] = n;
    for (std::size_t c = 1; c < nchunks; ++c) {
      std::size_t b = c * grain;
      const std::size_t lo =
          b >= static_cast<std::size_t>(nc) - 1
              ? b - (static_cast<std::size_t>(nc) - 1)
              : 0;
      for (std::size_t k = lo; k < b; ++k) {
        if (s.accept[k]) {
          b = k;
          break;
        }
      }
      // A family wider than the grain can pull consecutive cuts onto the
      // same start; clamping keeps the boundaries monotone (the earlier
      // chunk simply ends where the family begins, later ones go empty).
      bounds[c] = b > bounds[c - 1] ? b : bounds[c - 1];
    }
    std::vector<std::size_t> accepts(nchunks, 0);
    parallel_chunks(nchunks, 1,
                    [&](std::size_t, std::size_t cb, std::size_t ce) {
      for (std::size_t c = cb; c < ce; ++c) {
        std::size_t a = 0;
        for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          a += s.accept[i];
        }
        accepts[c] = a;
      }
    });
    std::size_t total_accepts = 0;
    std::vector<std::size_t> out_base(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      out_base[c] =
          bounds[c] - total_accepts * static_cast<std::size_t>(nc - 1);
      total_accepts += accepts[c];
    }
    if (total_accepts == 0) {
      return false;  // nothing coarsened: keep the tree untouched
    }
    c_accepted.add(total_accepts);
    const std::size_t out_n =
        n - total_accepts * static_cast<std::size_t>(nc - 1);
    std::vector<quad_t> out(out_n);
    std::vector<std::uint64_t> outp(pay ? out_n : 0);
    parallel_chunks(nchunks, 1,
                    [&](std::size_t, std::size_t cb, std::size_t ce) {
      for (std::size_t c = cb; c < ce; ++c) {
        std::size_t o = out_base[c];
        std::size_t i = bounds[c];
        while (i < bounds[c + 1]) {
          if (s.accept[i]) {
            out[o] = s.parents[i];
            if (pay) {
              outp[o] = (*pay)[i];  // parent takes the first child's
            }
            ++o;
            i += static_cast<std::size_t>(nc);
          } else {
            out[o] = tree[i];
            if (pay) {
              outp[o] = (*pay)[i];
            }
            ++o;
            ++i;
          }
        }
        assert(o == (c + 1 < nchunks ? out_base[c + 1] : out_n) &&
               "coarsen rebuild chunk wrote an unexpected slice");
      }
    });
    tree = std::move(out);
    if (pay) {
      *pay = std::move(outp);
    }
    return true;
  }

  void rebuild_offsets() {
    tree_offsets_.assign(trees_.size() + 1, 0);
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      tree_offsets_[t + 1] =
          tree_offsets_[t] + static_cast<gidx_t>(trees_[t].size());
    }
  }

  /// Invoke \p fn for every neighbor offset vector of the balance kind.
  /// \p fn may return void, or bool where false stops the enumeration
  /// early (the balance checkers bail at the first violation instead of
  /// probing the remaining offsets). Returns whether the enumeration ran
  /// to completion.
  template <class Fn>
  static bool for_each_neighbor_offset(BalanceKind kind, Fn&& fn) {
    const int zlo = dim == 3 ? -1 : 0;
    const int zhi = dim == 3 ? 1 : 0;
    for (int dz = zlo; dz <= zhi; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nz = (dx != 0) + (dy != 0) + (dz != 0);
          if (nz == 0) {
            continue;
          }
          if (kind == BalanceKind::kFace && nz > 1) {
            continue;
          }
          if (kind == BalanceKind::kEdge && nz > 2) {
            continue;
          }
          if constexpr (std::is_void_v<std::invoke_result_t<Fn&, int, int,
                                                            int>>) {
            fn(dx, dy, dz);
          } else {
            if (!fn(dx, dy, dz)) {
              return false;
            }
          }
        }
      }
    }
    return true;
  }

  // ------------------------------------------------- balance mark phase

  /// Scalar reference mark phase: one neighbor_at_offset + binary search
  /// per (leaf, offset) pair — the pre-batching code path, kept
  /// selectable via the batch kill switch (QFOREST_NO_BATCH) so tests and
  /// benches can cross-check and measure the batched phase against it.
  void mark_splits_scalar(
      BalanceKind kind, std::vector<std::vector<std::uint8_t>>& split) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      for (const quad_t& q : tree) {
        const int lvl = R::level(q);
        if (lvl < 2) {
          continue;  // neighbors can never be two levels coarser
        }
        for_each_neighbor_offset(kind, [&](int dx, int dy, int dz) {
          const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
          if (!nb.has_value()) {
            return;  // physical boundary
          }
          const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
          if (enclosing.has_value()) {
            const quad_t& leaf =
                trees_[static_cast<std::size_t>(nb->tree)][*enclosing];
            if (R::level(leaf) < lvl - 1) {
              split[static_cast<std::size_t>(nb->tree)][*enclosing] = 1;
            }
          }
        });
      }
    }
  }

  /// Candidate neighbor keys one source tree emits into one target tree,
  /// already re-encoded in the target tree's coordinate frame.
  struct MarkBucket {
    tree_id_t tree;
    std::vector<quad_t> quads;
  };

  /// Coarse Morton-cell index over one tree's leaf array: cell c of the
  /// uniform level-`level` grid maps to the contiguous leaf index range
  /// [begin[c], end[c]) of leaves intersecting it (contiguous because the
  /// leaves are sorted along the curve and grid cells are aligned
  /// blocks). An enclosing-leaf lookup then touches only the few leaves
  /// of one cell instead of binary-searching the whole tree.
  struct MarkGrid {
    int level = 0;
    std::vector<std::size_t> begin;
    std::vector<std::size_t> end;
  };

  /// Batched mark phase, three tree-parallel (and within each tree
  /// chunk-parallel) passes:
  ///   1. index: build each tree's Morton-cell MarkGrid — only for trees
  ///      whose leaves changed since the grid was last built (the balance
  ///      fixpoint loop reuses grids of unchanged trees across
  ///      iterations);
  ///   2. produce + resolve local: bulk-emit every candidate neighbor
  ///      key through BatchOps<R>::neighbor_at_offset_n over
  ///      level-uniform spans staged per leaf chunk; keys staying in the
  ///      source tree (the vast majority) resolve immediately against its
  ///      MarkGrid (split marks are relaxed atomic stores — chunks of one
  ///      tree may mark the same leaf), keys that cross a tree face are
  ///      bucketed per chunk and merged per target tree;
  ///   3. resolve remote: each target tree sorts its incoming bucket and
  ///      resolves it with a sorted-merge sweep, itself cut into key
  ///      chunks that each start from one binary search.
  void mark_splits_batched(BalanceKind kind,
                           std::vector<std::vector<std::uint8_t>>& split,
                           std::vector<MarkGrid>& grids,
                           std::vector<std::uint8_t>& grid_valid) const {
    const std::size_t nt = trees_.size();
    parallel_over(nt, [&](std::size_t ti) {
      if (!grid_valid[ti]) {
        build_mark_grid(ti, grids[ti]);
        grid_valid[ti] = 1;
      }
    });
    std::vector<std::vector<MarkBucket>> cand(nt);
    parallel_over(nt, [&](std::size_t ti) {
      produce_and_mark_local(static_cast<tree_id_t>(ti), kind, grids[ti],
                             split[ti], cand[ti]);
    });
    // One serial pass groups bucket pointers per target, so the
    // per-target workers below don't each scan every source tree
    // (quadratic in num_trees on large bricks).
    std::vector<std::vector<const std::vector<quad_t>*>> incoming(nt);
    for (const auto& per_source : cand) {
      for (const MarkBucket& b : per_source) {
        incoming[static_cast<std::size_t>(b.tree)].push_back(&b.quads);
      }
    }
    parallel_over(nt, [&](std::size_t ti) {
      std::vector<quad_t> keys;
      for (const auto* quads : incoming[ti]) {
        keys.insert(keys.end(), quads->begin(), quads->end());
      }
      if (keys.empty()) {
        return;
      }
      std::sort(keys.begin(), keys.end(), RepLess<R>{});
      mark_enclosing_merge(ti, keys, split[ti]);
    });
  }

  /// Build tree \p ti's MarkGrid. The grid level is chosen so cells hold
  /// ~2+ leaves on average (a finer grid would cost more to build than it
  /// saves); a leaf coarser than the grid covers an aligned block of
  /// cells that is contiguous in cell-Morton order. The cell fill runs
  /// chunk-parallel over the leaf array: chunks mostly write disjoint
  /// cell ranges (the leaves are curve-sorted) but can meet on boundary
  /// cells and coarse-leaf blocks, so the min/max folds are relaxed CAS
  /// loops — every worker folds toward the same fixpoint, so the result
  /// is order-independent.
  void build_mark_grid(std::size_t ti, MarkGrid& g) const {
    static obs::Counter& c_builds = obs::counter("forest.markgrid.builds");
    c_builds.add(1);
    const auto& tree = trees_[ti];
    const std::size_t n = tree.size();
    int lvl = 0;
    while (lvl + 1 <= R::max_level &&
           (std::size_t{1} << (dim * (lvl + 1))) * 2 <= n) {
      ++lvl;
    }
    g.level = lvl;
    const std::size_t cells = std::size_t{1} << (dim * lvl);
    g.begin.assign(cells, n);
    g.end.assign(cells, 0);
    const int shift = kCanonicalLevel - lvl;
    parallel_chunks(n, chunk_grain(),
                    [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const CanonicalQuadrant c = to_canonical<R>(tree[i]);
        const std::uint64_t c0 =
            cell_morton(g, c.x >> shift, c.y >> shift, c.z >> shift);
        std::uint64_t c1 = c0;
        if (c.level < lvl) {
          c1 = c0 + (std::uint64_t{1} << (dim * (lvl - c.level))) - 1;
        }
        for (std::uint64_t cc = c0; cc <= c1; ++cc) {
          atomic_fold_min(g.begin[cc], i);
          atomic_fold_max(g.end[cc], i + 1);
        }
      }
    });
  }

  static void atomic_fold_min(std::size_t& slot, std::size_t v) {
    const std::atomic_ref<std::size_t> a(slot);
    // mo: relaxed — commutative min fold; the grid is read only after
    // the building parallel region joins.
    std::size_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  static void atomic_fold_max(std::size_t& slot, std::size_t v) {
    const std::atomic_ref<std::size_t> a(slot);
    // mo: relaxed — commutative max fold; the grid is read only after
    // the building parallel region joins.
    std::size_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  static std::uint64_t cell_morton(const MarkGrid& g, std::int64_t cx,
                                   std::int64_t cy, std::int64_t cz) {
    if constexpr (dim == 3) {
      return bits::interleave3(static_cast<std::uint32_t>(cx),
                               static_cast<std::uint32_t>(cy),
                               static_cast<std::uint32_t>(cz));
    } else {
      (void)cz;
      return bits::interleave2(static_cast<std::uint32_t>(cx),
                               static_cast<std::uint32_t>(cy));
    }
  }

  /// Phase 2 worker: stage tree \p t's leaves into level-uniform spans
  /// (leaves of level < 2 emit nothing — their neighbors can never be two
  /// levels coarser) and emit every neighbor-offset key in bulk. The
  /// tree's leaf array is cut into chunks; each chunk stages its own
  /// leaves and processes its own spans. Keys staying inside the tree
  /// resolve against the (shared, read-only) MarkGrid on the spot with
  /// relaxed atomic split marks; keys crossing a tree face are wrapped
  /// into the neighbor tree's frame and bucketed per chunk, merged into
  /// \p out afterwards. Keys leaving the physical domain are dropped. A
  /// periodic wrap back into the source tree counts as local (target ==
  /// t) and also resolves here.
  void produce_and_mark_local(tree_id_t t, BalanceKind kind,
                              const MarkGrid& grid,
                              std::vector<std::uint8_t>& split,
                              std::vector<MarkBucket>& out) const {
    const auto ti = static_cast<std::size_t>(t);
    const auto& tree = trees_[ti];
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    const std::size_t grain = chunk_grain();
    std::vector<std::vector<MarkBucket>> chunk_out(
        batch::chunk_count(tree.size(), grain));
    parallel_chunks(tree.size(), grain,
                    [&](std::size_t c, std::size_t cb, std::size_t ce) {
      auto& mine = chunk_out[c];
      auto bucket_for = [&](tree_id_t target) -> std::vector<quad_t>& {
        // Linear scan: a tree has at most 3^dim - 1 distinct targets.
        for (MarkBucket& b : mine) {
          if (b.tree == target) {
            return b.quads;
          }
        }
        mine.push_back(MarkBucket{target, {}});
        return mine.back().quads;
      };
      SpanStage<R> staged;
      for (std::size_t i = cb; i < ce; ++i) {
        if (R::level(tree[i]) >= 2) {
          staged.add(tree[i]);
        }
      }
      std::vector<std::int64_t> ox, oy, oz;
      for (std::size_t l = 2; l < staged.num_levels(); ++l) {
        const auto& span = staged.span(l);
        if (span.empty()) {
          continue;
        }
        ox.resize(span.size());
        oy.resize(span.size());
        oz.resize(span.size());
        for_each_neighbor_offset(kind, [&](int dx, int dy, int dz) {
          BatchOps<R>::neighbor_at_offset_n(span.data(), ox.data(),
                                            oy.data(), oz.data(),
                                            span.size(), dx, dy, dz,
                                            static_cast<int>(l));
          for (std::size_t i = 0; i < span.size(); ++i) {
            std::int64_t pos[3] = {ox[i], oy[i], oz[i]};
            std::array<int, 3> step = {0, 0, 0};
            for (int a = 0; a < dim; ++a) {
              if (pos[a] < 0) {
                step[a] = -1;
                pos[a] += root;
              } else if (pos[a] >= root) {
                step[a] = 1;
                pos[a] -= root;
              }
            }
            tree_id_t target = t;
            if (step[0] != 0 || step[1] != 0 || step[2] != 0) {
              target =
                  conn_.tree_offset_neighbor(t, step[0], step[1], step[2]);
              if (target < 0) {
                continue;  // physical boundary
              }
            }
            const CanonicalQuadrant nc{pos[0], pos[1], pos[2],
                                       static_cast<int>(l)};
            if (target == t) {
              resolve_mark(ti, grid, nc, split);
            } else {
              bucket_for(target).push_back(from_canonical<R>(nc));
            }
          }
        });
      }
    });
    for (auto& mine : chunk_out) {
      for (MarkBucket& b : mine) {
        auto it = std::find_if(out.begin(), out.end(), [&](const MarkBucket& o) {
          return o.tree == b.tree;
        });
        if (it == out.end()) {
          out.push_back(std::move(b));
        } else {
          it->quads.insert(it->quads.end(), b.quads.begin(), b.quads.end());
        }
      }
    }
  }

  /// Grid-accelerated find_enclosing_leaf for a canonical key inside
  /// tree \p ti: the enclosing leaf, if any, intersects the grid cell
  /// containing the key's corner, so the range-local upper_bound equals
  /// the global one whenever an enclosure exists (an out-of-range
  /// predecessor cannot be an ancestor — ancestors contain the corner and
  /// hence the cell). Shared by the balance mark phase and the batched
  /// face iteration.
  [[nodiscard]] std::optional<std::size_t> resolve_enclosing_grid(
      std::size_t ti, const MarkGrid& g, const CanonicalQuadrant& nc) const {
    const auto& tree = trees_[ti];
    const int shift = kCanonicalLevel - g.level;
    const std::uint64_t cell =
        cell_morton(g, nc.x >> shift, nc.y >> shift, nc.z >> shift);
    const std::size_t lo = g.begin[cell];
    const std::size_t hi = g.end[cell];
    if (lo >= hi) {
      return std::nullopt;
    }
    const quad_t key = from_canonical<R>(nc);
    const auto first = tree.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto last = tree.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto it = std::upper_bound(first, last, key, RepLess<R>{});
    if (it == first) {
      return std::nullopt;
    }
    const auto idx = static_cast<std::size_t>(it - tree.begin()) - 1;
    const quad_t& leaf = tree[idx];
    if (R::equal(leaf, key) || R::is_ancestor(leaf, key)) {
      return idx;
    }
    return std::nullopt;
  }

  /// Resolve one candidate key against tree \p ti via its MarkGrid and
  /// mark the enclosing leaf when it is two or more levels coarser than
  /// the key (a 2:1 violation). The mark is a relaxed atomic store:
  /// concurrent chunk workers of one tree may mark the same leaf, and
  /// all stores write the same value (the bitmap is only read after the
  /// parallel region completes).
  void resolve_mark(std::size_t ti, const MarkGrid& g,
                    const CanonicalQuadrant& nc,
                    std::vector<std::uint8_t>& split) const {
    const auto enclosing = resolve_enclosing_grid(ti, g, nc);
    if (!enclosing.has_value()) {
      return;
    }
    if (R::level(trees_[ti][*enclosing]) < nc.level - 1) {
      // mo: relaxed — idempotent mark byte; readers run after the
      // marking region joins.
      std::atomic_ref<std::uint8_t>(split[*enclosing])
          .store(1, std::memory_order_relaxed);
    }
  }

  /// Phase 3 worker: the sorted-merge replacement of per-candidate
  /// find_enclosing_leaf. Keys and the leaf array are both sorted by
  /// R::less ("ancestors before descendants" curve order), so the index
  /// of the last leaf <= key — the only possible enclosure, exactly what
  /// upper_bound - 1 yields — advances monotonically and one sweep
  /// resolves every key. The sweep is cut into key chunks; each chunk
  /// seeds its cursor with one binary search on its first key and then
  /// advances monotonically, marking via relaxed atomic stores (adjacent
  /// chunks can resolve to the same leaf). The enclosing leaf is marked
  /// when it is two or more levels coarser than the key (a 2:1
  /// violation); keys whose region is covered by finer leaves have no
  /// enclosure and mark nothing.
  void mark_enclosing_merge(std::size_t ti, const std::vector<quad_t>& keys,
                            std::vector<std::uint8_t>& split) const {
    const auto& tree = trees_[ti];
    const auto n = static_cast<std::ptrdiff_t>(tree.size());
    parallel_chunks(keys.size(), chunk_grain(),
                    [&](std::size_t, std::size_t b, std::size_t e) {
      // Last leaf <= keys[b] (-1: none): upper_bound yields the first
      // leaf strictly greater, the candidate enclosure sits before it.
      std::ptrdiff_t j =
          std::upper_bound(tree.begin(), tree.end(), keys[b],
                           RepLess<R>{}) -
          tree.begin() - 1;
      for (std::size_t kk = b; kk < e; ++kk) {
        const quad_t& key = keys[kk];
        while (j + 1 < n &&
               !R::less(key, tree[static_cast<std::size_t>(j + 1)])) {
          ++j;
        }
        if (j < 0) {
          continue;
        }
        const quad_t& leaf = tree[static_cast<std::size_t>(j)];
        if (R::level(leaf) < R::level(key) - 1 &&
            (R::equal(leaf, key) || R::is_ancestor(leaf, key))) {
          // mo: relaxed — idempotent mark byte; readers run after the
          // marking region joins.
          std::atomic_ref<std::uint8_t>(split[static_cast<std::size_t>(j)])
              .store(1, std::memory_order_relaxed);
        }
      }
    });
  }

  /// Call \p fn(leaf_index) for every leaf of the neighbor lookup's tree
  /// whose domain touches the reference quadrant (\p t, \p ref) and lies
  /// within the same-level neighbor region.
  template <class Fn>
  void collect_touching_leaves(const NeighborLookup& nb, tree_id_t t,
                               const quad_t& ref, Fn&& fn) const {
    const auto& tree = trees_[static_cast<std::size_t>(nb.tree)];
    const auto enclosing = find_enclosing_leaf(nb.tree, nb.quad);
    if (enclosing.has_value()) {
      fn(*enclosing);
      return;
    }
    // The region of the neighbor is covered by finer leaves: they form a
    // contiguous run starting at the first leaf >= nb.quad. Translate the
    // reference into the neighbor tree's coordinate frame so the touch
    // test works across tree faces too.
    const auto it =
        std::lower_bound(tree.begin(), tree.end(), nb.quad, RepLess<R>{});
    CanonicalQuadrant cref = to_canonical<R>(ref);
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    cref.x -= nb.tree_step[0] * root;
    cref.y -= nb.tree_step[1] * root;
    cref.z -= nb.tree_step[2] * root;
    for (auto cur = it; cur != tree.end(); ++cur) {
      if (!R::is_ancestor(nb.quad, *cur)) {
        break;
      }
      if (nb.tree != t || !R::equal(*cur, ref)) {
        if (canonical_touch(to_canonical<R>(*cur), cref)) {
          fn(static_cast<std::size_t>(cur - tree.begin()));
        }
      }
    }
  }

  // ------------------------------------------------- ghost adjacency scan

  /// One cross-tree adjacency key of the batched scan: the same-level
  /// neighbor key re-encoded in the target tree's frame, the reference
  /// leaf's canonical domain translated into that frame (the finer-run
  /// touch filter needs it), and the source leaf's global index (the
  /// emission of mirrors mode).
  struct GhostKey {
    quad_t key;
    CanonicalQuadrant ref;
    gidx_t source;
  };

  /// Cross-tree adjacency keys one source tree emits into one target.
  struct GhostBucket {
    tree_id_t tree;
    std::vector<GhostKey> keys;
  };

  /// Shared core of ghost_layer and mirrors: scan the leaves of the
  /// global range [first, last) against every kFull neighbor offset and
  /// return, sorted and deduplicated, either every out-of-range leaf
  /// touched (\p sources false — the ghost layer) or every in-range leaf
  /// touching at least one out-of-range leaf (\p sources true — the
  /// mirrors; the touch relation is symmetric, so one pass over the own
  /// leaves replaces recomputing every other rank's ghost layer).
  [[nodiscard]] std::vector<gidx_t> adjacency_scan(gidx_t first, gidx_t last,
                                                   bool sources) const {
    obs::TraceSpan span("forest", "adjacency_scan");
    span.arg("range", static_cast<std::int64_t>(last - first));
    std::vector<gidx_t> seen = batch::enabled()
                                   ? adjacency_scan_batched(first, last,
                                                            sources)
                                   : adjacency_scan_scalar(first, last,
                                                           sources);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    return seen;
  }

  /// Scalar reference scan: one neighbor_at_offset + whole-tree binary
  /// search per (leaf, offset) pair — the pre-batching ghost_layer loop,
  /// kept selectable via the batch kill switch for parity tests and the
  /// bench_ghost ablation.
  [[nodiscard]] std::vector<gidx_t> adjacency_scan_scalar(
      gidx_t first, gidx_t last, bool sources) const {
    std::vector<gidx_t> seen;
    for (gidx_t g = first; g < last; ++g) {
      const auto [t, i] = locate(g);
      const quad_t& q = trees_[static_cast<std::size_t>(t)][i];
      for_each_neighbor_offset(BalanceKind::kFull,
                               [&, t = t, g = g](int dx, int dy, int dz) {
        const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
        if (!nb.has_value()) {
          return;
        }
        collect_touching_leaves(*nb, t, q, [&](std::size_t leaf_idx) {
          const gidx_t lg = global_index(nb->tree, leaf_idx);
          if (lg < first || lg >= last) {
            seen.push_back(sources ? g : lg);
          }
        });
      });
    }
    return seen;
  }

  /// Batched scan, the read-side twin of mark_splits_batched:
  ///   A. per involved tree (only trees intersecting the rank range),
  ///      build a MarkGrid, then sweep the rank's leaf subrange in
  ///      chunks — each chunk stages its leaves into level-uniform spans
  ///      (IndexedSpanStage keeps the source leaf indices), bulk-emits
  ///      every kFull neighbor key through neighbor_at_offset_n, resolves
  ///      keys staying in the tree against the grid on the spot and
  ///      buckets keys crossing a tree face per target;
  ///   B. per target tree, concatenate + sort the incoming keys by curve
  ///      order and resolve them with a chunked sorted-merge sweep.
  /// The reference domain needed by the finer-run touch filter comes for
  /// free: in the target frame it is the wrapped key position minus the
  /// offset displacement (the wrap translation cancels axis by axis).
  [[nodiscard]] std::vector<gidx_t> adjacency_scan_batched(
      gidx_t first, gidx_t last, bool sources) const {
    std::vector<gidx_t> seen;
    if (first >= last) {
      return seen;
    }
    const auto [t0, i0] = locate(first);
    const auto [t1, i1] = locate(last - 1);
    const std::size_t nscan = static_cast<std::size_t>(t1 - t0) + 1;
    std::vector<MarkGrid> grids(nscan);
    parallel_over(nscan, [&, t0 = t0](std::size_t k) {
      build_mark_grid(static_cast<std::size_t>(t0) + k, grids[k]);
    });
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    const std::size_t grain = chunk_grain();
    static obs::Counter& c_local = obs::counter("forest.scan.local_keys");
    static obs::Counter& c_merge = obs::counter("forest.scan.merge_keys");
    std::vector<std::vector<gidx_t>> tree_seen(nscan);
    std::vector<std::vector<GhostBucket>> buckets(nscan);
    parallel_over(nscan, [&, t0 = t0, t1 = t1, i0 = i0,
                          i1 = i1](std::size_t k) {
      const auto t = static_cast<tree_id_t>(static_cast<std::size_t>(t0) + k);
      const auto ti = static_cast<std::size_t>(t);
      const auto& tree = trees_[ti];
      const MarkGrid& grid = grids[k];
      const std::size_t a = t == t0 ? i0 : 0;
      const std::size_t b = t == t1 ? i1 + 1 : tree.size();
      const std::size_t m = b - a;
      const std::size_t nchunks = batch::chunk_count(m, grain);
      std::vector<std::vector<gidx_t>> chunk_seen(nchunks);
      std::vector<std::vector<GhostBucket>> chunk_buckets(nchunks);
      parallel_chunks(m, grain,
                      [&](std::size_t c, std::size_t cb, std::size_t ce) {
        auto& my_seen = chunk_seen[c];
        auto& my_buckets = chunk_buckets[c];
        std::size_t local_keys = 0;
        std::size_t merge_keys = 0;
        auto bucket_for = [&](tree_id_t target) -> std::vector<GhostKey>& {
          // Linear scan: a tree has at most 3^dim - 1 distinct targets.
          for (GhostBucket& bk : my_buckets) {
            if (bk.tree == target) {
              return bk.keys;
            }
          }
          my_buckets.push_back(GhostBucket{target, {}});
          return my_buckets.back().keys;
        };
        IndexedSpanStage<R> staged;
        for (std::size_t i = cb; i < ce; ++i) {
          staged.add(tree[a + i], a + i);
        }
        std::vector<std::int64_t> ox, oy, oz;
        for (std::size_t l = 0; l < staged.num_levels(); ++l) {
          const auto& span = staged.span(l);
          if (span.empty()) {
            continue;
          }
          const auto& src = staged.sources(l);
          ox.resize(span.size());
          oy.resize(span.size());
          oz.resize(span.size());
          const std::int64_t h = std::int64_t{1}
                                 << (kCanonicalLevel - static_cast<int>(l));
          for_each_neighbor_offset(BalanceKind::kFull,
                                   [&](int dx, int dy, int dz) {
            BatchOps<R>::neighbor_at_offset_n(span.data(), ox.data(),
                                              oy.data(), oz.data(),
                                              span.size(), dx, dy, dz,
                                              static_cast<int>(l));
            for (std::size_t i = 0; i < span.size(); ++i) {
              std::int64_t pos[3] = {ox[i], oy[i], oz[i]};
              std::array<int, 3> step = {0, 0, 0};
              for (int axis = 0; axis < dim; ++axis) {
                if (pos[axis] < 0) {
                  step[axis] = -1;
                  pos[axis] += root;
                } else if (pos[axis] >= root) {
                  step[axis] = 1;
                  pos[axis] -= root;
                }
              }
              tree_id_t target = t;
              if (step[0] != 0 || step[1] != 0 || step[2] != 0) {
                target = conn_.tree_offset_neighbor(t, step[0], step[1],
                                                    step[2]);
                if (target < 0) {
                  continue;  // physical boundary
                }
              }
              const CanonicalQuadrant nc{pos[0], pos[1], pos[2],
                                         static_cast<int>(l)};
              const CanonicalQuadrant ref{pos[0] - dx * h, pos[1] - dy * h,
                                          pos[2] - dz * h,
                                          static_cast<int>(l)};
              const gidx_t src_g = global_index(t, src[i]);
              if (target == t) {
                ++local_keys;
                resolve_touching_local(
                    ti, grid, nc, ref, [&](std::size_t leaf_idx) {
                      const gidx_t lg = global_index(t, leaf_idx);
                      if (lg < first || lg >= last) {
                        my_seen.push_back(sources ? src_g : lg);
                      }
                    });
              } else {
                ++merge_keys;
                bucket_for(target).push_back(
                    GhostKey{from_canonical<R>(nc), ref, src_g});
              }
            }
          });
        }
        if (local_keys > 0) {
          c_local.add(local_keys);
        }
        if (merge_keys > 0) {
          c_merge.add(merge_keys);
        }
      });
      auto& ts = tree_seen[k];
      for (const auto& cs : chunk_seen) {
        ts.insert(ts.end(), cs.begin(), cs.end());
      }
      auto& tb = buckets[k];
      for (auto& cbk : chunk_buckets) {
        for (GhostBucket& bk : cbk) {
          const auto it = std::find_if(
              tb.begin(), tb.end(),
              [&](const GhostBucket& o) { return o.tree == bk.tree; });
          if (it == tb.end()) {
            tb.push_back(std::move(bk));
          } else {
            it->keys.insert(it->keys.end(), bk.keys.begin(), bk.keys.end());
          }
        }
      }
    });
    // Phase B: group the buckets per target (serial pointer pass, as in
    // mark_splits_batched), then resolve each target's keys.
    std::vector<std::vector<const std::vector<GhostKey>*>> incoming(
        trees_.size());
    for (const auto& per_source : buckets) {
      for (const GhostBucket& bk : per_source) {
        incoming[static_cast<std::size_t>(bk.tree)].push_back(&bk.keys);
      }
    }
    std::vector<std::vector<gidx_t>> target_seen(trees_.size());
    parallel_over(trees_.size(), [&](std::size_t ti) {
      if (incoming[ti].empty()) {
        return;
      }
      std::size_t total = 0;
      for (const auto* keys : incoming[ti]) {
        total += keys->size();
      }
      std::vector<GhostKey> keys;
      keys.reserve(total);
      for (const auto* part : incoming[ti]) {
        keys.insert(keys.end(), part->begin(), part->end());
      }
      std::sort(keys.begin(), keys.end(),
                [](const GhostKey& x, const GhostKey& y) {
                  return R::less(x.key, y.key);
                });
      resolve_touching_merge(ti, first, last, sources, keys,
                             target_seen[ti]);
    });
    std::size_t total = 0;
    for (const auto& part : tree_seen) {
      total += part.size();
    }
    for (const auto& part : target_seen) {
      total += part.size();
    }
    seen.reserve(total);
    for (const auto& part : tree_seen) {
      seen.insert(seen.end(), part.begin(), part.end());
    }
    for (const auto& part : target_seen) {
      seen.insert(seen.end(), part.begin(), part.end());
    }
    return seen;
  }

  /// Grid-accelerated equivalent of collect_touching_leaves for a key
  /// staying in its source tree. The aligned cell block covered by the
  /// key maps to the contiguous leaf range [begin[c0], end[c1]) — the
  /// leaves intersecting the key's domain: the range-local upper_bound
  /// finds the enclosing leaf if one exists (emitted unconditionally: an
  /// enclosing leaf always touches the reference, which is adjacent to
  /// the key region it contains); otherwise the key's descendants form a
  /// contiguous run starting right at that upper_bound, filtered by the
  /// canonical touch test exactly like the scalar path. (The scalar
  /// path's periodic self-exclusion is vacuous here: finer-run leaves are
  /// strictly finer than the same-level reference, so they can never
  /// equal it.)
  template <class Fn>
  void resolve_touching_local(std::size_t ti, const MarkGrid& g,
                              const CanonicalQuadrant& nc,
                              const CanonicalQuadrant& ref, Fn&& fn) const {
    const auto& tree = trees_[ti];
    const int shift = kCanonicalLevel - g.level;
    const std::uint64_t c0 =
        cell_morton(g, nc.x >> shift, nc.y >> shift, nc.z >> shift);
    std::uint64_t c1 = c0;
    if (nc.level < g.level) {
      c1 = c0 + (std::uint64_t{1} << (dim * (g.level - nc.level))) - 1;
    }
    const std::size_t lo = g.begin[c0];
    const std::size_t hi = g.end[c1];
    if (lo >= hi) {
      return;  // defensive: a complete tree always intersects the block
    }
    const quad_t key = from_canonical<R>(nc);
    const auto range_first = tree.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto range_last = tree.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto it =
        std::upper_bound(range_first, range_last, key, RepLess<R>{});
    if (it != range_first) {
      const auto idx = static_cast<std::size_t>(it - tree.begin()) - 1;
      const quad_t& leaf = tree[idx];
      if (R::equal(leaf, key) || R::is_ancestor(leaf, key)) {
        fn(idx);
        return;
      }
    }
    for (auto cur = it; cur != range_last; ++cur) {
      if (!R::is_ancestor(key, *cur)) {
        break;
      }
      if (canonical_touch(to_canonical<R>(*cur), ref)) {
        fn(static_cast<std::size_t>(cur - tree.begin()));
      }
    }
  }

  /// Phase B worker of the batched adjacency scan: resolve one target
  /// tree's incoming cross-tree keys (sorted by curve order) with a
  /// sorted-merge sweep, chunked like mark_enclosing_merge — each key
  /// chunk seeds its last-leaf-<=-key cursor with one binary search and
  /// advances it monotonically. Enclosures emit unconditionally; finer
  /// runs scan forward from the cursor with the canonical touch filter
  /// against the key's translated reference. Emissions collect into
  /// per-chunk vectors (concatenated at the end) so the chunk workers
  /// never share a sink.
  void resolve_touching_merge(std::size_t ti, gidx_t first, gidx_t last,
                              bool sources,
                              const std::vector<GhostKey>& keys,
                              std::vector<gidx_t>& out) const {
    const auto& tree = trees_[ti];
    const auto t = static_cast<tree_id_t>(ti);
    const auto n = static_cast<std::ptrdiff_t>(tree.size());
    const std::size_t grain = chunk_grain();
    std::vector<std::vector<gidx_t>> chunk_out(
        batch::chunk_count(keys.size(), grain));
    parallel_chunks(keys.size(), grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
      auto& mine = chunk_out[c];
      auto emit = [&](std::size_t leaf_idx, const GhostKey& gk) {
        const gidx_t lg = global_index(t, leaf_idx);
        if (lg < first || lg >= last) {
          mine.push_back(sources ? gk.source : lg);
        }
      };
      std::ptrdiff_t j =
          std::upper_bound(tree.begin(), tree.end(), keys[b].key,
                           RepLess<R>{}) -
          tree.begin() - 1;
      for (std::size_t kk = b; kk < e; ++kk) {
        const GhostKey& gk = keys[kk];
        while (j + 1 < n &&
               !R::less(gk.key, tree[static_cast<std::size_t>(j + 1)])) {
          ++j;
        }
        if (j >= 0) {
          const quad_t& leaf = tree[static_cast<std::size_t>(j)];
          if (R::equal(leaf, gk.key) || R::is_ancestor(leaf, gk.key)) {
            emit(static_cast<std::size_t>(j), gk);
            continue;
          }
        }
        for (std::ptrdiff_t r = j + 1; r < n; ++r) {
          const quad_t& leaf = tree[static_cast<std::size_t>(r)];
          if (!R::is_ancestor(gk.key, leaf)) {
            break;
          }
          if (canonical_touch(to_canonical<R>(leaf), gk.ref)) {
            emit(static_cast<std::size_t>(r), gk);
          }
        }
      }
    });
    for (const auto& mine : chunk_out) {
      out.insert(out.end(), mine.begin(), mine.end());
    }
  }

  /// Whether two canonical domains touch (share at least a point); the
  /// caller is responsible for expressing both in the same frame.
  static bool canonical_touch(const CanonicalQuadrant& a,
                              const CanonicalQuadrant& b) {
    const std::int64_t ha = std::int64_t{1} << (kCanonicalLevel - a.level);
    const std::int64_t hb = std::int64_t{1} << (kCanonicalLevel - b.level);
    const std::int64_t pa[3] = {a.x, a.y, a.z};
    const std::int64_t pb[3] = {b.x, b.y, b.z};
    for (int i = 0; i < dim; ++i) {
      if (pa[i] + ha < pb[i] || pb[i] + hb < pa[i]) {
        return false;
      }
    }
    return true;
  }

  /// Recursive completeness test of a leaf span against an ancestor.
  bool is_complete_range(const quad_t& anc, const quad_t* begin,
                         const quad_t* end) const {
    if (begin == end) {
      return false;  // a region left uncovered
    }
    if (end - begin == 1 && R::equal(*begin, anc)) {
      return true;
    }
    if (R::level(anc) >= R::max_level) {
      return false;
    }
    const quad_t* pos = begin;
    for (int c = 0; c < dims::num_children; ++c) {
      const quad_t ch = R::child(anc, c);
      const quad_t* stop =
          std::partition_point(pos, end, [&](const quad_t& leaf) {
            return R::equal(leaf, ch) || R::is_ancestor(ch, leaf);
          });
      if (!is_complete_range(ch, pos, stop)) {
        return false;
      }
      pos = stop;
    }
    return pos == end;
  }

  template <class Fn>
  bool search_recursion(tree_id_t t, const quad_t& anc, std::size_t begin,
                        std::size_t end, Fn& cb) const {
    const auto& tree = trees_[static_cast<std::size_t>(t)];
    const bool is_leaf =
        end - begin == 1 && R::equal(tree[begin], anc);
    if (!cb(t, anc, begin, end, is_leaf) || is_leaf) {
      return true;
    }
    if (R::level(anc) >= R::max_level) {
      return true;
    }
    std::size_t pos = begin;
    for (int c = 0; c < dims::num_children && pos < end; ++c) {
      const quad_t ch = R::child(anc, c);
      const auto stop = static_cast<std::size_t>(
          std::partition_point(tree.begin() + static_cast<std::ptrdiff_t>(pos),
                               tree.begin() + static_cast<std::ptrdiff_t>(end),
                               [&](const quad_t& leaf) {
                                 return R::equal(leaf, ch) ||
                                        R::is_ancestor(ch, leaf);
                               }) -
          tree.begin());
      if (stop > pos) {
        search_recursion(t, ch, pos, stop, cb);
      }
      pos = stop;
    }
    return true;
  }

  template <class Fn>
  void emit_face(tree_id_t t, std::size_t i, const quad_t& q, int f,
                 Fn& cb) const {
    FaceInfo<R> info;
    info.tree[0] = t;
    info.quad[0] = q;
    info.leaf_index[0] = i;
    info.face[0] = f;

    const int axis = f >> 1;
    const int dirs[3] = {axis == 0 ? ((f & 1) ? 1 : -1) : 0,
                         axis == 1 ? ((f & 1) ? 1 : -1) : 0,
                         axis == 2 ? ((f & 1) ? 1 : -1) : 0};
    const auto nb = neighbor_at_offset(t, q, dirs[0], dirs[1], dirs[2]);
    if (!nb.has_value()) {
      info.is_boundary = true;
      cb(info);
      return;
    }
    const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
    if (!enclosing.has_value()) {
      // Neighbor region is finer: those leaves emit toward us instead.
      return;
    }
    const auto& ntree = trees_[static_cast<std::size_t>(nb->tree)];
    const quad_t& leaf = ntree[*enclosing];
    const int lq = R::level(q);
    const int ll = R::level(leaf);
    if (ll == lq) {
      // Equal-size pair: the globally lower side emits.
      if (global_index(t, i) > global_index(nb->tree, *enclosing)) {
        return;
      }
    } else if (ll > lq) {
      return;  // cannot happen for an enclosing leaf
    } else {
      info.is_hanging = true;  // we are the finer side
    }
    info.tree[1] = nb->tree;
    info.quad[1] = leaf;
    info.leaf_index[1] = *enclosing;
    info.face[1] = f ^ 1;
    cb(info);
  }

  // ------------------------------------------------ batched face iteration

  /// One cross-tree face key of the batched iteration: the face-neighbor
  /// key re-encoded in the target tree's frame plus everything needed to
  /// rebuild side 0 of the FaceInfo once the target resolves it.
  struct FaceKey {
    quad_t key;
    tree_id_t src_tree;
    std::size_t src_leaf;
    int face;
  };

  /// Cross-tree face keys one source tree emits into one target.
  struct FaceBucket {
    tree_id_t tree;
    std::vector<FaceKey> keys;
  };

  /// Batched iterate_faces: per tree (tree-parallel), sweep the leaves in
  /// chunks — each chunk stages its leaves into level-uniform spans with
  /// their source indices and bulk-emits all 2*dim face-neighbor keys per
  /// span; local keys resolve against the tree's MarkGrid, cross-tree
  /// keys are bucketed and resolved per target with a sorted-merge sweep.
  /// Every emission decision replays emit_face's contract on the resolved
  /// enclosing leaf, so the emitted face SET matches the scalar path
  /// exactly (order differs and the callback runs concurrently).
  template <class Fn>
  void iterate_faces_batched(Fn& cb) const {
    const std::size_t nt = trees_.size();
    std::vector<MarkGrid> grids(nt);
    parallel_over(nt, [&](std::size_t ti) { build_mark_grid(ti, grids[ti]); });
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    const std::size_t grain = chunk_grain();
    std::vector<std::vector<FaceBucket>> buckets(nt);
    parallel_over(nt, [&](std::size_t ti) {
      const auto t = static_cast<tree_id_t>(ti);
      const auto& tree = trees_[ti];
      const MarkGrid& grid = grids[ti];
      const std::size_t nchunks = batch::chunk_count(tree.size(), grain);
      std::vector<std::vector<FaceBucket>> chunk_buckets(nchunks);
      parallel_chunks(tree.size(), grain,
                      [&](std::size_t c, std::size_t cb_, std::size_t ce) {
        auto& my_buckets = chunk_buckets[c];
        auto bucket_for = [&](tree_id_t target) -> std::vector<FaceKey>& {
          for (FaceBucket& bk : my_buckets) {
            if (bk.tree == target) {
              return bk.keys;
            }
          }
          my_buckets.push_back(FaceBucket{target, {}});
          return my_buckets.back().keys;
        };
        IndexedSpanStage<R> staged;
        for (std::size_t i = cb_; i < ce; ++i) {
          staged.add(tree[i], i);
        }
        std::vector<std::int64_t> ox, oy, oz;
        for (std::size_t l = 0; l < staged.num_levels(); ++l) {
          const auto& span = staged.span(l);
          if (span.empty()) {
            continue;
          }
          const auto& src = staged.sources(l);
          ox.resize(span.size());
          oy.resize(span.size());
          oz.resize(span.size());
          for (int f = 0; f < dims::num_faces; ++f) {
            const int axis = f >> 1;
            const int sign = (f & 1) ? 1 : -1;
            const int dx = axis == 0 ? sign : 0;
            const int dy = axis == 1 ? sign : 0;
            const int dz = axis == 2 ? sign : 0;
            BatchOps<R>::neighbor_at_offset_n(span.data(), ox.data(),
                                              oy.data(), oz.data(),
                                              span.size(), dx, dy, dz,
                                              static_cast<int>(l));
            for (std::size_t i = 0; i < span.size(); ++i) {
              std::int64_t pos[3] = {ox[i], oy[i], oz[i]};
              std::array<int, 3> step = {0, 0, 0};
              for (int a = 0; a < dim; ++a) {
                if (pos[a] < 0) {
                  step[a] = -1;
                  pos[a] += root;
                } else if (pos[a] >= root) {
                  step[a] = 1;
                  pos[a] -= root;
                }
              }
              tree_id_t target = t;
              if (step[0] != 0 || step[1] != 0 || step[2] != 0) {
                target = conn_.tree_offset_neighbor(t, step[0], step[1],
                                                    step[2]);
              }
              if (target < 0) {
                FaceInfo<R> info;
                info.tree[0] = t;
                info.quad[0] = span[i];
                info.leaf_index[0] = src[i];
                info.face[0] = f;
                info.is_boundary = true;
                cb(info);
                continue;
              }
              const CanonicalQuadrant nc{pos[0], pos[1], pos[2],
                                         static_cast<int>(l)};
              if (target != t) {
                bucket_for(target).push_back(
                    FaceKey{from_canonical<R>(nc), t, src[i], f});
                continue;
              }
              const auto enclosing = resolve_enclosing_grid(ti, grid, nc);
              if (!enclosing.has_value()) {
                continue;  // neighbor region finer: it emits toward us
              }
              const quad_t& leaf = tree[*enclosing];
              const int ll = R::level(leaf);
              FaceInfo<R> info;
              info.tree[0] = t;
              info.quad[0] = span[i];
              info.leaf_index[0] = src[i];
              info.face[0] = f;
              if (ll == static_cast<int>(l)) {
                if (global_index(t, src[i]) >
                    global_index(t, *enclosing)) {
                  continue;  // equal-size pair: the lower side emits
                }
              } else {
                info.is_hanging = true;  // we are the finer side
              }
              info.tree[1] = t;
              info.quad[1] = leaf;
              info.leaf_index[1] = *enclosing;
              info.face[1] = f ^ 1;
              cb(info);
            }
          }
        }
      });
      auto& tb = buckets[ti];
      for (auto& cbk : chunk_buckets) {
        for (FaceBucket& bk : cbk) {
          const auto it = std::find_if(
              tb.begin(), tb.end(),
              [&](const FaceBucket& o) { return o.tree == bk.tree; });
          if (it == tb.end()) {
            tb.push_back(std::move(bk));
          } else {
            it->keys.insert(it->keys.end(), bk.keys.begin(), bk.keys.end());
          }
        }
      }
    });
    std::vector<std::vector<const std::vector<FaceKey>*>> incoming(nt);
    for (const auto& per_source : buckets) {
      for (const FaceBucket& bk : per_source) {
        incoming[static_cast<std::size_t>(bk.tree)].push_back(&bk.keys);
      }
    }
    parallel_over(nt, [&](std::size_t ti) {
      if (incoming[ti].empty()) {
        return;
      }
      const auto& tree = trees_[ti];
      const auto n = static_cast<std::ptrdiff_t>(tree.size());
      std::size_t total = 0;
      for (const auto* keys : incoming[ti]) {
        total += keys->size();
      }
      std::vector<FaceKey> keys;
      keys.reserve(total);
      for (const auto* part : incoming[ti]) {
        keys.insert(keys.end(), part->begin(), part->end());
      }
      std::sort(keys.begin(), keys.end(),
                [](const FaceKey& x, const FaceKey& y) {
                  return R::less(x.key, y.key);
                });
      parallel_chunks(keys.size(), grain,
                      [&](std::size_t, std::size_t b, std::size_t e) {
        std::ptrdiff_t j =
            std::upper_bound(tree.begin(), tree.end(), keys[b].key,
                             RepLess<R>{}) -
            tree.begin() - 1;
        for (std::size_t kk = b; kk < e; ++kk) {
          const FaceKey& fk = keys[kk];
          while (j + 1 < n &&
                 !R::less(fk.key, tree[static_cast<std::size_t>(j + 1)])) {
            ++j;
          }
          if (j < 0) {
            continue;
          }
          const quad_t& leaf = tree[static_cast<std::size_t>(j)];
          if (!R::equal(leaf, fk.key) && !R::is_ancestor(leaf, fk.key)) {
            continue;  // neighbor region finer: it emits toward us
          }
          const quad_t& srcq =
              trees_[static_cast<std::size_t>(fk.src_tree)][fk.src_leaf];
          const int lq = R::level(srcq);
          const int ll = R::level(leaf);
          FaceInfo<R> info;
          info.tree[0] = fk.src_tree;
          info.quad[0] = srcq;
          info.leaf_index[0] = fk.src_leaf;
          info.face[0] = fk.face;
          if (ll == lq) {
            if (global_index(fk.src_tree, fk.src_leaf) >
                global_index(static_cast<tree_id_t>(ti),
                             static_cast<std::size_t>(j))) {
              continue;  // equal-size pair: the lower side emits
            }
          } else {
            info.is_hanging = true;  // source is the finer side
          }
          info.tree[1] = static_cast<tree_id_t>(ti);
          info.quad[1] = leaf;
          info.leaf_index[1] = static_cast<std::size_t>(j);
          info.face[1] = fk.face ^ 1;
          cb(info);
        }
      });
    });
  }

  // ----------------------------------------------------- point search core

  /// Representation key of a query point: the max_level quadrant whose
  /// half-open box contains the point. Masking the coordinates down to
  /// max_level alignment keeps from_canonical's grid precondition.
  [[nodiscard]] quad_t point_key(const PointQuery& p) const {
    const std::int64_t mask =
        ~((std::int64_t{1} << (kCanonicalLevel - R::max_level)) - 1);
    return from_canonical<R>(
        CanonicalQuadrant{p.x & mask, p.y & mask, p.z & mask, R::max_level});
  }

  /// Scalar point location: the containing leaf is the last leaf <= the
  /// point's max_level key in curve order (an enclosure relation, so
  /// upper_bound - 1; a complete tree always contains the point, hence
  /// the assert).
  [[nodiscard]] gidx_t search_point_scalar(const PointQuery& p) const {
    const auto& tree = trees_[static_cast<std::size_t>(p.tree)];
    const quad_t key = point_key(p);
    const auto it =
        std::upper_bound(tree.begin(), tree.end(), key, RepLess<R>{});
    assert(it != tree.begin());
    return global_index(p.tree,
                        static_cast<std::size_t>(it - tree.begin()) - 1);
  }

  Connectivity conn_;
  par::Communicator comm_;
  std::vector<std::vector<quad_t>> trees_;
  bool payload_enabled_ = false;
  std::vector<std::vector<std::uint64_t>> payloads_;
  std::vector<gidx_t> tree_offsets_;        ///< size num_trees()+1
  std::vector<std::int64_t> rank_offsets_;  ///< size num_ranks()+1
};

}  // namespace qforest

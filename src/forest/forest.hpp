#pragma once
/// \file forest.hpp
/// \brief Forest of octrees: linear leaf storage + high-level AMR algorithms.
///
/// This is the p4est substrate the paper's quadrant representations plug
/// into: trees store only their leaves, sorted along the space-filling
/// curve ("linear octree", paper §2), and the high-level algorithms —
/// new/refine/coarsen/balance/partition/ghost/search/iterate — are written
/// once against the QuadrantRepresentation concept, so switching the
/// low-level encoding never touches this file. That is precisely the
/// abstraction the paper proposes ("to change between multiple sets of
/// quadrant representations ... using the same high-level algorithm").
///
/// Parallel semantics: the forest holds the global leaf sequence in shared
/// memory and maintains a partition of the global Morton order into
/// contiguous rank ranges (DESIGN.md §4 explains this MPI substitution).

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/canonical.hpp"
#include "core/rep_traits.hpp"
#include "core/types.hpp"
#include "forest/connectivity.hpp"
#include "par/communicator.hpp"

namespace qforest {

/// Which neighbor relations the 2:1 balance constraint covers.
enum class BalanceKind {
  kFace,   ///< across faces only
  kEdge,   ///< faces + edges (3D; equals kFace in 2D)
  kFull    ///< faces + edges + corners
};

/// Ghost layer of one simulated rank: remote leaves adjacent to the
/// rank's own leaves, sorted by (tree, Morton order).
template <class R>
struct GhostLayer {
  struct Entry {
    tree_id_t tree;
    typename R::quad_t quad;
    int owner;            ///< owning rank
    gidx_t global_index;  ///< position in the global leaf sequence
  };
  std::vector<Entry> entries;
};

/// Information passed to the face iteration callback.
template <class R>
struct FaceInfo {
  /// side 0 is the emitting leaf; side 1 the neighbor (absent on boundary).
  tree_id_t tree[2] = {-1, -1};
  typename R::quad_t quad[2] = {};
  std::size_t leaf_index[2] = {0, 0};  ///< index within the owning tree
  int face[2] = {-1, -1};              ///< face id as seen from each side
  bool is_boundary = false;            ///< physical domain boundary
  bool is_hanging = false;             ///< side 0 finer than side 1
};

/// A forest of axis-aligned unit trees storing leaf quadrants of
/// representation \p R.
template <class R>
  requires QuadrantRepresentation<R>
class Forest {
 public:
  using rep = R;
  using quad_t = typename R::quad_t;
  static constexpr int dim = R::dim;
  using dims = DimConstants<dim>;

  // ---------------------------------------------------------------- creation

  /// Forest of root quadrants: one leaf per tree.
  static Forest new_root(Connectivity conn, int num_ranks = 1) {
    return new_uniform(std::move(conn), 0, num_ranks);
  }

  /// Uniformly refined forest at \p level, built per tree by repeated
  /// Morton construction (this is the workload of the paper's §3.2 memory
  /// experiment).
  static Forest new_uniform(Connectivity conn, int level, int num_ranks = 1) {
    if (conn.dim() != dim) {
      throw std::invalid_argument("Forest: connectivity dimension mismatch");
    }
    if (level < 0 || level > R::max_level || dim * level >= 64) {
      throw std::invalid_argument("Forest: level out of range");
    }
    Forest f(std::move(conn), num_ranks);
    const auto n = static_cast<std::uint64_t>(1)
                   << (static_cast<unsigned>(dim * level));
    for (auto& tree : f.trees_) {
      tree.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        tree.push_back(R::morton_quadrant(i, level));
      }
    }
    f.rebuild_offsets();
    f.partition();
    return f;
  }

  // ---------------------------------------------------------------- accessors

  [[nodiscard]] const Connectivity& connectivity() const { return conn_; }
  [[nodiscard]] tree_id_t num_trees() const {
    return static_cast<tree_id_t>(trees_.size());
  }
  [[nodiscard]] int num_ranks() const { return comm_.size(); }

  /// Global number of leaves over all trees.
  [[nodiscard]] gidx_t num_quadrants() const { return tree_offsets_.back(); }

  /// Leaves of tree \p t in Morton order.
  [[nodiscard]] const std::vector<quad_t>& tree_quadrants(tree_id_t t) const {
    return trees_[static_cast<std::size_t>(t)];
  }

  /// Position of leaf (t, i) in the global leaf sequence.
  [[nodiscard]] gidx_t global_index(tree_id_t t, std::size_t i) const {
    return tree_offsets_[static_cast<std::size_t>(t)] +
           static_cast<gidx_t>(i);
  }

  /// Rank owning global leaf index \p g under the current partition.
  [[nodiscard]] int owner_rank(gidx_t g) const {
    return par::Communicator::owner_of(rank_offsets_, g);
  }

  /// Global index range [first, last) owned by \p rank.
  [[nodiscard]] std::pair<gidx_t, gidx_t> rank_range(int rank) const {
    return {rank_offsets_[static_cast<std::size_t>(rank)],
            rank_offsets_[static_cast<std::size_t>(rank) + 1]};
  }

  /// Map a global leaf index to (tree, index-within-tree).
  [[nodiscard]] std::pair<tree_id_t, std::size_t> locate(gidx_t g) const {
    assert(g >= 0 && g < num_quadrants());
    const auto it =
        std::upper_bound(tree_offsets_.begin(), tree_offsets_.end(), g);
    const auto t = static_cast<tree_id_t>(it - tree_offsets_.begin()) - 1;
    return {t, static_cast<std::size_t>(g - tree_offsets_[
                   static_cast<std::size_t>(t)])};
  }

  /// Number of leaves at refinement level \p l.
  [[nodiscard]] gidx_t count_level(int l) const {
    gidx_t n = 0;
    for (const auto& tree : trees_) {
      for (const quad_t& q : tree) {
        n += R::level(q) == l ? 1 : 0;
      }
    }
    return n;
  }

  /// Finest level present in the forest.
  [[nodiscard]] int max_level_used() const {
    int m = 0;
    for (const auto& tree : trees_) {
      for (const quad_t& q : tree) {
        m = std::max(m, R::level(q));
      }
    }
    return m;
  }

  // ---------------------------------------------------------------- refine

  /// Refine leaves for which \p should_refine(tree, quad) returns true.
  /// With \p recursive, children are re-examined until the callback
  /// declines or max_level is reached (p4est refine semantics).
  template <class Fn>
  void refine(bool recursive, Fn&& should_refine) {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      auto& tree = trees_[static_cast<std::size_t>(t)];
      std::vector<quad_t> out;
      out.reserve(tree.size());
      std::vector<std::uint64_t> out_payload;
      std::vector<quad_t> stack;
      for (std::size_t qi = 0; qi < tree.size(); ++qi) {
        const quad_t& q = tree[qi];
        const std::uint64_t pl =
            payload_enabled_ ? payloads_[static_cast<std::size_t>(t)][qi]
                             : 0;
        if (R::level(q) >= R::max_level || !should_refine(t, q)) {
          out.push_back(q);
          if (payload_enabled_) {
            out_payload.push_back(pl);
          }
          continue;
        }
        stack.clear();
        stack.push_back(q);
        while (!stack.empty()) {
          const quad_t cur = stack.back();
          stack.pop_back();
          const bool split = R::level(cur) < R::max_level &&
                             (R::equal(cur, q) ||
                              (recursive && should_refine(t, cur)));
          if (!split) {
            out.push_back(cur);
            if (payload_enabled_) {
              out_payload.push_back(pl);  // children inherit the parent's
            }
            continue;
          }
          // Push children in reverse so they pop in Morton order.
          for (int c = dims::num_children - 1; c >= 0; --c) {
            stack.push_back(R::child(cur, c));
          }
        }
      }
      tree = std::move(out);
      if (payload_enabled_) {
        payloads_[static_cast<std::size_t>(t)] = std::move(out_payload);
      }
    }
    rebuild_offsets();
    partition();
  }

  // ---------------------------------------------------------------- coarsen

  /// Replace complete sibling families accepted by
  /// \p should_coarsen(tree, family-pointer) with their parent. With
  /// \p recursive, passes repeat until no family is coarsened.
  template <class Fn>
  void coarsen(bool recursive, Fn&& should_coarsen) {
    bool changed_any = true;
    while (changed_any) {
      changed_any = false;
      for (tree_id_t t = 0; t < num_trees(); ++t) {
        auto& tree = trees_[static_cast<std::size_t>(t)];
        std::vector<quad_t> out;
        out.reserve(tree.size());
        std::vector<std::uint64_t> out_payload;
        std::size_t i = 0;
        while (i < tree.size()) {
          if (is_family_at(tree, i) &&
              should_coarsen(t, tree.data() + i)) {
            out.push_back(R::parent(tree[i]));
            if (payload_enabled_) {
              // The parent takes the first child's payload.
              out_payload.push_back(
                  payloads_[static_cast<std::size_t>(t)][i]);
            }
            i += dims::num_children;
            changed_any = true;
          } else {
            out.push_back(tree[i]);
            if (payload_enabled_) {
              out_payload.push_back(
                  payloads_[static_cast<std::size_t>(t)][i]);
            }
            ++i;
          }
        }
        tree = std::move(out);
        if (payload_enabled_) {
          payloads_[static_cast<std::size_t>(t)] = std::move(out_payload);
        }
      }
      if (!recursive) {
        break;
      }
    }
    rebuild_offsets();
    partition();
  }

  // ---------------------------------------------------------------- balance

  /// Enforce the 2:1 level condition across the chosen neighbor relations
  /// (including across tree faces) by iterated splitting until fixpoint.
  void balance(BalanceKind kind = BalanceKind::kFull) {
    bool changed = true;
    while (changed) {
      changed = false;
      // Collect split requests per tree, then apply them in one sweep.
      std::vector<std::vector<std::uint8_t>> split(trees_.size());
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        split[t].assign(trees_[t].size(), 0);
      }
      for (tree_id_t t = 0; t < num_trees(); ++t) {
        const auto& tree = trees_[static_cast<std::size_t>(t)];
        for (const quad_t& q : tree) {
          const int lvl = R::level(q);
          if (lvl < 2) {
            continue;  // neighbors can never be two levels coarser
          }
          for_each_neighbor_offset(kind, [&](int dx, int dy, int dz) {
            const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
            if (!nb.has_value()) {
              return;  // physical boundary
            }
            const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
            if (enclosing.has_value()) {
              const quad_t& leaf =
                  trees_[static_cast<std::size_t>(nb->tree)][*enclosing];
              if (R::level(leaf) < lvl - 1) {
                split[static_cast<std::size_t>(nb->tree)][*enclosing] = 1;
              }
            }
          });
        }
      }
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        if (std::find(split[t].begin(), split[t].end(), 1) ==
            split[t].end()) {
          continue;
        }
        changed = true;
        std::vector<quad_t> out;
        out.reserve(trees_[t].size() + dims::num_children);
        std::vector<std::uint64_t> out_payload;
        for (std::size_t i = 0; i < trees_[t].size(); ++i) {
          if (!split[t][i]) {
            out.push_back(trees_[t][i]);
            if (payload_enabled_) {
              out_payload.push_back(payloads_[t][i]);
            }
            continue;
          }
          for (int c = 0; c < dims::num_children; ++c) {
            out.push_back(R::child(trees_[t][i], c));
            if (payload_enabled_) {
              out_payload.push_back(payloads_[t][i]);
            }
          }
        }
        trees_[t] = std::move(out);
        if (payload_enabled_) {
          payloads_[t] = std::move(out_payload);
        }
      }
    }
    rebuild_offsets();
    partition();
  }

  /// Check the 2:1 condition without modifying the forest.
  [[nodiscard]] bool is_balanced(BalanceKind kind = BalanceKind::kFull) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      for (const quad_t& q : trees_[static_cast<std::size_t>(t)]) {
        const int lvl = R::level(q);
        if (lvl < 2) {
          continue;
        }
        bool ok = true;
        for_each_neighbor_offset(kind, [&](int dx, int dy, int dz) {
          if (!ok) {
            return;
          }
          const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
          if (!nb.has_value()) {
            return;
          }
          const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
          if (enclosing.has_value()) {
            const quad_t& leaf =
                trees_[static_cast<std::size_t>(nb->tree)][*enclosing];
            if (R::level(leaf) < lvl - 1) {
              ok = false;
            }
          }
        });
        if (!ok) {
          return false;
        }
      }
    }
    return true;
  }

  // ---------------------------------------------------------------- partition

  /// Repartition the global Morton order into contiguous rank ranges with
  /// near-equal total weight; \p weight(tree, quad) must be positive.
  template <class Fn>
  void partition_weighted(Fn&& weight) {
    const gidx_t n = num_quadrants();
    const int p = comm_.size();
    std::vector<std::int64_t> prefix;
    prefix.reserve(static_cast<std::size_t>(n) + 1);
    prefix.push_back(0);
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      for (const quad_t& q : trees_[static_cast<std::size_t>(t)]) {
        const std::int64_t w = weight(t, q);
        assert(w > 0 && "partition weights must be positive");
        prefix.push_back(prefix.back() + w);
      }
    }
    const std::int64_t total = prefix.back();
    rank_offsets_.assign(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 1; r < p; ++r) {
      // First quadrant whose preceding cumulative weight reaches r/p of
      // the total (p4est_partition_cut_uint64 semantics).
      const auto target = static_cast<std::int64_t>(
          (static_cast<__int128>(total) * r + p - 1) / p);
      const auto it =
          std::lower_bound(prefix.begin(), prefix.end(), target);
      rank_offsets_[static_cast<std::size_t>(r)] =
          static_cast<gidx_t>(it - prefix.begin());
      if (rank_offsets_[static_cast<std::size_t>(r)] > n) {
        rank_offsets_[static_cast<std::size_t>(r)] = n;
      }
    }
    rank_offsets_.back() = n;
    for (int r = 1; r <= p; ++r) {
      rank_offsets_[static_cast<std::size_t>(r)] =
          std::max(rank_offsets_[static_cast<std::size_t>(r)],
                   rank_offsets_[static_cast<std::size_t>(r) - 1]);
    }
  }

  /// Uniform repartition (weight 1 per leaf).
  void partition() {
    rank_offsets_ = comm_.block_distribution(num_quadrants());
  }

  // ---------------------------------------------------------------- ghost

  /// Remote leaves adjacent (faces, edges and corners) to \p rank's own.
  [[nodiscard]] GhostLayer<R> ghost_layer(int rank) const {
    GhostLayer<R> ghost;
    const auto [first, last] = rank_range(rank);
    std::vector<gidx_t> seen;
    for (gidx_t g = first; g < last; ++g) {
      const auto [t, i] = locate(g);
      const quad_t& q = trees_[static_cast<std::size_t>(t)][i];
      for_each_neighbor_offset(BalanceKind::kFull,
                               [&](int dx, int dy, int dz) {
        const auto nb = neighbor_at_offset(t, q, dx, dy, dz);
        if (!nb.has_value()) {
          return;
        }
        collect_touching_leaves(*nb, t, q, [&](std::size_t leaf_idx) {
          const gidx_t lg = global_index(nb->tree, leaf_idx);
          if (lg < first || lg >= last) {
            seen.push_back(lg);
          }
        });
      });
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    ghost.entries.reserve(seen.size());
    for (gidx_t g : seen) {
      const auto [t, i] = locate(g);
      ghost.entries.push_back({t, trees_[static_cast<std::size_t>(t)][i],
                               owner_rank(g), g});
    }
    return ghost;
  }

  /// Mirror leaves of \p rank: the rank's own leaves that appear in some
  /// other rank's ghost layer (the data it must send in an exchange).
  /// Returned as sorted global indices.
  [[nodiscard]] std::vector<gidx_t> mirrors(int rank) const {
    std::vector<gidx_t> out;
    const auto [first, last] = rank_range(rank);
    for (int r = 0; r < comm_.size(); ++r) {
      if (r == rank) {
        continue;
      }
      for (const auto& e : ghost_layer(r).entries) {
        if (e.global_index >= first && e.global_index < last) {
          out.push_back(e.global_index);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Simulated ghost data exchange (p4est_ghost_exchange_data): fill each
  /// ghost entry of \p rank with the owner's payload. Requires the
  /// payload channel. Returns one value per ghost entry, in ghost order.
  [[nodiscard]] std::vector<std::uint64_t> ghost_exchange(
      int rank, const GhostLayer<R>& ghost) const {
    assert(payload_enabled_);
    std::vector<std::uint64_t> data;
    data.reserve(ghost.entries.size());
    for (const auto& e : ghost.entries) {
      const auto [t, i] = locate(e.global_index);
      data.push_back(payloads_[static_cast<std::size_t>(t)][i]);
    }
    (void)rank;
    return data;
  }

  // ---------------------------------------------------------------- search

  /// Top-down traversal per tree (p4est_search): \p cb(tree, ancestor,
  /// first, last, is_leaf) sees the leaf range [first, last) covered by
  /// the ancestor and prunes the descent by returning false.
  template <class Fn>
  void search(Fn&& cb) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      if (!tree.empty()) {
        search_recursion(t, R::root(), 0, tree.size(), cb);
      }
    }
  }

  // ---------------------------------------------------------------- iterate

  /// Visit every face between leaves exactly once, plus every physical
  /// boundary face. Works on non-2:1-balanced forests as well (the
  /// paper's future-work item 4): hanging pairs are emitted from the
  /// finer side, equal-size pairs from the globally lower leaf.
  template <class Fn>
  void iterate_faces(Fn&& cb) const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < tree.size(); ++i) {
        const quad_t& q = tree[i];
        for (int f = 0; f < dims::num_faces; ++f) {
          emit_face(t, i, q, f, cb);
        }
      }
    }
  }

  // ---------------------------------------------------------------- checks

  /// Full structural validation: every leaf valid and inside its tree,
  /// per-tree arrays sorted strictly, non-overlapping, and complete
  /// (leaves cover each tree exactly).
  [[nodiscard]] bool is_valid() const {
    for (tree_id_t t = 0; t < num_trees(); ++t) {
      const auto& tree = trees_[static_cast<std::size_t>(t)];
      if (tree.empty()) {
        return false;
      }
      for (const quad_t& q : tree) {
        if (!R::is_valid(q) || !R::inside_root(q)) {
          return false;
        }
      }
      for (std::size_t i = 0; i + 1 < tree.size(); ++i) {
        if (!R::less(tree[i], tree[i + 1]) ||
            R::overlaps(tree[i], tree[i + 1])) {
          return false;
        }
      }
      if (!is_complete_range(R::root(), tree.data(),
                             tree.data() + tree.size())) {
        return false;
      }
    }
    if (rank_offsets_.front() != 0 || rank_offsets_.back() != num_quadrants()) {
      return false;
    }
    return std::is_sorted(rank_offsets_.begin(), rank_offsets_.end());
  }

  /// Replace the entire leaf storage (used by deserialization and by
  /// tests constructing meshes directly). The caller provides one sorted
  /// leaf vector per tree; offsets and the partition are rebuilt. Call
  /// is_valid() afterwards to verify structural soundness.
  void replace_leaves(std::vector<std::vector<quad_t>> trees) {
    if (trees.size() != trees_.size()) {
      throw std::invalid_argument(
          "Forest::replace_leaves: tree count mismatch");
    }
    trees_ = std::move(trees);
    if (payload_enabled_) {
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        payloads_[t].assign(trees_[t].size(), 0);
      }
    }
    rebuild_offsets();
    partition();
  }

  // ---------------------------------------------------------------- payload

  /// Enable the per-leaf payload channel (8 bytes per leaf, the standard
  /// representation's historic user data). The compact encodings carry no
  /// payload bits, so the forest stores payloads in a parallel side array
  /// (structure-of-arrays) and keeps it synchronized across refine (children
  /// inherit the parent's value), coarsen (the parent takes the first
  /// child's value) and balance.
  void enable_payload(std::uint64_t initial = 0) {
    payload_enabled_ = true;
    payloads_.resize(trees_.size());
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      payloads_[t].assign(trees_[t].size(), initial);
    }
  }

  [[nodiscard]] bool payload_enabled() const { return payload_enabled_; }

  /// Payload array of tree \p t, parallel to tree_quadrants(t).
  [[nodiscard]] const std::vector<std::uint64_t>& tree_payloads(
      tree_id_t t) const {
    assert(payload_enabled_);
    return payloads_[static_cast<std::size_t>(t)];
  }

  /// Mutable payload of leaf (t, i).
  std::uint64_t& payload(tree_id_t t, std::size_t i) {
    assert(payload_enabled_);
    return payloads_[static_cast<std::size_t>(t)][i];
  }

  // ------------------------------------------------------------ neighbor API

  /// Result of a neighbor lookup: the neighbor's tree and quadrant plus
  /// the tree-grid steps taken across tree faces (0 when staying inside).
  struct NeighborLookup {
    tree_id_t tree;
    quad_t quad;
    std::array<int, 3> tree_step;
  };

  /// Neighbor of \p q at its own level displaced by (dx,dy,dz) quadrant
  /// lengths, following brick connectivity across tree faces. Returns
  /// std::nullopt at a physical boundary.
  [[nodiscard]] std::optional<NeighborLookup> neighbor_at_offset(
      tree_id_t t, const quad_t& q, int dx, int dy, int dz) const {
    CanonicalQuadrant c = to_canonical<R>(q);
    const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    std::int64_t pos[3] = {c.x + dx * h, c.y + dy * h, c.z + dz * h};
    std::array<int, 3> tree_step = {0, 0, 0};
    for (int a = 0; a < dim; ++a) {
      if (pos[a] < 0) {
        tree_step[a] = -1;
        pos[a] += root;
      } else if (pos[a] >= root) {
        tree_step[a] = 1;
        pos[a] -= root;
      }
    }
    tree_id_t nt = t;
    if (tree_step[0] != 0 || tree_step[1] != 0 || tree_step[2] != 0) {
      nt = conn_.tree_offset_neighbor(t, tree_step[0], tree_step[1],
                                      tree_step[2]);
      if (nt < 0) {
        return std::nullopt;
      }
    }
    CanonicalQuadrant nc{pos[0], pos[1], pos[2], c.level};
    return NeighborLookup{nt, from_canonical<R>(nc), tree_step};
  }

  /// Index of the unique leaf in tree \p t that is an ancestor of or equal
  /// to \p q, or std::nullopt when the region of \p q is covered by finer
  /// leaves instead.
  [[nodiscard]] std::optional<std::size_t> find_enclosing_leaf(
      tree_id_t t, const quad_t& q) const {
    const auto& tree = trees_[static_cast<std::size_t>(t)];
    // First leaf strictly after q: the candidate enclosure sits before it.
    const auto it =
        std::upper_bound(tree.begin(), tree.end(), q, RepLess<R>{});
    if (it == tree.begin()) {
      return std::nullopt;
    }
    const auto idx = static_cast<std::size_t>(it - tree.begin()) - 1;
    const quad_t& leaf = tree[idx];
    if (R::equal(leaf, q) || R::is_ancestor(leaf, q)) {
      return idx;
    }
    return std::nullopt;
  }

 private:
  explicit Forest(Connectivity conn, int num_ranks)
      : conn_(std::move(conn)),
        comm_(num_ranks),
        trees_(static_cast<std::size_t>(conn_.num_trees())) {
    rebuild_offsets();
    partition();
  }

  /// True when leaves [i, i + 2^d) form a complete sibling family.
  bool is_family_at(const std::vector<quad_t>& tree, std::size_t i) const {
    if (i + dims::num_children > tree.size()) {
      return false;
    }
    const quad_t& first = tree[i];
    if (R::level(first) == 0 || R::child_id(first) != 0) {
      return false;
    }
    const quad_t p = R::parent(first);
    for (int c = 1; c < dims::num_children; ++c) {
      const quad_t& sib = tree[i + static_cast<std::size_t>(c)];
      if (R::level(sib) != R::level(first) || R::child_id(sib) != c ||
          !R::equal(R::parent(sib), p)) {
        return false;
      }
    }
    return true;
  }

  void rebuild_offsets() {
    tree_offsets_.assign(trees_.size() + 1, 0);
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      tree_offsets_[t + 1] =
          tree_offsets_[t] + static_cast<gidx_t>(trees_[t].size());
    }
  }

  /// Invoke \p fn for every neighbor offset vector of the balance kind.
  template <class Fn>
  static void for_each_neighbor_offset(BalanceKind kind, Fn&& fn) {
    const int zlo = dim == 3 ? -1 : 0;
    const int zhi = dim == 3 ? 1 : 0;
    for (int dz = zlo; dz <= zhi; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nz = (dx != 0) + (dy != 0) + (dz != 0);
          if (nz == 0) {
            continue;
          }
          if (kind == BalanceKind::kFace && nz > 1) {
            continue;
          }
          if (kind == BalanceKind::kEdge && nz > 2) {
            continue;
          }
          fn(dx, dy, dz);
        }
      }
    }
  }

  /// Call \p fn(leaf_index) for every leaf of the neighbor lookup's tree
  /// whose domain touches the reference quadrant (\p t, \p ref) and lies
  /// within the same-level neighbor region.
  template <class Fn>
  void collect_touching_leaves(const NeighborLookup& nb, tree_id_t t,
                               const quad_t& ref, Fn&& fn) const {
    const auto& tree = trees_[static_cast<std::size_t>(nb.tree)];
    const auto enclosing = find_enclosing_leaf(nb.tree, nb.quad);
    if (enclosing.has_value()) {
      fn(*enclosing);
      return;
    }
    // The region of the neighbor is covered by finer leaves: they form a
    // contiguous run starting at the first leaf >= nb.quad. Translate the
    // reference into the neighbor tree's coordinate frame so the touch
    // test works across tree faces too.
    const auto it =
        std::lower_bound(tree.begin(), tree.end(), nb.quad, RepLess<R>{});
    CanonicalQuadrant cref = to_canonical<R>(ref);
    const std::int64_t root = std::int64_t{1} << kCanonicalLevel;
    cref.x -= nb.tree_step[0] * root;
    cref.y -= nb.tree_step[1] * root;
    cref.z -= nb.tree_step[2] * root;
    for (auto cur = it; cur != tree.end(); ++cur) {
      if (!R::is_ancestor(nb.quad, *cur)) {
        break;
      }
      if (nb.tree != t || !R::equal(*cur, ref)) {
        if (canonical_touch(to_canonical<R>(*cur), cref)) {
          fn(static_cast<std::size_t>(cur - tree.begin()));
        }
      }
    }
  }

  /// Whether two canonical domains touch (share at least a point); the
  /// caller is responsible for expressing both in the same frame.
  static bool canonical_touch(const CanonicalQuadrant& a,
                              const CanonicalQuadrant& b) {
    const std::int64_t ha = std::int64_t{1} << (kCanonicalLevel - a.level);
    const std::int64_t hb = std::int64_t{1} << (kCanonicalLevel - b.level);
    const std::int64_t pa[3] = {a.x, a.y, a.z};
    const std::int64_t pb[3] = {b.x, b.y, b.z};
    for (int i = 0; i < dim; ++i) {
      if (pa[i] + ha < pb[i] || pb[i] + hb < pa[i]) {
        return false;
      }
    }
    return true;
  }

  /// Recursive completeness test of a leaf span against an ancestor.
  bool is_complete_range(const quad_t& anc, const quad_t* begin,
                         const quad_t* end) const {
    if (begin == end) {
      return false;  // a region left uncovered
    }
    if (end - begin == 1 && R::equal(*begin, anc)) {
      return true;
    }
    if (R::level(anc) >= R::max_level) {
      return false;
    }
    const quad_t* pos = begin;
    for (int c = 0; c < dims::num_children; ++c) {
      const quad_t ch = R::child(anc, c);
      const quad_t* stop =
          std::partition_point(pos, end, [&](const quad_t& leaf) {
            return R::equal(leaf, ch) || R::is_ancestor(ch, leaf);
          });
      if (!is_complete_range(ch, pos, stop)) {
        return false;
      }
      pos = stop;
    }
    return pos == end;
  }

  template <class Fn>
  bool search_recursion(tree_id_t t, const quad_t& anc, std::size_t begin,
                        std::size_t end, Fn& cb) const {
    const auto& tree = trees_[static_cast<std::size_t>(t)];
    const bool is_leaf =
        end - begin == 1 && R::equal(tree[begin], anc);
    if (!cb(t, anc, begin, end, is_leaf) || is_leaf) {
      return true;
    }
    if (R::level(anc) >= R::max_level) {
      return true;
    }
    std::size_t pos = begin;
    for (int c = 0; c < dims::num_children && pos < end; ++c) {
      const quad_t ch = R::child(anc, c);
      const auto stop = static_cast<std::size_t>(
          std::partition_point(tree.begin() + static_cast<std::ptrdiff_t>(pos),
                               tree.begin() + static_cast<std::ptrdiff_t>(end),
                               [&](const quad_t& leaf) {
                                 return R::equal(leaf, ch) ||
                                        R::is_ancestor(ch, leaf);
                               }) -
          tree.begin());
      if (stop > pos) {
        search_recursion(t, ch, pos, stop, cb);
      }
      pos = stop;
    }
    return true;
  }

  template <class Fn>
  void emit_face(tree_id_t t, std::size_t i, const quad_t& q, int f,
                 Fn& cb) const {
    FaceInfo<R> info;
    info.tree[0] = t;
    info.quad[0] = q;
    info.leaf_index[0] = i;
    info.face[0] = f;

    const int axis = f >> 1;
    const int dirs[3] = {axis == 0 ? ((f & 1) ? 1 : -1) : 0,
                         axis == 1 ? ((f & 1) ? 1 : -1) : 0,
                         axis == 2 ? ((f & 1) ? 1 : -1) : 0};
    const auto nb = neighbor_at_offset(t, q, dirs[0], dirs[1], dirs[2]);
    if (!nb.has_value()) {
      info.is_boundary = true;
      cb(info);
      return;
    }
    const auto enclosing = find_enclosing_leaf(nb->tree, nb->quad);
    if (!enclosing.has_value()) {
      // Neighbor region is finer: those leaves emit toward us instead.
      return;
    }
    const auto& ntree = trees_[static_cast<std::size_t>(nb->tree)];
    const quad_t& leaf = ntree[*enclosing];
    const int lq = R::level(q);
    const int ll = R::level(leaf);
    if (ll == lq) {
      // Equal-size pair: the globally lower side emits.
      if (global_index(t, i) > global_index(nb->tree, *enclosing)) {
        return;
      }
    } else if (ll > lq) {
      return;  // cannot happen for an enclosing leaf
    } else {
      info.is_hanging = true;  // we are the finer side
    }
    info.tree[1] = nb->tree;
    info.quad[1] = leaf;
    info.leaf_index[1] = *enclosing;
    info.face[1] = f ^ 1;
    cb(info);
  }

  Connectivity conn_;
  par::Communicator comm_;
  std::vector<std::vector<quad_t>> trees_;
  bool payload_enabled_ = false;
  std::vector<std::vector<std::uint64_t>> payloads_;
  std::vector<gidx_t> tree_offsets_;        ///< size num_trees()+1
  std::vector<std::int64_t> rank_offsets_;  ///< size num_ranks()+1
};

}  // namespace qforest

#pragma once
/// \file point_query.hpp
/// \brief PointQuery: one point of a batched multi-point search, shared by
/// Forest<R>::search_points and the VForest facade.

#include <cstdint>

#include "forest/connectivity.hpp"

namespace qforest {

/// One query point of a batched point location (`search_points`).
/// Coordinates live on the canonical 2^60 grid (core/canonical.hpp), the
/// representation-independent coordinate space, so the same query works
/// against every representation: valid queries satisfy `tree` in
/// [0, num_trees) and x, y, z in [0, 2^60) (z must be 0 in 2D).
///
/// Leaves are half-open boxes [origin, origin + extent) per axis: a point
/// on a shared face resolves deterministically to the leaf on the upper
/// side (the one whose box contains the point under that convention).
struct PointQuery {
  tree_id_t tree = 0;
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
};

}  // namespace qforest

#pragma once
/// \file vforest.hpp
/// \brief VForest: high-level AMR algorithms over the *runtime* virtual
/// quadrant interface.
///
/// The paper's conclusion describes "a new branch of high-level algorithms
/// that operate on virtualized quadrants" so the representation becomes a
/// run-time choice (configuration file, CLI flag) instead of a template
/// parameter. VForest is that branch: a non-template forest working purely
/// through VirtualQuadrantOps. It trades per-operation virtual dispatch
/// (quantified by bench_virtual) for a single compiled instantiation.
///
/// The supported algorithm subset mirrors Forest<R>: uniform creation,
/// refine, coarsen, 2:1 balance via the same neighborhood logic, search,
/// and validity checking; test_vforest.cpp verifies it produces meshes
/// canonically identical to the template forest.

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/virtual_ops.hpp"
#include "forest/connectivity.hpp"
#include "forest/point_query.hpp"

namespace qforest {

/// Forest of octrees with a run-time-selected quadrant representation.
class VForest {
 public:
  using refine_fn = std::function<bool(tree_id_t, const VQuad&)>;
  using coarsen_fn = std::function<bool(tree_id_t, const VQuad*)>;
  /// search callback: (tree, ancestor, first, last, is_leaf) -> descend?
  using search_fn = std::function<bool(tree_id_t, const VQuad&, std::size_t,
                                       std::size_t, bool)>;

  /// Uniformly refined forest with representation \p kind.
  static VForest new_uniform(RepKind kind, Connectivity conn, int level);

  /// Root-only forest.
  static VForest new_root(RepKind kind, Connectivity conn) {
    return new_uniform(kind, std::move(conn), 0);
  }

  [[nodiscard]] const VirtualQuadrantOps& ops() const { return *ops_; }
  [[nodiscard]] RepKind kind() const { return kind_; }
  [[nodiscard]] const Connectivity& connectivity() const { return conn_; }
  [[nodiscard]] tree_id_t num_trees() const {
    return static_cast<tree_id_t>(trees_.size());
  }
  [[nodiscard]] std::int64_t num_quadrants() const;
  [[nodiscard]] const std::vector<VQuad>& tree_quadrants(tree_id_t t) const {
    return trees_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] int max_level_used() const;

  /// p4est-style refinement; recursive re-examines children.
  void refine(bool recursive, const refine_fn& should_refine);

  /// Replace accepted complete families by their parent.
  void coarsen(bool recursive, const coarsen_fn& should_coarsen);

  /// Enforce the 2:1 condition across faces/edges/corners.
  void balance();

  /// Check the 2:1 condition.
  [[nodiscard]] bool is_balanced() const;

  /// Top-down traversal with pruning.
  void search(const search_fn& cb) const;

  /// Batched point location: the global index of the leaf containing each
  /// canonical query point (see point_query.hpp), in input order. Same
  /// contract as Forest<R>::search_points — queries are grouped per tree,
  /// sorted in curve order and resolved with one sorted-merge sweep, so m
  /// points cost one sort plus one sweep instead of m binary searches.
  /// Throws std::invalid_argument when a query lies outside the domain.
  [[nodiscard]] std::vector<std::int64_t> search_points(
      const std::vector<PointQuery>& queries) const;

  /// Structural validation (sortedness, no overlap, completeness).
  [[nodiscard]] bool is_valid() const;

 private:
  VForest(RepKind kind, Connectivity conn);

  [[nodiscard]] bool leaf_less(const VQuad& a, const VQuad& b) const {
    return ops_->less(a, b);
  }

  /// Same-level neighbor displaced by (dx,dy,dz); nullopt at the domain
  /// boundary. Implemented via the exact canonical form, so it is valid
  /// for every representation at every level.
  [[nodiscard]] std::optional<std::pair<tree_id_t, VQuad>> neighbor_at(
      tree_id_t t, const VQuad& q, int dx, int dy, int dz) const;

  [[nodiscard]] std::optional<std::size_t> enclosing_leaf(
      tree_id_t t, const VQuad& q) const;

  bool is_family_at(const std::vector<VQuad>& tree, std::size_t i) const;

  bool complete_range(const VQuad& anc, const VQuad* begin,
                      const VQuad* end) const;

  void search_recursion(tree_id_t t, const VQuad& anc, std::size_t begin,
                        std::size_t end, const search_fn& cb) const;

  RepKind kind_;
  const VirtualQuadrantOps* ops_;
  Connectivity conn_;
  std::vector<std::vector<VQuad>> trees_;
};

}  // namespace qforest

#pragma once
/// \file nodes.hpp
/// \brief Global corner-node numbering for continuous elements
/// (a p4est_lnodes-style interface, lowest order).
///
/// p4est "provides node numberings for low- and high-order continuous
/// elements" (paper §1). This module numbers the corner nodes of a
/// 2:1-balanced forest: every geometric corner point of every leaf gets
/// one global id; points that lie on the open face (or edge, in 3D) of a
/// coarser neighbor are *hanging* — they are not independent degrees of
/// freedom but interpolated from the coarse face's corner nodes.
///
/// Works in canonical coordinates, so the numbering is identical for
/// every quadrant representation (tested in test_nodes.cpp).

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "core/canonical.hpp"
#include "forest/forest.hpp"

namespace qforest {

/// Result of number_corner_nodes().
struct NodeNumbering {
  /// Canonical coordinates (2^kCanonicalLevel grid) of each node; index
  /// in this vector is the node's global id.
  std::vector<std::array<std::int64_t, 3>> coordinates;

  /// True when the node lies on the open face/edge of a coarser leaf and
  /// is therefore constrained rather than independent.
  std::vector<bool> hanging;

  /// Per leaf (global leaf order), the node id at each of its 2^d
  /// corners in z-order.
  std::vector<std::array<std::int64_t, 8>> element_nodes;

  /// Number of independent (non-hanging) nodes.
  [[nodiscard]] std::int64_t num_independent() const {
    std::int64_t n = 0;
    for (const bool h : hanging) {
      n += h ? 0 : 1;
    }
    return n;
  }

  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(coordinates.size());
  }
};

/// Number the corner nodes of a face-balanced forest. Periodic and
/// multi-tree connectivities are supported: nodes on shared tree faces
/// are identified via the brick's global coordinate system.
///
/// Precondition: the forest is 2:1 face-balanced (checked by assert-level
/// logic in the hanging classification; unbalanced input yields an
/// exception).
template <class R>
NodeNumbering number_corner_nodes(const Forest<R>& forest) {
  constexpr int dim = R::dim;
  constexpr int num_corners = DimConstants<dim>::num_corners;
  const Connectivity& conn = forest.connectivity();
  const std::int64_t root = std::int64_t{1} << kCanonicalLevel;

  NodeNumbering out;
  out.element_nodes.assign(
      static_cast<std::size_t>(forest.num_quadrants()), {});

  // Global node key: brick coordinates folded into one point per axis,
  // with periodic wrap so opposite faces share nodes.
  using Key = std::tuple<std::int64_t, std::int64_t, std::int64_t>;
  std::map<Key, std::int64_t> node_ids;

  auto key_of = [&](tree_id_t t, std::int64_t cx, std::int64_t cy,
                    std::int64_t cz) {
    const auto tc = conn.tree_coords(t);
    std::int64_t g[3] = {cx + tc[0] * root, cy + tc[1] * root,
                         cz + tc[2] * root};
    for (int a = 0; a < dim; ++a) {
      const std::int64_t span = conn.extent(a) * root;
      if (conn.periodic(a)) {
        g[a] = ((g[a] % span) + span) % span;
      }
    }
    return Key{g[0], g[1], g[2]};
  };

  // Pass 1: assign ids to every distinct corner point.
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    const auto& leaves = forest.tree_quadrants(t);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const CanonicalQuadrant c = to_canonical<R>(leaves[i]);
      const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
      auto& elem =
          out.element_nodes[static_cast<std::size_t>(
              forest.global_index(t, i))];
      for (int corner = 0; corner < num_corners; ++corner) {
        const std::int64_t px = c.x + ((corner & 1) ? h : 0);
        const std::int64_t py = c.y + ((corner & 2) ? h : 0);
        const std::int64_t pz =
            dim == 3 ? c.z + ((corner & 4) ? h : 0) : 0;
        const Key key = key_of(t, px, py, pz);
        auto [it, inserted] =
            node_ids.try_emplace(key, static_cast<std::int64_t>(
                                          out.coordinates.size()));
        if (inserted) {
          out.coordinates.push_back(
              {std::get<0>(key), std::get<1>(key), std::get<2>(key)});
        }
        elem[static_cast<std::size_t>(corner)] = it->second;
      }
    }
  }
  out.hanging.assign(out.coordinates.size(), false);

  // Pass 2: classify hanging nodes. A fine leaf's corner on the face
  // shared with a coarser neighbor is hanging unless it coincides with a
  // corner of that coarse face.
  for (tree_id_t t = 0; t < forest.num_trees(); ++t) {
    const auto& leaves = forest.tree_quadrants(t);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const auto& q = leaves[i];
      const CanonicalQuadrant c = to_canonical<R>(q);
      const std::int64_t h = std::int64_t{1} << (kCanonicalLevel - c.level);
      for (int f = 0; f < DimConstants<dim>::num_faces; ++f) {
        const int axis = f >> 1;
        const int dirs[3] = {axis == 0 ? ((f & 1) ? 1 : -1) : 0,
                             axis == 1 ? ((f & 1) ? 1 : -1) : 0,
                             axis == 2 ? ((f & 1) ? 1 : -1) : 0};
        const auto nb =
            forest.neighbor_at_offset(t, q, dirs[0], dirs[1], dirs[2]);
        if (!nb.has_value()) {
          continue;  // physical boundary
        }
        const auto enclosing = forest.find_enclosing_leaf(nb->tree, nb->quad);
        if (!enclosing.has_value()) {
          continue;  // neighbor side is finer; handled from there
        }
        const auto& nleaf =
            forest.tree_quadrants(nb->tree)[*enclosing];
        const int nlvl = R::level(nleaf);
        if (nlvl >= c.level) {
          continue;  // conforming face
        }
        if (nlvl < c.level - 1) {
          throw std::invalid_argument(
              "number_corner_nodes: forest is not 2:1 face-balanced");
        }
        // Our corners on this face: those with the face's axis bit set
        // to the face side. They are hanging iff they are not also
        // corners of the coarse neighbor face, i.e. iff any in-face
        // coordinate is not a multiple of the coarse length 2h.
        for (int corner = 0; corner < num_corners; ++corner) {
          if (((corner >> axis) & 1) != (f & 1)) {
            continue;  // corner not on this face
          }
          const std::int64_t p[3] = {
              c.x + ((corner & 1) ? h : 0), c.y + ((corner & 2) ? h : 0),
              dim == 3 ? c.z + ((corner & 4) ? h : 0) : 0};
          bool on_coarse_grid = true;
          for (int a = 0; a < dim; ++a) {
            if (a == axis) {
              continue;
            }
            if (p[a] % (2 * h) != 0) {
              on_coarse_grid = false;
            }
          }
          if (!on_coarse_grid) {
            const Key key = key_of(t, p[0], p[1], p[2]);
            out.hanging[static_cast<std::size_t>(node_ids.at(key))] = true;
          }
        }
      }

      // 3D: edge-hanging nodes. A corner on the shared edge with a
      // coarser edge-neighbor is hanging when it sits at the coarse
      // edge's midpoint (not on the 2h grid along the edge direction).
      if constexpr (dim == 3) {
        for (int a1 = 0; a1 < 3; ++a1) {
          for (int a2 = a1 + 1; a2 < 3; ++a2) {
            const int free_axis = 3 - a1 - a2;
            for (int s1 = -1; s1 <= 1; s1 += 2) {
              for (int s2 = -1; s2 <= 1; s2 += 2) {
                int d[3] = {0, 0, 0};
                d[a1] = s1;
                d[a2] = s2;
                const auto nb =
                    forest.neighbor_at_offset(t, q, d[0], d[1], d[2]);
                if (!nb.has_value()) {
                  continue;
                }
                const auto enclosing =
                    forest.find_enclosing_leaf(nb->tree, nb->quad);
                if (!enclosing.has_value()) {
                  continue;
                }
                const int nlvl = R::level(
                    forest.tree_quadrants(nb->tree)[*enclosing]);
                if (nlvl != c.level - 1) {
                  continue;
                }
                for (int corner = 0; corner < num_corners; ++corner) {
                  if (((corner >> a1) & 1) != (s1 > 0 ? 1 : 0) ||
                      ((corner >> a2) & 1) != (s2 > 0 ? 1 : 0)) {
                    continue;  // corner not on this edge
                  }
                  const std::int64_t p[3] = {
                      c.x + ((corner & 1) ? h : 0),
                      c.y + ((corner & 2) ? h : 0),
                      c.z + ((corner & 4) ? h : 0)};
                  if (p[free_axis] % (2 * h) != 0) {
                    const Key key = key_of(t, p[0], p[1], p[2]);
                    out.hanging[static_cast<std::size_t>(
                        node_ids.at(key))] = true;
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace qforest

#include "forest/connectivity.hpp"

#include <cassert>
#include <stdexcept>

namespace qforest {

Connectivity::Connectivity(int dim, std::array<int, 3> extent,
                           std::array<bool, 3> periodic)
    : dim_(dim), extent_(extent), periodic_(periodic) {
  if (dim != 2 && dim != 3) {
    throw std::invalid_argument("Connectivity: dim must be 2 or 3");
  }
  for (int a = 0; a < 3; ++a) {
    if (extent_[a] < 1) {
      throw std::invalid_argument("Connectivity: extents must be positive");
    }
  }
  if (dim == 2 && extent_[2] != 1) {
    throw std::invalid_argument("Connectivity: 2D brick must have nz == 1");
  }
}

Connectivity Connectivity::unit(int dim) {
  return Connectivity(dim, {1, 1, 1}, {false, false, false});
}

Connectivity Connectivity::brick2d(int nx, int ny, bool periodic_x,
                                   bool periodic_y) {
  return Connectivity(2, {nx, ny, 1}, {periodic_x, periodic_y, false});
}

Connectivity Connectivity::brick3d(int nx, int ny, int nz, bool periodic_x,
                                   bool periodic_y, bool periodic_z) {
  return Connectivity(3, {nx, ny, nz}, {periodic_x, periodic_y, periodic_z});
}

std::array<int, 3> Connectivity::tree_coords(tree_id_t t) const {
  assert(t >= 0 && t < num_trees());
  std::array<int, 3> c{};
  c[0] = static_cast<int>(t % extent_[0]);
  c[1] = static_cast<int>((t / extent_[0]) % extent_[1]);
  c[2] = static_cast<int>(t / (static_cast<std::int64_t>(extent_[0]) *
                               extent_[1]));
  return c;
}

tree_id_t Connectivity::tree_at(int x, int y, int z) const {
  int pos[3] = {x, y, z};
  for (int a = 0; a < 3; ++a) {
    if (pos[a] < 0 || pos[a] >= extent_[a]) {
      if (!periodic_[a]) {
        return -1;
      }
      pos[a] = ((pos[a] % extent_[a]) + extent_[a]) % extent_[a];
    }
  }
  return static_cast<tree_id_t>(
      pos[0] + static_cast<std::int64_t>(extent_[0]) *
                   (pos[1] + static_cast<std::int64_t>(extent_[1]) * pos[2]));
}

Connectivity::FaceLink Connectivity::tree_face_neighbor(tree_id_t t,
                                                        int f) const {
  assert(f >= 0 && f < 2 * dim_);
  auto c = tree_coords(t);
  const int axis = f >> 1;
  c[axis] += (f & 1) ? 1 : -1;
  FaceLink link;
  link.tree = tree_at(c[0], c[1], c[2]);
  // Axis-aligned bricks connect through the opposite face, no rotation.
  link.face = link.tree < 0 ? -1 : (f ^ 1);
  return link;
}

tree_id_t Connectivity::tree_offset_neighbor(tree_id_t t, int dx, int dy,
                                             int dz) const {
  const auto c = tree_coords(t);
  return tree_at(c[0] + dx, c[1] + dy, c[2] + dz);
}

bool Connectivity::is_valid() const {
  if (dim_ != 2 && dim_ != 3) {
    return false;
  }
  for (int a = 0; a < dim_; ++a) {
    if (extent_[a] < 1) {
      return false;
    }
  }
  // Face links must be symmetric: crossing back returns to the start.
  for (tree_id_t t = 0; t < num_trees(); ++t) {
    for (int f = 0; f < 2 * dim_; ++f) {
      const FaceLink link = tree_face_neighbor(t, f);
      if (link.is_boundary()) {
        continue;
      }
      const FaceLink back = tree_face_neighbor(link.tree, link.face);
      if (back.tree != t || back.face != f) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qforest

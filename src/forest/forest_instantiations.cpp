/// \file forest_instantiations.cpp
/// \brief Explicit instantiation of Forest for every shipped
/// representation x dimension, so template errors surface when the core
/// library builds rather than in downstream targets.

#include "forest/forest.hpp"

#include "core/quadrant_avx.hpp"
#include "core/quadrant_morton.hpp"
#include "core/quadrant_std.hpp"
#include "core/quadrant_wide.hpp"

namespace qforest {

template class Forest<StandardRep<2>>;
template class Forest<StandardRep<3>>;
template class Forest<MortonRep<2>>;
template class Forest<MortonRep<3>>;
template class Forest<AvxRep<2>>;
template class Forest<AvxRep<3>>;
template class Forest<WideMortonRep<2>>;
template class Forest<WideMortonRep<3>>;

}  // namespace qforest
